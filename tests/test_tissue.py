"""Tests for tissue formation, alignment, and MTS calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.breakpoints import SubLayer, divide_layer
from repro.core.tissue import (
    align_tissues,
    calibrate_mts,
    form_tissues,
    minimum_tissues,
    validate_schedule,
)
from repro.errors import PlanError
from repro.gpu.specs import TEGRA_X1


def paper_example_sublayers():
    """The Fig. 8 example: a 9-cell layer divided into four sub-layers
    [0..2], [3], [4..6], [7..8]."""
    return [SubLayer(0, 3), SubLayer(3, 4), SubLayer(4, 7), SubLayer(7, 9)]


class TestFormTissues:
    def test_paper_example(self):
        """Fig. 8(b1): naive formation yields fat then thin tissues."""
        tissues = form_tissues(paper_example_sublayers())
        assert [t.timestamps() for t in tissues] == [[0, 3, 4, 7], [1, 5, 8], [2, 6]]

    def test_single_sublayer_gives_singletons(self):
        tissues = form_tissues([SubLayer(0, 4)])
        assert [t.size for t in tissues] == [1, 1, 1, 1]

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            form_tissues([])


class TestAlignTissues:
    def test_respects_mts(self):
        tissues = align_tissues(paper_example_sublayers(), mts=3)
        assert all(t.size <= 3 for t in tissues)

    def test_schedule_is_valid(self):
        subs = paper_example_sublayers()
        tissues = align_tissues(subs, mts=3)
        validate_schedule(subs, tissues, mts=3)

    def test_covers_all_cells(self):
        subs = paper_example_sublayers()
        tissues = align_tissues(subs, mts=2)
        covered = sorted(t for tissue in tissues for t in tissue.timestamps())
        assert covered == list(range(9))

    def test_reaches_minimum_tissue_count(self):
        """The LPT rule should achieve the Eq. 7 lower bound here."""
        subs = paper_example_sublayers()
        tissues = align_tissues(subs, mts=3)
        assert len(tissues) == minimum_tissues(subs, 3)

    def test_mts_one_serializes(self):
        subs = paper_example_sublayers()
        tissues = align_tissues(subs, mts=1)
        assert len(tissues) == 9

    def test_invalid_mts(self):
        with pytest.raises(PlanError):
            align_tissues(paper_example_sublayers(), mts=0)

    @given(
        st.integers(2, 50),
        st.sets(st.integers(1, 49), max_size=12),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_alignment_always_valid(self, length, raw_breaks, mts):
        breaks = sorted(b for b in raw_breaks if b < length)
        subs = divide_layer(length, breaks)
        tissues = align_tissues(subs, mts)
        validate_schedule(subs, tissues, mts)

    @given(
        st.integers(2, 50),
        st.sets(st.integers(1, 49), max_size=12),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_alignment_achieves_lower_bound(self, length, raw_breaks, mts):
        """LPT over chains with unit tasks achieves max(longest, ceil(N/m))."""
        breaks = sorted(b for b in raw_breaks if b < length)
        subs = divide_layer(length, breaks)
        tissues = align_tissues(subs, mts)
        assert len(tissues) == minimum_tissues(subs, mts)


class TestValidateSchedule:
    def test_detects_capacity_violation(self):
        subs = [SubLayer(0, 2), SubLayer(2, 4)]
        tissues = form_tissues(subs)  # width 2
        with pytest.raises(PlanError):
            validate_schedule(subs, tissues, mts=1)

    def test_detects_missing_cell(self):
        subs = [SubLayer(0, 3)]
        tissues = align_tissues(subs, 1)[:-1]
        with pytest.raises(PlanError):
            validate_schedule(subs, tissues, mts=1)

    def test_detects_order_violation(self):
        subs = [SubLayer(0, 2)]
        tissues = align_tissues(subs, 1)
        tissues.reverse()
        with pytest.raises(PlanError):
            validate_schedule(subs, tissues, mts=1)


class TestMTSCalibration:
    def test_realistic_range(self):
        """The TX1 knee sits at 5-6 for Table II hidden sizes (Fig. 9)."""
        for hidden in (256, 512, 650):
            mts = calibrate_mts(TEGRA_X1, hidden)
            assert 4 <= mts <= 7

    def test_minimum_tissues_formula(self):
        subs = [SubLayer(0, 10), SubLayer(10, 12)]
        # total 12, longest 10, mts 4 -> max(10, 3) = 10
        assert minimum_tissues(subs, 4) == 10
        assert minimum_tissues(subs, 1) == 12
