"""Threaded dispatch: sharding, the pool, and executor bit-identity.

The contract under test is the one ``ExecutionConfig.threads`` sells:
``threads=1`` is byte-for-byte today's serial path, and ``threads>1``
shards batch rows over a persistent pool without changing a single bit
of any output — in every mode, for full-sequence batches and for the
streaming step path (whose hidden/cell state views are written in
place).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.parallel import (
    DispatchStats,
    ThreadedDispatcher,
    get_dispatcher,
    shard_slices,
)
from repro.errors import ConfigurationError

from tests.conftest import TINY_VOCAB

MODES = {
    "baseline": {},
    "inter": {"alpha_inter": 1e12, "mts": 4},
    "intra": {"alpha_intra": 0.3},
    "combined": {"alpha_inter": 1e12, "alpha_intra": 0.3, "mts": 4},
    "zero_prune": {},
}


def _config(mode: str, threads: int = 1, **extra) -> ExecutionConfig:
    kwargs = dict(MODES[mode])
    kwargs.update(extra)
    return ExecutionConfig(mode=ExecutionMode(mode), threads=threads, **kwargs)


# ----------------------------------------------------------- shard_slices


class TestShardSlices:
    def test_covers_range_in_order_without_overlap(self):
        for n in (1, 2, 5, 7, 16, 33):
            for parts in (1, 2, 3, 4, 8):
                slices = shard_slices(n, parts)
                rows = [i for s in slices for i in range(s.start, s.stop)]
                assert rows == list(range(n))

    def test_balanced_within_one(self):
        slices = shard_slices(10, 4)
        sizes = [s.stop - s.start for s in slices]
        assert max(sizes) - min(sizes) <= 1
        # Larger shards come first so the pool's tail is the small ones.
        assert sizes == sorted(sizes, reverse=True)

    def test_parts_clamp_to_n(self):
        assert len(shard_slices(2, 8)) == 2
        assert shard_slices(0, 4) == []

    def test_negative_n_raises(self):
        with pytest.raises(ConfigurationError):
            shard_slices(-1, 2)


# ----------------------------------------------------- ThreadedDispatcher


class TestThreadedDispatcher:
    def test_results_in_submission_order(self):
        dispatcher = ThreadedDispatcher(3)
        try:
            values, stats = dispatcher.map([lambda i=i: i * i for i in range(20)])
            assert values == [i * i for i in range(20)]
            assert isinstance(stats, DispatchStats)
            assert stats.units == 20
            assert stats.threads == 3
            assert stats.dispatch_wall_s >= 0.0
            assert stats.busy_s >= 0.0
            assert len(stats.unit_busy_s) == 20
        finally:
            dispatcher.close()

    def test_work_actually_crosses_threads(self):
        dispatcher = ThreadedDispatcher(2)
        try:
            idents, _ = dispatcher.map(
                [threading.get_ident for _ in range(8)]
            )
            assert threading.get_ident() not in idents
        finally:
            dispatcher.close()

    def test_first_exception_propagates_after_drain(self):
        dispatcher = ThreadedDispatcher(2)
        done = []

        def boom():
            raise ValueError("unit failed")

        try:
            with pytest.raises(ValueError, match="unit failed"):
                dispatcher.map([boom] + [lambda: done.append(1) for _ in range(6)])
            # The pool drained the remaining units before re-raising, so
            # it is immediately reusable.
            assert len(done) == 6
            values, _ = dispatcher.map([lambda: 7])
            assert values == [7]
        finally:
            dispatcher.close()

    def test_timing_keys_schema(self):
        stats = DispatchStats(threads=2, units=0)
        assert set(stats.timing_keys()) == {
            "dispatch_wall_s", "queue_wait_s", "thread_busy_s",
        }

    def test_get_dispatcher_reuses_pool(self):
        assert get_dispatcher(3) is get_dispatcher(3)
        assert get_dispatcher(2) is not get_dispatcher(3)


# ------------------------------------------------------- config plumbing


class TestConfigValidation:
    def test_threads_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(mode=ExecutionMode.BASELINE, threads=0)

    def test_dwell_must_be_nonnegative(self, tiny_network):
        with pytest.raises(ConfigurationError):
            LSTMExecutor(
                tiny_network,
                ExecutionConfig(mode=ExecutionMode.BASELINE),
                dwell_s=-0.1,
            )


# ------------------------------------------------------ run_batch identity


class TestRunBatchBitIdentity:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("threads", [2, 3, 4])
    def test_threaded_matches_serial(self, tiny_network, rng, mode, threads):
        tokens = rng.integers(0, TINY_VOCAB, size=(7, tiny_network.config.seq_length))
        serial = LSTMExecutor(tiny_network, _config(mode)).run_batch(tokens)
        out = LSTMExecutor(tiny_network, _config(mode, threads)).run_batch(tokens)
        np.testing.assert_array_equal(out.logits, serial.logits)
        assert len(out.plans) == len(serial.plans)
        assert [p.total_breakpoints for p in out.plans] == [
            p.total_breakpoints for p in serial.plans
        ]

    def test_threads_beyond_batch(self, tiny_network, rng):
        tokens = rng.integers(0, TINY_VOCAB, size=(2, tiny_network.config.seq_length))
        serial = LSTMExecutor(tiny_network, _config("combined")).run_batch(tokens)
        out = LSTMExecutor(tiny_network, _config("combined", 8)).run_batch(tokens)
        np.testing.assert_array_equal(out.logits, serial.logits)

    def test_batch_of_one_stays_serial(self, tiny_network, rng):
        tokens = rng.integers(0, TINY_VOCAB, size=(1, tiny_network.config.seq_length))
        out = LSTMExecutor(tiny_network, _config("combined", 4)).run_batch(tokens)
        # The serial path keeps layer_outputs populated.
        assert out.layer_outputs
        assert "dispatch_wall_s" not in out.timings

    def test_parallel_timings_present(self, tiny_network, rng):
        tokens = rng.integers(0, TINY_VOCAB, size=(6, tiny_network.config.seq_length))
        out = LSTMExecutor(tiny_network, _config("combined", 3)).run_batch(tokens)
        for key in ("exec_wall_s", "plan_wall_s", "compile_wall_s",
                    "dispatch_wall_s", "queue_wait_s", "thread_busy_s"):
            assert key in out.timings
        assert out.timings["thread_busy_s"] > 0.0

    def test_collect_states_falls_back_to_serial(self, tiny_network, rng):
        tokens = rng.integers(0, TINY_VOCAB, size=(5, tiny_network.config.seq_length))
        serial = LSTMExecutor(tiny_network, _config("baseline")).run_batch(
            tokens, collect_states=True
        )
        out = LSTMExecutor(tiny_network, _config("baseline", 4)).run_batch(
            tokens, collect_states=True
        )
        np.testing.assert_array_equal(out.logits, serial.logits)
        assert len(out.layer_states) == len(serial.layer_states)
        for got, want in zip(out.layer_states, serial.layer_states):
            np.testing.assert_array_equal(got, want)

    def test_dwell_does_not_change_bits(self, tiny_network, rng):
        tokens = rng.integers(0, TINY_VOCAB, size=(4, tiny_network.config.seq_length))
        serial = LSTMExecutor(tiny_network, _config("combined")).run_batch(tokens)
        dwelled = LSTMExecutor(
            tiny_network, _config("combined", 2), dwell_s=0.001
        ).run_batch(tokens)
        np.testing.assert_array_equal(dwelled.logits, serial.logits)


# ------------------------------------------------------ run_stream identity


class TestRunStreamBitIdentity:
    @pytest.mark.parametrize("mode", ["baseline", "intra", "zero_prune"])
    def test_threaded_stream_matches_serial(self, tiny_network, rng, mode):
        layers = tiny_network.config.num_layers
        hidden = tiny_network.config.hidden_size
        batch = 6
        serial_ex = LSTMExecutor(tiny_network, _config(mode))
        par_ex = LSTMExecutor(tiny_network, _config(mode, 4))
        h_s = np.zeros((layers, batch, hidden))
        c_s = np.zeros((layers, batch, hidden))
        h_p = h_s.copy()
        c_p = c_s.copy()
        for _ in range(3):
            tokens = rng.integers(0, TINY_VOCAB, size=(batch, 4))
            out_s = serial_ex.run_stream(tokens, h_s, c_s)
            out_p = par_ex.run_stream(tokens, h_p, c_p)
            np.testing.assert_array_equal(out_p, out_s)
            np.testing.assert_array_equal(h_p, h_s)
            np.testing.assert_array_equal(c_p, c_s)

    def test_single_row_stream_stays_serial(self, tiny_network, rng):
        layers = tiny_network.config.num_layers
        hidden = tiny_network.config.hidden_size
        ex = LSTMExecutor(tiny_network, _config("baseline", 4))
        h = np.zeros((layers, 1, hidden))
        c = np.zeros((layers, 1, hidden))
        out = ex.run_stream(rng.integers(0, TINY_VOCAB, size=(1, 4)), h, c)
        assert out.shape[0] == 1


# ----------------------------------------------------------- observability


class TestRecorderAttribution:
    def test_threaded_record_carries_dispatch_timing(self, tiny_network, rng):
        from repro.obs.recorder import Recorder

        recorder = Recorder()
        executor = LSTMExecutor(
            tiny_network, _config("combined", 3), recorder=recorder
        )
        tokens = rng.integers(0, TINY_VOCAB, size=(6, tiny_network.config.seq_length))
        executor.run_batch(tokens)
        record = recorder.last()
        assert record.config["threads"] == 3
        for key in ("dispatch_wall_s", "queue_wait_s", "thread_busy_s"):
            assert key in record.timing
        assert record.batch == 6
        # Every row's structural plan is observed exactly once, no matter
        # which shard executed it.
        assert len(record.sequences) == 6

    def test_record_schema_valid_with_threads(self, tiny_network, rng):
        from repro.obs.record import RunRecord
        from repro.obs.recorder import Recorder

        recorder = Recorder()
        executor = LSTMExecutor(
            tiny_network, _config("baseline", 2), recorder=recorder
        )
        tokens = rng.integers(0, TINY_VOCAB, size=(4, tiny_network.config.seq_length))
        executor.run_batch(tokens)
        round_tripped = RunRecord.from_dict(recorder.last().to_dict())
        assert round_tripped.timing["dispatch_wall_s"] >= 0.0


# ----------------------------------------------------------- pipeline knob


class TestPipelineThreads:
    def test_run_threads_bit_identical(self, tiny_app):
        tokens = tiny_app.sample_tokens(6, seed=9)
        serial = tiny_app.run(tokens, mode=ExecutionMode.COMBINED, threshold_index=2)
        threaded = tiny_app.run(
            tokens, mode=ExecutionMode.COMBINED, threshold_index=2, threads=4
        )
        np.testing.assert_array_equal(threaded.logits, serial.logits)

    def test_run_records_threads(self, tiny_app):
        from repro.obs.recorder import Recorder

        recorder = Recorder()
        tokens = tiny_app.sample_tokens(4, seed=9)
        tiny_app.run(
            tokens, mode=ExecutionMode.BASELINE, threads=2, recorder=recorder
        )
        assert recorder.last().config["threads"] == 2
