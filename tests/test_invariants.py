"""Property-based invariants across the optimization stack.

These tests draw random thresholds/geometries (hypothesis) and assert the
structural guarantees every execution must satisfy regardless of the knob
settings: plans partition the layer, skipping reduces monotonically,
traces account bytes consistently, and determinism holds end to end.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import TEGRA_X1
from repro.nn.model_zoo import build_calibrated_network

CFG = AppConfig(
    name="PROP",
    family=TaskFamily.SENTIMENT_CLASSIFICATION,
    model=LSTMConfig(hidden_size=20, num_layers=2, seq_length=9, input_size=16),
    vocab_size=40,
    num_classes=2,
)
NETWORK = build_calibrated_network(CFG, seed=13)
TOKENS = np.random.default_rng(77).integers(0, 40, size=(3, 9))

slow_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run(mode, **kwargs):
    executor = LSTMExecutor(NETWORK, ExecutionConfig(mode=mode, spec=TEGRA_X1, **kwargs))
    return executor, executor.run_batch(TOKENS)


class TestPlanInvariants:
    @given(st.floats(0.0, 1e4), st.integers(1, 6))
    @slow_settings
    def test_inter_plans_always_partition(self, alpha, mts):
        _, result = run(ExecutionMode.INTER, alpha_inter=alpha, mts=mts)
        for plan in result.plans:
            for record in plan.layers:
                record.validate()
                assert all(t.size <= mts for t in record.tissues)

    @given(st.floats(0.0, 0.5))
    @slow_settings
    def test_intra_skip_fraction_bounded(self, alpha):
        _, result = run(ExecutionMode.INTRA, alpha_intra=alpha)
        for plan in result.plans:
            assert 0.0 <= plan.mean_skip_fraction <= 1.0

    @given(st.floats(0.0, 1e4), st.floats(0.0, 0.5), st.integers(1, 6))
    @slow_settings
    def test_combined_plans_always_partition(self, a_inter, a_intra, mts):
        _, result = run(
            ExecutionMode.COMBINED, alpha_inter=a_inter, alpha_intra=a_intra, mts=mts
        )
        for plan in result.plans:
            for record in plan.layers:
                record.validate()

    @given(st.floats(0.0, 1e4), st.floats(0.0, 0.5))
    @slow_settings
    def test_outputs_always_finite_and_bounded(self, a_inter, a_intra):
        _, result = run(
            ExecutionMode.COMBINED, alpha_inter=a_inter, alpha_intra=a_intra
        )
        assert np.all(np.isfinite(result.logits))
        for hs in result.layer_outputs:
            assert np.all(np.abs(hs) <= 1.0)


class TestTraceInvariants:
    @given(st.floats(0.0, 1e4), st.floats(0.0, 0.5))
    @slow_settings
    def test_every_plan_yields_a_simulatable_trace(self, a_inter, a_intra):
        executor, result = run(
            ExecutionMode.COMBINED, alpha_inter=a_inter, alpha_intra=a_intra
        )
        sim = TimingSimulator(TEGRA_X1)
        trace = sim.run_trace(executor.kernel_trace(result.plans[0]))
        assert trace.total_time > 0
        assert trace.total_energy > 0
        assert trace.total_dram_bytes >= 0

    @given(st.floats(0.05, 0.5))
    @slow_settings
    def test_more_skipping_never_increases_weight_traffic(self, alpha):
        def fic_bytes(a):
            executor, result = run(ExecutionMode.INTRA, alpha_intra=a)
            kernels = executor.kernel_trace(result.plans[0])
            return sum(k.weight_bytes for k in kernels if (k.weight_id or "").startswith("Ufic"))

        assert fic_bytes(alpha) >= fic_bytes(min(0.5, alpha + 0.1)) - 1e-6


class TestDeterminism:
    def test_end_to_end_repeatability(self):
        _, a = run(ExecutionMode.COMBINED, alpha_inter=100.0, alpha_intra=0.2)
        _, b = run(ExecutionMode.COMBINED, alpha_inter=100.0, alpha_intra=0.2)
        np.testing.assert_array_equal(a.logits, b.logits)
        assert a.plans[0].total_breakpoints == b.plans[0].total_breakpoints

    def test_simulator_repeatability(self):
        executor, result = run(ExecutionMode.BASELINE)
        sim = TimingSimulator(TEGRA_X1)
        t1 = sim.run_trace(executor.kernel_trace(result.plans[0])).total_time
        t2 = sim.run_trace(executor.kernel_trace(result.plans[0])).total_time
        assert t1 == t2
