"""Tests for the agreement metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.workloads.metrics import (
    agreement_accuracy,
    perplexity_proxy,
    prediction_margins,
)


class TestMargins:
    def test_binary(self):
        logits = np.array([[2.0, 0.5], [0.1, 0.2]])
        np.testing.assert_allclose(prediction_margins(logits), [1.5, 0.1])

    def test_multiclass(self):
        logits = np.array([3.0, 7.0, 5.0])
        assert prediction_margins(logits) == pytest.approx(2.0)

    def test_batched_tokens(self):
        logits = np.zeros((2, 4, 5))
        logits[..., 0] = 1.0
        assert prediction_margins(logits).shape == (2, 4)

    def test_needs_two_classes(self):
        with pytest.raises(ConfigurationError):
            prediction_margins(np.ones((3, 1)))

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=8))
    def test_nonnegative(self, row):
        assert prediction_margins(np.array(row)) >= 0


class TestAgreement:
    def test_perfect(self):
        t = np.array([1, 2, 3])
        assert agreement_accuracy(t, t) == 1.0

    def test_partial(self):
        assert agreement_accuracy(np.array([1, 2]), np.array([1, 3])) == 0.5

    def test_masked(self):
        t = np.array([1, 2, 3, 4])
        p = np.array([1, 0, 3, 0])
        mask = np.array([True, False, True, False])
        assert agreement_accuracy(t, p, mask) == 1.0

    def test_empty_mask_rejected(self):
        with pytest.raises(ConfigurationError):
            agreement_accuracy(np.array([1]), np.array([1]), np.array([False]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            agreement_accuracy(np.array([1, 2]), np.array([1]))


class TestPerplexity:
    def test_uniform(self):
        logits = np.zeros((4, 10))
        targets = np.zeros(4, dtype=int)
        assert perplexity_proxy(logits, targets) == pytest.approx(10.0)

    def test_confident_correct_is_low(self):
        logits = np.full((4, 10), -10.0)
        logits[:, 3] = 10.0
        targets = np.full(4, 3)
        assert perplexity_proxy(logits, targets) < 1.01

    def test_confident_wrong_is_high(self):
        logits = np.full((4, 10), -10.0)
        logits[:, 3] = 10.0
        targets = np.full(4, 5)
        assert perplexity_proxy(logits, targets) > 1e6

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            perplexity_proxy(np.zeros((3, 5)), np.zeros(4, dtype=int))
