"""Reusable finite-difference gradient checking.

One implementation of the central-difference oracle, shared by the unit
tests (hypothesis drives the shapes/seeds) and by
``benchmarks/bench_training.py`` (the ``fd_max_rel_err`` gate). The
contract: analytic gradients must agree with central differences to a
relative error of :data:`DEFAULT_TOLERANCE` on every probed coordinate.

The relative error uses the ``max(1, |a|, |f|)`` denominator so that
near-zero gradients are compared absolutely: central differences carry
``O(eps^2) + O(roundoff / eps)`` noise (~1e-10 at ``eps = 1e-6``), and a
pure ratio would amplify that noise past any tolerance exactly where the
true gradient vanishes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Central-difference step. fp64 sweet spot: truncation error ``eps**2``
#: and roundoff ``ulp/eps`` are balanced near ``cbrt(1e-16) ~ 5e-6``.
DEFAULT_EPS: float = 1e-6

#: Acceptance bound on the relative error (the bench gate's bound too).
DEFAULT_TOLERANCE: float = 1e-6

#: Coordinates probed per parameter array: full FD over every coordinate
#: is ``O(2 * n_params)`` forward passes, so each array is spot-checked at
#: this many randomly chosen coordinates instead.
DEFAULT_COORDS_PER_ARRAY: int = 6


def relative_error(analytic: float, numeric: float) -> float:
    """``|a - f| / max(1, |a|, |f|)`` — absolute near zero, relative else."""
    return abs(analytic - numeric) / max(1.0, abs(analytic), abs(numeric))


def finite_difference_check(
    loss_fn: Callable[[], float],
    params: Sequence[np.ndarray],
    analytic: Sequence[np.ndarray],
    rng: np.random.Generator,
    eps: float = DEFAULT_EPS,
    coords_per_array: int = DEFAULT_COORDS_PER_ARRAY,
) -> float:
    """Spot-check analytic gradients against central differences.

    Args:
        loss_fn: Re-evaluates the scalar loss with the *current* contents
            of ``params`` (which are perturbed in place and restored).
        params: The live parameter arrays ``loss_fn`` reads.
        analytic: Matching analytic gradient arrays (same order/shapes).
        rng: Drives the coordinate choice — pass a seeded generator so a
            failure reproduces.
        eps: Central-difference step.
        coords_per_array: Random coordinates probed per array.

    Returns:
        The maximum relative error over every probed coordinate.
    """
    if len(params) != len(analytic):
        raise ValueError(
            f"{len(params)} parameter arrays vs {len(analytic)} gradient arrays"
        )
    worst = 0.0
    for param, grad in zip(params, analytic):
        if param.shape != grad.shape:
            raise ValueError(
                f"parameter shape {param.shape} != gradient shape {grad.shape}"
            )
        if param.size == 0:
            continue
        count = min(coords_per_array, param.size)
        flat_indices = rng.choice(param.size, size=count, replace=False)
        flat_param = param.reshape(-1)
        flat_grad = grad.reshape(-1)
        for index in flat_indices:
            original = flat_param[index]
            flat_param[index] = original + eps
            plus = loss_fn()
            flat_param[index] = original - eps
            minus = loss_fn()
            flat_param[index] = original
            numeric = (plus - minus) / (2.0 * eps)
            worst = max(worst, relative_error(float(flat_grad[index]), numeric))
    return worst
