"""Tests for Algorithm 2 (relevance value acquisition)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.activations import SENSITIVE_WIDTH
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights
from repro.core.relevance import (
    exact_relevance_values,
    max_relevance,
    recurrent_row_ranges,
    relevance_values,
)

H, E, T = 10, 8, 6


def weights_and_proj(seed=0, scale=1.0):
    w = LSTMCellWeights.initialize(H, E, WeightInitializer(seed))
    xs = np.random.default_rng(seed + 1).normal(size=(T, E)) * scale
    proj = {g: xs @ w.gate_w(g).T for g in GATE_ORDER}
    return w, proj


class TestRowRanges:
    def test_matches_l1_norm(self):
        w, _ = weights_and_proj()
        ranges = recurrent_row_ranges(w)
        for g in GATE_ORDER:
            np.testing.assert_allclose(ranges[g], np.abs(w.gate_u(g)).sum(axis=1))

    def test_nonnegative(self):
        w, _ = weights_and_proj()
        for arr in recurrent_row_ranges(w).values():
            assert np.all(arr >= 0)


class TestRelevanceValues:
    def test_shape(self):
        w, proj = weights_and_proj()
        assert relevance_values(w, proj).shape == (T,)

    def test_nonnegative_and_bounded(self):
        w, proj = weights_and_proj()
        s = relevance_values(w, proj)
        assert np.all(s >= 0)
        assert np.all(s <= max_relevance(H))

    def test_zero_recurrent_weights_and_saturated_inputs(self):
        """With U == 0 and deeply saturated inputs the link is irrelevant."""
        w, proj = weights_and_proj()
        for g in GATE_ORDER:
            setattr(w, f"u_{g}", np.zeros((H, H)))
            setattr(w, f"b_{g}", np.zeros(H))
        # All pre-activations far below the sensitive area.
        sat = {g: np.full((T, H), -50.0) for g in GATE_ORDER}
        s = relevance_values(w, sat, row_ranges=recurrent_row_ranges(w))
        np.testing.assert_allclose(s, 0.0)

    def test_centered_inputs_are_maximally_relevant(self):
        """Pre-activations centered in the sensitive area give large S."""
        w, _ = weights_and_proj()
        centered = {g: np.zeros((T, H)) - w.gate_b(g) for g in GATE_ORDER}
        s = relevance_values(w, centered)
        # Centered pre-activations keep every gate inside the sensitive
        # area; with moderate row ranges the per-element contribution is
        # a substantial share of the 80-per-element bound.
        assert np.all(s > 0.15 * max_relevance(H))

    def test_saturation_monotonicity(self):
        """Scaling input projections up (more saturation) cannot raise S much."""
        w, proj_small = weights_and_proj(scale=0.5)
        _, proj_large = weights_and_proj(scale=8.0)
        s_small = relevance_values(w, proj_small).mean()
        s_large = relevance_values(w, proj_large).mean()
        assert s_large < s_small

    def test_precomputed_ranges_equivalent(self):
        w, proj = weights_and_proj()
        np.testing.assert_allclose(
            relevance_values(w, proj),
            relevance_values(w, proj, row_ranges=recurrent_row_ranges(w)),
        )

    def test_missing_gate_rejected(self):
        w, proj = weights_and_proj()
        del proj["o"]
        with pytest.raises(ShapeError):
            relevance_values(w, proj)

    def test_wrong_width_rejected(self):
        w, proj = weights_and_proj()
        proj["f"] = proj["f"][:, :-1]
        with pytest.raises(ShapeError):
            relevance_values(w, proj)


class TestExactVariant:
    def test_shape_and_bounds(self):
        w, proj = weights_and_proj()
        s = exact_relevance_values(w, proj)
        assert s.shape == (T,)
        assert np.all(s >= 0)

    def test_exact_overlap_per_gate_bounded_by_width(self):
        w, proj = weights_and_proj()
        s = exact_relevance_values(w, proj)
        # S_elem <= width * (width + width^2), summed over H.
        bound = H * SENSITIVE_WIDTH * (SENSITIVE_WIDTH + SENSITIVE_WIDTH**2)
        assert np.all(s <= bound)

    def test_agrees_on_total_irrelevance(self):
        w, _ = weights_and_proj()
        for g in GATE_ORDER:
            setattr(w, f"u_{g}", np.zeros((H, H)))
            setattr(w, f"b_{g}", np.zeros(H))
        sat = {g: np.full((T, H), 50.0) for g in GATE_ORDER}
        assert np.allclose(exact_relevance_values(w, sat), 0.0)


class TestBoundaryTokens:
    def test_boundary_links_are_weakest(self, calibrated_network, tiny_app_config):
        """The zoo's boundary tokens must produce the lowest relevance."""
        net = calibrated_network
        boundary = net.boundary_token_ids
        if boundary.size == 0:
            pytest.skip("profile has no boundary tokens")
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, net.vocab_size, size=net.config.seq_length)
        tokens[5] = boundary[0]
        xs = net.embed(tokens)
        w = net.layers[0].weights
        proj = {g: xs @ w.gate_w(g).T for g in GATE_ORDER}
        s = relevance_values(w, proj)
        assert s[5] == np.min(s)
