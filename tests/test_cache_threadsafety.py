"""Concurrency stress tests for the shared caches and the cgen loader.

The in-process dispatcher (:mod:`repro.core.parallel`) runs shard
threads against one :class:`PlanCache`, one :class:`ProgramCache`, and —
in the zoo — one :class:`ArenaRegistry`. These tests hammer each from
many threads and assert the exact invariants the executor relies on:
counters stay consistent (hits + misses == requests), the LRU bound
holds, refcounts are exact, and cold keys build **once** (single-flight)
no matter how many threads race on them.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import cgen
from repro.core.plan import PlanCache
from repro.core.program import ProgramCache
from repro.runtime.arena import ArenaRegistry, leaked_segments


def _run_threads(count: int, target) -> None:
    """Start ``count`` threads on ``target(slot)`` behind one barrier."""
    barrier = threading.Barrier(count)

    def runner(slot: int) -> None:
        barrier.wait()
        target(slot)

    threads = [
        threading.Thread(target=runner, args=(slot,)) for slot in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


# --------------------------------------------------------------- PlanCache


class TestPlanCacheConcurrency:
    def test_relevance_single_flight(self):
        cache = PlanCache()
        builds: list[int] = []
        results: list[np.ndarray | None] = [None] * 8

        def compute():
            builds.append(threading.get_ident())
            time.sleep(0.02)  # widen the race window
            return np.arange(6.0)

        def hammer(slot: int) -> None:
            results[slot] = cache.relevance(("shared",), compute)

        _run_threads(8, hammer)
        assert len(builds) == 1
        # Every thread got the *same* stored array, read-only.
        assert len({id(r) for r in results}) == 1
        assert not results[0].flags.writeable
        stats = cache.stats
        assert stats.relevance_misses == 1
        assert stats.relevance_hits == 7
        assert stats.relevance_hits + stats.relevance_misses == 8

    def test_layer_plan_single_flight_shares_relevance(self):
        cache = PlanCache()
        relevance_builds: list[int] = []
        plan_builds: list[int] = []

        def compute():
            relevance_builds.append(threading.get_ident())
            time.sleep(0.01)
            return np.ones(4)

        def build_plan(relevance):
            plan_builds.append(threading.get_ident())
            time.sleep(0.01)
            return ("plan", float(relevance.sum()))

        def hammer(slot: int) -> None:
            cache.layer_plan(("plan-key",), ("rel-key",), compute, build_plan)

        _run_threads(8, hammer)
        assert len(relevance_builds) == 1
        assert len(plan_builds) == 1
        assert cache.stats.plan_misses == 1
        assert cache.stats.plan_hits == 7
        assert cache.stats.relevance_misses == 1

    def test_leader_failure_elects_next_leader(self):
        cache = PlanCache()
        attempts: list[int] = []
        failures: list[BaseException] = []
        lock = threading.Lock()

        def compute():
            with lock:
                attempts.append(threading.get_ident())
                first = len(attempts) == 1
            time.sleep(0.01)
            if first:
                raise RuntimeError("leader died")
            return np.zeros(3)

        def hammer(slot: int) -> None:
            try:
                cache.relevance(("flaky",), compute)
            except RuntimeError as exc:
                failures.append(exc)

        _run_threads(6, hammer)
        # Exactly one thread saw the failure; a successor rebuilt and
        # served everyone else.
        assert len(failures) == 1
        assert len(attempts) == 2
        assert cache.stats.relevance_misses == 1
        assert cache.stats.relevance_hits == 4

    def test_lru_bound_holds_under_concurrent_inserts(self):
        cache = PlanCache(max_entries=8)
        requests_per_thread = 40

        def hammer(slot: int) -> None:
            for i in range(requests_per_thread):
                key = ("rel", (slot * 7 + i) % 24)
                value = cache.relevance(key, lambda: np.full(2, float(slot)))
                assert value.shape == (2,)

        _run_threads(6, hammer)
        assert len(cache._relevance) <= 8
        stats = cache.stats
        assert stats.relevance_hits + stats.relevance_misses == 6 * requests_per_thread
        assert stats.evictions > 0
        # No pending events leak once every flight lands.
        assert not cache._pending

    def test_concurrent_distinct_keys_all_build(self):
        cache = PlanCache()

        def hammer(slot: int) -> None:
            cache.relevance(("solo", slot), lambda: np.full(3, float(slot)))

        _run_threads(8, hammer)
        assert cache.stats.relevance_misses == 8
        assert cache.stats.relevance_hits == 0
        for slot in range(8):
            value = cache.relevance(("solo", slot), lambda: np.zeros(3))
            assert value[0] == float(slot)


# ------------------------------------------------------------ ProgramCache


class TestProgramCacheConcurrency:
    def test_single_flight_builds_once(self):
        cache = ProgramCache()
        builds: list[int] = []
        results: list[object] = [None] * 10

        def build():
            builds.append(threading.get_ident())
            time.sleep(0.02)
            return object()

        def hammer(slot: int) -> None:
            results[slot] = cache.get(("prog",), build)

        _run_threads(10, hammer)
        assert len(builds) == 1
        assert len({id(r) for r in results}) == 1
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 9

    def test_lru_bound_and_counters_under_churn(self):
        cache = ProgramCache(max_entries=4)
        requests_per_thread = 30

        def hammer(slot: int) -> None:
            for i in range(requests_per_thread):
                key = ("churn", (slot * 5 + i) % 12)
                assert cache.get(key, lambda k=key: ("built", k)) == ("built", key)

        _run_threads(6, hammer)
        assert len(cache) <= 4
        stats = cache.stats
        assert stats.hits + stats.misses == 6 * requests_per_thread
        assert stats.evictions >= stats.misses - 4

    def test_build_failure_releases_key(self):
        cache = ProgramCache()

        with pytest.raises(ValueError, match="bad build"):
            cache.get(("fail",), lambda: (_ for _ in ()).throw(ValueError("bad build")))
        # The key is not poisoned: the next get builds cleanly.
        assert cache.get(("fail",), lambda: "ok") == "ok"
        assert cache.stats.misses == 1


# ----------------------------------------------------------- ArenaRegistry


class TestArenaRegistryConcurrency:
    def test_racing_first_acquires_publish_one_segment(self, tiny_network):
        with ArenaRegistry() as registry:
            arenas: list[object] = [None] * 6

            def hammer(slot: int) -> None:
                arenas[slot] = registry.acquire(tiny_network, "fp64")

            _run_threads(6, hammer)
            assert registry.stats.published_segments == 1
            assert registry.stats.acquires == 6
            assert registry.stats.dedup_hits == 5
            assert len({id(a) for a in arenas}) == 1
            assert len(registry) == 1

            # Concurrent releases: refcounts stay exact, the segment
            # unlinks only when the last reference goes.
            def drop(slot: int) -> None:
                registry.release(arenas[slot])

            _run_threads(6, drop)
            assert len(registry) == 0
            assert registry.stats.published_segments == 0
        assert not leaked_segments()

    def test_concurrent_precision_variants_stay_separate(self, tiny_network):
        with ArenaRegistry() as registry:
            tags = ("fp64", "int8", "fp16") * 2

            def hammer(slot: int) -> None:
                registry.acquire(tiny_network, tags[slot])

            _run_threads(len(tags), hammer)
            assert registry.stats.published_segments == 3
            assert registry.variants(tiny_network) == ("fp16", "fp64", "int8")
        assert not leaked_segments()


# ------------------------------------------------------------- cgen loader


class TestCgenCacheDir:
    def test_build_dir_honors_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path / "cgen-cache"))
        build_dir = cgen._build_dir("deadbeef")
        assert build_dir.parent == tmp_path / "cgen-cache"
        assert build_dir.name == "repro-cgen-deadbeef"

    def test_build_dir_defaults_to_tmpdir(self, monkeypatch):
        import tempfile
        from pathlib import Path

        monkeypatch.delenv("REPRO_CGEN_CACHE", raising=False)
        build_dir = cgen._build_dir("cafe")
        assert build_dir.parent == Path(tempfile.gettempdir())

    def test_concurrent_load_library_returns_one_handle(self):
        if not cgen.compiler_available():
            pytest.skip("no C toolchain in this environment")
        handles: list[object] = [None] * 6

        def hammer(slot: int) -> None:
            handles[slot] = cgen.load_library()

        _run_threads(6, hammer)
        assert len({id(h) for h in handles}) == 1
