"""Tests for the CTA-reorganization module (Fig. 12) functional model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.crm import (
    crm_time_overhead_s,
    decode_disabled_threads,
    reorganize_ctas,
)


class TestDTIDDecode:
    def test_one_thread_per_row(self):
        np.testing.assert_array_equal(
            decode_disabled_threads(np.array([1, 3]), 8), [1, 3]
        )

    def test_multiple_threads_per_row(self):
        np.testing.assert_array_equal(
            decode_disabled_threads(np.array([1]), 8, threads_per_row=2), [2, 3]
        )

    def test_clips_to_grid(self):
        np.testing.assert_array_equal(
            decode_disabled_threads(np.array([3]), 7, threads_per_row=2), [6]
        )

    def test_negative_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_disabled_threads(np.array([-1]), 8)


class TestReorganization:
    def test_compaction_is_dense_and_order_preserving(self):
        reorg = reorganize_ctas(np.array([1, 3]), total_threads=6)
        # Surviving STIDs 0,2,4,5 map to HTIDs 0,1,2,3.
        assert reorg.stid_to_htid == {0: 0, 2: 1, 4: 2, 5: 3}
        assert reorg.active_threads == 4

    def test_no_trivial_rows_is_identity(self):
        reorg = reorganize_ctas(np.array([], dtype=int), total_threads=5)
        assert reorg.stid_to_htid == {i: i for i in range(5)}

    def test_all_trivial(self):
        reorg = reorganize_ctas(np.arange(5), total_threads=5)
        assert reorg.active_threads == 0
        assert reorg.active_warps == 0

    def test_warp_count_after_compaction(self):
        # 100 threads, 40 disabled -> 60 active -> 2 warps of 32.
        reorg = reorganize_ctas(np.arange(40), total_threads=100)
        assert reorg.active_warps == 2

    def test_cycles_scale_with_grid(self):
        small = reorganize_ctas(np.array([0]), total_threads=64)
        large = reorganize_ctas(np.array([0]), total_threads=4096)
        assert large.cycles > small.cycles

    def test_htid_accessor(self):
        reorg = reorganize_ctas(np.array([0]), total_threads=3)
        assert reorg.htid(1) == 0
        assert reorg.htid(2) == 1

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            reorganize_ctas(np.array([0]), total_threads=0)

    @given(
        st.integers(1, 300),
        st.sets(st.integers(0, 299), max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_compaction_invariants(self, total, trivial):
        trivial_rows = np.array(sorted(t for t in trivial if t < total), dtype=int)
        reorg = reorganize_ctas(trivial_rows, total_threads=total)
        # Survivors = grid minus disabled.
        assert reorg.active_threads == total - len(trivial_rows)
        # HTIDs are exactly 0..active-1 and order preserving.
        htids = [reorg.stid_to_htid[s] for s in sorted(reorg.stid_to_htid)]
        assert htids == list(range(reorg.active_threads))
        # No disabled STID appears in the mapping.
        assert not (set(reorg.stid_to_htid) & set(trivial_rows.tolist()))


class TestTiming:
    def test_sub_microsecond_for_typical_grids(self):
        """The first-principles CRM cost is far below the paper's 1.47 %
        end-to-end overhead (which includes issue-queue effects); the
        simulator applies the calibrated spec fraction instead."""
        reorg = reorganize_ctas(np.arange(1000), total_threads=2600)
        assert crm_time_overhead_s(reorg, 998e6) < 1e-6

    def test_clock_validated(self):
        reorg = reorganize_ctas(np.array([0]), total_threads=4)
        with pytest.raises(ConfigurationError):
            crm_time_overhead_s(reorg, 0.0)
