"""Smoke tests: every example script must import and expose a main()."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_importable_with_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"


def test_at_least_three_examples():
    assert len(EXAMPLES) >= 3
