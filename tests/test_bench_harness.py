"""Tests for the benchmark harness infrastructure.

The figure functions themselves are exercised by the ``benchmarks/`` suite
on the real Table II applications; here we test the harness plumbing —
app selection, context caching, and the static report generators.
"""

from repro.bench.harness import (
    ExperimentContext,
    default_apps,
    fig09_tissue_size_sweep,
    table1_platform,
    table2_applications,
)


class TestDefaultApps:
    def test_all_six_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_APPS", raising=False)
        assert default_apps() == ("IMDB", "MR", "BABI", "SNLI", "PTB", "MT")

    def test_env_restriction(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "mr, ptb")
        assert default_apps() == ("MR", "PTB")


class TestStaticReports:
    def test_table1(self):
        report = table1_platform(ExperimentContext())
        assert "Tegra X1" in report and "511" in report

    def test_table2(self):
        report = table2_applications(ExperimentContext())
        assert report.count("\n") >= 7  # title + header + rule + 6 apps

    def test_fig09_without_workload_builds(self):
        """Fig. 9 only needs the simulator, not the heavy workloads."""
        data, report = fig09_tissue_size_sweep(
            ExperimentContext(), apps=("MR",), max_tissue_size=8
        )
        assert "MR" in data
        assert data["MR"]["mts"] >= 2
        assert len(data["MR"]["performance"]) == 8


class TestContextCaching:
    def test_workload_cached(self, monkeypatch):
        ctx = ExperimentContext()
        calls = []
        import repro.bench.harness as harness

        def fake_build(name, seed, spec, plan_cache=None):
            calls.append(name)
            return object()

        monkeypatch.setattr(harness, "build_workload", fake_build)
        ctx.workload("MR")
        ctx.workload("mr")
        assert calls == ["MR"]

    def test_sweep_cached(self, monkeypatch):
        from repro.core.executor import ExecutionMode

        ctx = ExperimentContext()
        calls = []

        class FakeWorkload:
            def threshold_sweep(self, mode, drs_style="hardware"):
                calls.append((mode, drs_style))
                return ["sweep"]

        ctx._workloads["MR"] = FakeWorkload()
        ctx.sweep("MR", ExecutionMode.INTER)
        ctx.sweep("MR", ExecutionMode.INTER)
        ctx.sweep("MR", ExecutionMode.INTER, drs_style="software")
        assert len(calls) == 2


class TestDerivedSeeds:
    def test_deterministic_per_scope(self):
        ctx = ExperimentContext(seed=7)
        assert ctx.derived_seed("fig18", "participants") == ctx.derived_seed(
            "fig18", "participants"
        )

    def test_scopes_get_distinct_streams(self):
        ctx = ExperimentContext(seed=7)
        assert ctx.derived_seed("fig18", "participants") != ctx.derived_seed(
            "fig18", "replays"
        )

    def test_root_seed_changes_children(self):
        assert ExperimentContext(seed=0).derived_seed("fig18") != ExperimentContext(
            seed=1
        ).derived_seed("fig18")

    def test_fig18_seeds_follow_context(self):
        """The user study draws from ctx.seed, not a free-floating constant.

        Regression: the panel/replay seed used to be hard-coded to 7, so
        two sessions with different root seeds produced identical studies.
        """
        from unittest.mock import patch

        from repro.bench.harness import fig18_user_study

        captured = {}

        def fake_sample(seed):
            captured["participants"] = seed
            raise RuntimeError("stop after seeding")

        with patch("repro.bench.harness.sample_participants", fake_sample):
            for root in (0, 1):
                ctx = ExperimentContext(seed=root)
                try:
                    fig18_user_study(ctx, apps=())
                except RuntimeError:
                    pass
                assert captured["participants"] == ctx.derived_seed(
                    "fig18", "participants"
                )

    def test_fig18_explicit_seed_overrides(self):
        from unittest.mock import patch

        from repro.bench.harness import fig18_user_study

        captured = {}

        def fake_sample(seed):
            captured["participants"] = seed
            raise RuntimeError("stop after seeding")

        with patch("repro.bench.harness.sample_participants", fake_sample):
            try:
                fig18_user_study(ExperimentContext(), apps=(), seed=123)
            except RuntimeError:
                pass
        assert captured["participants"] == 123
