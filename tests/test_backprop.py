"""Tests for the memory-frugal BPTT (`repro.nn.backprop`).

The two contracts under test:

* **Bit identity** — the stash and recompute saved-tensor policies must
  produce *identical* fp64 gradients (equality, not tolerance), because
  the recompute path re-runs the exact forward arithmetic on the exact
  saved bits.
* **Correctness** — analytic gradients must agree with central finite
  differences (the `gradcheck` oracle) to 1e-6 relative error.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.gradcheck import (
    DEFAULT_TOLERANCE,
    finite_difference_check,
    relative_error,
)
from repro.config import LSTMConfig
from repro.errors import ConfigurationError, ShapeError
from repro.nn.activations import hard_sigmoid
from repro.nn.backprop import (
    ELEMENT_BYTES,
    SAVED_TENSORS_PER_LAYER,
    TrainingConfig,
    analytic_saved_bytes,
    backward,
    measure_training_memory,
    network_parameters,
    softmax_cross_entropy,
    training_forward,
    training_step,
)
from repro.nn.gru import GRUCellWeights, GRULayer, gru_layer_backward
from repro.nn.initializers import WeightInitializer
from repro.nn.network import LSTMNetwork


def small_network(
    hidden=10,
    layers=2,
    seq_len=7,
    input_size=8,
    vocab=30,
    classes=4,
    seed=0,
    per_timestep_head=False,
    head_pool=1,
):
    config = LSTMConfig(
        hidden_size=hidden, num_layers=layers, seq_length=seq_len, input_size=input_size
    )
    return LSTMNetwork(
        config,
        vocab_size=vocab,
        num_classes=classes,
        seed=seed,
        per_timestep_head=per_timestep_head,
        head_pool=head_pool,
    )


def batch_for(network, batch=3, seed=0):
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, network.vocab_size, size=(batch, network.config.seq_length))
    if network.per_timestep_head:
        labels = rng.integers(0, network.num_classes, size=tokens.shape)
    else:
        labels = rng.integers(0, network.num_classes, size=batch)
    return tokens, labels


def loss_only(network, tokens, labels, config):
    return softmax_cross_entropy(
        training_forward(network, tokens, config).logits, labels
    )[0]


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.policy == "recompute"
        assert config.truncation is None

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(policy="checkpoint")

    def test_rejects_nonpositive_truncation(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(truncation=0)


class TestForwardTape:
    def test_logits_match_inference_forward(self):
        # The training forward batches its GEMMs over (B*T, E), so it is
        # allowed to differ from the per-sequence inference path in the
        # last ulp — the *bit* contract is between the two policies.
        net = small_network()
        tokens, _ = batch_for(net)
        tape = training_forward(net, tokens, TrainingConfig(policy="recompute"))
        for b in range(tokens.shape[0]):
            expected = net.forward(tokens[b]).logits
            np.testing.assert_allclose(tape.logits[b], expected, rtol=1e-12)

    def test_stash_tape_holds_gates_recompute_does_not(self):
        net = small_network()
        tokens, _ = batch_for(net)
        stash = training_forward(net, tokens, TrainingConfig(policy="stash"))
        lean = training_forward(net, tokens, TrainingConfig(policy="recompute"))
        assert stash.layers[0].f is not None and stash.embedded is not None
        assert lean.layers[0].f is None and lean.embedded is None

    def test_rejects_out_of_vocab_tokens(self):
        net = small_network()
        tokens = np.full((2, net.config.seq_length), net.vocab_size)
        with pytest.raises(ShapeError):
            training_forward(net, tokens)


class TestSoftmaxCrossEntropy:
    def test_matches_manual_log_softmax(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        loss, _ = softmax_cross_entropy(logits, labels)
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(4), labels]))
        assert loss == pytest.approx(expected, rel=1e-12)

    def test_dlogits_rows_sum_to_zero(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(3, 5, 4))
        labels = rng.integers(0, 4, size=(3, 5))
        _, dlogits = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(dlogits.sum(axis=-1), 0.0, atol=1e-15)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros((4,), dtype=int))


class TestPolicyBitIdentity:
    """The tentpole contract: stash == recompute, bit for bit."""

    @pytest.mark.parametrize("per_timestep", [False, True])
    def test_policies_bit_identical(self, per_timestep):
        net = small_network(per_timestep_head=per_timestep, head_pool=1)
        tokens, labels = batch_for(net)
        loss_a, grads_a = training_step(
            net, tokens, labels, TrainingConfig(policy="stash")
        )
        loss_b, grads_b = training_step(
            net, tokens, labels, TrainingConfig(policy="recompute")
        )
        assert loss_a == loss_b
        assert grads_a.allclose(grads_b, exact=True)

    def test_bit_identity_under_truncation(self):
        net = small_network(seq_len=9)
        tokens, labels = batch_for(net)
        _, grads_a = training_step(
            net, tokens, labels, TrainingConfig(policy="stash", truncation=3)
        )
        _, grads_b = training_step(
            net, tokens, labels, TrainingConfig(policy="recompute", truncation=3)
        )
        assert grads_a.allclose(grads_b, exact=True)

    def test_bit_identity_with_hard_sigmoid_and_pooled_head(self):
        net = small_network(head_pool=3, seed=2)
        for layer in net.layers:
            layer.sigmoid_fn = hard_sigmoid
        tokens, labels = batch_for(net, seed=2)
        _, grads_a = training_step(net, tokens, labels, TrainingConfig(policy="stash"))
        _, grads_b = training_step(
            net, tokens, labels, TrainingConfig(policy="recompute")
        )
        assert grads_a.allclose(grads_b, exact=True)


class TestFiniteDifferences:
    """Analytic gradients vs the central-difference oracle."""

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.booleans())
    def test_gradcheck_lstm(self, seed, per_timestep):
        net = small_network(
            hidden=6, layers=2, seq_len=5, input_size=5, vocab=20, classes=3,
            seed=seed % 1000, per_timestep_head=per_timestep,
        )
        tokens, labels = batch_for(net, batch=2, seed=seed)
        config = TrainingConfig(policy="recompute")
        _, grads = training_step(net, tokens, labels, config)
        err = finite_difference_check(
            lambda: loss_only(net, tokens, labels, config),
            network_parameters(net),
            grads.arrays(),
            rng=np.random.default_rng(seed),
            coords_per_array=3,
        )
        assert err <= DEFAULT_TOLERANCE

    def test_gradcheck_pooled_head_and_hard_sigmoid(self):
        net = small_network(head_pool=4, seq_len=8, seed=7)
        for layer in net.layers:
            layer.sigmoid_fn = hard_sigmoid
        tokens, labels = batch_for(net, seed=7)
        config = TrainingConfig(policy="stash")
        _, grads = training_step(net, tokens, labels, config)
        err = finite_difference_check(
            lambda: loss_only(net, tokens, labels, config),
            network_parameters(net),
            grads.arrays(),
            rng=np.random.default_rng(7),
        )
        assert err <= DEFAULT_TOLERANCE


class TestTruncation:
    def test_window_equal_to_length_matches_full_bptt(self):
        net = small_network(seq_len=6)
        tokens, labels = batch_for(net)
        _, full = training_step(net, tokens, labels, TrainingConfig())
        _, windowed = training_step(
            net, tokens, labels, TrainingConfig(truncation=6)
        )
        assert full.allclose(windowed, exact=True)

    def test_short_window_changes_recurrent_gradients(self):
        net = small_network(seq_len=12)
        tokens, labels = batch_for(net)
        _, full = training_step(net, tokens, labels, TrainingConfig())
        _, truncated = training_step(
            net, tokens, labels, TrainingConfig(truncation=3)
        )
        assert not full.allclose(truncated, exact=True)


class TestMemoryAccounting:
    def test_tape_bytes_match_analytic_model(self):
        net = small_network()
        tokens, _ = batch_for(net, batch=4)
        for policy in ("stash", "recompute"):
            tape = training_forward(net, tokens, TrainingConfig(policy=policy))
            assert tape.saved_bytes() == analytic_saved_bytes(
                net, 4, net.config.seq_length, policy
            )

    def test_memory_report_keys_and_ratio(self):
        net = small_network(layers=2)
        tokens, _ = batch_for(net)
        report = training_forward(net, tokens, TrainingConfig()).memory_report()
        assert {"layer0_saved_bytes", "layer1_saved_bytes", "saved_bytes"} <= set(
            report
        )
        ratio = report["saved_bytes_stash"] / report["saved_bytes_recompute"]
        assert ratio >= SAVED_TENSORS_PER_LAYER["stash"] / SAVED_TENSORS_PER_LAYER[
            "recompute"
        ]

    def test_analytic_model_counts_elements(self):
        net = small_network(hidden=10, layers=2, seq_len=7, input_size=8)
        recompute = analytic_saved_bytes(net, 3, 7, "recompute")
        assert recompute == 2 * 3 * 7 * 10 * 2 * ELEMENT_BYTES
        stash = analytic_saved_bytes(net, 3, 7, "stash")
        assert stash == (7 * 3 * 7 * 10 * 2 + 3 * 7 * 8) * ELEMENT_BYTES
        with pytest.raises(ConfigurationError):
            analytic_saved_bytes(net, 3, 7, "gradient_checkpointing")

    def test_measured_memory_orders_policies(self):
        net = small_network(hidden=16, seq_len=32)
        tokens, labels = batch_for(net, batch=4)
        lean = measure_training_memory(
            net, tokens, labels, TrainingConfig(policy="recompute")
        )
        fat = measure_training_memory(
            net, tokens, labels, TrainingConfig(policy="stash")
        )
        assert 0 < lean["measured_saved_bytes"] < fat["measured_saved_bytes"]
        assert lean["measured_peak_bytes"] >= lean["measured_saved_bytes"]
        # tracemalloc's retained-delta must track the analytic model.
        assert lean["measured_saved_bytes"] == pytest.approx(
            lean["analytic_saved_bytes"], rel=0.25
        )


class TestGRUBackward:
    """The GRU stops being forward-only: low-memory backward + gradcheck."""

    def _layer(self, seed=0, hidden=6, input_size=5):
        init = WeightInitializer(seed)
        return GRULayer(GRUCellWeights.initialize(hidden, input_size, init))

    def test_gradcheck_weights_and_inputs(self):
        layer = self._layer(seed=3)
        rng = np.random.default_rng(3)
        xs = rng.normal(size=(7, layer.input_size))
        proj = rng.normal(size=(7, layer.hidden_size))

        def loss():
            return float(np.sum(layer.forward(xs) * proj))

        hs = layer.forward(xs)
        d_xs, grads = gru_layer_backward(layer.weights, xs, hs, proj)
        weights = layer.weights
        params = [getattr(weights, n) for n in (
            "w_z", "w_r", "w_n", "u_z", "u_r", "u_n", "b_z", "b_r", "b_n"
        )] + [xs]
        analytic = [getattr(grads, n) for n in (
            "w_z", "w_r", "w_n", "u_z", "u_r", "u_n", "b_z", "b_r", "b_n"
        )] + [d_xs]
        err = finite_difference_check(
            loss, params, analytic, rng=np.random.default_rng(11)
        )
        assert err <= DEFAULT_TOLERANCE

    def test_hard_sigmoid_variant(self):
        layer = self._layer(seed=5)
        layer.sigmoid_fn = hard_sigmoid
        rng = np.random.default_rng(5)
        xs = rng.normal(size=(6, layer.input_size))
        proj = rng.normal(size=(6, layer.hidden_size))
        hs = layer.forward(xs)
        d_xs, grads = gru_layer_backward(
            layer.weights, xs, hs, proj, sigmoid_fn=hard_sigmoid
        )

        def loss():
            return float(np.sum(layer.forward(xs) * proj))

        err = finite_difference_check(
            loss,
            [layer.weights.u_n, layer.weights.b_z, xs],
            [grads.u_n, grads.b_z, d_xs],
            rng=np.random.default_rng(13),
        )
        assert err <= DEFAULT_TOLERANCE

    def test_shape_validation(self):
        layer = self._layer()
        xs = np.zeros((4, layer.input_size))
        hs = np.zeros((4, layer.hidden_size))
        with pytest.raises(ShapeError):
            gru_layer_backward(layer.weights, xs[:, :-1], hs, np.zeros_like(hs))
        with pytest.raises(ShapeError):
            gru_layer_backward(layer.weights, xs, hs, np.zeros((3, layer.hidden_size)))


class TestRelativeError:
    def test_absolute_near_zero(self):
        assert relative_error(0.0, 1e-9) == pytest.approx(1e-9)

    def test_relative_when_large(self):
        assert relative_error(100.0, 101.0) == pytest.approx(1.0 / 101.0)
