"""Tests for the activation functions and the sensitive-area algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nn.activations import (
    SENSITIVE_HI,
    SENSITIVE_LO,
    SENSITIVE_WIDTH,
    dhard_sigmoid,
    dsigmoid,
    dtanh,
    hard_sigmoid,
    sensitive_overlap,
    sigmoid,
    sigmoid_derivative_for,
    tanh,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_saturation(self):
        assert sigmoid(np.array(40.0)) == pytest.approx(1.0)
        assert sigmoid(np.array(-40.0)) == pytest.approx(0.0, abs=1e-12)

    def test_extreme_inputs_are_stable(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(out))

    def test_symmetry(self):
        xs = np.linspace(-8, 8, 33)
        np.testing.assert_allclose(sigmoid(xs) + sigmoid(-xs), 1.0, atol=1e-12)

    @given(finite_floats)
    def test_range(self, x):
        val = float(sigmoid(np.array(x)))
        assert 0.0 <= val <= 1.0

    @given(st.lists(finite_floats, min_size=2, max_size=16))
    def test_monotone(self, xs):
        xs = np.sort(np.asarray(xs))
        out = sigmoid(xs)
        assert np.all(np.diff(out) >= -1e-12)


class TestHardSigmoid:
    def test_saturates_exactly_at_boundaries(self):
        assert hard_sigmoid(np.array(SENSITIVE_LO)) == pytest.approx(0.0)
        assert hard_sigmoid(np.array(SENSITIVE_HI)) == pytest.approx(1.0)

    def test_linear_inside_sensitive_area(self):
        xs = np.linspace(SENSITIVE_LO, SENSITIVE_HI, 11)
        np.testing.assert_allclose(hard_sigmoid(xs), 0.25 * xs + 0.5)

    @given(finite_floats)
    def test_close_to_sigmoid(self, x):
        # The approximation error of the hard sigmoid is bounded.
        assert abs(float(hard_sigmoid(np.array(x)) - sigmoid(np.array(x)))) < 0.15


class TestTanh:
    def test_odd(self):
        xs = np.linspace(-5, 5, 21)
        np.testing.assert_allclose(tanh(xs), -tanh(-xs))

    @given(finite_floats)
    def test_range(self, x):
        assert -1.0 <= float(tanh(np.array(x))) <= 1.0


class TestSensitiveOverlap:
    def test_full_overlap(self):
        assert sensitive_overlap(np.array(-2.0), np.array(2.0)) == pytest.approx(
            SENSITIVE_WIDTH
        )

    def test_no_overlap_above(self):
        assert sensitive_overlap(np.array(3.0), np.array(9.0)) == pytest.approx(0.0)

    def test_no_overlap_below(self):
        assert sensitive_overlap(np.array(-9.0), np.array(-3.0)) == pytest.approx(0.0)

    def test_partial_overlap(self):
        assert sensitive_overlap(np.array(1.0), np.array(5.0)) == pytest.approx(1.0)

    def test_interval_inside(self):
        assert sensitive_overlap(np.array(-0.5), np.array(0.5)) == pytest.approx(1.0)

    def test_vectorized(self):
        lo = np.array([-3.0, 0.0, 2.5])
        hi = np.array([3.0, 1.0, 4.0])
        np.testing.assert_allclose(sensitive_overlap(lo, hi), [4.0, 1.0, 0.0])

    @given(
        st.floats(min_value=-30, max_value=30),
        st.floats(min_value=0, max_value=60),
    )
    def test_bounded_by_width_and_interval(self, lo, span):
        overlap = float(sensitive_overlap(np.array(lo), np.array(lo + span)))
        assert 0.0 <= overlap <= min(SENSITIVE_WIDTH, span) + 1e-12


class TestActivationDerivatives:
    """The saved-activation-value derivatives the backward pass consumes."""

    @given(finite_floats)
    def test_dsigmoid_matches_central_difference(self, x):
        eps = 1e-6
        numeric = (sigmoid(np.array(x + eps)) - sigmoid(np.array(x - eps))) / (2 * eps)
        analytic = dsigmoid(sigmoid(np.array(x)))
        assert float(analytic) == pytest.approx(float(numeric), abs=1e-8)

    @given(finite_floats)
    def test_dtanh_matches_central_difference(self, x):
        eps = 1e-6
        numeric = (tanh(np.array(x + eps)) - tanh(np.array(x - eps))) / (2 * eps)
        analytic = dtanh(tanh(np.array(x)))
        assert float(analytic) == pytest.approx(float(numeric), abs=1e-8)

    @given(st.floats(min_value=-1.9, max_value=1.9))
    def test_dhard_sigmoid_on_the_ramp(self, x):
        assert float(dhard_sigmoid(hard_sigmoid(np.array(x)))) == 0.25

    @given(finite_floats.filter(lambda x: abs(x) > 2.1))
    def test_dhard_sigmoid_saturated(self, x):
        assert float(dhard_sigmoid(hard_sigmoid(np.array(x)))) == 0.0

    def test_dsigmoid_peak_at_midpoint(self):
        ys = sigmoid(np.linspace(-6, 6, 101))
        assert np.argmax(dsigmoid(ys)) == 50
        assert float(dsigmoid(np.array(0.5))) == pytest.approx(0.25)

    def test_dtanh_in_terms_of_value(self):
        np.testing.assert_allclose(
            dhard_sigmoid(np.array([0.0, 0.5, 1.0])), [0.0, 0.25, 0.0]
        )
        np.testing.assert_allclose(dtanh(np.array([0.0, 1.0, -1.0])), [1.0, 0.0, 0.0])


class TestSigmoidDerivativeFor:
    def test_resolves_both_variants(self):
        assert sigmoid_derivative_for(sigmoid) is dsigmoid
        assert sigmoid_derivative_for(hard_sigmoid) is dhard_sigmoid

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            sigmoid_derivative_for(np.tanh)
