"""Shared fixtures: tiny models and apps sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.pipeline import OptimizedLSTM
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_cell import LSTMCellWeights
from repro.nn.model_zoo import build_calibrated_network
from repro.nn.network import LSTMNetwork

TINY_HIDDEN = 24
TINY_INPUT = 20
TINY_LENGTH = 12
TINY_VOCAB = 60
TINY_CLASSES = 3


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_weights() -> LSTMCellWeights:
    init = WeightInitializer(7)
    return LSTMCellWeights.initialize(TINY_HIDDEN, TINY_INPUT, init)


@pytest.fixture
def tiny_config() -> LSTMConfig:
    return LSTMConfig(
        hidden_size=TINY_HIDDEN,
        num_layers=2,
        seq_length=TINY_LENGTH,
        input_size=TINY_INPUT,
    )


@pytest.fixture
def tiny_app_config(tiny_config) -> AppConfig:
    return AppConfig(
        name="TINY",
        family=TaskFamily.SENTIMENT_CLASSIFICATION,
        model=tiny_config,
        vocab_size=TINY_VOCAB,
        num_classes=TINY_CLASSES,
    )


@pytest.fixture
def tiny_network(tiny_config) -> LSTMNetwork:
    return LSTMNetwork(tiny_config, TINY_VOCAB, TINY_CLASSES, seed=3)


@pytest.fixture
def calibrated_network(tiny_app_config) -> LSTMNetwork:
    return build_calibrated_network(tiny_app_config, seed=5)


@pytest.fixture
def tiny_tokens(rng) -> np.ndarray:
    return rng.integers(0, TINY_VOCAB, size=(4, TINY_LENGTH))


@pytest.fixture
def tiny_app(tiny_app_config) -> OptimizedLSTM:
    app = OptimizedLSTM.from_app(tiny_app_config, seed=5)
    app.calibrate(num_sequences=4)
    return app


def make_executor(
    network: LSTMNetwork,
    mode: ExecutionMode = ExecutionMode.BASELINE,
    **kwargs,
) -> LSTMExecutor:
    """Executor factory used across executor/integration tests."""
    return LSTMExecutor(network, ExecutionConfig(mode=mode, **kwargs))
