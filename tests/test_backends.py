"""Backend registry and fused-kernel lowering contracts.

What :mod:`repro.core.backends` promises:

* **Registry discipline.** Unknown names fail config validation; missing
  toolchains fail resolution with
  :class:`~repro.errors.BackendUnavailableError` carrying a reason, at
  executor construction rather than mid-run; ``fused`` resolves to the
  best available fused backend.

* **The numpy oracle is untouched.** ``backend="numpy"`` stays
  bit-identical to the frozen
  :class:`~repro.core.reference.ReferenceExecutor` in all five modes.

* **Fused numerics.** The generated-C backend agrees with the oracle at
  fp64-roundoff tolerance in every mode, deterministically, with
  backend-invariant plans (the inter level sees identical projections).

* **Kernel twins.** The numba backend's pure-Python kernel body — kept
  importable without numba — computes the same arithmetic as the fused
  contract specifies, validated against an inline numpy step loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LSTMConfig
from repro.core import backend_numba, backend_torch, cgen
from repro.core.backends import (
    BACKEND_NAMES,
    backend_availability,
    backend_is_exact,
    resolve_backend,
    validate_backend_name,
)
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.reference import ReferenceExecutor
from repro.errors import BackendUnavailableError, ConfigurationError
from repro.nn.network import LSTMNetwork
from repro.obs.recorder import Recorder
from repro.runtime import StreamingServer

VOCAB = 31
CLASSES = 3

#: Fused-vs-oracle tolerance; measured deviations sit at ~4e-16.
TOLERANCE = 1e-9

MODE_CONFIGS = {
    ExecutionMode.BASELINE: {},
    ExecutionMode.INTER: {"alpha_inter": 50.0, "mts": 3},
    ExecutionMode.INTRA: {"alpha_intra": 0.4},
    ExecutionMode.COMBINED: {"alpha_inter": 50.0, "alpha_intra": 0.4, "mts": 3},
    ExecutionMode.ZERO_PRUNE: {},
}

needs_compiler = pytest.mark.skipif(
    not cgen.compiler_available(), reason="no C compiler on this host"
)


def make_case(seed: int = 7, hidden: int = 16, layers: int = 2, seq: int = 12, batch: int = 5):
    config = LSTMConfig(
        hidden_size=hidden, num_layers=layers, seq_length=seq, input_size=hidden
    )
    network = LSTMNetwork(config, VOCAB, CLASSES, seed=seed)
    rng = np.random.default_rng(seed + 1)
    tokens = rng.integers(0, VOCAB, size=(batch, seq))
    return network, tokens


def mode_config(mode: ExecutionMode, backend: str = "numpy") -> ExecutionConfig:
    return ExecutionConfig(mode=mode, backend=backend, **MODE_CONFIGS[mode])


# ------------------------------------------------------------------- registry


class TestRegistry:
    def test_backend_names_and_exactness(self):
        assert BACKEND_NAMES == ("numpy", "fused", "cgen", "numba", "torch")
        assert backend_is_exact("numpy")
        assert not any(backend_is_exact(n) for n in ("cgen", "numba", "torch"))

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            validate_backend_name("cuda")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ExecutionConfig(backend="cuda")

    def test_numpy_always_resolves(self):
        assert resolve_backend("numpy") == "numpy"
        availability = backend_availability()
        assert availability["numpy"] == (True, "")

    @needs_compiler
    def test_fused_prefers_cgen(self):
        assert resolve_backend("fused") == "cgen"

    def test_unavailable_backends_raise_with_reason(self):
        for name, module in (("numba", backend_numba), ("torch", backend_torch)):
            if module.available():
                continue
            assert module.unavailable_reason()
            with pytest.raises(BackendUnavailableError, match=name):
                resolve_backend(name)

    def test_interpreted_execution_is_numpy_only(self):
        network, _ = make_case()
        config = mode_config(ExecutionMode.BASELINE, backend="fused")
        with pytest.raises(ConfigurationError, match="compile=True"):
            LSTMExecutor(network, config, compile=False)

    @needs_compiler
    def test_compact_drs_gemm_requires_the_oracle(self):
        network, _ = make_case()
        config = ExecutionConfig(
            mode=ExecutionMode.INTRA,
            alpha_intra=0.4,
            compact_drs_gemm=True,
            backend="fused",
        )
        with pytest.raises(ConfigurationError, match="compact_drs_gemm"):
            LSTMExecutor(network, config)


# ------------------------------------------------------------------- numerics


@needs_compiler
class TestFusedNumerics:
    @pytest.mark.parametrize("mode", list(MODE_CONFIGS), ids=lambda m: m.value)
    def test_numpy_oracle_is_bit_identical(self, mode):
        network, tokens = make_case()
        out_ref = ReferenceExecutor(network, mode_config(mode)).run_batch(tokens)
        out_numpy = LSTMExecutor(network, mode_config(mode)).run_batch(tokens)
        assert np.array_equal(out_numpy.logits, out_ref.logits)

    @pytest.mark.parametrize("mode", list(MODE_CONFIGS), ids=lambda m: m.value)
    def test_fused_agrees_at_tolerance(self, mode):
        network, tokens = make_case()
        out_ref = ReferenceExecutor(network, mode_config(mode)).run_batch(tokens)
        fused = LSTMExecutor(network, mode_config(mode, backend="fused"))
        out_fused = fused.run_batch(tokens)
        assert fused.backend == "cgen"
        assert np.abs(out_fused.logits - out_ref.logits).max() <= TOLERANCE
        assert np.array_equal(
            np.asarray(out_fused.predictions()), np.asarray(out_ref.predictions())
        )

    def test_loading_the_kernel_keeps_ieee_subnormals(self):
        """The fast-math build must not ship crtfastmath's FTZ/DAZ
        constructor: loading the .so may never flip process FPU state."""
        cgen.load_library()
        smallest_subnormal = np.float64(5e-324)
        assert smallest_subnormal * 1.0 != 0.0
        assert np.float64(2.2250738585072014e-308) / 2.0 != 0.0

    def test_fused_runs_are_deterministic(self):
        network, tokens = make_case()
        config = mode_config(ExecutionMode.INTRA, backend="fused")
        first = LSTMExecutor(network, config).run_batch(tokens)
        second = LSTMExecutor(network, config).run_batch(tokens)
        assert np.array_equal(first.logits, second.logits)

    @pytest.mark.parametrize(
        "mode", [ExecutionMode.INTER, ExecutionMode.COMBINED], ids=lambda m: m.value
    )
    def test_plans_are_backend_invariant(self, mode):
        """The inter planner must see identical projection bits, so
        breakpoints and tissue schedules cannot depend on the backend."""
        network, tokens = make_case()
        out_numpy = LSTMExecutor(network, mode_config(mode)).run_batch(tokens)
        out_fused = LSTMExecutor(
            network, mode_config(mode, backend="fused")
        ).run_batch(tokens)
        for plan_a, plan_b in zip(out_numpy.plans, out_fused.plans):
            for layer_a, layer_b in zip(plan_a.layers, plan_b.layers):
                assert layer_a.breakpoints == layer_b.breakpoints
                assert layer_a.sublayer_lengths == layer_b.sublayer_lengths

    def test_recorder_attributes_the_resolved_backend(self):
        network, tokens = make_case()
        recorder = Recorder()
        executor = LSTMExecutor(
            network, mode_config(ExecutionMode.INTRA, backend="fused"),
            recorder=recorder,
        )
        executor.run_batch(tokens)
        record = recorder.records[-1].to_dict()
        assert record["config"]["backend"] == "cgen"

    def test_streaming_under_the_fused_backend(self):
        """A fused streaming server tracks the numpy one at tolerance."""
        config = LSTMConfig(hidden_size=16, num_layers=2, seq_length=16, input_size=16)
        network = LSTMNetwork(
            config, VOCAB, CLASSES, seed=3, per_timestep_head=True, head_pool=1
        )
        rng = np.random.default_rng(13)
        tokens = rng.integers(0, VOCAB, size=11)

        def serve(backend: str) -> np.ndarray:
            server = StreamingServer(
                network,
                ExecutionConfig(
                    mode=ExecutionMode.INTRA, alpha_intra=0.4, backend=backend
                ),
                chunk_len=4,
                clock=lambda: 0.0,
            )
            ticket = server.submit("s", tokens, now=0.0)
            server.drain(now=0.0)
            return ticket.result.logits

        delta = np.abs(serve("fused") - serve("numpy")).max()
        assert delta <= TOLERANCE


# ---------------------------------------------------------------- kernel twin


class TestNumbaKernelBody:
    def test_pure_python_kernel_matches_numpy_step_loop(self):
        """The numba kernel body (run un-jitted) computes the fused
        contract: o-gate first, DRS zeroing, f/i/g skipped on masked rows."""
        rng = np.random.default_rng(5)
        batch, seq_len, hidden = 2, 4, 6
        alpha = 0.45
        proj = rng.normal(size=(batch, seq_len, 4 * hidden))
        u = rng.normal(scale=0.3, size=(4 * hidden, hidden))
        bias = rng.normal(size=4 * hidden)
        h_bar = np.tanh(rng.normal(size=hidden))
        c_bar = rng.normal(size=hidden)
        resets = np.zeros((seq_len, batch), dtype=np.uint8)
        resets[2, 1] = 1

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden))
        masks = np.zeros((batch, seq_len, hidden), dtype=np.uint8)
        backend_numba.stepwise_kernel(
            proj, u, bias, h, c, hs, cs, masks, resets, h_bar, c_bar,
            alpha, True, True,
        )

        def sigmoid(x):
            return 1.0 / (1.0 + np.exp(-x))

        h_ref = np.zeros((batch, hidden))
        c_ref = np.zeros((batch, hidden))
        for t in range(seq_len):
            reset = resets[t].astype(bool)
            h_ref[reset] = h_bar
            c_ref[reset] = c_bar
            pre = proj[:, t] + h_ref @ u.T + bias
            o = sigmoid(pre[:, 3 * hidden :])
            mask = o < alpha
            f = sigmoid(pre[:, :hidden])
            i = sigmoid(pre[:, hidden : 2 * hidden])
            g = np.tanh(pre[:, 2 * hidden : 3 * hidden])
            c_ref = np.where(mask, 0.0, f * c_ref + i * g)
            h_ref = np.where(mask, 0.0, o * np.tanh(c_ref))
            assert np.array_equal(masks[:, t].astype(bool), mask)
            assert np.abs(hs[:, t] - h_ref).max() <= 1e-12
            assert np.abs(cs[:, t] - c_ref).max() <= 1e-12
        assert np.abs(h - h_ref).max() <= 1e-12
        assert np.abs(c - c_ref).max() <= 1e-12
