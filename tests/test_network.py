"""Tests for layers, networks, pooled heads, and the GRU extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.gru import GRUCellWeights, GRULayer, gru_cell_step
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_layer import LSTMLayer
from repro.nn.network import LSTMNetwork


class TestLSTMLayer:
    def test_forward_shapes(self):
        layer = LSTMLayer.create(12, 8, WeightInitializer(0))
        xs = np.random.default_rng(0).normal(size=(6, 8))
        hs, cs = layer.forward(xs)
        assert hs.shape == (6, 12) and cs.shape == (6, 12)

    def test_rejects_wrong_width(self):
        layer = LSTMLayer.create(12, 8, WeightInitializer(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((6, 9)))

    def test_outputs_bounded(self):
        layer = LSTMLayer.create(12, 8, WeightInitializer(0))
        xs = np.random.default_rng(1).normal(size=(20, 8)) * 5
        hs, _ = layer.forward(xs)
        assert np.all(np.abs(hs) <= 1.0)

    def test_deterministic(self):
        layer = LSTMLayer.create(12, 8, WeightInitializer(0))
        xs = np.random.default_rng(2).normal(size=(6, 8))
        hs1, _ = layer.forward(xs)
        hs2, _ = layer.forward(xs)
        np.testing.assert_array_equal(hs1, hs2)


class TestNetwork:
    def test_forward_classification(self, tiny_network, tiny_tokens):
        out = tiny_network.forward(tiny_tokens[0])
        assert out.logits.shape == (tiny_network.num_classes,)
        assert len(out.layer_outputs) == tiny_network.num_layers

    def test_forward_per_timestep(self, tiny_config):
        net = LSTMNetwork(tiny_config, 50, 7, per_timestep_head=True)
        tokens = np.arange(tiny_config.seq_length) % 50
        out = net.forward(tokens)
        assert out.logits.shape == (tiny_config.seq_length, 7)
        assert out.prediction().shape == (tiny_config.seq_length,)

    def test_head_pooling_changes_logits(self, tiny_config):
        tokens = np.arange(tiny_config.seq_length) % 50
        plain = LSTMNetwork(tiny_config, 50, 3, seed=1, head_pool=1)
        pooled = LSTMNetwork(tiny_config, 50, 3, seed=1, head_pool=4)
        assert not np.allclose(plain.forward(tokens).logits, pooled.forward(tokens).logits)

    def test_pool_top_is_mean_of_tail(self, tiny_config):
        net = LSTMNetwork(tiny_config, 50, 3, head_pool=3)
        rng = np.random.default_rng(0)
        top = rng.normal(size=(tiny_config.seq_length, tiny_config.hidden_size))
        np.testing.assert_allclose(net.pool_top(top), top[-3:].mean(axis=0))

    def test_pool_top_batched(self, tiny_config):
        net = LSTMNetwork(tiny_config, 50, 3, head_pool=2)
        rng = np.random.default_rng(0)
        top = rng.normal(size=(5, tiny_config.seq_length, tiny_config.hidden_size))
        np.testing.assert_allclose(net.pool_top(top), top[:, -2:, :].mean(axis=1))

    def test_embed_validates_range(self, tiny_network):
        with pytest.raises(ShapeError):
            tiny_network.embed(np.array([0, tiny_network.vocab_size]))

    def test_embed_validates_rank(self, tiny_network, tiny_tokens):
        with pytest.raises(ShapeError):
            tiny_network.embed(tiny_tokens)  # 2-D

    def test_invalid_head_pool(self, tiny_config):
        with pytest.raises(ConfigurationError):
            LSTMNetwork(tiny_config, 50, 3, head_pool=tiny_config.seq_length + 1)

    def test_invalid_vocab(self, tiny_config):
        with pytest.raises(ConfigurationError):
            LSTMNetwork(tiny_config, 1, 3)

    def test_seed_determinism(self, tiny_config):
        a = LSTMNetwork(tiny_config, 50, 3, seed=9)
        b = LSTMNetwork(tiny_config, 50, 3, seed=9)
        np.testing.assert_array_equal(a.embedding, b.embedding)
        np.testing.assert_array_equal(a.layers[0].weights.u_f, b.layers[0].weights.u_f)


class TestGRU:
    def test_step_matches_manual(self):
        from repro.nn.activations import sigmoid, tanh

        w = GRUCellWeights.initialize(6, 4, WeightInitializer(0))
        rng = np.random.default_rng(1)
        x = rng.normal(size=4)
        h = rng.normal(size=6) * 0.3
        out = gru_cell_step(w, x, h)
        z = sigmoid(w.w_z @ x + w.u_z @ h + w.b_z)
        r = sigmoid(w.w_r @ x + w.u_r @ h + w.b_r)
        n = tanh(w.w_n @ x + w.u_n @ (r * h) + w.b_n)
        np.testing.assert_allclose(out, (1 - z) * h + z * n)

    def test_skip_keeps_previous_hidden(self):
        w = GRUCellWeights.initialize(6, 4, WeightInitializer(0))
        rng = np.random.default_rng(2)
        x = rng.normal(size=4)
        h = rng.normal(size=6) * 0.3
        skip = np.zeros(6, dtype=bool)
        skip[[0, 5]] = True
        out = gru_cell_step(w, x, h, skip_rows=skip)
        np.testing.assert_allclose(out[[0, 5]], h[[0, 5]])

    def test_skip_does_not_change_kept(self):
        w = GRUCellWeights.initialize(6, 4, WeightInitializer(0))
        rng = np.random.default_rng(3)
        x = rng.normal(size=4)
        h = rng.normal(size=6) * 0.3
        skip = np.zeros(6, dtype=bool)
        # With no reset-coupling through kept rows the results match exactly
        # when nothing is skipped.
        np.testing.assert_allclose(
            gru_cell_step(w, x, h, skip_rows=skip), gru_cell_step(w, x, h)
        )

    def test_layer_forward(self):
        layer = GRULayer.create(6, 4, WeightInitializer(0))
        xs = np.random.default_rng(0).normal(size=(9, 4))
        hs = layer.forward(xs)
        assert hs.shape == (9, 6)
        assert np.all(np.abs(hs) <= 1.0)

    def test_layer_rejects_bad_width(self):
        layer = GRULayer.create(6, 4, WeightInitializer(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 5)))

    def test_skip_shape_validated(self):
        w = GRUCellWeights.initialize(6, 4, WeightInitializer(0))
        with pytest.raises(ShapeError):
            gru_cell_step(w, np.zeros(4), np.zeros(6), skip_rows=np.zeros(7, dtype=bool))
