"""GateSet: uniform failure rendering and stream routing.

The ``exit_code`` contract: *all* gate output — failure lines and the
pass banner — goes to the caller-supplied stream (stderr by default), so
CI steps that capture a single stream see the whole verdict and nothing
leaks to stdout interleaved with benchmark tables.
"""

from __future__ import annotations

import io

from repro.bench.gates import GateSet


class TestGateChecks:
    def test_bounds_and_pass_state(self):
        gates = GateSet("demo")
        assert gates.require_at_least("floor", 2.0, 1.5)
        assert gates.require_at_most("ceiling", 0.3, 0.5)
        assert gates.require_true("invariant", True)
        assert gates.passed
        assert gates.failures == []
        assert gates.as_dict()["passed"] is True

    def test_failure_line_format(self):
        gates = GateSet("demo")
        gates.require_at_least("speedup", 0.5, 1.5, detail="b=1 geometry")
        assert not gates.passed
        assert gates.failures == [
            "GATE FAIL demo/speedup: measured 0.5 vs bound 1.5 (b=1 geometry)"
        ]


class TestExitCodeStream:
    def test_failures_route_to_injected_stream(self):
        gates = GateSet("demo")
        gates.require_true("broken", False)
        stream = io.StringIO()
        assert gates.exit_code(stream=stream) == 1
        assert stream.getvalue() == "GATE FAIL demo/broken: measured False vs bound True\n"

    def test_pass_banner_routes_to_injected_stream(self, capsys):
        """The success line honors the stream argument too (it used to
        print to stdout unconditionally)."""
        gates = GateSet("demo")
        gates.require_true("fine", True)
        stream = io.StringIO()
        assert gates.exit_code(stream=stream) == 0
        assert stream.getvalue() == "demo gates passed\n"
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_default_stream_is_stderr(self, capsys):
        gates = GateSet("demo")
        gates.require_true("fine", True)
        assert gates.exit_code() == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "demo gates passed\n"
