"""Tests for the on-device calibration loop (`repro.nn.calibrate`).

The consumer-side claim under test: fine-tuning on drifted data moves
the *measured* quantities the inference stack derives from the gate
statistics — the DRS skip ratio and the breakpoint placement — so a
frozen calibration goes stale and `repro calibrate` un-stales it.
"""

import copy
import json

import numpy as np
import pytest

from repro.config import LSTMConfig
from repro.core.plan import fingerprint_network
from repro.core.tuner import calibrate_offline, compare_calibrations
from repro.errors import CalibrationError, ConfigurationError
from repro.nn.backprop import TrainingConfig, training_step
from repro.nn.calibrate import (
    Adam,
    DriftSpec,
    SGD,
    build_optimizer,
    drift_network,
    drift_report,
    fine_tune,
    measure_gate_statistics,
    synthetic_drift_batch,
)
from repro.nn.model_zoo import build_calibrated_network


def tiny_calibrated(seed=0):
    config = LSTMConfig(hidden_size=24, num_layers=2, seq_length=20, input_size=16)
    return build_calibrated_network(
        config=config, vocab_size=40, num_classes=6, seed=seed
    )


@pytest.fixture
def drifted_setup():
    network = tiny_calibrated()
    frozen = copy.deepcopy(network)
    teacher = drift_network(network, DriftSpec(magnitude=1.0))
    tokens, labels = synthetic_drift_batch(teacher, num_sequences=6, seed=3)
    return network, frozen, teacher, tokens, labels


class TestOptimizers:
    def _quadratic(self, optimizer, steps=60):
        # Minimize ||p - target||^2 elementwise; any sane first-order
        # update rule must shrink it monotonically from this start.
        param = np.array([4.0, -3.0, 2.0])
        target = np.array([1.0, 1.0, 1.0])
        first = float(np.sum((param - target) ** 2))
        for _ in range(steps):
            optimizer.step([param], [2.0 * (param - target)])
        return first, float(np.sum((param - target) ** 2))

    def test_sgd_converges(self):
        first, last = self._quadratic(SGD(lr=0.1))
        assert last < 1e-6 < first

    def test_sgd_momentum_converges(self):
        first, last = self._quadratic(SGD(lr=0.05, momentum=0.9), steps=200)
        assert last < 1e-3 < first

    def test_adam_converges(self):
        first, last = self._quadratic(Adam(lr=0.2), steps=120)
        assert last < 1e-3 < first

    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.0)
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            Adam(lr=-1.0)

    def test_count_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1).step([np.zeros(2)], [])

    def test_registry(self):
        assert isinstance(build_optimizer("sgd", 0.1), SGD)
        assert isinstance(build_optimizer("adam", 0.1), Adam)
        with pytest.raises(ConfigurationError):
            build_optimizer("lbfgs", 0.1)


class TestDriftNetwork:
    def test_changes_fingerprint_not_original(self):
        network = tiny_calibrated()
        before = fingerprint_network(network)
        drifted = drift_network(network)
        assert fingerprint_network(network) == before
        assert fingerprint_network(drifted) != before

    def test_zero_magnitude_is_identity(self):
        network = tiny_calibrated()
        drifted = drift_network(network, DriftSpec(magnitude=0.0))
        assert fingerprint_network(drifted) == fingerprint_network(network)

    def test_shifts_target_gate_biases(self):
        network = tiny_calibrated()
        spec = DriftSpec()
        drifted = drift_network(network, spec)
        np.testing.assert_allclose(
            drifted.layers[0].weights.b_o - network.layers[0].weights.b_o,
            spec.output_bias_shift,
        )
        np.testing.assert_allclose(
            drifted.layers[0].weights.b_f - network.layers[0].weights.b_f,
            spec.forget_bias_shift,
        )


class TestSyntheticDriftBatch:
    def test_shapes_and_determinism(self):
        teacher = drift_network(tiny_calibrated())
        tokens, labels = synthetic_drift_batch(teacher, num_sequences=5, seed=9)
        assert tokens.shape == (5, teacher.config.seq_length)
        assert labels.shape == (5,)
        again = synthetic_drift_batch(teacher, num_sequences=5, seed=9)
        np.testing.assert_array_equal(tokens, again[0])
        np.testing.assert_array_equal(labels, again[1])

    def test_labels_are_teacher_predictions(self):
        teacher = drift_network(tiny_calibrated())
        tokens, labels = synthetic_drift_batch(teacher, num_sequences=4, seed=2)
        for b in range(4):
            assert labels[b] == int(np.argmax(teacher.forward(tokens[b]).logits))


class TestFineTune:
    def test_loss_decreases_and_weights_move(self, drifted_setup):
        network, _, _, tokens, labels = drifted_setup
        result = fine_tune(network, tokens, labels, steps=6, lr=5e-2)
        assert result.steps == 6
        assert result.losses[-1] < result.losses[0]
        assert result.weights_changed

    def test_policies_train_identically(self, drifted_setup):
        # Bit-identical gradients must make bit-identical training runs.
        _, _, teacher, tokens, labels = drifted_setup
        nets = [tiny_calibrated(), tiny_calibrated()]
        results = [
            fine_tune(
                net, tokens, labels, steps=3, optimizer="sgd", lr=1e-2,
                config=TrainingConfig(policy=policy),
            )
            for net, policy in zip(nets, ("stash", "recompute"))
        ]
        assert results[0].losses == results[1].losses
        assert results[0].fingerprint_after == results[1].fingerprint_after

    def test_keep_final_tape(self, drifted_setup):
        network, _, _, tokens, labels = drifted_setup
        result = fine_tune(network, tokens, labels, steps=2, keep_final_tape=True)
        assert result.final_tape is not None
        assert result.final_tape.saved_bytes() > 0
        assert fine_tune(network, tokens, labels, steps=1).final_tape is None

    def test_rejects_zero_steps(self, drifted_setup):
        network, _, _, tokens, labels = drifted_setup
        with pytest.raises(ConfigurationError):
            fine_tune(network, tokens, labels, steps=0)


class TestGateStatisticsShift:
    """Post-calibration weights must move the measured consumer figures."""

    def test_drift_report_shifts(self, drifted_setup):
        network, frozen, _, tokens, labels = drifted_setup
        fine_tune(network, tokens, labels, steps=6, lr=5e-2)
        report = drift_report(
            frozen, network, tokens, alpha_inter=0.05, alpha_intra=0.1
        )
        assert report.shifted
        assert report.skip_fraction_delta != 0.0

    def test_identical_weights_do_not_shift(self, drifted_setup):
        _, frozen, _, tokens, _ = drifted_setup
        report = drift_report(
            frozen, copy.deepcopy(frozen), tokens, alpha_inter=0.05, alpha_intra=0.1
        )
        assert not report.shifted
        assert report.breakpoints_moved == 0

    def test_as_dict_round_trips_to_json(self, drifted_setup):
        _, frozen, _, tokens, _ = drifted_setup
        stats = measure_gate_statistics(frozen, tokens, alpha_inter=0.05, alpha_intra=0.1)
        payload = json.dumps(stats.as_dict())
        assert json.loads(payload)["skip_fraction"] == stats.skip_fraction


class TestCompareCalibrations:
    def test_fine_tuning_moves_the_offline_calibration(self, drifted_setup):
        network, frozen, _, tokens, labels = drifted_setup
        before = calibrate_offline(frozen, tokens)
        fine_tune(network, tokens, labels, steps=6, lr=5e-2)
        after = calibrate_offline(network, tokens)
        drift = compare_calibrations(before, after)
        assert drift.shifted
        assert drift.relevance_mean_before != drift.relevance_mean_after
        assert len(drift.breakpoints_before) == len(drift.breakpoints_after)

    def test_self_comparison_is_stable(self, drifted_setup):
        _, frozen, _, tokens, _ = drifted_setup
        cal = calibrate_offline(frozen, tokens)
        drift = compare_calibrations(cal, cal)
        assert not drift.shifted
        assert drift.alpha_inter_max_delta == 0.0

    def test_incomparable_layouts_raise(self, drifted_setup):
        _, frozen, _, tokens, _ = drifted_setup
        cal = calibrate_offline(frozen, tokens)
        smaller = calibrate_offline(frozen, tokens[:2])
        with pytest.raises(CalibrationError):
            compare_calibrations(cal, smaller)


class TestCalibrateCli:
    def test_calibrate_smoke_writes_valid_record(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import read_jsonl
        from repro.obs.schema import validate_jsonl_file

        out = tmp_path / "calibrate.jsonl"
        code = main(
            [
                "calibrate", "MR", "--steps", "2", "--sequences", "3",
                "--record", str(out),
            ]
        )
        assert code == 0
        assert validate_jsonl_file(out) == 1
        record = read_jsonl(out)[0]
        assert record.mode == "train"
        assert record.memory is not None
        assert record.memory["saved_bytes"] > 0
        assert record.memory["measured_peak_bytes"] >= record.memory["saved_bytes"]
        assert (
            record.config["fingerprint_before"] != record.config["fingerprint_after"]
        )
        captured = capsys.readouterr()
        assert "DRS skip ratio" in captured.out
        assert "breakpoints" in captured.out


def test_fine_tune_reduces_loss_on_fresh_teacher_batch(drifted_setup):
    # End-to-end sanity: after calibration the student predicts the
    # drifted teacher's labels on the training batch far better.
    network, _, teacher, tokens, labels = drifted_setup
    before_loss, _ = training_step(network, tokens, labels)
    result = fine_tune(network, tokens, labels, steps=8, lr=5e-2)
    assert result.losses[-1] < before_loss * 0.5
