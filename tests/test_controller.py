"""Tests for the :mod:`repro.runtime.controller` SLO step controller.

Covers the damping mechanics (hysteresis, cooldown, window clearing),
the accuracy-outranks-latency priority, boundary clamping at both ends
of the frontier, and the frontier-point conversion from the offline
tuner's export.
"""

import pytest

from repro.core.tuner import FrontierPoint
from repro.errors import ConfigurationError
from repro.runtime import ControllerMove, OperatingPoint, SLOController, TenantSLO

FRONTIER = [
    OperatingPoint(),
    OperatingPoint(alpha_intra=0.05, precision="fp16"),
    OperatingPoint(alpha_intra=0.1, precision="int8"),
]


def make_controller(**kwargs) -> SLOController:
    defaults = dict(
        points=FRONTIER,
        slo=TenantSLO(p99_latency_s=0.1, min_agreement=0.98),
        hysteresis=2,
        cooldown_ticks=3,
        min_latency_samples=4,
    )
    defaults.update(kwargs)
    return SLOController(**defaults)


def feed_latency(controller: SLOController, value: float, count: int) -> None:
    for _ in range(count):
        controller.observe_latency(value)


class TestHysteresis:
    def test_single_violation_does_not_move(self):
        controller = make_controller()
        feed_latency(controller, 1.0, 8)
        assert controller.decide() is None
        assert controller.index == 0

    def test_consecutive_violations_move_toward_fast(self):
        controller = make_controller()
        feed_latency(controller, 1.0, 8)
        assert controller.decide() is None
        assert controller.decide() == FRONTIER[1]
        assert controller.moves == [
            ControllerMove(tick=2, from_index=0, to_index=1, reason="latency")
        ]

    def test_meeting_slo_resets_the_streak(self):
        controller = make_controller()
        feed_latency(controller, 1.0, 8)
        controller.decide()  # violation 1 of 2
        # Window drains to healthy before the second strike lands.
        feed_latency(controller, 0.001, 64)
        assert controller.decide() is None
        feed_latency(controller, 1.0, 64)
        assert controller.decide() is None  # streak restarted
        assert controller.index == 0

    def test_reason_change_restarts_the_streak(self):
        controller = make_controller(start_index=1)
        feed_latency(controller, 1.0, 8)
        controller.decide()  # latency violation 1
        controller.observe_agreement(0.5)  # now accuracy outranks
        assert controller.decide() is None  # agreement violation 1, not 2
        assert controller.decide() == FRONTIER[0]
        assert controller.moves[-1].reason == "agreement"


class TestDamping:
    def test_no_decision_below_latency_sample_floor(self):
        controller = make_controller()
        feed_latency(controller, 1.0, 3)  # below min_latency_samples=4
        assert controller.decide() is None
        assert controller.decide() is None
        assert controller.index == 0

    def test_cooldown_pauses_decisions_and_windows_clear(self):
        controller = make_controller()
        feed_latency(controller, 1.0, 8)
        controller.decide()
        assert controller.decide() is not None  # the move
        assert controller.p99() is None  # windows cleared on move
        feed_latency(controller, 1.0, 8)
        for _ in range(3):  # cooldown_ticks
            assert controller.decide() is None
        assert controller.index == 1
        # Cooldown over: violations accumulate again.
        assert controller.decide() is None
        assert controller.decide() == FRONTIER[2]


class TestPriorityAndClamping:
    def test_agreement_violation_outranks_latency(self):
        controller = make_controller(start_index=1, hysteresis=1)
        feed_latency(controller, 1.0, 8)  # latency also broken
        controller.observe_agreement(0.9)
        assert controller.decide() == FRONTIER[0]
        assert controller.moves[-1].reason == "agreement"

    def test_fast_end_clamps(self):
        controller = make_controller(start_index=2, hysteresis=1)
        feed_latency(controller, 1.0, 8)
        assert controller.decide() is None
        assert controller.index == 2

    def test_accurate_end_clamps(self):
        controller = make_controller(start_index=0, hysteresis=1)
        controller.observe_agreement(0.5)
        assert controller.decide() is None
        assert controller.index == 0

    def test_healthy_windows_never_move(self):
        controller = make_controller(hysteresis=1)
        feed_latency(controller, 0.001, 16)
        controller.observe_agreement(1.0)
        for _ in range(10):
            assert controller.decide() is None
        assert controller.moves == []


class TestConstruction:
    def test_empty_frontier_rejected(self):
        with pytest.raises(ConfigurationError):
            make_controller(points=[])

    def test_start_index_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            make_controller(start_index=3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hysteresis": 0},
            {"cooldown_ticks": -1},
            {"min_latency_samples": 0},
        ],
    )
    def test_bad_damping_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_controller(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_latency_s": 0.0},
            {"p99_latency_s": -1.0},
            {"p99_latency_s": 0.1, "min_agreement": 1.5},
        ],
    )
    def test_bad_slo_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantSLO(**kwargs)

    def test_operating_points_from_tuner_frontier(self):
        frontier = [
            FrontierPoint(
                alpha_inter=0.0,
                alpha_intra=0.0,
                precision="fp64",
                accuracy=1.0,
                mean_time=2.0,
                weight_bytes_moved=100.0,
                threshold_index=0,
            ),
            FrontierPoint(
                alpha_inter=0.5,
                alpha_intra=0.1,
                precision="int8",
                accuracy=0.97,
                mean_time=1.0,
                weight_bytes_moved=20.0,
                threshold_index=4,
            ),
        ]
        points = OperatingPoint.from_frontier(frontier)
        assert points == [
            OperatingPoint(),
            OperatingPoint(alpha_inter=0.5, alpha_intra=0.1, precision="int8"),
        ]

    def test_as_dict_reports_state(self):
        controller = make_controller()
        feed_latency(controller, 1.0, 8)
        controller.decide()
        controller.decide()
        state = controller.as_dict()
        assert state["index"] == 1
        assert state["point"]["precision"] == "fp16"
        assert state["moves"][0]["reason"] == "latency"
