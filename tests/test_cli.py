"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "MR"])
        assert args.mode == "combined"
        assert args.threshold_set == 4

    def test_run_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])

    def test_sweep_disallows_baseline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "MR", "--mode", "baseline"])

    def test_figure_names(self):
        for name in FIGURES:
            args = build_parser().parse_args(["figure", name])
            assert args.name == name


class TestCommands:
    def test_info_prints_tables(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tegra X1" in out and "PTB" in out

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Hidden_Size" in capsys.readouterr().out

    def test_run_baseline_mr(self, capsys):
        assert main(["run", "MR", "--mode", "baseline", "--sequences", "2"]) == 0
        assert "ms/seq" in capsys.readouterr().out

    def test_run_optimized_mr(self, capsys):
        code = main(
            ["run", "MR", "--mode", "intra", "--set", "3", "--sequences", "2"]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out
