"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "MR"])
        assert args.mode == "combined"
        assert args.threshold_set == 4

    def test_run_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])

    def test_sweep_disallows_baseline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "MR", "--mode", "baseline"])

    def test_figure_names(self):
        for name in FIGURES:
            args = build_parser().parse_args(["figure", name])
            assert args.name == name


class TestCommands:
    def test_info_prints_tables(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tegra X1" in out and "PTB" in out

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Hidden_Size" in capsys.readouterr().out

    def test_run_baseline_mr(self, capsys):
        assert main(["run", "MR", "--mode", "baseline", "--sequences", "2"]) == 0
        assert "ms/seq" in capsys.readouterr().out

    def test_run_optimized_mr(self, capsys):
        code = main(
            ["run", "MR", "--mode", "intra", "--set", "3", "--sequences", "2"]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out


class TestTraceParser:
    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_record_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "record", "MR"])

    def test_record_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "record", "NOPE", "--out", "x.jsonl"]
            )

    def test_diff_defaults(self):
        args = build_parser().parse_args(["trace", "diff", "a.jsonl", "b.jsonl"])
        assert args.base_index == 0 and args.other_index == -1


class TestTraceCommands:
    def test_record_summarize_diff_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "mr.jsonl"
        chrome = tmp_path / "mr_trace.json"
        code = main(
            [
                "trace", "record", "MR",
                "--sequences", "2",
                "--out", str(out),
                "--chrome", str(chrome),
            ]
        )
        assert code == 0
        assert "2 run record(s)" in capsys.readouterr().out

        from repro.obs.schema import (
            validate_chrome_trace_file,
            validate_jsonl_file,
        )

        assert validate_jsonl_file(out) == 2
        assert validate_chrome_trace_file(chrome) > 0

        assert main(["trace", "summarize", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "baseline" in summary and "combined" in summary

        assert main(["trace", "diff", str(out), str(out)]) == 0
        diff = capsys.readouterr().out
        assert "speedup" in diff and "baseline" in diff

    def test_missing_file_reports_error(self, capsys, tmp_path):
        code = main(["trace", "summarize", str(tmp_path / "missing.jsonl")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err

    def test_out_of_range_index_reports_error(self, capsys, tmp_path):
        out = tmp_path / "mr.jsonl"
        assert main(
            ["trace", "record", "MR", "--sequences", "2", "--no-baseline",
             "--mode", "baseline", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        code = main(["trace", "diff", str(out), str(out), "--other-index", "7"])
        assert code == 1
        assert "out of range" in capsys.readouterr().err

    def test_figure_rejects_unknown_apps_cleanly(self, capsys):
        code = main(["figure", "table2", "--apps", "MR,BOGUS"])
        assert code == 1
        err = capsys.readouterr().err
        assert "BOGUS" in err and "Traceback" not in err
