"""Tests for threshold schedules and the AO/BPA selection schemes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.thresholds import (
    NUM_THRESHOLD_SETS,
    ThresholdSchedule,
    ThresholdSet,
    select_ao,
    select_bpa,
)
from repro.errors import ConfigurationError


class TestThresholdSet:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdSet(index=-1, alpha_inter=0, alpha_intra=0)
        with pytest.raises(ConfigurationError):
            ThresholdSet(index=0, alpha_inter=-1, alpha_intra=0)


class TestSchedule:
    def test_eleven_sets(self):
        schedule = ThresholdSchedule(100.0)
        assert len(schedule) == NUM_THRESHOLD_SETS

    def test_set0_is_baseline(self):
        s0 = ThresholdSchedule(100.0, 0.5)[0]
        assert s0.alpha_inter == 0.0 and s0.alpha_intra == 0.0

    def test_last_set_is_maximum(self):
        schedule = ThresholdSchedule(100.0, 0.5)
        assert schedule[10].alpha_inter == 100.0
        assert schedule[10].alpha_intra == 0.5

    def test_monotone(self):
        schedule = ThresholdSchedule(100.0, 0.5)
        inters = [s.alpha_inter for s in schedule]
        intras = [s.alpha_intra for s in schedule]
        assert inters == sorted(inters)
        assert intras == sorted(intras)

    def test_from_values(self):
        schedule = ThresholdSchedule.from_values([0, 1, 5], [0, 0.1, 0.5])
        assert schedule[1].alpha_inter == 1.0
        assert schedule.alpha_inter_max == 5.0

    def test_from_values_rejects_non_monotone(self):
        with pytest.raises(ConfigurationError):
            ThresholdSchedule.from_values([0, 5, 1], [0, 0.1, 0.5])

    def test_from_values_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            ThresholdSchedule.from_values([0, 1], [0, 0.1, 0.2])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdSchedule(-1.0)
        with pytest.raises(ConfigurationError):
            ThresholdSchedule(1.0, count=1)


class TestAO:
    def test_picks_most_aggressive_within_budget(self):
        acc = np.array([1.0, 1.0, 0.99, 0.97, 0.90])
        assert select_ao(acc, 0.98) == 2

    def test_baseline_always_qualifies(self):
        acc = np.array([1.0, 0.5, 0.4])
        assert select_ao(acc, 0.98) == 0

    def test_non_monotone_accuracy(self):
        """AO takes the *last* qualifying set, even past a dip."""
        acc = np.array([1.0, 0.97, 0.99, 0.90])
        assert select_ao(acc, 0.98) == 2

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            select_ao(np.array([]), 0.98)

    @given(st.lists(st.floats(0.5, 1.0), min_size=1, max_size=11))
    def test_selection_meets_target_or_is_zero(self, accs):
        acc = np.array(accs)
        idx = select_ao(acc, 0.98)
        assert idx == 0 or acc[idx] >= 0.98


class TestBPA:
    def test_maximizes_product(self):
        acc = np.array([1.0, 0.95, 0.80])
        speed = np.array([1.0, 2.0, 2.1])
        assert select_bpa(acc, speed) == 1

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            select_bpa(np.array([1.0]), np.array([1.0, 2.0]))

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 1.0), st.floats(0.5, 5.0)),
            min_size=1,
            max_size=11,
        )
    )
    def test_product_is_max(self, pairs):
        acc = np.array([p[0] for p in pairs])
        speed = np.array([p[1] for p in pairs])
        idx = select_bpa(acc, speed)
        assert (acc * speed)[idx] == pytest.approx(np.max(acc * speed))
