"""Tests for the dynamic-row-skip primitives (Algorithm 3 numerics)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.drs import (
    compression_ratio,
    skip_fraction,
    skipped_weight_bytes,
    tissue_skip_mask,
    trivial_row_mask,
)
from repro.errors import PlanError


class TestTrivialRowMask:
    def test_thresholding(self):
        o = np.array([0.01, 0.2, 0.049, 0.5])
        np.testing.assert_array_equal(
            trivial_row_mask(o, 0.05), [True, False, True, False]
        )

    def test_zero_threshold_disables(self):
        o = np.array([0.0, 0.5])
        assert not trivial_row_mask(o, 0.0).any()

    def test_batched(self):
        o = np.array([[0.01, 0.9], [0.9, 0.01]])
        mask = trivial_row_mask(o, 0.1)
        assert mask.shape == (2, 2)
        assert mask[0, 0] and mask[1, 1]

    def test_negative_threshold_rejected(self):
        with pytest.raises(PlanError):
            trivial_row_mask(np.zeros(3), -0.1)

    @given(st.floats(0.0, 1.0))
    def test_fraction_monotone_in_threshold(self, alpha):
        o = np.linspace(0, 1, 101)
        low = trivial_row_mask(o, alpha).mean()
        high = trivial_row_mask(o, min(1.0, alpha + 0.1)).mean()
        assert high >= low


class TestTissueSkipMask:
    def test_intersection(self):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        np.testing.assert_array_equal(tissue_skip_mask([a, b]), [True, False, False])

    def test_single_cell_identity(self):
        a = np.array([True, False])
        np.testing.assert_array_equal(tissue_skip_mask([a]), a)

    def test_intersection_never_larger(self):
        rng = np.random.default_rng(0)
        masks = [rng.random(32) < 0.5 for _ in range(4)]
        inter = tissue_skip_mask(masks)
        for m in masks:
            assert skip_fraction(inter) <= skip_fraction(m)

    def test_does_not_mutate_inputs(self):
        a = np.array([True, True])
        b = np.array([False, True])
        a_copy = a.copy()
        tissue_skip_mask([a, b])
        np.testing.assert_array_equal(a, a_copy)

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            tissue_skip_mask([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PlanError):
            tissue_skip_mask([np.zeros(3, bool), np.zeros(4, bool)])


class TestAccounting:
    def test_skip_fraction(self):
        assert skip_fraction(np.array([True, False, True, False])) == 0.5

    def test_skipped_weight_bytes(self):
        mask = np.array([True, False, False, False])
        loaded, full = skipped_weight_bytes(4, mask)
        assert full == 3 * 4 * 4 * 4
        assert loaded == pytest.approx(full * 0.75)

    def test_compression_ratio_covers_three_gates(self):
        masks = [np.array([True, True, False, False])]
        assert compression_ratio(masks) == pytest.approx(0.75 * 0.5)

    def test_compression_ratio_empty(self):
        assert compression_ratio([]) == 0.0

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_compression_bounded(self, bits):
        mask = np.array(bits)
        assert 0.0 <= compression_ratio([mask]) <= 0.75
