"""Tests for the :mod:`repro.obs` structured trace layer.

Covers the recorder contract (zero overhead when disabled, no numerics
change when enabled), the golden JSONL / Chrome ``trace_event`` schemas,
round-tripping, and run diffing.
"""

import json

import numpy as np
import pytest

from repro.core.executor import ExecutionMode
from repro.errors import ConfigurationError
from repro.obs import (
    RUN_RECORD_SCHEMA_ID,
    Recorder,
    RunRecord,
    chrome_trace,
    diff_runs,
    format_diff,
    format_run_summary,
    read_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_jsonl_file,
    validate_run_dict,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs import record as record_module


@pytest.fixture
def recorder(tiny_app, tiny_tokens) -> Recorder:
    """A recorder holding a baseline and a combined run of the tiny app."""
    rec = Recorder()
    tiny_app.run(tiny_tokens, mode=ExecutionMode.BASELINE, recorder=rec)
    tiny_app.run(
        tiny_tokens, mode=ExecutionMode.COMBINED, threshold_index=3, recorder=rec
    )
    return rec


class TestRecorder:
    def test_one_record_per_run(self, recorder, tiny_tokens):
        assert len(recorder) == 2
        base, combined = recorder.records
        assert base.mode == "baseline" and combined.mode == "combined"
        assert base.label == "TINY"
        assert base.batch == tiny_tokens.shape[0]

    def test_kernel_events_cover_every_sequence(self, recorder, tiny_tokens):
        record = recorder.last()
        assert record.num_launches == len(record.kernels) > 0
        assert {k.seq_index for k in record.kernels} == set(
            range(tiny_tokens.shape[0])
        )

    def test_simulated_totals_match_kernel_sums(self, recorder):
        record = recorder.last()
        assert record.simulated_time_s == pytest.approx(
            sum(k.time_s for k in record.kernels)
        )
        assert record.simulated_energy_j == pytest.approx(
            sum(k.energy_j for k in record.kernels)
        )

    def test_layer_counters(self, recorder):
        base, combined = recorder.records
        assert base.mean_counters()["breakpoints"] == 0.0
        counters = combined.mean_counters()
        assert counters["skip_fraction"] > 0.0
        assert counters["tissue_size"] >= 1.0

    def test_cache_delta_counts_this_run_only(self, recorder):
        base, combined = recorder.records
        # The baseline plans nothing, so its plan-cache delta is all
        # zeros — but it does compile its stepwise programs cold, so the
        # program-cache family shows misses and no hits.
        plan_keys = ("relevance_hits", "relevance_misses", "plan_hits", "plan_misses")
        assert all(base.cache[k] == 0 for k in plan_keys)
        assert base.cache["program_misses"] > 0
        assert base.cache["program_hits"] == 0
        assert combined.cache["plan_misses"] > 0
        assert combined.cache["program_misses"] > 0

    def test_timing_has_wall_clock_and_plan_split(self, recorder):
        record = recorder.last()
        assert record.timing["wall_s"] > 0.0
        assert 0.0 <= record.timing["plan_wall_s"] <= record.timing["wall_s"]

    def test_finish_twice_raises(self):
        rec = Recorder()
        builder = rec.start_run(label="x")
        builder.finish()
        with pytest.raises(ConfigurationError):
            builder.finish()

    def test_last_on_empty_raises(self):
        with pytest.raises(ConfigurationError):
            Recorder().last()


class TestZeroOverheadWhenDisabled:
    """A disabled recorder must never allocate observation objects."""

    @pytest.fixture
    def poisoned(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("observation object allocated while disabled")

        for name in (
            "RunRecord",
            "KernelEvent",
            "LayerObservation",
            "SequenceObservation",
        ):
            monkeypatch.setattr(record_module, name, explode)

    def test_disabled_start_run_returns_none(self, poisoned):
        assert Recorder(enabled=False).start_run(label="x") is None

    def test_disabled_recorder_allocates_nothing(
        self, poisoned, tiny_app, tiny_tokens
    ):
        rec = Recorder(enabled=False)
        outcome = tiny_app.run(
            tiny_tokens, mode=ExecutionMode.BASELINE, recorder=rec
        )
        assert outcome.mean_time > 0
        assert rec.records == []

    def test_poison_is_effective(self, poisoned):
        # Sanity check on the fixture: an *enabled* recorder does allocate.
        with pytest.raises(AssertionError, match="allocated"):
            Recorder().start_run(label="x")


class TestNumericsUnchanged:
    def test_recording_is_bit_identical(self, tiny_app, tiny_tokens):
        plain = tiny_app.run(tiny_tokens, mode=ExecutionMode.COMBINED)
        recorded = tiny_app.run(
            tiny_tokens, mode=ExecutionMode.COMBINED, recorder=Recorder()
        )
        np.testing.assert_array_equal(plain.logits, recorded.logits)


class TestJsonlSchema:
    #: Golden top-level schema of one JSONL line (schema v1). Extending the
    #: schema is fine but requires a version bump + validator update; this
    #: test pins the contract.
    GOLDEN_RUN_KEYS = {
        "schema",
        "label",
        "mode",
        "spec",
        "batch",
        "seq_length",
        "config",
        "timing",
        "simulated",
        "cache",
        "memory",
        "sequences",
        "kernels",
    }
    GOLDEN_KERNEL_KEYS = {
        "seq_index",
        "index",
        "name",
        "tag",
        "time_s",
        "exec_s",
        "t_compute_s",
        "t_dram_s",
        "t_onchip_s",
        "flops",
        "dram_bytes",
        "onchip_bytes",
        "energy_j",
        "stall_cycles",
        "weight_bytes_fp64",
        "weight_bytes_moved",
        "weight_bytes_skipped",
    }

    def test_golden_schema(self, recorder):
        for record in recorder.records:
            data = record.to_dict()
            assert data["schema"] == RUN_RECORD_SCHEMA_ID
            assert set(data) == self.GOLDEN_RUN_KEYS
            assert set(data["kernels"][0]) == self.GOLDEN_KERNEL_KEYS
            validate_run_dict(data)

    def test_roundtrip(self, recorder, tmp_path):
        path = write_jsonl(recorder.records, tmp_path / "runs.jsonl")
        back = read_jsonl(path)
        assert [r.to_dict() for r in back] == [
            r.to_dict() for r in recorder.records
        ]

    def test_validate_file(self, recorder, tmp_path):
        path = write_jsonl(recorder.records, tmp_path / "runs.jsonl")
        assert validate_jsonl_file(path) == 2

    def test_wrong_schema_id_rejected(self, recorder):
        data = recorder.last().to_dict()
        data["schema"] = "repro.obs/run/v999"
        with pytest.raises(ConfigurationError, match="schema"):
            RunRecord.from_dict(data)

    def test_corrupt_line_reports_position(self, recorder, tmp_path):
        path = write_jsonl(recorder.records, tmp_path / "runs.jsonl")
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(ConfigurationError, match=":3"):
            read_jsonl(path)

    def test_missing_file_is_a_repro_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_jsonl(tmp_path / "nope.jsonl")


class TestChromeTraceSchema:
    def test_valid_trace_event_json(self, recorder, tmp_path):
        path = write_chrome_trace(recorder.records, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(data) > 0
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert validate_chrome_trace_file(path) == len(complete)

    def test_one_complete_event_per_kernel(self, recorder):
        data = chrome_trace(recorder.records)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == sum(r.num_launches for r in recorder.records)
        # pid = run index, tid = sequence index.
        assert {e["pid"] for e in complete} == {0, 1}

    def test_timestamps_are_serialized_per_thread(self, recorder):
        data = chrome_trace(recorder.records)
        lanes = {}
        for event in data["traceEvents"]:
            if event["ph"] != "X":
                continue
            cursor = lanes.get((event["pid"], event["tid"]), 0.0)
            assert event["ts"] == pytest.approx(cursor)
            lanes[(event["pid"], event["tid"])] = event["ts"] + event["dur"]

    def test_metadata_names_tracks(self, recorder):
        data = chrome_trace(recorder.records)
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            chrome_trace([])


class TestDiff:
    def test_diff_identifies_kernel_movement(self, recorder):
        base, other = recorder.records
        diff = diff_runs(base, other)
        assert diff.speedup > 0
        names = [d.name for d in diff.kernel_deltas]
        assert "sgemv" in names
        deltas = [abs(d.delta_s) for d in diff.kernel_deltas]
        assert deltas == sorted(deltas, reverse=True)

    def test_format_outputs(self, recorder):
        base, other = recorder.records
        summary = format_run_summary(other)
        assert "combined" in summary and "launches" in summary
        text = format_diff(diff_runs(base, other))
        assert "speedup" in text and "sgemv" in text


def _tenant_record(
    label: str, mode: str, seq_length: int, config: dict, cache: dict
) -> RunRecord:
    return RunRecord(
        label=label,
        mode=mode,
        spec="Tegra X1 (Jetson TX1)",
        batch=2,
        seq_length=seq_length,
        config=config,
        timing={"wall_s": 0.01, "queue_wait_s": 0.002},
        cache=dict(cache),
    )


class TestMultiTenantMerge:
    """Merge extensions for multi-tenant windows: varying configs and
    per-label cache attribution."""

    def records(self) -> list[RunRecord]:
        return [
            _tenant_record(
                "alpha", "baseline", 12,
                {"backend": "numpy", "precision": "fp64", "tenant": "alpha"},
                {"program_hits": 2, "program_misses": 1},
            ),
            _tenant_record(
                "beta", "intra", 8,
                {"backend": "numpy", "precision": "int8", "tenant": "beta"},
                {"program_hits": 4, "program_misses": 0},
            ),
            _tenant_record(
                "alpha", "baseline", 12,
                {"backend": "numpy", "precision": "fp64", "tenant": "alpha"},
                {"program_hits": 3, "program_misses": 0},
            ),
        ]

    def test_varying_config_requires_the_flag(self):
        from repro.obs import merge_run_records

        with pytest.raises(ConfigurationError):
            merge_run_records(self.records(), allow_varying_seq_length=True)

    def test_agreeing_keys_survive_and_disputes_are_listed(self):
        from repro.obs import merge_run_records

        merged = merge_run_records(
            self.records(),
            label="zoo",
            allow_varying_seq_length=True,
            allow_varying_config=True,
        )
        assert merged.config["backend"] == "numpy"
        assert sorted(merged.config["varied"]) == ["precision", "tenant"]
        assert merged.mode == "baseline"  # first record's mode
        assert merged.seq_length == 12  # max across ticks
        validate_run_dict(merged.to_dict())

    def test_group_cache_by_label_namespaces_and_sums(self):
        from repro.obs import merge_run_records

        merged = merge_run_records(
            self.records(),
            allow_varying_seq_length=True,
            allow_varying_config=True,
            group_cache_by_label=True,
        )
        assert merged.cache == {
            "alpha/program_hits": 5,
            "alpha/program_misses": 1,
            "beta/program_hits": 4,
            "beta/program_misses": 0,
        }
        validate_run_dict(merged.to_dict())

    def test_summary_renders_per_tenant_cache_table(self):
        from repro.obs import merge_run_records

        merged = merge_run_records(
            self.records(),
            allow_varying_seq_length=True,
            allow_varying_config=True,
            group_cache_by_label=True,
        )
        summary = format_run_summary(merged)
        assert "Per-tenant cache hit/miss delta" in summary
        assert "alpha" in summary and "beta" in summary
        assert "program_hits" in summary

    def test_flat_cache_keys_keep_the_old_rendering(self):
        record = _tenant_record(
            "solo", "baseline", 12,
            {"backend": "numpy"},
            {"program_hits": 2, "program_misses": 1},
        )
        summary = format_run_summary(record)
        assert "plan cache delta:" in summary
        assert "Per-tenant cache hit/miss delta" not in summary

    def test_diff_renders_per_tenant_cache_movement(self):
        from repro.obs import merge_run_records

        base = merge_run_records(
            self.records(),
            allow_varying_seq_length=True,
            allow_varying_config=True,
            group_cache_by_label=True,
        )
        shifted = [
            _tenant_record(
                "alpha", "baseline", 12,
                {"backend": "numpy"},
                {"program_hits": 9, "program_misses": 0},
            ),
            _tenant_record(
                "beta", "baseline", 12,
                {"backend": "numpy"},
                {"program_hits": 8, "program_misses": 0},
            ),
        ]
        other = merge_run_records(
            shifted,
            allow_varying_seq_length=True,
            allow_varying_config=True,
            group_cache_by_label=True,
        )
        base.simulated["time_s"] = 2.0
        other.simulated["time_s"] = 1.0
        text = format_diff(diff_runs(base, other))
        assert "Per-tenant cache movement (base -> opt)" in text
        assert "5 -> 9" in text  # alpha program_hits
        assert "4 -> 8" in text  # beta program_hits


class TestMemoryField:
    """The training-side ``memory`` mapping: schema, round trip, merge."""

    def record(self, memory, label="train") -> RunRecord:
        return RunRecord(
            label=label,
            mode="train",
            spec="host",
            batch=2,
            seq_length=8,
            timing={"train_wall_s": 0.1},
            memory=dict(memory),
        )

    def test_round_trip(self, tmp_path):
        memory = {"saved_bytes": 1024.0, "measured_peak_bytes": 4096.0}
        path = write_jsonl([self.record(memory)], tmp_path / "train.jsonl")
        back = read_jsonl(path)[0]
        assert back.memory == memory
        validate_run_dict(back.to_dict())

    def test_absent_memory_stays_null(self, recorder):
        data = recorder.last().to_dict()
        assert data["memory"] is None
        assert RunRecord.from_dict(data).memory is None

    def test_validator_rejects_non_numeric_entries(self):
        data = self.record({"saved_bytes": "lots"}).to_dict()
        with pytest.raises(ConfigurationError, match="memory"):
            validate_run_dict(data)

    def test_validator_rejects_non_mapping(self):
        data = self.record({}).to_dict()
        data["memory"] = [1, 2]
        with pytest.raises(ConfigurationError, match="memory"):
            validate_run_dict(data)

    def test_merge_sums_totals_and_maxes_peaks(self):
        from repro.obs import merge_run_records

        merged = merge_run_records(
            [
                self.record({"saved_bytes": 100.0, "measured_peak_bytes": 700.0}),
                self.record({"saved_bytes": 250.0, "measured_peak_bytes": 500.0}),
            ],
            label="merged",
            allow_varying_seq_length=True,
        )
        assert merged.memory == {
            "saved_bytes": 350.0,
            "measured_peak_bytes": 700.0,
        }
        validate_run_dict(merged.to_dict())

    def test_merge_without_memory_stays_none(self):
        from repro.obs import merge_run_records

        records = [
            RunRecord(label="a", mode="train", spec="host", batch=1, seq_length=4),
            RunRecord(label="b", mode="train", spec="host", batch=1, seq_length=4),
        ]
        assert merge_run_records(records).memory is None

    def test_summary_and_diff_render_memory_tables(self):
        a = self.record({"saved_bytes": 2e6, "measured_peak_bytes": 8e6}, label="stash")
        b = self.record(
            {"saved_bytes": 0.5e6, "measured_peak_bytes": 6e6}, label="recompute"
        )
        summary = format_run_summary(a)
        assert "Training memory" in summary and "saved_bytes" in summary
        a.simulated["time_s"] = 1.0
        b.simulated["time_s"] = 1.0
        text = format_diff(diff_runs(a, b))
        assert "Training memory movement" in text
        assert "measured_peak_bytes" in text
