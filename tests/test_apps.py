"""Tests for the Workload wrapper and scaled-capacity builders."""

import pytest

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.errors import ConfigurationError
from repro.workloads.apps import (
    DEFAULT_CONFIDENCE_KEEP_PER_APP,
    DEFAULT_EVAL_SEQUENCES,
    Workload,
    all_app_names,
    build_scaled_workload,
    build_workload,
)
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def tiny_workload():
    cfg = AppConfig(
        name="TINY",
        family=TaskFamily.SENTIMENT_CLASSIFICATION,
        model=LSTMConfig(hidden_size=24, num_layers=2, seq_length=12, input_size=20),
        vocab_size=60,
        num_classes=3,
    )
    app = OptimizedLSTM.from_app(cfg, seed=5)
    app.calibrate(num_sequences=4)
    dataset = build_dataset(app, 10, seed=1, confidence_keep=0.6)
    return Workload(app, dataset, "TINY")


class TestDefaults:
    def test_every_app_has_eval_size_and_keep(self):
        for name in all_app_names():
            assert name in DEFAULT_EVAL_SEQUENCES
            assert name in DEFAULT_CONFIDENCE_KEEP_PER_APP
            assert 0 < DEFAULT_CONFIDENCE_KEEP_PER_APP[name] <= 1


class TestWorkload:
    def test_requires_calibration(self, tiny_workload):
        uncalibrated = OptimizedLSTM(tiny_workload.app.network)
        with pytest.raises(ConfigurationError):
            Workload(uncalibrated, tiny_workload.dataset, "X")

    def test_baseline_cached(self, tiny_workload):
        assert tiny_workload.baseline is tiny_workload.baseline

    def test_set0_is_exact_baseline(self, tiny_workload):
        ev = tiny_workload.evaluate(ExecutionMode.COMBINED, threshold_index=0)
        assert ev.speedup == pytest.approx(1.0)
        assert ev.accuracy == 1.0
        assert ev.alpha_inter == 0.0 and ev.alpha_intra == 0.0

    def test_evaluate_reports_resolved_alphas(self, tiny_workload):
        ev = tiny_workload.evaluate(ExecutionMode.COMBINED, threshold_index=7)
        schedule = tiny_workload.app.calibration.schedule()
        assert ev.alpha_inter == schedule[7].alpha_inter
        assert ev.alpha_intra == schedule[7].alpha_intra

    def test_sweep_covers_all_sets(self, tiny_workload):
        sweep = tiny_workload.threshold_sweep(ExecutionMode.INTRA)
        assert [e.threshold_index for e in sweep] == list(range(11))

    def test_sweep_with_explicit_indices(self, tiny_workload):
        sweep = tiny_workload.threshold_sweep(ExecutionMode.INTRA, indices=[0, 10])
        assert len(sweep) == 2

    def test_accuracy_bounded(self, tiny_workload):
        for ev in tiny_workload.threshold_sweep(
            ExecutionMode.COMBINED, indices=[0, 5, 10]
        ):
            assert 0.0 <= ev.accuracy <= 1.0


class TestScaledWorkload:
    def test_scaling_changes_geometry(self):
        workload = build_scaled_workload(
            "MR", hidden_size=64, seq_length=10, num_sequences=6,
            calibration_sequences=3,
        )
        cfg = workload.app.network.config
        assert cfg.hidden_size == 64 and cfg.seq_length == 10
        assert workload.name == "MR-H64-L10"

    def test_scaled_workload_evaluates(self):
        workload = build_scaled_workload(
            "MR", hidden_size=48, seq_length=8, num_sequences=6,
            calibration_sequences=3,
        )
        ev = workload.evaluate(ExecutionMode.COMBINED, threshold_index=5)
        assert ev.speedup > 0
        assert 0 <= ev.accuracy <= 1


class TestBuildWorkload:
    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workload("NOPE")
