"""Tests for the seeded weight initializers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.initializers import WeightInitializer


class TestReproducibility:
    def test_same_seed_same_weights(self):
        a = WeightInitializer(42).xavier_uniform(16, 8)
        b = WeightInitializer(42).xavier_uniform(16, 8)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_weights(self):
        a = WeightInitializer(1).xavier_uniform(16, 8)
        b = WeightInitializer(2).xavier_uniform(16, 8)
        assert not np.allclose(a, b)


class TestXavier:
    def test_shape(self):
        assert WeightInitializer(0).xavier_uniform(5, 7).shape == (5, 7)

    def test_limit(self):
        mat = WeightInitializer(0).xavier_uniform(50, 50)
        limit = np.sqrt(6.0 / 100)
        assert np.all(np.abs(mat) <= limit)

    def test_gain_scales(self):
        base = WeightInitializer(0).xavier_uniform(50, 50)
        gained = WeightInitializer(0).xavier_uniform(50, 50, gain=2.0)
        np.testing.assert_allclose(gained, 2.0 * base)

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            WeightInitializer(0).xavier_uniform(0, 5)


class TestOrthogonal:
    def test_square_is_orthogonal(self):
        q = WeightInitializer(3).orthogonal(32, 32)
        np.testing.assert_allclose(q @ q.T, np.eye(32), atol=1e-10)

    def test_tall_has_orthonormal_columns(self):
        q = WeightInitializer(3).orthogonal(40, 16)
        np.testing.assert_allclose(q.T @ q, np.eye(16), atol=1e-10)

    def test_wide_has_orthonormal_rows(self):
        q = WeightInitializer(3).orthogonal(16, 40)
        np.testing.assert_allclose(q @ q.T, np.eye(16), atol=1e-10)

    def test_gain(self):
        q = WeightInitializer(3).orthogonal(16, 16, gain=3.0)
        np.testing.assert_allclose(q @ q.T, 9.0 * np.eye(16), atol=1e-9)


class TestBias:
    def test_constant(self):
        np.testing.assert_array_equal(
            WeightInitializer(0).bias(5, value=1.5), np.full(5, 1.5)
        )

    def test_jitter_spreads(self):
        b = WeightInitializer(0).bias(1000, value=0.0, jitter=0.5)
        assert 0.4 < b.std() < 0.6

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            WeightInitializer(0).bias(0)
