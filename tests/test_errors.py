"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CalibrationError,
    ConfigurationError,
    PlanError,
    ReproError,
    ShapeError,
    SimulationError,
)


@pytest.mark.parametrize(
    "exc",
    [ConfigurationError, ShapeError, PlanError, SimulationError, CalibrationError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_shape_error_is_configuration_error():
    assert issubclass(ShapeError, ConfigurationError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise PlanError("x")
