"""Tests for the confidence-labelled synthetic datasets."""

import numpy as np
import pytest

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.errors import ConfigurationError
from repro.workloads.datasets import SyntheticDataset, build_dataset


@pytest.fixture
def lm_app():
    cfg = AppConfig(
        name="TINYLM",
        family=TaskFamily.LANGUAGE_MODELING,
        model=LSTMConfig(hidden_size=24, num_layers=1, seq_length=10, input_size=20),
        vocab_size=50,
        num_classes=50,
    )
    app = OptimizedLSTM.from_app(cfg, seed=2)
    app.calibrate(num_sequences=3)
    return app


class TestClassificationDataset:
    def test_build(self, tiny_app):
        ds = build_dataset(tiny_app, 8, seed=0, confidence_keep=0.5)
        assert ds.num_sequences == 8
        assert not ds.per_timestep
        assert ds.num_eval_units == 8

    def test_baseline_scores_perfectly(self, tiny_app):
        ds = build_dataset(tiny_app, 8, seed=0)
        base = tiny_app.run(ds.tokens, mode=ExecutionMode.BASELINE)
        assert ds.accuracy(base.predictions) == 1.0

    def test_confidence_selection_keeps_high_margins(self, tiny_app):
        from repro.workloads.metrics import prediction_margins

        strict = build_dataset(tiny_app, 6, seed=0, confidence_keep=0.3)
        loose = build_dataset(tiny_app, 6, seed=0, confidence_keep=1.0)
        m_strict = prediction_margins(
            tiny_app.run(strict.tokens, mode=ExecutionMode.BASELINE).logits
        ).mean()
        m_loose = prediction_margins(
            tiny_app.run(loose.tokens, mode=ExecutionMode.BASELINE).logits
        ).mean()
        assert m_strict >= m_loose

    def test_invalid_keep(self, tiny_app):
        with pytest.raises(ConfigurationError):
            build_dataset(tiny_app, 4, confidence_keep=0.0)


class TestTokenLevelDataset:
    def test_build(self, lm_app):
        ds = build_dataset(lm_app, 4, seed=0, confidence_keep=0.5)
        assert ds.per_timestep
        assert ds.teacher.shape == (4, 10)
        assert ds.teacher_topk is not None
        assert ds.teacher_topk.shape == (4, 10, 5)
        # keep fraction of tokens selected
        assert ds.num_eval_units == pytest.approx(0.5 * 40, abs=2)

    def test_top1_in_topk(self, lm_app):
        ds = build_dataset(lm_app, 4, seed=0)
        # teacher top-1 must be inside the top-k set
        hits = (ds.teacher_topk == ds.teacher[..., None]).any(axis=-1)
        assert hits.all()

    def test_baseline_scores_perfectly(self, lm_app):
        ds = build_dataset(lm_app, 4, seed=0)
        base = lm_app.run(ds.tokens, mode=ExecutionMode.BASELINE)
        assert ds.accuracy(base.predictions) == 1.0

    def test_topk_accuracy_is_forgiving(self, lm_app):
        """A prediction equal to the teacher's 2nd choice still scores."""
        ds = build_dataset(lm_app, 4, seed=0)
        second = ds.teacher_topk[..., -2]
        acc = ds.accuracy(second)
        assert acc == 1.0


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ConfigurationError):
            SyntheticDataset(
                tokens=np.zeros((2, 3), dtype=int),
                teacher=np.zeros(2, dtype=int),
                eval_mask=np.ones(3, dtype=bool),
                per_timestep=False,
            )

    def test_prediction_shape_checked(self, lm_app):
        ds = build_dataset(lm_app, 4, seed=0)
        with pytest.raises(ConfigurationError):
            ds.accuracy(np.zeros(4, dtype=int))
