"""Tests for the analytical timing simulator and the trace containers."""

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.gpu.kernels import elementwise_kernel, sgemm_kernel, sgemv_kernel
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import TEGRA_X1, TESLA_M40


def big_sgemv(hidden=512):
    return sgemv_kernel(
        4 * hidden, hidden, TEGRA_X1.onchip_traffic_per_flop(hidden), weight_id="U"
    )


@pytest.fixture
def sim():
    return TimingSimulator(TEGRA_X1)


class TestRooflines:
    def test_big_sgemv_is_dram_bound(self, sim):
        stats = sim.run_kernel(big_sgemv())
        assert stats.t_dram > stats.t_compute
        assert stats.t_dram > stats.t_onchip
        assert stats.exec_time == pytest.approx(stats.t_dram)

    def test_dram_bound_time_matches_bandwidth(self, sim):
        k = big_sgemv()
        stats = sim.run_kernel(k)
        expected = k.dram_read_bytes + k.write_bytes
        assert stats.t_dram == pytest.approx(expected / TEGRA_X1.effective_dram_bandwidth)

    def test_launch_overhead_included(self, sim):
        stats = sim.run_kernel(elementwise_kernel(8))
        assert stats.time >= TEGRA_X1.kernel_launch_overhead_s

    def test_warp_efficiency_slows_compute(self, sim):
        k_full = dataclasses.replace(big_sgemv(), warp_efficiency=1.0)
        k_half = dataclasses.replace(big_sgemv(), warp_efficiency=0.5)
        assert sim.run_kernel(k_half).t_compute == pytest.approx(
            2 * sim.run_kernel(k_full).t_compute
        )

    def test_gather_efficiency_slows_dram(self, sim):
        slow = dataclasses.replace(big_sgemv(), gather_efficiency=0.5)
        fast = big_sgemv()
        sim.reset()
        t_fast = sim.run_kernel(fast).t_dram
        sim.reset()
        t_slow = sim.run_kernel(slow).t_dram
        assert t_slow == pytest.approx(2 * t_fast)

    def test_onchip_bound_kernel_pays_reconfiguration(self, sim):
        # A tissue Sgemm with a huge batch oversubscribes shared memory.
        k = sgemm_kernel(
            4 * 512, 512, 16, TEGRA_X1.onchip_traffic_per_flop(512), weight_id="U"
        )
        stats = sim.run_kernel(k)
        assert stats.t_onchip > stats.t_dram
        assert stats.exec_time > stats.t_onchip  # penalty applied

    def test_crm_overhead_applied(self, sim):
        plain = big_sgemv()
        with_crm = dataclasses.replace(plain, uses_crm=True)
        sim.reset()
        t_plain = sim.run_kernel(plain).exec_time
        sim.reset()
        t_crm = sim.run_kernel(with_crm).exec_time
        assert t_crm == pytest.approx(t_plain * (1 + TEGRA_X1.crm_time_overhead))


class TestL2Integration:
    def test_big_weights_reload_every_launch(self, sim):
        trace = sim.run_trace([big_sgemv(), big_sgemv()])
        assert trace.kernels[1].dram_bytes == pytest.approx(trace.kernels[0].dram_bytes)

    def test_small_weights_cached_across_launches(self, sim):
        small = sgemv_kernel(32, 32, 4.0, weight_id="U")
        trace = sim.run_trace([small, small])
        assert trace.kernels[1].dram_bytes < trace.kernels[0].dram_bytes

    def test_cold_start_resets_cache(self, sim):
        small = sgemv_kernel(32, 32, 4.0, weight_id="U")
        sim.run_trace([small])
        trace = sim.run_trace([small], cold_start=True)
        assert trace.kernels[0].dram_bytes == pytest.approx(
            small.dram_read_bytes + small.write_bytes
        )


class TestStallAttribution:
    def test_memory_bound_kernel_blames_off_chip(self, sim):
        stats = sim.run_kernel(big_sgemv())
        total = sum(stats.stall_cycles.values())
        assert stats.stall_cycles["off_chip_memory"] / total > 0.7

    def test_all_categories_present(self, sim):
        stats = sim.run_kernel(big_sgemv())
        assert set(stats.stall_cycles) == {
            "off_chip_memory",
            "on_chip_memory",
            "synchronization",
            "other",
        }


class TestTraceSummary:
    def test_empty_trace_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.run_trace([])

    def test_totals(self, sim):
        trace = sim.run_trace([big_sgemv(), elementwise_kernel(512)])
        assert trace.total_time == pytest.approx(sum(k.time for k in trace.kernels))
        assert trace.num_launches == 2

    def test_time_fraction(self, sim):
        trace = sim.run_trace([big_sgemv(), elementwise_kernel(512)])
        assert trace.time_fraction("sgemv") + trace.time_fraction("lstm_ew") == pytest.approx(1.0)

    def test_speedup_and_energy_saving(self, sim):
        slow = sim.run_trace([big_sgemv()] * 4)
        fast = sim.run_trace([big_sgemv()])
        assert slow.speedup_vs(slow) == pytest.approx(1.0)
        assert fast.speedup_vs(slow) == pytest.approx(4.0, rel=0.05)
        assert 0 < fast.energy_saving_vs(slow) < 1

    def test_utilizations_bounded(self, sim):
        trace = sim.run_trace([big_sgemv(), elementwise_kernel(16)])
        assert 0 <= trace.mean_utilization("dram") <= 1
        assert 0 <= trace.mean_utilization("onchip") <= 1

    def test_unknown_utilization_kind(self, sim):
        trace = sim.run_trace([big_sgemv()])
        with pytest.raises(SimulationError):
            trace.mean_utilization("astral")

    def test_stall_breakdown_normalized(self, sim):
        trace = sim.run_trace([big_sgemv(), elementwise_kernel(16)])
        breakdown = trace.stall_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestEnergy:
    def test_energy_annotated(self, sim):
        stats = sim.run_kernel(big_sgemv())
        assert stats.energy > 0
        assert set(stats.energy_parts) == {"static", "compute", "dram", "onchip", "launch", "crm"}
        assert stats.energy == pytest.approx(sum(stats.energy_parts.values()))

    def test_crm_energy_only_with_crm(self, sim):
        plain = sim.run_kernel(big_sgemv())
        assert plain.energy_parts["crm"] == 0.0
        crm = sim.run_kernel(dataclasses.replace(big_sgemv(), uses_crm=True))
        assert crm.energy_parts["crm"] > 0.0

    def test_dram_energy_proportional_to_bytes(self, sim):
        stats = sim.run_kernel(big_sgemv())
        assert stats.energy_parts["dram"] == pytest.approx(
            stats.dram_bytes * TEGRA_X1.energy_per_dram_byte
        )


class TestLargeGPU:
    def test_m40_is_faster(self):
        mobile = TimingSimulator(TEGRA_X1).run_kernel(big_sgemv())
        server = TimingSimulator(TESLA_M40).run_kernel(big_sgemv())
        assert server.exec_time < mobile.exec_time

    def test_m40_caches_mobile_sized_weights(self):
        """On the M40 a 1 MB united matrix fits in L2 — the Section II-C
        reason the inter-cell problem is mobile specific."""
        small_u = sgemv_kernel(4 * 256, 256, 4.0, weight_id="U")
        sim = TimingSimulator(TESLA_M40)
        trace = sim.run_trace([small_u, small_u])
        assert trace.kernels[1].dram_bytes < 0.2 * trace.kernels[0].dram_bytes
