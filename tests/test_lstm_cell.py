"""Tests for the LSTM cell math (Eq. 1-5) and the DRS skip semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn.activations import sigmoid, tanh, hard_sigmoid
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_cell import (
    CellState,
    GATE_ORDER,
    LSTMCellWeights,
    input_projections,
    lstm_cell_step,
    run_reference_cell_sequence,
)

H, E = 8, 6


def small_weights(seed=0) -> LSTMCellWeights:
    return LSTMCellWeights.initialize(H, E, WeightInitializer(seed))


def step_inputs(weights, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=E)
    proj = {g: x @ weights.gate_w(g).T for g in GATE_ORDER}
    state = CellState(h=rng.normal(size=H) * 0.3, c=rng.normal(size=H))
    return proj, state


class TestWeights:
    def test_united_shapes(self, tiny_weights):
        assert tiny_weights.united_u().shape == (4 * tiny_weights.hidden_size,) * 1 + (
            tiny_weights.hidden_size,
        )
        assert tiny_weights.united_w().shape == (
            4 * tiny_weights.hidden_size,
            tiny_weights.input_size,
        )
        assert tiny_weights.united_b().shape == (4 * tiny_weights.hidden_size,)

    def test_united_order_is_f_i_c_o(self):
        w = small_weights()
        united = w.united_u()
        np.testing.assert_array_equal(united[:H], w.u_f)
        np.testing.assert_array_equal(united[H : 2 * H], w.u_i)
        np.testing.assert_array_equal(united[2 * H : 3 * H], w.u_c)
        np.testing.assert_array_equal(united[3 * H :], w.u_o)

    def test_shape_validation(self):
        w = small_weights()
        with pytest.raises(ShapeError):
            LSTMCellWeights(
                w_f=w.w_f,
                w_i=w.w_i,
                w_c=w.w_c,
                w_o=w.w_o,
                u_f=w.u_f[:-1],  # wrong shape
                u_i=w.u_i,
                u_c=w.u_c,
                u_o=w.u_o,
                b_f=w.b_f,
                b_i=w.b_i,
                b_c=w.b_c,
                b_o=w.b_o,
            )

    def test_gate_accessors(self):
        w = small_weights()
        for gate in GATE_ORDER:
            assert w.gate_u(gate).shape == (H, H)
            assert w.gate_w(gate).shape == (H, E)
            assert w.gate_b(gate).shape == (H,)


class TestCellStep:
    def test_matches_manual_equations(self):
        w = small_weights()
        proj, state = step_inputs(w)
        new, gates = lstm_cell_step(w, proj, state)

        f = sigmoid(proj["f"] + w.u_f @ state.h + w.b_f)
        i = sigmoid(proj["i"] + w.u_i @ state.h + w.b_i)
        g = tanh(proj["c"] + w.u_c @ state.h + w.b_c)
        o = sigmoid(proj["o"] + w.u_o @ state.h + w.b_o)
        c = f * state.c + i * g
        h = o * tanh(c)
        np.testing.assert_allclose(new.c, c)
        np.testing.assert_allclose(new.h, h)
        np.testing.assert_allclose(gates.f, f)
        np.testing.assert_allclose(gates.o, o)

    def test_hidden_output_is_bounded(self):
        w = small_weights()
        proj, state = step_inputs(w)
        new, _ = lstm_cell_step(w, proj, state)
        assert np.all(np.abs(new.h) <= 1.0)

    def test_hard_sigmoid_variant(self):
        w = small_weights()
        proj, state = step_inputs(w)
        exact, _ = lstm_cell_step(w, proj, state)
        hard, _ = lstm_cell_step(w, proj, state, sigmoid_fn=hard_sigmoid)
        # Different activation, same structure: outputs close but not equal.
        assert np.all(np.abs(hard.h) <= 1.0)
        assert np.max(np.abs(hard.h - exact.h)) < 0.5

    def test_skip_rows_zero_state_and_output(self):
        w = small_weights()
        proj, state = step_inputs(w)
        skip = np.zeros(H, dtype=bool)
        skip[[1, 4]] = True
        new, _ = lstm_cell_step(w, proj, state, skip_rows=skip)
        assert new.c[1] == 0.0 and new.c[4] == 0.0
        assert new.h[1] == 0.0 and new.h[4] == 0.0

    def test_skip_rows_do_not_change_kept_rows(self):
        w = small_weights()
        proj, state = step_inputs(w)
        skip = np.zeros(H, dtype=bool)
        skip[2] = True
        full, _ = lstm_cell_step(w, proj, state)
        skipped, _ = lstm_cell_step(w, proj, state, skip_rows=skip)
        keep = ~skip
        np.testing.assert_allclose(skipped.c[keep], full.c[keep])
        np.testing.assert_allclose(skipped.h[keep], full.h[keep])

    def test_skip_all_rows(self):
        w = small_weights()
        proj, state = step_inputs(w)
        new, _ = lstm_cell_step(w, proj, state, skip_rows=np.ones(H, dtype=bool))
        np.testing.assert_array_equal(new.c, 0.0)
        np.testing.assert_array_equal(new.h, 0.0)

    def test_output_gate_always_computed(self):
        """o_t must be exact even under skipping — it selects the rows."""
        w = small_weights()
        proj, state = step_inputs(w)
        _, gates_full = lstm_cell_step(w, proj, state)
        _, gates_skip = lstm_cell_step(
            w, proj, state, skip_rows=np.ones(H, dtype=bool)
        )
        np.testing.assert_allclose(gates_skip.o, gates_full.o)

    def test_skip_mask_shape_validated(self):
        w = small_weights()
        proj, state = step_inputs(w)
        with pytest.raises(ShapeError):
            lstm_cell_step(w, proj, state, skip_rows=np.zeros(H + 1, dtype=bool))

    def test_masked_full_computation_equals_sliced_skip(self):
        """Computing everything then zeroing equals true row skipping.

        This equivalence is what lets the batched executor use full
        matmuls + masks while remaining numerically identical to the
        hardware row skip.
        """
        w = small_weights()
        proj, state = step_inputs(w)
        skip = np.zeros(H, dtype=bool)
        skip[[0, 3, 7]] = True
        sliced, _ = lstm_cell_step(w, proj, state, skip_rows=skip)
        full, _ = lstm_cell_step(w, proj, state)
        masked_c = np.where(skip, 0.0, full.c)
        o = sigmoid(proj["o"] + w.u_o @ state.h + w.b_o)
        masked_h = o * tanh(masked_c)
        np.testing.assert_allclose(sliced.c, masked_c)
        np.testing.assert_allclose(sliced.h, masked_h)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_state_stays_finite(self, seed):
        w = small_weights(seed % 100)
        proj, state = step_inputs(w, seed)
        new, _ = lstm_cell_step(w, proj, state)
        assert np.all(np.isfinite(new.c)) and np.all(np.isfinite(new.h))


class TestBatchedStep:
    def test_batch_matches_per_sequence(self):
        w = small_weights()
        rng = np.random.default_rng(9)
        xs = rng.normal(size=(3, E))
        proj_batch = {g: xs @ w.gate_w(g).T for g in GATE_ORDER}
        h0 = rng.normal(size=(3, H)) * 0.2
        c0 = rng.normal(size=(3, H))
        batch_state, _ = lstm_cell_step(w, proj_batch, CellState(h=h0, c=c0))
        for b in range(3):
            single, _ = lstm_cell_step(
                w,
                {g: proj_batch[g][b] for g in GATE_ORDER},
                CellState(h=h0[b], c=c0[b]),
            )
            np.testing.assert_allclose(batch_state.h[b], single.h)
            np.testing.assert_allclose(batch_state.c[b], single.c)


class TestReferenceSequence:
    def test_shapes(self):
        w = small_weights()
        xs = np.random.default_rng(0).normal(size=(5, E))
        hs, cs = run_reference_cell_sequence(w, xs)
        assert hs.shape == (5, H) and cs.shape == (5, H)

    def test_rejects_bad_rank(self):
        w = small_weights()
        with pytest.raises(ShapeError):
            run_reference_cell_sequence(w, np.zeros(E))

    def test_initial_state_respected(self):
        w = small_weights()
        xs = np.random.default_rng(0).normal(size=(1, E))
        init = CellState(h=np.full(H, 0.5), c=np.full(H, 1.0))
        hs_init, _ = run_reference_cell_sequence(w, xs, initial=init)
        hs_zero, _ = run_reference_cell_sequence(w, xs)
        assert not np.allclose(hs_init, hs_zero)

    def test_input_projections_match_loop(self):
        w = small_weights()
        xs = np.random.default_rng(2).normal(size=(4, E))
        proj = input_projections(w, xs)
        for g in GATE_ORDER:
            for t in range(4):
                np.testing.assert_allclose(proj[g][t], w.gate_w(g) @ xs[t])
