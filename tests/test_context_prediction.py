"""Tests for the Eq. 6 predicted context link."""

import numpy as np
import pytest

from repro.core.context_prediction import ContextLinkPredictor, PredictedLink
from repro.errors import CalibrationError, ShapeError


class TestPredictedLink:
    def test_zeros(self):
        link = PredictedLink.zeros(5)
        np.testing.assert_array_equal(link.h_bar, 0.0)
        assert link.hidden_size == 5

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            PredictedLink(h_bar=np.zeros(3), c_bar=np.zeros(4))


class TestPredictor:
    def test_expectation_close_to_mean(self):
        rng = np.random.default_rng(0)
        samples_h = rng.normal(0.3, 0.2, size=(400, 6))
        samples_c = rng.normal(-0.5, 0.4, size=(400, 6))
        predictor = ContextLinkPredictor(6, num_bins=128)
        predictor.observe(samples_h, samples_c)
        link = predictor.fit()
        np.testing.assert_allclose(link.h_bar, samples_h.mean(axis=0), atol=0.02)
        np.testing.assert_allclose(link.c_bar, samples_c.mean(axis=0), atol=0.05)

    def test_histogram_expectation_of_bimodal(self):
        """Eq. 6 is an expectation, not a mode — bimodal data averages."""
        h = np.concatenate([np.full((100, 1), -1.0), np.full((100, 1), 1.0)])
        predictor = ContextLinkPredictor(1)
        predictor.observe(h, h)
        link = predictor.fit()
        assert abs(link.h_bar[0]) < 0.1

    def test_incremental_observation(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(50, 4))
        b = rng.normal(size=(70, 4))
        joint = ContextLinkPredictor(4)
        joint.observe(np.concatenate([a, b]), np.concatenate([a, b]))
        split = ContextLinkPredictor(4)
        split.observe(a, a)
        split.observe(b, b)
        assert split.num_samples == joint.num_samples == 120
        np.testing.assert_allclose(split.fit().h_bar, joint.fit().h_bar)

    def test_fit_without_samples(self):
        with pytest.raises(CalibrationError):
            ContextLinkPredictor(4).fit()

    def test_observe_shape_mismatch(self):
        predictor = ContextLinkPredictor(4)
        with pytest.raises(ShapeError):
            predictor.observe(np.zeros((5, 4)), np.zeros((5, 3)))

    def test_invalid_construction(self):
        with pytest.raises(CalibrationError):
            ContextLinkPredictor(0)
        with pytest.raises(CalibrationError):
            ContextLinkPredictor(4, num_bins=1)

    def test_single_vector_observation(self):
        predictor = ContextLinkPredictor(3)
        predictor.observe(np.ones(3) * 0.5, np.ones(3))
        link = predictor.fit()
        np.testing.assert_allclose(link.h_bar, 0.5, atol=0.05)
