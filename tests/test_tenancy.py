"""Tests for :mod:`repro.runtime.tenancy` multi-tenant zoo serving.

Covers the arena registry (cross-tenant dedup, precision siblings under
one fingerprint entry, refcounted teardown), weighted deficit
round-robin scheduling, per-tenant backpressure isolation, the fp64
strict no-op discipline through the tenancy path, per-tenant cache
attribution in merged records, the controller integration, and the
deterministic multi-tenant load generator.
"""

import numpy as np
import pytest

from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode
from repro.core.reference import ReferenceExecutor
from repro.errors import BackpressureError, ConfigurationError, RuntimeStateError
from repro.nn.network import LSTMNetwork
from repro.obs import Recorder, validate_run_dict
from repro.runtime import (
    ArenaRegistry,
    LoadSpec,
    OperatingPoint,
    SLOController,
    TenantSLO,
    TenantSpec,
    ZooServer,
    generate_tenant_arrivals,
    run_zoo_open_loop,
)
from repro.runtime.arena import fingerprint_network

HIDDEN = 24
INPUT = 20
SEQ_LEN = 12
VOCAB = 60
CLASSES = 3


def build_network(seed: int) -> LSTMNetwork:
    config = LSTMConfig(
        hidden_size=HIDDEN, num_layers=2, seq_length=SEQ_LEN, input_size=INPUT
    )
    return LSTMNetwork(config, VOCAB, CLASSES, seed=seed)


@pytest.fixture
def net_a() -> LSTMNetwork:
    return build_network(seed=3)


@pytest.fixture
def net_b() -> LSTMNetwork:
    return build_network(seed=9)


def make_tokens(rng: np.random.Generator, length: int = SEQ_LEN) -> np.ndarray:
    return rng.integers(0, VOCAB, size=length)


MODEL_TICK = 0.01


def flat_service(report) -> float:
    return MODEL_TICK


class TestArenaRegistry:
    def test_same_network_same_precision_deduplicates(self, net_a):
        with ArenaRegistry() as registry:
            first = registry.acquire(net_a)
            second = registry.acquire(net_a)
            assert first is second
            assert len(registry) == 1
            stats = registry.stats
            assert stats.acquires == 2
            assert stats.dedup_hits == 1
            assert stats.published_segments == 1
            assert stats.naive_bytes == 2 * stats.published_bytes
            assert stats.dedup_ratio == pytest.approx(0.5)

    def test_precision_sibling_reuses_the_fp64_fingerprint_entry(self, net_a):
        """Regression (satellite 3): an int8 re-publish of a network whose
        fp64 arena is already live must land under the *same* fingerprint
        entry — the quantized manifest is keyed by the dequantized
        network's fingerprint, not by a fresh key."""
        with ArenaRegistry() as registry:
            fp64_arena = registry.acquire(net_a, "fp64")
            int8_arena = registry.acquire(net_a, "int8")
            assert int8_arena is not fp64_arena
            assert registry.variants(net_a) == ("fp64", "int8")
            assert len(registry._entries) == 1  # one fingerprint entry
            assert len(registry) == 2  # two precision variants under it
            source_fp = fingerprint_network(net_a)
            assert fp64_arena.manifest.fingerprint == source_fp
            # The sibling publish path: a second int8 acquire attaches,
            # never re-publishes.
            again = registry.acquire(net_a, "int8")
            assert again is int8_arena
            assert registry.stats.published_segments == 2

    def test_distinct_networks_do_not_share(self, net_a, net_b):
        with ArenaRegistry() as registry:
            registry.acquire(net_a)
            registry.acquire(net_b)
            assert registry.stats.dedup_hits == 0
            assert len(registry._entries) == 2

    def test_release_refcounts_and_unlinks_last(self, net_a):
        registry = ArenaRegistry()
        first = registry.acquire(net_a)
        registry.acquire(net_a)
        registry.release(first)
        assert len(registry) == 1  # one reference still out
        registry.release(first)
        assert len(registry) == 0
        assert registry.stats.published_segments == 0

    def test_release_unknown_arena_raises(self, net_a, net_b):
        with ArenaRegistry() as registry, ArenaRegistry() as other:
            registry.acquire(net_a)
            foreign = other.acquire(net_b)
            with pytest.raises(RuntimeStateError):
                registry.release(foreign)

    def test_quantized_acquire_serves_dequantized_network(self, net_a):
        with ArenaRegistry() as registry:
            arena = registry.acquire(net_a, "int8")
            assert arena.manifest.precision == "int8"
            cells = arena.quantized_cells()
            assert len(cells) == len(net_a.layers)


class TestScheduling:
    def test_wdrr_serves_in_weight_ratio(self, net_a):
        rng = np.random.default_rng(0)
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="heavy", weight=3.0), net_a)
            server.add_tenant(TenantSpec(name="light", weight=1.0), net_a)
            for i in range(24):
                for name in ("heavy", "light"):
                    server.submit(name, f"{name}-{i}", make_tokens(rng), now=0.0)
            served = {"heavy": 0, "light": 0}
            for _ in range(8):
                report = server.tick(now=0.0, service_model=flat_service)
                served[report.tenant] += report.batch
            assert served["heavy"] == 3 * served["light"] > 0

    def test_equal_length_fifo_batching(self, net_a):
        rng = np.random.default_rng(1)
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="t", weight=4.0, max_batch=8), net_a)
            # Head sets length 12; the length-7 request is skipped by the
            # first batch and served later, FIFO within its length class.
            server.submit("t", "a", make_tokens(rng, 12), now=0.0)
            server.submit("t", "b", make_tokens(rng, 7), now=0.0)
            server.submit("t", "c", make_tokens(rng, 12), now=0.0)
            first = server.tick(now=0.0, service_model=flat_service)
            assert first.seq_length == 12
            assert [r.session_id for r in first.completed] == ["a", "c"]
            second = server.tick(now=0.0, service_model=flat_service)
            assert second.seq_length == 7
            assert [r.session_id for r in second.completed] == ["b"]

    def test_idle_tick_reports_no_tenant(self, net_a):
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="t"), net_a)
            report = server.tick(now=1.0)
            assert report.tenant is None
            assert report.batch == 0
            assert report.end_s == 1.0

    def test_completion_carries_service_cost_and_queue_wait(self, net_a):
        rng = np.random.default_rng(2)
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="t"), net_a)
            ticket = server.submit("t", "s", make_tokens(rng), now=1.0)
            report = server.tick(now=3.0, service_model=lambda r: 0.5)
            assert report.end_s == pytest.approx(3.5)
            assert ticket.done
            assert ticket.result.latency_s == pytest.approx(2.5)
            assert report.queue_wait_s == pytest.approx(2.0)


class TestBackpressure:
    def test_per_tenant_queue_bound_isolates_neighbours(self, net_a):
        rng = np.random.default_rng(3)
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="noisy", queue_limit=2), net_a)
            server.add_tenant(TenantSpec(name="quiet", queue_limit=2), net_a)
            server.submit("noisy", "n0", make_tokens(rng), now=0.0)
            server.submit("noisy", "n1", make_tokens(rng), now=0.0)
            with pytest.raises(BackpressureError):
                server.submit("noisy", "n2", make_tokens(rng), now=0.0)
            assert server.tenant_stats("noisy").shed_requests == 1
            # The neighbour is untouched by the noisy tenant's overflow.
            server.submit("quiet", "q0", make_tokens(rng), now=0.0)
            assert server.tenant_queue_depth("quiet") == 1
            assert server.tenant_stats("quiet").shed_requests == 0


class TestFp64NoOpDiscipline:
    def test_fp64_tenant_is_bit_identical_to_reference(self, net_a, net_b):
        """A controller-less fp64 tenant served through shared arenas,
        shared caches, and WDRR interleaving with other tenants must
        produce logits bit-identical to the frozen reference."""
        rng = np.random.default_rng(4)
        tokens = [make_tokens(rng) for _ in range(6)]
        reference = ReferenceExecutor(
            net_a, ExecutionConfig(mode=ExecutionMode.BASELINE)
        )
        expected = reference.run_batch(np.stack(tokens)).logits
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="fp64", max_batch=2), net_a)
            server.add_tenant(
                TenantSpec(name="other", point=OperatingPoint(precision="int8")),
                net_b,
            )
            tickets = []
            for i, tok in enumerate(tokens):
                tickets.append(server.submit("fp64", f"s{i}", tok, now=0.0))
                server.submit("other", f"o{i}", make_tokens(rng), now=0.0)
            server.drain(now=0.0, service_model=flat_service)
            for i, ticket in enumerate(tickets):
                assert np.array_equal(ticket.result.logits, expected[i])
                assert ticket.result.prediction == np.argmax(expected[i])


class TestRecords:
    def test_tick_and_merged_records_validate_with_attribution(self, net_a, net_b):
        rng = np.random.default_rng(5)
        recorder = Recorder()
        with ZooServer(recorder=recorder) as server:
            server.add_tenant(TenantSpec(name="alpha"), net_a)
            server.add_tenant(
                TenantSpec(name="beta", point=OperatingPoint(precision="int8")),
                net_b,
            )
            for i in range(3):
                server.submit("alpha", f"a{i}", make_tokens(rng), now=0.0)
                server.submit("beta", f"b{i}", make_tokens(rng, 8), now=0.0)
            server.drain(now=0.0, service_model=flat_service)
            # Every per-tick record stands alone under the v1 schema.
            for record in server.tick_records():
                validate_run_dict(record.to_dict())
                assert record.label in ("alpha", "beta")
                assert record.config["tenant"] == record.label
            merged = server.merged_record()
        validate_run_dict(merged.to_dict())
        assert merged.cache["alpha/program_misses"] >= 1
        assert merged.cache["beta/program_misses"] >= 1
        # Tenants disagree on precision; the merge records the dispute.
        assert "precision" in merged.config["varied"]
        assert merged.config["backend"] == "numpy"

    def test_merged_record_none_without_recorder(self, net_a):
        rng = np.random.default_rng(6)
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="t"), net_a)
            server.submit("t", "s", make_tokens(rng), now=0.0)
            server.drain(now=0.0, service_model=flat_service)
            assert server.merged_record() is None


class TestSharedCaches:
    def test_second_tenant_rides_first_tenants_programs(self, net_a):
        rng = np.random.default_rng(7)
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="warm"), net_a)
            server.add_tenant(TenantSpec(name="cold"), net_a)
            server.submit("warm", "w", make_tokens(rng), now=0.0)
            server.drain(now=0.0, service_model=flat_service)
            before = server.program_cache.stats.as_dict()
            server.submit("cold", "c", make_tokens(rng), now=0.0)
            server.drain(now=0.0, service_model=flat_service)
            after = server.program_cache.stats.as_dict()
            assert after["program_misses"] == before["program_misses"]
            assert after["program_hits"] > before["program_hits"]

    def test_registry_dedup_across_tenants(self, net_a):
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="one"), net_a)
            server.add_tenant(TenantSpec(name="two"), net_a)
            assert server.registry.stats.dedup_hits == 1
            assert server.registry.stats.published_segments == 1


class TestControllerIntegration:
    def test_overloaded_tenant_steps_to_int8_and_recovers(self, net_a):
        frontier = [OperatingPoint(), OperatingPoint(precision="int8")]
        controller = SLOController(
            frontier,
            TenantSLO(p99_latency_s=0.05, min_agreement=0.9),
            hysteresis=2,
            cooldown_ticks=2,
            min_latency_samples=4,
        )
        spec = LoadSpec(
            duration_s=1.5,
            session_rate=40.0,
            seed=5,
            session_len_min=SEQ_LEN,
            session_len_max=SEQ_LEN,
        )
        arrivals = generate_tenant_arrivals(spec, {"t": 1.0}, {"t": VOCAB})
        with ZooServer() as server:
            server.add_tenant(
                TenantSpec(name="t", shadow_every=2, queue_limit=256),
                net_a,
                controller=controller,
            )
            run_zoo_open_loop(
                server,
                arrivals,
                tick_interval_s=0.002,
                service_model=lambda r: (
                    0.08 if r.point.precision == "fp64" else 0.004
                ),
            )
            assert controller.moves
            assert controller.moves[0].reason == "latency"
            assert server.tenant_point("t").precision == "int8"
            shadow = server.tenant_shadow("t")
            assert shadow.batches_sampled > 0

    def test_controller_requires_shadow_sampling(self, net_a):
        controller = SLOController(
            [OperatingPoint()], TenantSLO(p99_latency_s=0.1)
        )
        with ZooServer() as server:
            with pytest.raises(ConfigurationError):
                server.add_tenant(
                    TenantSpec(name="t"), net_a, controller=controller
                )

    def test_open_loop_replays_identically(self, net_a):
        spec = LoadSpec(
            duration_s=0.5,
            session_rate=30.0,
            seed=8,
            session_len_min=SEQ_LEN,
            session_len_max=SEQ_LEN,
        )
        arrivals = generate_tenant_arrivals(spec, {"t": 1.0}, {"t": VOCAB})

        def one_run() -> dict:
            with ZooServer() as server:
                server.add_tenant(TenantSpec(name="t", queue_limit=4), net_a)
                report = run_zoo_open_loop(
                    server,
                    arrivals,
                    tick_interval_s=0.002,
                    service_model=lambda r: 0.05,
                )
            return report.as_dict()

        assert one_run() == one_run()


class TestValidation:
    def test_duplicate_tenant_rejected(self, net_a):
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="t"), net_a)
            with pytest.raises(ConfigurationError):
                server.add_tenant(TenantSpec(name="t"), net_a)

    def test_unknown_tenant_rejected(self, net_a):
        with ZooServer() as server:
            with pytest.raises(ConfigurationError):
                server.submit("ghost", "s", np.arange(4), now=0.0)

    @pytest.mark.parametrize("tokens", [np.zeros((2, 3), dtype=int), np.zeros(0)])
    def test_bad_tokens_rejected(self, net_a, tokens):
        with ZooServer() as server:
            server.add_tenant(TenantSpec(name="t"), net_a)
            with pytest.raises(ConfigurationError):
                server.submit("t", "s", tokens, now=0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "weight": 0.0},
            {"name": "t", "max_batch": 0},
            {"name": "t", "queue_limit": 0},
            {"name": "t", "shadow_every": -1},
        ],
    )
    def test_bad_tenant_spec_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantSpec(**kwargs)

    def test_bad_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            ZooServer(quantum=0.0)


class TestTenantLoadgen:
    WEIGHTS = {"a": 3.0, "b": 1.0}
    VOCABS = {"a": 40, "b": 7}

    def test_deterministic_and_time_ordered(self):
        spec = LoadSpec(duration_s=4.0, session_rate=30.0, seed=13)
        first = generate_tenant_arrivals(spec, self.WEIGHTS, self.VOCABS)
        second = generate_tenant_arrivals(spec, self.WEIGHTS, self.VOCABS)
        assert len(first) == len(second) > 0
        assert all(
            x.time_s == y.time_s
            and x.tenant == y.tenant
            and x.session_id == y.session_id
            and np.array_equal(x.tokens, y.tokens)
            for x, y in zip(first, second)
        )
        times = [a.time_s for a in first]
        assert times == sorted(times)

    def test_mix_follows_weights_and_vocab_bounds(self):
        spec = LoadSpec(duration_s=30.0, session_rate=30.0, seed=21)
        arrivals = generate_tenant_arrivals(spec, self.WEIGHTS, self.VOCABS)
        counts = {"a": 0, "b": 0}
        for arrival in arrivals:
            counts[arrival.tenant] += 1
            assert arrival.tokens.max() < self.VOCABS[arrival.tenant]
            assert arrival.session_id.startswith(f"{arrival.tenant}-s")
        share = counts["a"] / (counts["a"] + counts["b"])
        assert 0.7 <= share <= 0.8  # 3:1 target = 0.75

    @pytest.mark.parametrize(
        "weights,vocabs",
        [
            ({}, {}),
            ({"a": -1.0}, {"a": 10}),
            ({"a": 0.0}, {"a": 10}),
            ({"a": 1.0}, {}),
            ({"a": 1.0}, {"a": 1}),
        ],
    )
    def test_bad_mix_rejected(self, weights, vocabs):
        spec = LoadSpec(duration_s=1.0, session_rate=5.0, seed=0)
        with pytest.raises(ConfigurationError):
            generate_tenant_arrivals(spec, weights, vocabs)
