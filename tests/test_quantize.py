"""Quantized weight memory: error bounds, policy plumbing, arena layout.

Covers the ``repro.nn.quantize`` contract end to end:

* **Per-element error bounds** (hypothesis property tests): the symmetric
  per-row int8 scheme reconstructs within ``scale / 2`` everywhere,
  all-zero rows exactly; fp16 stays within its ``2**-11`` relative
  rounding in the normal range; ``dequantize_rows`` is bit-identical to
  slicing the full dequantization (the fused-dequant DRS path relies on
  it). GRU cells are quantized through the same primitives.
* **Policy plumbing**: the fp64 policy is a strict no-op — bit-identical
  to the frozen reference in all five execution modes — and quantized
  policies keep end-task predictions within the documented tolerance.
* **Arena layout**: quantized publish/attach round-trips byte-identical
  payloads; corrupt manifests (misaligned, overlapping, out-of-bounds)
  raise :class:`~repro.errors.ArenaLayoutError` before any view exists;
  mixed-dtype segments tear down without leaks.
* **Tuner**: the joint (thresholds x precision) sweep produces points
  whose traffic reduction reflects the storage policy and whose selection
  respects the accuracy target.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.pipeline import OptimizedLSTM
from repro.core.reference import ReferenceExecutor
from repro.core.tuner import (
    PrecisionSweepPoint,
    accuracy_guided_precision,
    sweep_precision_thresholds,
)
from repro.errors import ArenaLayoutError, CalibrationError, ConfigurationError
from repro.nn.gru import GRUCellWeights
from repro.nn.initializers import WeightInitializer
from repro.nn.network import LSTMNetwork
from repro.nn.quantize import (
    INT8_LEVELS,
    PRECISIONS,
    Precision,
    QuantizedMatrix,
    dequantize_rows,
    quantize_cell_weights,
    quantize_matrix,
    quantize_network_layers,
    quantize_rows,
)
from repro.runtime import WeightArena, leaked_segments
from repro.runtime.arena import validate_layout

#: Documented end-task tolerance: minimum prediction agreement with the
#: fp64 policy on the small test workloads (mirrors bench_quantization's
#: gate on the acceptance workload).
MIN_AGREEMENT = {"fp16": 1.0, "int8": 0.9}

MODE_CONFIGS = {
    ExecutionMode.BASELINE: {},
    ExecutionMode.INTER: {"alpha_inter": 50.0, "mts": 3},
    ExecutionMode.INTRA: {"alpha_intra": 0.4},
    ExecutionMode.COMBINED: {"alpha_inter": 50.0, "alpha_intra": 0.4, "mts": 3},
    ExecutionMode.ZERO_PRUNE: {},
}

ALL_MODES = list(ExecutionMode)


def build_case(hidden=20, layers=2, seq=10, batch=5, seed=3):
    config = LSTMConfig(
        hidden_size=hidden, num_layers=layers, seq_length=seq, input_size=hidden
    )
    network = LSTMNetwork(config, 60, 5, seed=seed)
    rng = np.random.default_rng(seed + 1)
    tokens = rng.integers(0, 60, size=(batch, seq))
    return network, tokens


matrices = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


class TestQuantizePrimitives:
    @settings(max_examples=200, deadline=None)
    @given(matrix=matrices)
    def test_int8_error_bounded_by_half_step(self, matrix):
        codes, scales = quantize_rows(matrix)
        assert codes.dtype == np.int8
        assert np.abs(codes.view(np.int8)).max(initial=0) <= INT8_LEVELS
        err = np.abs(dequantize_rows(codes, scales) - matrix)
        # Rows with scale 0 are all-zero rows: exact reconstruction.
        bound = np.where(scales > 0.0, scales / 2.0, 0.0)
        assert np.all(err <= bound[:, None] + 1e-300)

    @settings(max_examples=100, deadline=None)
    @given(matrix=matrices)
    def test_zero_rows_reconstruct_exactly(self, matrix):
        matrix[0, :] = 0.0
        codes, scales = quantize_rows(matrix)
        assert scales[0] == 0.0
        assert np.array_equal(dequantize_rows(codes, scales)[0], matrix[0])

    @settings(max_examples=100, deadline=None)
    @given(
        matrix=hnp.arrays(
            dtype=np.float64,
            shape=(6, 8),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    def test_fp16_relative_error_in_normal_range(self, matrix):
        q = quantize_matrix(matrix, Precision.parse("fp16"))
        deq = q.dequantize()
        # 2**-11 relative bound holds for fp16-normal magnitudes; smaller
        # values land in the subnormal range where the error is absolute.
        normal = np.abs(matrix) >= 2.0**-14
        rel = np.abs(deq - matrix)[normal] / np.abs(matrix)[normal]
        assert rel.size == 0 or rel.max() <= 2.0**-11
        assert np.all(np.abs(deq - matrix)[~normal] <= 2.0**-24)

    @settings(max_examples=100, deadline=None)
    @given(
        # Bounded to the fp16-representable range: the property covers
        # both policies, and +/-1e6 would overflow the fp16 cast.
        matrix=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        ),
        data=st.data(),
    )
    def test_dequantize_rows_matches_full_dequant_slice(self, matrix, data):
        rows = data.draw(
            st.lists(
                st.integers(0, matrix.shape[0] - 1), min_size=1, max_size=6
            )
        )
        rows = np.asarray(rows)
        for tag in ("int8", "fp16"):
            q = quantize_matrix(matrix, Precision.parse(tag))
            assert np.array_equal(q.dequantize_rows(rows), q.dequantize()[rows])

    def test_precision_policy_parsing_and_bytes(self):
        assert Precision.parse("fp64") == Precision()
        assert not Precision().is_quantized
        assert Precision.parse(Precision(weights="int8")).tag == "int8"
        assert [Precision.parse(p).storage_bytes for p in PRECISIONS] == [8, 2, 1]
        assert Precision.parse("int8").scale_bytes_per_row == 8
        assert Precision.parse("fp16").scale_bytes_per_row == 0
        with pytest.raises(ConfigurationError):
            Precision.parse("fp32")
        with pytest.raises(ConfigurationError):
            quantize_matrix(np.zeros((2, 2)), Precision())

    def test_payload_bytes_reflect_storage_ratio(self):
        matrix = np.random.default_rng(0).normal(size=(16, 16))
        int8 = quantize_matrix(matrix, Precision.parse("int8"))
        fp16 = quantize_matrix(matrix, Precision.parse("fp16"))
        assert int8.payload_bytes == 16 * 16 + 16 * 8  # codes + fp64 scales
        assert fp16.payload_bytes == 16 * 16 * 2
        assert isinstance(int8, QuantizedMatrix)


class TestGRUQuantization:
    def test_gru_cell_quantizes_with_bounded_error(self):
        init = WeightInitializer(seed=7)
        weights = GRUCellWeights.initialize(12, 10, init)
        cell = quantize_cell_weights(weights, Precision.parse("int8"))
        assert isinstance(cell.dequantized, GRUCellWeights)
        for gate in ("z", "r", "n"):
            for store, prefix in ((cell.w, "w"), (cell.u, "u")):
                original = getattr(weights, f"{prefix}_{gate}")
                q = store[gate]
                err = np.abs(q.dequantize() - original)
                bound = np.where(q.scales > 0.0, q.scales / 2.0, 0.0)
                assert np.all(err <= bound[:, None])
            # Biases pass through untouched (same object, not a copy).
            assert getattr(cell.dequantized, f"b_{gate}") is getattr(
                weights, f"b_{gate}"
            )

    def test_unknown_cell_type_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_cell_weights(object(), Precision.parse("int8"))


class TestExecutorPolicy:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    def test_fp64_policy_is_bit_identical_to_reference(self, mode):
        network, tokens = build_case()
        config = ExecutionConfig(mode=mode, **MODE_CONFIGS[mode])
        assert config.precision == Precision()
        out = LSTMExecutor(network, config).run_batch(tokens)
        ref = ReferenceExecutor(network, config).run_batch(tokens)
        assert np.array_equal(out.logits, ref.logits)

    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("tag", ["fp16", "int8"])
    def test_quantized_predictions_within_tolerance(self, mode, tag):
        # A bigger batch than the other cases: agreement is a per-sequence
        # fraction, so 5 sequences would quantize the metric itself to
        # 20 % steps.
        network, tokens = build_case(batch=20)
        config = ExecutionConfig(mode=mode, **MODE_CONFIGS[mode])
        base = LSTMExecutor(network, config).run_batch(tokens)
        quant = LSTMExecutor(
            network, dataclasses.replace(config, precision=tag)
        ).run_batch(tokens)
        agreement = float(np.mean(quant.predictions() == base.predictions()))
        assert agreement >= MIN_AGREEMENT[tag]
        # Quantization must actually change the weights (not a no-op).
        assert not np.array_equal(quant.logits, base.logits) or tag == "fp16"

    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    def test_compiled_and_interpreted_agree_under_quantization(self, mode):
        network, tokens = build_case()
        config = ExecutionConfig(
            mode=mode, precision="int8", **MODE_CONFIGS[mode]
        )
        compiled = LSTMExecutor(network, config).run_batch(tokens)
        interpreted = LSTMExecutor(network, config, compile=False).run_batch(tokens)
        assert np.array_equal(compiled.logits, interpreted.logits)

    def test_quantized_cells_param_requires_quantized_precision(self):
        network, _ = build_case()
        cells = quantize_network_layers(network, Precision.parse("int8"))
        with pytest.raises(ConfigurationError):
            LSTMExecutor(
                network,
                ExecutionConfig(mode=ExecutionMode.BASELINE),
                quantized_cells=cells,
            )


class TestQuantizedArena:
    def test_quantized_publish_attach_round_trip(self):
        network, tokens = build_case()
        config = ExecutionConfig(
            mode=ExecutionMode.COMBINED,
            precision="int8",
            **MODE_CONFIGS[ExecutionMode.COMBINED],
        )
        expected = LSTMExecutor(network, config).run_batch(tokens)
        with WeightArena.publish(network, precision="int8") as arena:
            assert arena.manifest.precision == "int8"
            with WeightArena.attach(arena.manifest) as attached:
                cells = attached.quantized_cells()
                out = LSTMExecutor(
                    network, config, quantized_cells=cells
                ).run_batch(tokens)
                assert np.array_equal(out.logits, expected.logits)
        assert leaked_segments() == []

    def test_quantized_cells_byte_identical_to_direct_quantization(self):
        network, _ = build_case()
        direct = quantize_network_layers(network, Precision.parse("int8"))
        with WeightArena.publish(network, precision="int8") as arena:
            rebuilt = arena.quantized_cells()
        for a, b in zip(direct, rebuilt):
            for gate in ("f", "i", "c", "o"):
                for store_a, store_b in ((a.w, b.w), (a.u, b.u)):
                    assert np.array_equal(store_a[gate].data, store_b[gate].data)
                    assert np.array_equal(store_a[gate].scales, store_b[gate].scales)

    def test_quantized_segment_is_smaller(self):
        network, _ = build_case(hidden=32)
        with WeightArena.publish(network) as fp64_arena:
            fp64_bytes = fp64_arena.manifest.total_bytes
        with WeightArena.publish(network, precision="int8") as int8_arena:
            int8_bytes = int8_arena.manifest.total_bytes
        # Embedding/head/biases stay fp64, so well short of 8x — but the
        # gate payloads dominate and the segment must clearly shrink.
        assert int8_bytes < fp64_bytes / 2
        assert leaked_segments() == []

    def test_quantized_cells_on_fp64_manifest_rejected(self):
        network, _ = build_case()
        with WeightArena.publish(network) as arena:
            with pytest.raises(ConfigurationError):
                arena.quantized_cells()

    def test_corrupt_layouts_raise_arena_layout_error(self):
        network, _ = build_case()
        with WeightArena.publish(network, precision="int8") as arena:
            manifest = arena.manifest
            size = manifest.total_bytes

            def tampered(**changes):
                entries = list(manifest.entries)
                entries[1] = dataclasses.replace(entries[1], **changes)
                return dataclasses.replace(manifest, entries=tuple(entries))

            # Misaligned offset (valid bytes, wrong stride discipline).
            with pytest.raises(ArenaLayoutError, match="aligned"):
                validate_layout(tampered(offset=manifest.entries[1].offset + 1), size)
            # Overlap with the previous entry.
            with pytest.raises(ArenaLayoutError, match="overlaps"):
                validate_layout(tampered(offset=manifest.entries[0].offset), size)
            # Past the end of the segment.
            with pytest.raises(ArenaLayoutError, match="past"):
                validate_layout(
                    tampered(shape=(10_000, 10_000)), size
                )
            # Manifest claims more bytes than the segment maps.
            with pytest.raises(ArenaLayoutError, match="maps only"):
                validate_layout(
                    dataclasses.replace(manifest, total_bytes=size + 1), size
                )
        assert leaked_segments() == []


class TestFig14Workload:
    def test_mr_accuracy_delta_within_tolerance(self):
        """End-task accuracy delta on a Table II app (fig. 14/18 workloads).

        Compares quantized predictions against the fp64 policy *in the
        same mode*, so the delta charges quantization alone, not the
        skipping it rides on.
        """
        app = OptimizedLSTM.from_app("MR", seed=0)
        app.calibrate(num_sequences=4)
        tokens = app.sample_tokens(16, seed=99)
        for mode, kwargs in (
            (ExecutionMode.BASELINE, {}),
            (ExecutionMode.COMBINED, {"threshold_index": 2}),
        ):
            exact = app.run(tokens, mode=mode, **kwargs)
            for tag, tolerance in MIN_AGREEMENT.items():
                quant = app.run(tokens, mode=mode, precision=tag, **kwargs)
                assert quant.agreement_with(exact) >= tolerance, (mode, tag)


class TestPrecisionSweep:
    def test_joint_sweep_and_accuracy_guided_selection(self):
        network, tokens = build_case(hidden=16, seq=8, batch=3)
        app = OptimizedLSTM(network)
        app.calibrate(num_sequences=3)
        points = sweep_precision_thresholds(
            app, tokens, threshold_indices=[0, 2], precisions=("fp64", "int8")
        )
        assert len(points) == 4
        tags = {p.precision for p in points}
        assert tags == {"fp64", "int8"}
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0
            assert point.weight_bytes_moved > 0.0
            assert point.traffic_reduction >= 1.0
        int8_points = [p for p in points if p.precision == "int8"]
        fp64_points = [p for p in points if p.precision == "fp64"]
        # Same thresholds, smaller storage: int8 must move fewer bytes.
        assert max(p.weight_bytes_moved for p in int8_points) < min(
            p.weight_bytes_moved for p in fp64_points
        )
        choice = accuracy_guided_precision(points, target_accuracy=0.0)
        assert choice.weight_bytes_moved == min(p.weight_bytes_moved for p in points)
        with pytest.raises(CalibrationError):
            accuracy_guided_precision([], target_accuracy=0.9)

    def test_traffic_reduction_handles_zero_moved(self):
        point = PrecisionSweepPoint(
            threshold_index=0,
            alpha_inter=0.0,
            alpha_intra=0.0,
            precision="fp64",
            accuracy=1.0,
            mean_time=1.0,
            speedup=1.0,
            weight_bytes_fp64=0.0,
            weight_bytes_moved=0.0,
        )
        assert point.traffic_reduction == 1.0
