"""Tests for the Table II registry and model-geometry configuration."""

import dataclasses

import pytest

from repro.config import (
    APP_NAMES,
    AppConfig,
    LSTMConfig,
    TABLE2_APPS,
    TaskFamily,
    get_app,
)
from repro.errors import ConfigurationError


class TestLSTMConfig:
    def test_defaults_input_size_to_hidden(self):
        cfg = LSTMConfig(hidden_size=64, num_layers=2, seq_length=10)
        assert cfg.effective_input_size == 64

    def test_layer_input_sizes(self):
        cfg = LSTMConfig(hidden_size=64, num_layers=3, seq_length=10, input_size=32)
        assert cfg.layer_input_size(0) == 32
        assert cfg.layer_input_size(1) == 64
        assert cfg.layer_input_size(2) == 64

    def test_layer_index_out_of_range(self):
        cfg = LSTMConfig(hidden_size=64, num_layers=1, seq_length=10)
        with pytest.raises(ConfigurationError):
            cfg.layer_input_size(1)

    def test_recurrent_weight_bytes(self):
        cfg = LSTMConfig(hidden_size=256, num_layers=1, seq_length=10)
        assert cfg.recurrent_weight_bytes == 4 * 256 * 256 * 4

    @pytest.mark.parametrize("field,value", [
        ("hidden_size", 0),
        ("num_layers", 0),
        ("seq_length", -1),
        ("dtype_bytes", 3),
    ])
    def test_validation(self, field, value):
        kwargs = dict(hidden_size=8, num_layers=1, seq_length=4)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            LSTMConfig(**kwargs)

    def test_scaled_changes_capacity(self):
        cfg = LSTMConfig(hidden_size=64, num_layers=2, seq_length=10)
        scaled = cfg.scaled(hidden_size=128, seq_length=20)
        assert scaled.hidden_size == 128 and scaled.seq_length == 20
        assert scaled.num_layers == cfg.num_layers

    def test_scaled_preserves_when_omitted(self):
        cfg = LSTMConfig(hidden_size=64, num_layers=2, seq_length=10)
        assert cfg.scaled().hidden_size == 64


class TestTable2:
    def test_all_six_apps_present(self):
        assert set(APP_NAMES) == {"IMDB", "MR", "BABI", "SNLI", "PTB", "MT"}

    @pytest.mark.parametrize("name,hidden,layers,length", [
        ("IMDB", 512, 3, 80),
        ("MR", 256, 1, 22),
        ("BABI", 256, 3, 86),
        ("SNLI", 300, 2, 100),
        ("PTB", 650, 3, 200),
        ("MT", 500, 4, 50),
    ])
    def test_paper_geometries(self, name, hidden, layers, length):
        app = TABLE2_APPS[name]
        assert app.model.hidden_size == hidden
        assert app.model.num_layers == layers
        assert app.model.seq_length == length

    def test_task_families(self):
        assert TABLE2_APPS["PTB"].family is TaskFamily.LANGUAGE_MODELING
        assert TABLE2_APPS["MT"].family is TaskFamily.MACHINE_TRANSLATION
        assert TABLE2_APPS["BABI"].family is TaskFamily.QUESTION_ANSWERING

    def test_lookup_case_insensitive(self):
        assert get_app("ptb") is TABLE2_APPS["PTB"]

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            get_app("NOPE")

    def test_app_config_validation(self):
        model = LSTMConfig(hidden_size=8, num_layers=1, seq_length=4)
        with pytest.raises(ConfigurationError):
            AppConfig(
                name="X",
                family=TaskFamily.SENTIMENT_CLASSIFICATION,
                model=model,
                vocab_size=1,
                num_classes=2,
            )

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TABLE2_APPS["MR"].model.hidden_size = 1
