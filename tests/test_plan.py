"""Tests for the execution-plan records."""

import pytest

from repro.core.plan import LayerPlanRecord, SequencePlan, TissueRecord
from repro.errors import PlanError


def make_record(seq_length=4, tissue_sizes=(2, 2), skips=(0.5, 0.0)):
    tissues = []
    t = 0
    for size, skip in zip(tissue_sizes, skips):
        cells = [(0, t + k) for k in range(size)]
        t += size
        tissues.append(TissueRecord(cells=cells, skip_fraction=skip))
    return LayerPlanRecord(
        layer_index=0,
        hidden_size=8,
        input_size=8,
        seq_length=seq_length,
        sublayer_lengths=[seq_length],
        tissues=tissues,
    )


class TestTissueRecord:
    def test_size(self):
        assert TissueRecord(cells=[(0, 0), (1, 3)]).size == 2


class TestLayerPlanRecord:
    def test_stats(self):
        rec = make_record()
        assert rec.num_tissues == 2
        assert rec.mean_tissue_size == 2.0
        assert rec.mean_skip_fraction == pytest.approx(0.25)

    def test_num_sublayers_defaults_to_one(self):
        rec = make_record()
        rec.sublayer_lengths = []
        assert rec.num_sublayers == 1

    def test_validate_passes_for_complete_coverage(self):
        make_record().validate()

    def test_validate_detects_missing_cells(self):
        rec = make_record()
        rec.tissues.pop()
        with pytest.raises(PlanError):
            rec.validate()

    def test_validate_detects_inconsistent_sublayers(self):
        rec = make_record()
        rec.sublayer_lengths = [1, 1]
        with pytest.raises(PlanError):
            rec.validate()

    def test_empty_tissue_stats(self):
        rec = LayerPlanRecord(
            layer_index=0, hidden_size=4, input_size=4, seq_length=1
        )
        assert rec.mean_tissue_size == 0.0
        assert rec.mean_skip_fraction == 0.0


class TestSequencePlan:
    def test_aggregates(self):
        plan = SequencePlan(layers=[make_record(), make_record()])
        assert plan.total_breakpoints == 0
        assert plan.mean_tissue_size == 2.0
        assert plan.mean_skip_fraction == pytest.approx(0.25)

    def test_breakpoints_counted(self):
        rec = make_record()
        rec.breakpoints = [2]
        plan = SequencePlan(layers=[rec])
        assert plan.total_breakpoints == 1

    def test_empty_plan(self):
        plan = SequencePlan(layers=[])
        assert plan.mean_tissue_size == 0.0
