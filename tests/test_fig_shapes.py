"""Fast shape checks of the motivation figures on a mid-sized model.

The full benchmark suite validates the figures on the real Table II
geometries; these tests keep the same claims under CI-speed constraints by
using a single mid-sized model where the memory phenomena already appear.
"""

import numpy as np
import pytest

from repro.core.tissue import calibrate_mts
from repro.core.trace_builder import forced_tissue_layer_trace
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import TEGRA_X1

HIDDEN, LENGTH = 200, 40


@pytest.fixture(scope="module")
def sweep_times():
    sim = TimingSimulator(TEGRA_X1)
    times = {}
    for size in range(1, 11):
        trace = sim.run_trace(
            forced_tissue_layer_trace(TEGRA_X1, HIDDEN, LENGTH, size)
        )
        times[size] = trace.total_time
    return times


class TestFig9Shape:
    def test_performance_rises_then_falls(self, sweep_times):
        perf = [sweep_times[1] / sweep_times[s] for s in range(1, 11)]
        knee = int(np.argmax(perf)) + 1
        assert 3 <= knee <= 8
        # Strictly rising into the knee, lower after it.
        assert all(np.diff(perf[:knee]) > 0)
        assert perf[-1] < perf[knee - 1]

    def test_knee_matches_calibrated_mts(self, sweep_times):
        perf = [sweep_times[1] / sweep_times[s] for s in range(1, 11)]
        knee = int(np.argmax(perf)) + 1
        # calibrate_mts probes a longer layer; allow one step of slack.
        assert abs(knee - calibrate_mts(TEGRA_X1, HIDDEN)) <= 1


class TestFig5Amplification:
    def test_weight_reload_amplification(self):
        """The layer pass loads the united matrix ~once per cell — the
        Fig. 5 redundant-data-movement observation."""
        sim = TimingSimulator(TEGRA_X1)
        trace = sim.run_trace(
            forced_tissue_layer_trace(TEGRA_X1, HIDDEN, LENGTH, 1)
        )
        weight_bytes = 4 * HIDDEN * HIDDEN * 4
        loaded = sum(
            k.dram_bytes for k in trace.kernels if k.name == "sgemv"
        )
        amplification = loaded / weight_bytes
        assert amplification > 0.8 * LENGTH

    def test_tissues_cut_amplification(self):
        sim = TimingSimulator(TEGRA_X1)
        t1 = sim.run_trace(forced_tissue_layer_trace(TEGRA_X1, HIDDEN, LENGTH, 1))
        sim.reset()
        t4 = sim.run_trace(forced_tissue_layer_trace(TEGRA_X1, HIDDEN, LENGTH, 4))
        by = lambda tr: sum(
            k.dram_bytes for k in tr.kernels if k.name in ("sgemv", "sgemm") and k.tag == "forced"
        )
        # Four-cell tissues need ~1/4 of the weight traffic (activations
        # are comparatively negligible at this size).
        assert by(t4) < 0.45 * by(t1)
