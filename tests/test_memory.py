"""Tests for the L2 inter-kernel reuse model."""

import dataclasses

import pytest

from repro.gpu.memory import L2Model
from repro.gpu.specs import TEGRA_X1

CAP = L2Model(TEGRA_X1).effective_capacity


@pytest.fixture
def l2():
    return L2Model(TEGRA_X1)


class TestColdLoads:
    def test_first_use_is_full_load(self, l2):
        assert l2.weight_traffic("U", 1000.0) == 1000.0

    def test_anonymous_weights_never_cached(self, l2):
        assert l2.weight_traffic(None, 1000.0) == 1000.0
        assert l2.weight_traffic(None, 1000.0) == 1000.0

    def test_zero_bytes(self, l2):
        assert l2.weight_traffic("U", 0.0) == 0.0


class TestResidency:
    def test_small_tensor_stays_resident(self, l2):
        small = CAP / 4
        assert l2.weight_traffic("U", small) == small
        assert l2.weight_traffic("U", small) == 0.0

    def test_cyclic_thrashing_for_large_tensors(self, l2):
        """A tensor bigger than the cache gets ZERO reuse under LRU — the
        Fig. 5 per-cell full re-load."""
        big = CAP * 1.2
        assert l2.weight_traffic("U", big) == big
        assert l2.weight_traffic("U", big) == big

    def test_streaming_evicts(self, l2):
        small = CAP / 4
        l2.weight_traffic("U", small)
        l2.account_streaming(CAP)  # churn the whole cache
        assert l2.weight_traffic("U", small) == small

    def test_partial_eviction_still_binary(self, l2):
        """Below-capacity interleave leaves the small tensor resident."""
        small = CAP / 4
        l2.weight_traffic("U", small)
        l2.account_streaming(CAP / 2)
        assert l2.weight_traffic("U", small) == 0.0

    def test_other_weight_loads_evict(self, l2):
        small = CAP / 3
        l2.weight_traffic("A", small)
        l2.weight_traffic("B", CAP)  # streams through, evicting A
        assert l2.weight_traffic("A", small) == small

    def test_resize_invalidates(self, l2):
        l2.weight_traffic("U", CAP / 4)
        # Same id, different size: treated as a new tensor.
        assert l2.weight_traffic("U", CAP / 8) == CAP / 8

    def test_reset(self, l2):
        small = CAP / 4
        l2.weight_traffic("U", small)
        l2.reset()
        assert l2.weight_traffic("U", small) == small


class TestCapacity:
    def test_effective_capacity_below_physical(self, l2):
        assert l2.effective_capacity < TEGRA_X1.l2_bytes

    def test_zero_residency_spec(self):
        spec = dataclasses.replace(TEGRA_X1, l2_residency_efficiency=0.0)
        model = L2Model(spec)
        model.weight_traffic("U", 10.0)
        assert model.weight_traffic("U", 10.0) == 10.0
