"""Tests for the kernel workload descriptors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.kernels import (
    FP32,
    KernelLaunch,
    drs_kernel,
    elementwise_kernel,
    relevance_kernel,
    sgemm_kernel,
    sgemv_kernel,
)


class TestKernelLaunch:
    def test_dram_read_bytes_sums_weights_and_streams(self):
        k = KernelLaunch(name="x", flops=1, weight_bytes=100, stream_read_bytes=20)
        assert k.dram_read_bytes == 120

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KernelLaunch(name="x", flops=-1)
        with pytest.raises(ConfigurationError):
            KernelLaunch(name="x", flops=1, warp_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            KernelLaunch(name="x", flops=1, gather_efficiency=2.0)
        with pytest.raises(ConfigurationError):
            KernelLaunch(name="x", flops=1, threads=0)


class TestSgemv:
    def test_full_matrix(self):
        k = sgemv_kernel(64, 32, onchip_per_flop=4.0)
        assert k.flops == 2 * 64 * 32
        assert k.weight_bytes == 64 * 32 * FP32
        assert k.threads == 64

    def test_row_skipping_scales_everything(self):
        full = sgemv_kernel(64, 32, 4.0)
        half = sgemv_kernel(64, 32, 4.0, weight_bytes=full.weight_bytes / 2)
        assert half.flops == pytest.approx(full.flops / 2)
        assert half.write_bytes == pytest.approx(full.write_bytes / 2)

    @given(st.integers(1, 512), st.integers(1, 512))
    def test_flops_bytes_relation(self, rows, cols):
        k = sgemv_kernel(rows, cols, 4.0)
        # 2 flops per weight element; 4 bytes per element.
        assert k.flops * 2 == pytest.approx(k.weight_bytes)


class TestSgemm:
    def test_batch_scales_flops_not_weights(self):
        one = sgemm_kernel(64, 32, 1, 4.0)
        four = sgemm_kernel(64, 32, 4, 4.0)
        assert four.flops == pytest.approx(4 * one.flops)
        assert four.weight_bytes == one.weight_bytes

    def test_rejects_zero_batch(self):
        with pytest.raises(ConfigurationError):
            sgemm_kernel(8, 8, 0, 4.0)

    def test_onchip_traffic_proportional_to_flops(self):
        k = sgemm_kernel(64, 32, 4, onchip_per_flop=3.0)
        assert k.onchip_bytes == pytest.approx(3.0 * k.flops)


class TestSmallKernels:
    def test_elementwise_scales_with_gates(self):
        one = elementwise_kernel(128, gates=1)
        four = elementwise_kernel(128, gates=4)
        assert four.flops > one.flops
        assert four.stream_read_bytes > one.stream_read_bytes

    def test_drs_kernel_reads_o_vector(self):
        k = drs_kernel(256)
        assert k.stream_read_bytes == 256 * FP32
        assert k.name == "drs"

    def test_relevance_kernel_scales_with_layer(self):
        small = relevance_kernel(64, 10)
        large = relevance_kernel(64, 100)
        assert large.flops == pytest.approx(10 * small.flops)
