"""End-to-end integration tests on a small-but-realistic application.

Uses a scaled-down calibrated model (large enough that the united matrix
exceeds the L2, so the memory phenomena actually appear) and checks the
paper's qualitative claims hold through the whole stack.
"""

import pytest

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.workloads.apps import Workload, build_workload
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def small_real_app():
    """H=144 -> united matrix ~332 KB > L2 effective capacity (192 KB)."""
    cfg = AppConfig(
        name="SMALL",
        family=TaskFamily.SENTIMENT_CLASSIFICATION,
        model=LSTMConfig(hidden_size=144, num_layers=2, seq_length=30),
        vocab_size=500,
        num_classes=2,
    )
    app = OptimizedLSTM.from_app(cfg, seed=0)
    app.calibrate(num_sequences=6)
    return app


@pytest.fixture(scope="module")
def tokens(small_real_app):
    return small_real_app.sample_tokens(12, seed=3)


@pytest.fixture(scope="module")
def baseline(small_real_app, tokens):
    return small_real_app.run(tokens, mode=ExecutionMode.BASELINE, keep_traces=True)


class TestMemoryBottleneck:
    def test_sgemv_dominates_baseline(self, baseline):
        """Section III: Sgemv is >90 % of baseline layer time."""
        assert baseline.traces[0].time_fraction("sgemv") > 0.80

    def test_offchip_saturated_onchip_idle(self, baseline):
        """Fig. 6's contrast."""
        trace = baseline.traces[0]
        assert trace.mean_utilization("dram", "sgemv") > 0.9
        assert trace.mean_utilization("onchip", "sgemv") < 0.4

    def test_stalls_are_offchip(self, baseline):
        """Fig. 4: off-chip memory dominates Sgemv stalls."""
        stalls = baseline.traces[0].stall_breakdown("sgemv")
        assert stalls["off_chip_memory"] > 0.6


class TestOptimizations:
    def test_inter_reduces_weight_traffic(self, small_real_app, tokens, baseline):
        inter = small_real_app.run(
            tokens, mode=ExecutionMode.INTER, threshold_index=10, keep_traces=True
        )
        assert inter.traces[0].total_dram_bytes < baseline.traces[0].total_dram_bytes

    def test_inter_speedup_positive(self, small_real_app, tokens, baseline):
        inter = small_real_app.run(tokens, mode=ExecutionMode.INTER, threshold_index=10)
        assert inter.speedup_vs(baseline) > 1.1

    def test_intra_speedup_and_accuracy(self, small_real_app, tokens, baseline):
        intra = small_real_app.run(tokens, mode=ExecutionMode.INTRA, threshold_index=3)
        assert intra.speedup_vs(baseline) > 1.0
        assert intra.agreement_with(baseline) > 0.7
        assert intra.mean_skip_fraction > 0.2

    def test_combined_beats_both_at_max(self, small_real_app, tokens, baseline):
        inter = small_real_app.run(tokens, mode=ExecutionMode.INTER, threshold_index=10)
        intra = small_real_app.run(tokens, mode=ExecutionMode.INTRA, threshold_index=10)
        combined = small_real_app.run(
            tokens, mode=ExecutionMode.COMBINED, threshold_index=10
        )
        assert combined.speedup_vs(baseline) > inter.speedup_vs(baseline)
        assert combined.speedup_vs(baseline) > intra.speedup_vs(baseline)

    def test_combined_less_than_sum(self, small_real_app, tokens, baseline):
        """The overlap effect: combined gains < product of the parts."""
        inter = small_real_app.run(tokens, mode=ExecutionMode.INTER, threshold_index=8)
        intra = small_real_app.run(tokens, mode=ExecutionMode.INTRA, threshold_index=8)
        combined = small_real_app.run(
            tokens, mode=ExecutionMode.COMBINED, threshold_index=8
        )
        assert (
            combined.speedup_vs(baseline)
            < inter.speedup_vs(baseline) * intra.speedup_vs(baseline)
        )

    def test_energy_saving_accompanies_speedup(self, small_real_app, tokens, baseline):
        combined = small_real_app.run(
            tokens, mode=ExecutionMode.COMBINED, threshold_index=8
        )
        assert combined.energy_saving_vs(baseline) > 0.2

    def test_speedup_monotone_in_threshold(self, small_real_app, tokens, baseline):
        speedups = [
            small_real_app.run(
                tokens, mode=ExecutionMode.COMBINED, threshold_index=i
            ).speedup_vs(baseline)
            for i in (2, 6, 10)
        ]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_hardware_drs_beats_software(self, small_real_app, tokens, baseline):
        hw = small_real_app.run(
            tokens, mode=ExecutionMode.INTRA, threshold_index=6, drs_style="hardware"
        )
        sw = small_real_app.run(
            tokens, mode=ExecutionMode.INTRA, threshold_index=6, drs_style="software"
        )
        assert hw.speedup_vs(baseline) > sw.speedup_vs(baseline)
        # Identical numerics — only the execution efficiency differs.
        assert hw.agreement_with(sw) == 1.0

    def test_zero_pruning_slower_than_baseline(self, small_real_app, tokens, baseline):
        pruned = small_real_app.run(tokens, mode=ExecutionMode.ZERO_PRUNE)
        assert pruned.speedup_vs(baseline) < 1.0


class TestWorkloadEndToEnd:
    def test_workload_dataset_and_sweep(self, small_real_app):
        dataset = build_dataset(small_real_app, 10, seed=4, confidence_keep=0.6)
        workload = Workload(small_real_app, dataset, "SMALL")
        sweep = workload.threshold_sweep(ExecutionMode.COMBINED, indices=[0, 5, 10])
        assert sweep[0].speedup == pytest.approx(1.0)
        assert sweep[0].accuracy == 1.0
        assert sweep[2].speedup > sweep[1].speedup > 1.0
        ao = Workload.ao_index(sweep)
        assert 0 <= ao < 3

    def test_build_workload_mr_smoke(self):
        """One real Table II workload built end to end (the smallest)."""
        workload = build_workload("MR", seed=1, num_sequences=12, calibration_sequences=4)
        ev = workload.evaluate(ExecutionMode.COMBINED, threshold_index=5)
        assert ev.speedup > 1.0
        assert 0.8 <= ev.accuracy <= 1.0
