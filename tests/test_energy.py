"""Tests for the whole-system energy model."""

import dataclasses

import pytest

from repro.gpu.energy import EnergyBreakdown, EnergyModel
from repro.gpu.kernels import sgemv_kernel
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import TEGRA_X1


def stats_for(hidden=512, **overrides):
    sim = TimingSimulator(TEGRA_X1)
    kernel = sgemv_kernel(
        4 * hidden, hidden, TEGRA_X1.onchip_traffic_per_flop(hidden), weight_id="U"
    )
    kernel = dataclasses.replace(kernel, **overrides)
    return sim.run_kernel(kernel)


class TestBreakdown:
    def test_total_sums_components(self):
        bd = EnergyBreakdown(static=1, compute=2, dram=3, onchip=4, launch=5, crm=6)
        assert bd.total == 21
        assert sum(bd.as_dict().values()) == 21

    def test_components_mapping(self):
        bd = EnergyBreakdown(1, 2, 3, 4, 5, 6)
        assert set(bd.as_dict()) == {"static", "compute", "dram", "onchip", "launch", "crm"}


class TestEnergyModel:
    def test_static_scales_with_time(self):
        model = EnergyModel(TEGRA_X1)
        stats = stats_for()
        bd = model.kernel_energy(stats)
        assert bd.static == pytest.approx(TEGRA_X1.static_power * stats.time)

    def test_compute_scales_with_flops(self):
        model = EnergyModel(TEGRA_X1)
        stats = stats_for()
        bd = model.kernel_energy(stats)
        assert bd.compute == pytest.approx(TEGRA_X1.energy_per_flop * stats.flops)

    def test_launch_energy_is_constant_per_kernel(self):
        model = EnergyModel(TEGRA_X1)
        small = model.kernel_energy(stats_for(hidden=512))
        assert small.launch == TEGRA_X1.launch_energy

    def test_crm_overhead_fraction(self):
        model = EnergyModel(TEGRA_X1)
        stats = stats_for()
        without = model.kernel_energy(stats, uses_crm=False)
        with_crm = model.kernel_energy(stats, uses_crm=True)
        base = without.total - without.launch
        assert with_crm.crm == pytest.approx(base * TEGRA_X1.crm_power_overhead)

    def test_annotate_fills_stats(self):
        model = EnergyModel(TEGRA_X1)
        stats = stats_for()
        stats.energy = 0.0
        model.annotate(stats)
        assert stats.energy > 0
        assert stats.energy == pytest.approx(sum(stats.energy_parts.values()))


class TestSystemLevelShape:
    def test_memory_energy_matters(self):
        """For the memory-bound Sgemv, DRAM energy is a major component —
        the reason moving fewer bytes saves energy at equal time."""
        model = EnergyModel(TEGRA_X1)
        bd = model.kernel_energy(stats_for())
        assert bd.dram > 0.2 * bd.total

    def test_energy_saving_tracks_byte_saving(self):
        """Halving the weight bytes saves energy even at equal speedup
        accounting (both time and traffic shrink)."""
        sim = TimingSimulator(TEGRA_X1)
        full = sim.run_kernel(
            sgemv_kernel(2048, 512, 4.4, weight_id="A")
        )
        sim.reset()
        half = sim.run_kernel(
            sgemv_kernel(2048, 512, 4.4, weight_id="B", weight_bytes=2048 * 512 * 2)
        )
        assert half.energy < full.energy
