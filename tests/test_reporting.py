"""Tests for the plain-text reporting helpers."""

import pytest

from repro.bench.reporting import format_series, format_table
from repro.errors import ConfigurationError


class TestTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["a"], [["x"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [123.456]])
        assert "0.123" in out and "123" in out

    def test_row_width_checked(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestSeries:
    def test_two_rows(self):
        out = format_series("S", [1, 2, 3], [4.0, 5.0, 6.0])
        lines = out.splitlines()
        assert lines[0] == "S"
        assert len(lines) == 3

    def test_length_checked(self):
        with pytest.raises(ConfigurationError):
            format_series("S", [1], [1, 2])

    def test_custom_labels(self):
        out = format_series("S", [1], [2], x_label="tissue", y_label="perf")
        assert "tissue" in out and "perf" in out
