"""Tests for the calibrated model zoo — the trained-checkpoint stand-in.

These tests assert the *statistical contracts* the optimizations rely on:
saturated pre-activations, bimodal output gates, write-gated memory
dimensions, boundary resets, and informativeness-scaled heads.
"""

import numpy as np
import pytest

from repro.config import LSTMConfig, get_app
from repro.errors import ConfigurationError
from repro.nn.activations import sigmoid
from repro.nn.model_zoo import (
    APP_PROFILES,
    CalibrationProfile,
    build_calibrated_network,
    profile_for_app,
)


@pytest.fixture(scope="module")
def mr_network():
    """A real Table II model (the smallest one) built once per module."""
    return build_calibrated_network(get_app("MR"), seed=0)


def gate_stats(network, tokens):
    """Output-gate activations over a short exact run."""
    out = network.forward(tokens)
    w = network.layers[0].weights
    xs = network.embed(tokens)
    h_prev = np.vstack([np.zeros(w.hidden_size), out.layer_outputs[0][:-1]])
    o_pre = xs @ w.w_o.T + h_prev @ w.u_o.T + w.b_o
    return sigmoid(o_pre)


class TestProfile:
    def test_default_profile_valid(self):
        CalibrationProfile()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CalibrationProfile(input_preact_std=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationProfile(recurrent_density=0.0)

    def test_every_app_has_profile(self):
        for name in ("IMDB", "MR", "BABI", "SNLI", "PTB", "MT"):
            assert profile_for_app(name) is APP_PROFILES[name]

    def test_unknown_app_gets_default(self):
        assert profile_for_app("XYZ") is not None


class TestCalibratedStatistics:
    def test_output_gate_near_zero_mass(self, mr_network):
        """Roughly half of the output-gate activations are near zero —
        the fuel for the paper's ~50 % row compression."""
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, mr_network.vocab_size, size=mr_network.config.seq_length)
        o = gate_stats(mr_network, tokens)
        frac = (o < 0.05).mean()
        assert 0.3 < frac < 0.65

    def test_recurrent_row_l1_near_target(self, mr_network):
        profile = profile_for_app("MR")
        d = np.abs(mr_network.layers[0].weights.u_f).sum(axis=1)
        # Boundary channel row is zeroed; exclude it.
        assert abs(d[:-1].mean() - profile.recurrent_row_l1) < 1.0

    def test_input_preacts_saturate(self, mr_network):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, mr_network.vocab_size, size=mr_network.config.seq_length)
        xs = mr_network.embed(tokens)
        w = mr_network.layers[0].weights
        # The input/candidate gates carry the full spread (the forget and
        # output gates are deliberately bias-dominated).
        preact = xs @ w.w_i.T
        assert preact.std() > 1.5  # a fair share beyond the sensitive area

    def test_boundary_tokens_designated(self, mr_network):
        ids = mr_network.boundary_token_ids
        profile = profile_for_app("MR")
        expected = round(profile.boundary_rate * mr_network.vocab_size)
        assert len(ids) == max(1, expected)
        np.testing.assert_array_equal(
            mr_network.embedding[ids, -1], 1.0
        )

    def test_boundary_closes_gates(self, mr_network):
        """At a boundary token the forget and output gates shut down."""
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, mr_network.vocab_size, size=mr_network.config.seq_length)
        boundary = mr_network.boundary_token_ids[0]
        tokens[6] = boundary
        out = mr_network.forward(tokens)
        w = mr_network.layers[0].weights
        xs = mr_network.embed(tokens)
        h_prev = out.layer_outputs[0][5]
        f_pre = xs[6] @ w.w_f.T + w.u_f @ h_prev + w.b_f
        o_pre = xs[6] @ w.w_o.T + w.u_o @ h_prev + w.b_o
        assert np.median(sigmoid(f_pre)) < 0.35
        assert np.median(sigmoid(o_pre)) < 0.1

    def test_boundary_channel_regenerates_flag(self, mr_network):
        """The last hidden dim fires at boundaries and stays quiet else."""
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, mr_network.vocab_size, size=mr_network.config.seq_length)
        boundary = mr_network.boundary_token_ids[0]
        tokens[4] = boundary
        non_boundary = np.setdiff1d(tokens, mr_network.boundary_token_ids)
        out = mr_network.forward(tokens)
        channel = out.layer_outputs[0][:, -1]
        assert channel[4] > 0.5
        boundary_ids = set(mr_network.boundary_token_ids.tolist())
        quiet = [channel[t] for t in range(len(tokens)) if tokens[t] not in boundary_ids]
        assert np.max(np.abs(quiet)) < 0.1
        del non_boundary

    def test_head_informativeness_scaling(self, mr_network):
        """Head columns of low-activity dims carry less weight."""
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, mr_network.vocab_size, size=(4, mr_network.config.seq_length))
        hs = np.concatenate(
            [mr_network.forward(row).layer_outputs[-1] for row in tokens]
        )
        rms = np.sqrt((hs**2).mean(axis=0))
        norms = np.abs(mr_network.head_weight).mean(axis=0)
        quiet = rms < np.quantile(rms, 0.3)
        loud = rms > np.quantile(rms, 0.7)
        assert norms[quiet].mean() < norms[loud].mean()


class TestBuilders:
    def test_custom_config_build(self):
        cfg = LSTMConfig(hidden_size=16, num_layers=2, seq_length=8, input_size=12)
        net = build_calibrated_network(
            config=cfg, vocab_size=40, num_classes=4, seed=1
        )
        assert net.num_layers == 2
        out = net.forward(np.arange(8) % 40)
        assert out.logits.shape == (4,)

    def test_missing_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            build_calibrated_network(config=None, vocab_size=None, num_classes=None)

    def test_per_timestep_head_for_lm(self):
        net = build_calibrated_network(get_app("PTB"), seed=0)
        assert net.per_timestep_head
        assert net.head_pool == 1

    def test_pooled_head_for_classification(self, mr_network):
        assert not mr_network.per_timestep_head
        assert mr_network.head_pool == get_app("MR").model.seq_length // 4

    def test_seed_determinism(self, tiny_app_config):
        a = build_calibrated_network(tiny_app_config, seed=11)
        b = build_calibrated_network(tiny_app_config, seed=11)
        np.testing.assert_array_equal(a.layers[0].weights.u_f, b.layers[0].weights.u_f)
        np.testing.assert_array_equal(a.head_weight, b.head_weight)
