"""Tests for :mod:`repro.runtime.shadow` sampled shadow execution.

The load-bearing properties: stride offsets partition the served stream
(so the estimator is unbiased over offsets by construction), ``K = 1``
degenerates to exact full replay, and the online estimator reproduces
the quant-gate agreement numbers in ``BENCH_quant.json`` bit-for-bit.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.errors import ConfigurationError
from repro.nn.network import LSTMNetwork
from repro.runtime import ShadowSampler

BENCH_QUANT = pathlib.Path(__file__).parent.parent / "BENCH_quant.json"


def exact_oracle(tokens: np.ndarray) -> np.ndarray:
    """Trivially deterministic 'exact' predictions for stream tests."""
    return np.asarray(tokens).sum(axis=-1) % 5


class TestStride:
    def test_every_k_samples_expected_batches(self):
        sampler = ShadowSampler(exact_oracle, every_k=3, offset=1)
        sampled = []
        for i in range(9):
            tokens = np.full((2, 4), i)
            out = sampler.observe(tokens, exact_oracle(tokens))
            sampled.append(out is not None)
        assert sampled == [False, True, False] * 3
        assert sampler.batches_seen == 9
        assert sampler.batches_sampled == 3
        assert sampler.agreement == 1.0

    def test_k1_is_full_replay(self):
        sampler = ShadowSampler(exact_oracle, every_k=1)
        rng = np.random.default_rng(0)
        for _ in range(5):
            tokens = rng.integers(0, 10, size=(3, 4))
            assert sampler.observe(tokens, exact_oracle(tokens)) is not None
        assert sampler.batches_sampled == sampler.batches_seen == 5
        assert sampler.compared == 15

    def test_agreement_counts_mismatches(self):
        sampler = ShadowSampler(exact_oracle, every_k=1)
        tokens = np.ones((4, 4), dtype=int)
        served = exact_oracle(tokens).copy()
        served[0] += 1  # one wrong prediction
        assert sampler.observe(tokens, served) == pytest.approx(0.75)
        assert sampler.agreement == pytest.approx(0.75)
        assert (sampler.matched, sampler.compared) == (3, 4)

    def test_no_samples_means_no_estimate(self):
        sampler = ShadowSampler(exact_oracle, every_k=4, offset=3)
        tokens = np.ones((1, 2), dtype=int)
        assert sampler.observe(tokens, exact_oracle(tokens)) is None
        assert sampler.agreement is None
        assert sampler.as_dict()["agreement"] is None


class TestValidation:
    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            ShadowSampler(exact_oracle, every_k=0)

    @pytest.mark.parametrize("offset", [-1, 4, 7])
    def test_bad_offset_rejected(self, offset):
        with pytest.raises(ConfigurationError):
            ShadowSampler(exact_oracle, every_k=4, offset=offset)

    def test_shape_mismatch_rejected(self):
        sampler = ShadowSampler(exact_oracle, every_k=1)
        with pytest.raises(ConfigurationError):
            sampler.observe(np.ones((2, 3), dtype=int), np.zeros(5))


class TestPartitionUnbiasedness:
    def test_offsets_partition_the_stream_exactly(self):
        """Summing (matched, compared) over all offsets == full replay.

        This is the unbiasedness argument in its exact form: the K
        offset-samplers tile the served stream with no overlap and no
        gap, so their pooled totals reproduce the full-replay totals
        identically — not just in expectation.
        """
        k = 4
        rng = np.random.default_rng(17)
        samplers = [ShadowSampler(exact_oracle, every_k=k, offset=o) for o in range(k)]
        full = ShadowSampler(exact_oracle, every_k=1)
        for _ in range(23):  # deliberately not a multiple of k
            batch = int(rng.integers(1, 6))
            tokens = rng.integers(0, 10, size=(batch, 4))
            served = exact_oracle(tokens).copy()
            flip = rng.random(batch) < 0.3  # fleet with real disagreement
            served[flip] += 1
            for sampler in samplers:
                sampler.observe(tokens, served)
            full.observe(tokens, served)
        assert sum(s.batches_sampled for s in samplers) == full.batches_seen == 23
        assert sum(s.matched for s in samplers) == full.matched
        assert sum(s.compared for s in samplers) == full.compared
        pooled = sum(s.matched for s in samplers) / sum(s.compared for s in samplers)
        assert pooled == pytest.approx(full.agreement)


class TestQuantGateTieback:
    """``K = 1`` shadow replay reproduces the BENCH_quant agreement numbers."""

    @pytest.fixture(scope="class")
    def quant_case(self):
        # The exact bench_quantization workload: hidden 64 x 2 layers,
        # vocab 200, 8 classes, seed 11; 64 sequences of length 64 from
        # rng(23). Agreement there is defined vs the SAME-MODE fp64 run.
        config = LSTMConfig(
            hidden_size=64, num_layers=2, seq_length=64, input_size=64
        )
        network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
        rng = np.random.default_rng(23)
        tokens = rng.integers(0, 200, size=(64, config.seq_length))
        return network, tokens

    def test_k1_reproduces_exhaustive_int8_agreement(self, quant_case):
        network, tokens = quant_case
        config = ExecutionConfig(mode=ExecutionMode.BASELINE)
        fp64 = LSTMExecutor(network, config)
        int8 = LSTMExecutor(network, ExecutionConfig(
            mode=ExecutionMode.BASELINE, precision="int8"
        ))
        exhaustive = float(
            np.mean(int8.run_batch(tokens).predictions()
                    == fp64.run_batch(tokens).predictions())
        )
        sampler = ShadowSampler(
            lambda chunk: fp64.run_batch(chunk).predictions(), every_k=1
        )
        # Stream the same workload in uneven batches: per-row GEMV
        # batch-composition invariance makes the chunked predictions equal
        # the full-batch ones, so K=1 pooled agreement ties out exactly.
        cursor = 0
        for size in (7, 16, 1, 9, 13, 5, 13):
            chunk = tokens[cursor : cursor + size]
            cursor += size
            sampler.observe(chunk, int8.run_batch(chunk).predictions())
        assert cursor == tokens.shape[0]
        assert sampler.compared == tokens.shape[0]
        assert sampler.agreement == exhaustive

    @pytest.mark.skipif(not BENCH_QUANT.exists(), reason="no BENCH_quant.json")
    def test_agreement_matches_committed_bench_numbers(self, quant_case):
        recorded = json.loads(BENCH_QUANT.read_text())
        expected = recorded["results"]["baseline"]["int8"]["agreement_with_fp64"]
        network, tokens = quant_case
        fp64 = LSTMExecutor(network, ExecutionConfig(mode=ExecutionMode.BASELINE))
        int8 = LSTMExecutor(network, ExecutionConfig(
            mode=ExecutionMode.BASELINE, precision="int8"
        ))
        sampler = ShadowSampler(
            lambda chunk: fp64.run_batch(chunk).predictions(), every_k=1
        )
        for start in range(0, tokens.shape[0], 16):
            chunk = tokens[start : start + 16]
            sampler.observe(chunk, int8.run_batch(chunk).predictions())
        assert sampler.agreement == expected
