"""Compiled plan programs: bit-identity, workspace reuse, allocations.

Three properties of :mod:`repro.core.program`:

* **Bit identity with the oracle.** The ``compile=True`` executor path
  equals the frozen :class:`~repro.core.reference.ReferenceExecutor` in
  all five modes (hypothesis-driven; the broader sweep lives in
  ``tests/test_executor_equivalence.py``, which also draws the compiled
  flag).

* **Workspace reuse.** A program owns its buffers for as long as it is
  cached; consecutive ``run_batch`` calls on one compiled executor must be
  bit-identical to fresh executors — no state or scratch leaks between
  runs, including across mid-sequence breakpoint resets (hypothesis).

* **Allocation regression.** Once a program is warm, the steady-state
  timestep loop must allocate nothing: a tracemalloc diff over a repeat
  run, filtered to ``program.py``, must show zero net new live blocks.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.config import LSTMConfig  # noqa: E402
from repro.core import program as program_module  # noqa: E402
from repro.core.context_prediction import PredictedLink  # noqa: E402
from repro.core.executor import (  # noqa: E402
    ExecutionConfig,
    ExecutionMode,
    LSTMExecutor,
)
from repro.core.program import ProgramCache, sigmoid_into  # noqa: E402
from repro.core.reference import ReferenceExecutor  # noqa: E402
from repro.errors import ConfigurationError  # noqa: E402
from repro.nn.activations import sigmoid  # noqa: E402
from repro.nn.network import LSTMNetwork  # noqa: E402

VOCAB = 31
CLASSES = 3

MODE_CONFIGS = {
    ExecutionMode.BASELINE: {},
    ExecutionMode.INTER: {"alpha_inter": 50.0, "mts": 3},
    ExecutionMode.INTRA: {"alpha_intra": 0.4},
    ExecutionMode.COMBINED: {"alpha_inter": 50.0, "alpha_intra": 0.4, "mts": 3},
    ExecutionMode.ZERO_PRUNE: {},
}


def make_case(seed: int, hidden: int = 16, layers: int = 2, seq: int = 10, batch: int = 4):
    config = LSTMConfig(
        hidden_size=hidden, num_layers=layers, seq_length=seq, input_size=hidden
    )
    network = LSTMNetwork(config, VOCAB, CLASSES, seed=seed % 89)
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, VOCAB, size=(batch, seq))
    links = [
        PredictedLink(h_bar=np.tanh(rng.normal(size=hidden)), c_bar=rng.normal(size=hidden))
        for _ in range(layers)
    ]
    return network, tokens, links


class TestSigmoidInto:
    @given(st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_to_library_sigmoid(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=8.0, size=(5, 17))
        x[0, 0] = 0.0  # exercise the x >= 0 boundary exactly
        out = np.empty_like(x)
        s1, s2 = np.empty_like(x), np.empty_like(x)
        mask = np.empty(x.shape, dtype=bool)
        sigmoid_into(x, out, s1, s2, mask)
        assert np.array_equal(out, sigmoid(x))

    def test_out_may_alias_x(self):
        rng = np.random.default_rng(7)
        x = rng.normal(scale=4.0, size=(3, 9))
        expected = sigmoid(x)
        s1, s2 = np.empty_like(x), np.empty_like(x)
        mask = np.empty(x.shape, dtype=bool)
        sigmoid_into(x, x, s1, s2, mask)
        assert np.array_equal(x, expected)


class TestProgramCache:
    def test_lru_eviction_and_stats(self):
        cache = ProgramCache(max_entries=2)
        built = []

        def builder(tag):
            def build():
                built.append(tag)
                return tag

            return build

        assert cache.get("a", builder("a")) == "a"
        assert cache.get("b", builder("b")) == "b"
        assert cache.get("a", builder("a2")) == "a"  # hit refreshes LRU slot
        assert cache.get("c", builder("c")) == "c"  # evicts "b"
        assert cache.get("b", builder("b2")) == "b2"
        assert built == ["a", "b", "c", "b2"]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 4
        assert cache.stats.evictions == 2
        assert len(cache) == 2
        d = cache.stats.as_dict()
        assert d["program_hits"] == 1
        assert d["program_misses"] == 4
        assert d["program_hit_rate"] == pytest.approx(0.2)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            ProgramCache(max_entries=0)


class TestCompiledMatchesReference:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_all_five_modes_bit_identical(self, mode):
        network, tokens, links = make_case(seed=101)
        config = ExecutionConfig(mode=mode, **MODE_CONFIGS[mode])
        compiled = LSTMExecutor(network, config, predicted_links=links, compile=True)
        reference = ReferenceExecutor(network, config, predicted_links=links)
        out_c = compiled.run_batch(tokens)
        out_r = reference.run_batch(tokens)
        assert np.array_equal(out_c.logits, out_r.logits)
        for h_c, h_r in zip(out_c.layer_outputs, out_r.layer_outputs):
            assert np.array_equal(h_c, h_r)

    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_drs_compact_scratch_never_read_before_write(self, batch):
        """NaN-poisoned scratch must not leak into the compacted DRS chain.

        A fresh ``np.empty`` is usually a zeroed page, so a read of
        uninitialized compact scratch produces *plausible* numbers on the
        first run and garbage once the heap is warm (this exact failure
        shipped once: in-place unary ufuncs on strided ``[:, :, :k]``
        column slices read the gap bytes on some numpy builds). Poisoning
        every float64 workspace with NaN after the program is built makes
        any such read deterministic: one leaked element NaNs the logits.
        The high threshold at small batch keeps the batch-wide dropped
        branch firing with small alive counts every few steps.
        """
        network, _, links = make_case(seed=57, batch=batch)
        rng = np.random.default_rng(58)
        tokens = rng.integers(0, VOCAB, size=(batch, network.config.seq_length))
        config = ExecutionConfig(mode=ExecutionMode.INTRA, alpha_intra=0.5)
        cache = ProgramCache()
        compiled = LSTMExecutor(
            network, config, predicted_links=links, compile=True, program_cache=cache
        )
        compiled.run_batch(tokens)  # builds and caches the programs
        assert len(cache) == network.num_layers
        for program in cache._store.values():
            for name, value in vars(program).items():
                if isinstance(value, np.ndarray) and value.dtype == np.float64:
                    if name.startswith("_c") or name in ("_s1", "_s2", "_t1"):
                        value.fill(np.nan)
        out = compiled.run_batch(tokens)
        reference = ReferenceExecutor(network, config, predicted_links=links)
        assert np.array_equal(out.logits, reference.run_batch(tokens).logits)

    def test_collect_states_matches_interpreted(self):
        network, tokens, links = make_case(seed=33)
        config = ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=50.0, mts=3)
        compiled = LSTMExecutor(network, config, predicted_links=links, compile=True)
        interpreted = LSTMExecutor(network, config, predicted_links=links, compile=False)
        out_c = compiled.run_batch(tokens, collect_states=True)
        out_i = interpreted.run_batch(tokens, collect_states=True)
        assert len(out_c.layer_states) == len(out_i.layer_states)
        for c_c, c_i in zip(out_c.layer_states, out_i.layer_states):
            assert np.array_equal(c_c, c_i)


class TestWorkspaceReuse:
    """Satellite: consecutive runs on one program == fresh executors."""

    @given(
        seed=st.integers(0, 2**16),
        mode=st.sampled_from(list(ExecutionMode)),
        batch=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_consecutive_runs_bit_identical_to_fresh(self, seed, mode, batch):
        network, _, links = make_case(seed=seed, batch=batch)
        rng = np.random.default_rng(seed + 1)
        seq = network.config.seq_length
        tokens_a = rng.integers(0, VOCAB, size=(batch, seq))
        tokens_b = rng.integers(0, VOCAB, size=(batch, seq))
        config = ExecutionConfig(mode=mode, **MODE_CONFIGS[mode])

        reused = LSTMExecutor(network, config, predicted_links=links, compile=True)
        out_a = reused.run_batch(tokens_a)
        out_b = reused.run_batch(tokens_b)
        out_a2 = reused.run_batch(tokens_a)  # and back, same program again

        for out, toks in ((out_a, tokens_a), (out_b, tokens_b), (out_a2, tokens_a)):
            fresh = LSTMExecutor(network, config, predicted_links=links, compile=True)
            expect = fresh.run_batch(toks)
            assert np.array_equal(out.logits, expect.logits)
            for h_got, h_want in zip(out.layer_outputs, expect.layer_outputs):
                assert np.array_equal(h_got, h_want)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_reuse_across_mid_sequence_breakpoint_resets(self, seed):
        """A run whose plans reset mid-sequence leaks nothing into the next.

        alpha_inter=1e12 breaks every link, so every timestep resets the
        recurrent state from the predicted link — the hardest case for a
        stale-workspace bug. The following baseline-threshold run on the
        same program keys differently only through the plan, not the
        program (reset columns are run-time inputs), so it replays the
        *same* cached program object.
        """
        network, tokens, links = make_case(seed=seed)
        always = ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=1e12, mts=2)
        never = ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=0.0, mts=2)
        shared = ProgramCache()
        ex_always = LSTMExecutor(
            network, always, predicted_links=links, compile=True, program_cache=shared
        )
        ex_never = LSTMExecutor(
            network, never, predicted_links=links, compile=True, program_cache=shared
        )

        first = ex_always.run_batch(tokens)
        after = ex_never.run_batch(tokens)  # same program, resets gone
        again = ex_always.run_batch(tokens)  # resets back

        # Stepwise programs are keyed on shapes + weights only: both
        # configs replayed one program per layer.
        assert shared.stats.misses == network.num_layers
        assert shared.stats.hits == 2 * network.num_layers

        fresh_never = LSTMExecutor(network, never, predicted_links=links, compile=True)
        expect_after = fresh_never.run_batch(tokens)
        assert np.array_equal(after.logits, expect_after.logits)
        for h_got, h_want in zip(after.layer_outputs, expect_after.layer_outputs):
            assert np.array_equal(h_got, h_want)
        assert np.array_equal(first.logits, again.logits)
        for h_a, h_b in zip(first.layer_outputs, again.layer_outputs):
            assert np.array_equal(h_a, h_b)


class TestStepwiseStateInjection:
    """Streamed state entry/exit on the same cached programs.

    ``run_stream`` replays the stepwise programs with the caller's
    resident ``(h, c)`` injected at entry and the post-chunk state
    extracted at exit; any partition of a sequence into chunks must be
    bit-identical to one contiguous ``run_batch`` — outputs *and* final
    states — and must leave the shared program objects clean for the
    next zero-state run.
    """

    @pytest.mark.parametrize("splits", [[10], [4, 6], [1, 1, 8], [3, 3, 3, 1]])
    def test_chunked_run_stream_equals_contiguous_run_batch(self, splits):
        network, tokens, _ = make_case(seed=71)
        config = ExecutionConfig(mode=ExecutionMode.BASELINE)
        executor = LSTMExecutor(network, config, compile=True)
        full = executor.run_batch(tokens, collect_states=True)

        batch = tokens.shape[0]
        layers = network.num_layers
        hidden = network.config.hidden_size
        h = np.zeros((layers, batch, hidden))
        c = np.zeros((layers, batch, hidden))
        parts, start = [], 0
        for width in splits:
            parts.append(executor.run_stream(tokens[:, start : start + width], h, c))
            start += width
        assert np.array_equal(
            np.concatenate(parts, axis=1), full.layer_outputs[-1]
        )
        for i in range(layers):
            assert np.array_equal(h[i], full.layer_outputs[i][:, -1])
            assert np.array_equal(c[i], full.layer_states[i][:, -1])

    def test_injected_state_does_not_leak_into_zero_state_runs(self):
        """A streamed step must not contaminate the cached programs."""
        network, tokens, _ = make_case(seed=23)
        config = ExecutionConfig(mode=ExecutionMode.INTRA, alpha_intra=0.4)
        executor = LSTMExecutor(network, config, compile=True)
        before = executor.run_batch(tokens)

        rng = np.random.default_rng(24)
        batch = tokens.shape[0]
        shape = (network.num_layers, batch, network.config.hidden_size)
        executor.run_stream(
            tokens, np.tanh(rng.normal(size=shape)), rng.normal(size=shape)
        )

        after = executor.run_batch(tokens)  # same cached programs, h0=None path
        assert np.array_equal(before.logits, after.logits)
        for h_a, h_b in zip(before.layer_outputs, after.layer_outputs):
            assert np.array_equal(h_a, h_b)


class TestAllocationRegression:
    """Satellite: warm compiled runs allocate nothing inside program.py."""

    @pytest.mark.parametrize(
        "mode", [ExecutionMode.BASELINE, ExecutionMode.INTRA, ExecutionMode.COMBINED]
    )
    def test_steady_state_program_allocations_are_zero(self, mode):
        network, tokens, links = make_case(seed=5, hidden=24, seq=16, batch=6)
        config = ExecutionConfig(mode=mode, **MODE_CONFIGS[mode])
        executor = LSTMExecutor(network, config, predicted_links=links, compile=True)
        executor.run_batch(tokens)  # compile + warm every program
        executor.run_batch(tokens)

        trace_filter = tracemalloc.Filter(True, program_module.__file__)
        gc.collect()
        tracemalloc.start(10)
        try:
            before = tracemalloc.take_snapshot().filter_traces([trace_filter])
            for _ in range(3):
                executor.run_batch(tokens)
            gc.collect()
            after = tracemalloc.take_snapshot().filter_traces([trace_filter])
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "lineno")
        grown = [s for s in stats if s.size_diff > 0]
        assert not grown, "steady-state allocations inside program.py:\n" + "\n".join(
            f"  {s.traceback}: +{s.size_diff} B in {s.count_diff} block(s)"
            for s in grown
        )

    def test_compile_wall_time_only_on_cache_miss(self):
        network, tokens, links = make_case(seed=9)
        config = ExecutionConfig(mode=ExecutionMode.COMBINED, **MODE_CONFIGS[ExecutionMode.COMBINED])
        executor = LSTMExecutor(network, config, predicted_links=links, compile=True)
        cold = executor.run_batch(tokens)
        warm = executor.run_batch(tokens)
        assert cold.timings["compile_wall_s"] > 0.0
        assert warm.timings["compile_wall_s"] == 0.0
        assert executor.program_cache.stats.misses > 0
        assert executor.program_cache.stats.hits > 0
