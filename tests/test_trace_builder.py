"""Tests for the plan -> kernel-trace translation."""

import pytest

from repro.core.plan import LayerPlanRecord, SequencePlan, TissueRecord
from repro.core.trace_builder import (
    build_kernel_trace,
    forced_tissue_layer_trace,
)
from repro.errors import PlanError
from repro.gpu.kernels import FP32
from repro.gpu.specs import TEGRA_X1

H, E, T = 32, 32, 6


def plan(tissue_sizes=(1,) * T, skip=0.0):
    tissues = []
    t = 0
    for size in tissue_sizes:
        tissues.append(
            TissueRecord(cells=[(0, t + k) for k in range(size)], skip_fraction=skip)
        )
        t += size
    record = LayerPlanRecord(
        layer_index=0,
        hidden_size=H,
        input_size=E,
        seq_length=T,
        sublayer_lengths=[T],
        tissues=tissues,
    )
    return SequencePlan(layers=[record])


class TestBaselineTrace:
    def test_algorithm1_structure(self):
        kernels = build_kernel_trace(plan(), TEGRA_X1, inter=False, intra=False)
        names = [k.name for k in kernels]
        # One Sgemm(W, x) then per cell (Sgemv, lstm_ew).
        assert names[0] == "sgemm"
        assert names.count("sgemv") == T
        assert names.count("lstm_ew") == T

    def test_sgemv_loads_full_united_matrix(self):
        kernels = build_kernel_trace(plan(), TEGRA_X1, inter=False, intra=False)
        sgemv = next(k for k in kernels if k.name == "sgemv")
        assert sgemv.weight_bytes == 4 * H * H * FP32


class TestInterTrace:
    def test_relevance_kernel_and_tissue_sgemm(self):
        kernels = build_kernel_trace(
            plan(tissue_sizes=(3, 3)), TEGRA_X1, inter=True, intra=False
        )
        names = [k.name for k in kernels]
        assert "relevance" in names
        assert names.count("sgemm") == 1 + 2  # W Sgemm + two tissue Sgemms

    def test_weight_loads_reduced_by_tissues(self):
        base = build_kernel_trace(plan(), TEGRA_X1, inter=False, intra=False)
        tissue = build_kernel_trace(
            plan(tissue_sizes=(3, 3)), TEGRA_X1, inter=True, intra=False
        )
        base_u = sum(k.weight_bytes for k in base if k.weight_id == "U0")
        tissue_u = sum(k.weight_bytes for k in tissue if k.weight_id == "U0")
        assert tissue_u == pytest.approx(base_u / 3)


class TestIntraTrace:
    def test_algorithm3_structure(self):
        kernels = build_kernel_trace(
            plan(skip=0.5), TEGRA_X1, inter=False, intra=True
        )
        names = [k.name for k in kernels]
        assert names.count("drs") == T
        # Per cell: Sgemv(U_o) + Sgemv(U_fic) = 2 sgemvs.
        assert names.count("sgemv") == 2 * T

    def test_skipped_rows_shrink_fic_load(self):
        full = build_kernel_trace(plan(skip=0.0), TEGRA_X1, inter=False, intra=True)
        half = build_kernel_trace(plan(skip=0.5), TEGRA_X1, inter=False, intra=True)
        fic_full = sum(k.weight_bytes for k in full if k.weight_id == "Ufic0")
        fic_half = sum(k.weight_bytes for k in half if k.weight_id == "Ufic0")
        assert fic_half == pytest.approx(fic_full / 2)

    def test_uo_never_skipped(self):
        kernels = build_kernel_trace(plan(skip=0.9), TEGRA_X1, inter=False, intra=True)
        uo = [k for k in kernels if k.weight_id == "Uo0"]
        assert all(k.weight_bytes == H * H * FP32 for k in uo)

    def test_hardware_routes_through_crm(self):
        kernels = build_kernel_trace(
            plan(skip=0.5), TEGRA_X1, inter=False, intra=True, drs_style="hardware"
        )
        assert any(k.uses_crm for k in kernels)

    def test_software_avoids_crm_and_pays_divergence(self):
        kernels = build_kernel_trace(
            plan(skip=0.5), TEGRA_X1, inter=False, intra=True, drs_style="software"
        )
        assert not any(k.uses_crm for k in kernels)
        fic = [k for k in kernels if k.weight_id == "Ufic0"]
        assert all(k.warp_efficiency < 1.0 for k in fic)

    def test_unknown_style_rejected(self):
        with pytest.raises(PlanError):
            build_kernel_trace(
                plan(skip=0.5), TEGRA_X1, inter=False, intra=True, drs_style="x"
            )


class TestZeroPruneTrace:
    def test_bitmap_bytes(self):
        kernels = build_kernel_trace(
            plan(), TEGRA_X1, inter=False, intra=False, zero_prune_kept=0.63
        )
        u = next(k for k in kernels if k.weight_id == "Ucsr0")
        assert u.weight_bytes == pytest.approx(4 * H * H * (FP32 * 0.63 + 0.125))
        assert u.gather_efficiency < 1.0


class TestForcedTrace:
    def test_covers_all_cells(self):
        kernels = forced_tissue_layer_trace(TEGRA_X1, H, 10, 3)
        batches = [k.extra for k in kernels]
        sgemm_u = [k for k in kernels if k.weight_id == "U"]
        total = sum(round(k.flops / (2 * 4 * H * H)) for k in sgemm_u)
        assert total == 10
        del batches

    def test_tissue_size_one_is_sgemv(self):
        kernels = forced_tissue_layer_trace(TEGRA_X1, H, 4, 1)
        assert sum(1 for k in kernels if k.name == "sgemv") == 4

    def test_invalid_size(self):
        with pytest.raises(PlanError):
            forced_tissue_layer_trace(TEGRA_X1, H, 4, 0)
