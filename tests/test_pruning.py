"""Tests for the zero-pruning baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_cell import LSTMCellWeights
from repro.nn.pruning import prune_cell_weights, zero_prune


def matrix(seed=0, shape=(32, 32)):
    return np.random.default_rng(seed).normal(size=shape)


class TestZeroPrune:
    def test_fraction_removed(self):
        result = zero_prune(matrix(), prune_fraction=0.4)
        assert result.kept_fraction == pytest.approx(0.6, abs=0.02)

    def test_threshold_mode(self):
        m = matrix()
        result = zero_prune(m, threshold=0.5)
        assert np.all(np.abs(result.pruned[result.pruned != 0]) >= 0.5)

    def test_zero_fraction_keeps_everything(self):
        m = matrix()
        result = zero_prune(m, prune_fraction=0.0)
        np.testing.assert_array_equal(result.pruned, m)
        assert result.kept_fraction == 1.0

    def test_smallest_elements_pruned_first(self):
        m = matrix()
        result = zero_prune(m, prune_fraction=0.3)
        removed = np.abs(m[~result.mask])
        kept = np.abs(m[result.mask])
        assert removed.max() <= kept.min() + 1e-12

    def test_storage_accounting(self):
        m = matrix(shape=(16, 16))
        result = zero_prune(m, prune_fraction=0.5)
        nnz = int(result.mask.sum())
        expected = nnz * 4 + (256 + 7) // 8 + 17 * 4
        assert result.sparse_bytes == expected
        assert result.dense_bytes == 256 * 4

    def test_compression_ratio(self):
        result = zero_prune(matrix(), prune_fraction=0.37)
        assert result.compression_ratio == pytest.approx(0.37, abs=0.02)

    def test_argument_validation(self):
        with pytest.raises(ConfigurationError):
            zero_prune(matrix())
        with pytest.raises(ConfigurationError):
            zero_prune(matrix(), prune_fraction=0.2, threshold=0.1)
        with pytest.raises(ConfigurationError):
            zero_prune(matrix(), prune_fraction=1.0)
        with pytest.raises(ConfigurationError):
            zero_prune(np.zeros(5), prune_fraction=0.1)

    @given(st.floats(0.0, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_data_movement_reduction_monotone(self, fraction):
        a = zero_prune(matrix(), prune_fraction=fraction)
        b = zero_prune(matrix(), prune_fraction=min(0.99, fraction + 0.04))
        assert b.sparse_bytes <= a.sparse_bytes


class TestPruneCellWeights:
    def test_only_recurrent_matrices_pruned(self):
        w = LSTMCellWeights.initialize(16, 12, WeightInitializer(0))
        pruned, stats = prune_cell_weights(w, 0.4)
        np.testing.assert_array_equal(pruned.w_f, w.w_f)
        assert (pruned.u_f == 0).sum() > (w.u_f == 0).sum()
        assert stats.kept_fraction == pytest.approx(0.6, abs=0.05)

    def test_united_threshold_shared_across_gates(self):
        """The aggregate quantile sets one threshold for all four gates."""
        w = LSTMCellWeights.initialize(16, 12, WeightInitializer(1))
        pruned, stats = prune_cell_weights(w, 0.4)
        for gate in "fico":
            mat = getattr(pruned, f"u_{gate}")
            nonzero = np.abs(mat[mat != 0])
            assert nonzero.min() >= stats.threshold - 1e-12
