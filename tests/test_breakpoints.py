"""Tests for weak-link search and layer division."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.breakpoints import SubLayer, divide_layer, find_breakpoints
from repro.errors import PlanError


class TestSubLayer:
    def test_length(self):
        assert SubLayer(3, 7).length == 4

    def test_timestamps(self):
        assert list(SubLayer(2, 5).timestamps()) == [2, 3, 4]

    def test_invalid_bounds(self):
        with pytest.raises(PlanError):
            SubLayer(5, 5)
        with pytest.raises(PlanError):
            SubLayer(-1, 3)


class TestFindBreakpoints:
    def test_zero_threshold_is_baseline(self):
        s = np.array([0.0, 0.0, 0.0])
        assert find_breakpoints(s, 0.0) == []

    def test_strict_inequality(self):
        s = np.array([5.0, 3.0, 3.0])
        assert find_breakpoints(s, 3.0) == []

    def test_finds_weak_links(self):
        s = np.array([9.0, 1.0, 9.0, 2.0, 9.0])
        assert find_breakpoints(s, 3.0) == [1, 3]

    def test_never_breaks_t0(self):
        s = np.array([0.0, 9.0, 9.0])
        assert find_breakpoints(s, 1.0) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(PlanError):
            find_breakpoints(np.zeros(3), -1.0)

    def test_rejects_2d(self):
        with pytest.raises(PlanError):
            find_breakpoints(np.zeros((2, 2)), 1.0)


class TestDivideLayer:
    def test_no_breakpoints(self):
        subs = divide_layer(10, [])
        assert len(subs) == 1 and subs[0].start == 0 and subs[0].end == 10

    def test_division(self):
        subs = divide_layer(10, [3, 7])
        assert [(s.start, s.end) for s in subs] == [(0, 3), (3, 7), (7, 10)]

    def test_duplicate_breakpoints_deduplicated(self):
        subs = divide_layer(10, [3, 3, 7])
        assert len(subs) == 3

    def test_all_links_broken(self):
        subs = divide_layer(4, [1, 2, 3])
        assert all(s.length == 1 for s in subs)

    def test_out_of_range_rejected(self):
        with pytest.raises(PlanError):
            divide_layer(5, [5])
        with pytest.raises(PlanError):
            divide_layer(5, [0])

    @given(
        st.integers(2, 60),
        st.sets(st.integers(1, 59), max_size=20),
    )
    def test_division_partitions_exactly(self, length, raw_breaks):
        breaks = sorted(b for b in raw_breaks if b < length)
        subs = divide_layer(length, breaks)
        covered = [t for s in subs for t in s.timestamps()]
        assert covered == list(range(length))
        assert sum(s.length for s in subs) == length
        assert len(subs) == len(breaks) + 1
