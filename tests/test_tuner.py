"""Tests for the offline calibration (Fig. 10 operations)."""

import numpy as np
import pytest

from repro.core.tuner import (
    PrecisionSweepPoint,
    calibrate_offline,
    collect_relevance_samples,
    export_frontier,
    find_alpha_inter_max,
    fit_predicted_links,
    accuracy_guided_index,
)
from repro.errors import CalibrationError


def synthetic_samples(weak_fraction=0.2, seq=40, layers=6, seed=0):
    """Relevance arrays with a clear weak/strong bimodal structure."""
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(layers):
        s = rng.normal(1000.0, 30.0, size=seq)
        weak = rng.random(seq) < weak_fraction
        s[weak] = rng.normal(50.0, 10.0, size=int(weak.sum()))
        samples.append(np.abs(s))
    return samples


class TestAlphaSearch:
    def test_threshold_separates_modes(self):
        samples = synthetic_samples(weak_fraction=0.4)
        alpha = find_alpha_inter_max(samples, mts=4)
        # Breaking the weak mode suffices; the threshold should sit between
        # the modes rather than deep into the strong one.
        assert 50.0 < alpha < 1000.0

    def test_no_samples_rejected(self):
        with pytest.raises(CalibrationError):
            find_alpha_inter_max([], mts=4)

    def test_short_layers_fall_back_to_best(self):
        """When N_min is unreachable the search returns the best achievable
        threshold instead of failing."""
        samples = [np.full(3, 100.0)]
        alpha = find_alpha_inter_max(samples, mts=8)
        assert alpha > 0


class TestCollection:
    def test_relevance_samples_per_sequence_and_layer(self, tiny_app, tiny_tokens):
        samples = collect_relevance_samples(tiny_app.network, tiny_tokens)
        assert len(samples) == tiny_tokens.shape[0] * tiny_app.network.num_layers
        for s in samples:
            assert s.shape == (tiny_tokens.shape[1],)

    def test_predicted_links_per_layer(self, tiny_app, tiny_tokens):
        links = fit_predicted_links(tiny_app.network, tiny_tokens)
        assert len(links) == tiny_app.network.num_layers
        hidden = tiny_app.network.config.hidden_size
        assert all(l.hidden_size == hidden for l in links)

    def test_predicted_links_are_sane(self, tiny_app, tiny_tokens):
        links = fit_predicted_links(tiny_app.network, tiny_tokens)
        for link in links:
            assert np.all(np.abs(link.h_bar) <= 1.0)
            assert np.all(np.isfinite(link.c_bar))


class TestCalibrateOffline:
    def test_full_calibration(self, tiny_app_config, calibrated_network, tiny_tokens):
        calibration = calibrate_offline(calibrated_network, tiny_tokens)
        assert calibration.mts >= 1
        assert calibration.alpha_inter_max > 0
        assert len(calibration.predicted_links) == calibrated_network.num_layers

    def test_explicit_mts_respected(self, calibrated_network, tiny_tokens):
        calibration = calibrate_offline(calibrated_network, tiny_tokens, mts=3)
        assert calibration.mts == 3

    def test_schedule_shape(self, calibrated_network, tiny_tokens):
        calibration = calibrate_offline(calibrated_network, tiny_tokens, mts=3)
        schedule = calibration.schedule()
        assert len(schedule) == 11
        assert schedule[0].alpha_inter == 0.0
        assert schedule[10].alpha_inter == pytest.approx(calibration.alpha_inter_max)
        inters = [s.alpha_inter for s in schedule]
        assert inters == sorted(inters)

    def test_quadratic_intra_spacing(self, calibrated_network, tiny_tokens):
        calibration = calibrate_offline(calibrated_network, tiny_tokens, mts=3)
        schedule = calibration.schedule()
        # Quadratic: the first step is far smaller than the last step.
        step_first = schedule[1].alpha_intra - schedule[0].alpha_intra
        step_last = schedule[10].alpha_intra - schedule[9].alpha_intra
        assert step_first < step_last / 5


class TestAccuracyGuided:
    def test_wraps_ao(self):
        acc = np.array([1.0, 0.99, 0.95])
        assert accuracy_guided_index(acc, 0.98) == 1


class TestExportFrontier:
    def sweep_point(self, index, accuracy, mean_time, precision="fp64"):
        return PrecisionSweepPoint(
            threshold_index=index,
            alpha_inter=0.1 * index,
            alpha_intra=0.01 * index,
            precision=precision,
            accuracy=accuracy,
            mean_time=mean_time,
            speedup=1.0 / mean_time,
            weight_bytes_fp64=100.0,
            weight_bytes_moved=100.0 * mean_time,
        )

    def test_frontier_is_accurate_first_and_strictly_improving(self):
        points = [
            self.sweep_point(0, 1.00, 2.0),
            self.sweep_point(1, 0.99, 1.5, "fp16"),
            self.sweep_point(2, 0.97, 0.8, "int8"),
        ]
        frontier = export_frontier(list(reversed(points)))
        assert [p.threshold_index for p in frontier] == [0, 1, 2]
        accuracies = [p.accuracy for p in frontier]
        times = [p.mean_time for p in frontier]
        assert accuracies == sorted(accuracies, reverse=True)
        assert times == sorted(times, reverse=True)

    def test_dominated_points_are_dropped(self):
        points = [
            self.sweep_point(0, 1.00, 2.0),
            # Less accurate AND slower than index 0: useless to a controller.
            self.sweep_point(1, 0.98, 2.5),
            self.sweep_point(2, 0.97, 1.0, "int8"),
        ]
        frontier = export_frontier(points)
        assert [p.threshold_index for p in frontier] == [0, 2]

    def test_equal_accuracy_keeps_the_faster_point(self):
        points = [
            self.sweep_point(0, 0.99, 2.0),
            self.sweep_point(1, 0.99, 1.0),
        ]
        frontier = export_frontier(points)
        assert [p.threshold_index for p in frontier] == [1]

    def test_empty_sweep_rejected(self):
        with pytest.raises(CalibrationError):
            export_frontier([])

    def test_as_dict_round_trip(self):
        frontier = export_frontier([self.sweep_point(3, 0.98, 1.2, "int8")])
        data = frontier[0].as_dict()
        assert data["precision"] == "int8"
        assert data["threshold_index"] == 3
        assert data["weight_bytes_moved"] == pytest.approx(120.0)
