"""Property-based equivalence: batched executor vs the frozen seed walk.

Two families of properties, both over all five execution modes and over
both executor paths (interpreted loops and ``compile=True`` programs):

* **Batched vs reference.** :class:`repro.core.executor.LSTMExecutor`
  (united-gate GEMMs, plan-grouped combined mode, optional plan cache,
  compiled programs) must produce *bit-identical* logits, per-layer
  ``h_t`` trajectories, and structurally identical
  :class:`~repro.core.plan.SequencePlan` records compared to
  :class:`repro.core.reference.ReferenceExecutor` — the seed arithmetic
  with the disclosed GEMV lift.

* **Per-sequence vs batched.** Running each sequence alone must reproduce
  the batch run *bit for bit* — trajectories, plan floats at every layer,
  and logits. The stepwise recurrences and the pooled head run as stacked
  per-row GEMVs (:func:`repro.core.executor._row_gemv`), so each
  sequence's arithmetic is independent of the batch composition; the
  combined mode's grouped ``(G, k, H)`` matmul dispatches the same GEMM
  per leading-axis slice at any group size. (Before the lift, stepwise
  layer>=1 plan floats only matched to GEMV-vs-GEMM tolerance and these
  assertions were relaxed; they are now fully tight.)
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.config import LSTMConfig  # noqa: E402
from repro.core.context_prediction import PredictedLink  # noqa: E402
from repro.core.executor import (  # noqa: E402
    ExecutionConfig,
    ExecutionMode,
    LSTMExecutor,
)
from repro.core.plan import PlanCache  # noqa: E402
from repro.core.reference import ReferenceExecutor  # noqa: E402
from repro.nn.network import LSTMNetwork  # noqa: E402

VOCAB = 40
CLASSES = 4


def assert_plans_equal(plans_a, plans_b) -> None:
    """Bit-exact structural + float equality of two SequencePlan lists."""
    assert len(plans_a) == len(plans_b)
    for plan_a, plan_b in zip(plans_a, plans_b):
        assert len(plan_a.layers) == len(plan_b.layers)
        for rec_a, rec_b in zip(plan_a.layers, plan_b.layers):
            assert rec_a.layer_index == rec_b.layer_index
            assert rec_a.seq_length == rec_b.seq_length
            assert rec_a.breakpoints == rec_b.breakpoints
            assert rec_a.sublayer_lengths == rec_b.sublayer_lengths
            assert len(rec_a.tissues) == len(rec_b.tissues)
            for t_a, t_b in zip(rec_a.tissues, rec_b.tissues):
                assert t_a.cells == t_b.cells
                assert t_a.skip_fraction == t_b.skip_fraction
                assert t_a.warp_skip_fraction == t_b.warp_skip_fraction
            if rec_a.relevance is None:
                assert rec_b.relevance is None
            else:
                assert np.array_equal(rec_a.relevance, rec_b.relevance)


@st.composite
def executor_cases(draw):
    """A small random network + batch + mode + thresholds + links."""
    hidden = draw(st.sampled_from([8, 16, 24]))
    num_layers = draw(st.integers(1, 2))
    seq_length = draw(st.integers(4, 14))
    batch = draw(st.integers(1, 6))
    mode = draw(st.sampled_from(list(ExecutionMode)))
    seed = draw(st.integers(0, 2**16))
    # Thresholds spanning "no effect" to "everything divides / skips".
    alpha_inter = draw(st.sampled_from([0.0, 1.0, 50.0, 500.0, 1e12]))
    alpha_intra = draw(st.sampled_from([0.0, 0.2, 0.5, 0.9]))
    mts = draw(st.integers(1, 6))
    use_links = draw(st.booleans())
    compiled = draw(st.booleans())

    config = LSTMConfig(
        hidden_size=hidden,
        num_layers=num_layers,
        seq_length=seq_length,
        input_size=draw(st.sampled_from([hidden, 12])),
    )
    network = LSTMNetwork(config, VOCAB, CLASSES, seed=seed % 97)
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, VOCAB, size=(batch, seq_length))
    links = None
    if use_links:
        links = [
            PredictedLink(
                h_bar=np.tanh(rng.normal(size=hidden)),
                c_bar=rng.normal(size=hidden),
            )
            for _ in range(num_layers)
        ]
    exec_config = ExecutionConfig(
        mode=mode,
        alpha_inter=alpha_inter,
        alpha_intra=alpha_intra,
        mts=mts,
        use_exact_relevance=draw(st.booleans()),
    )
    return network, tokens, exec_config, links, compiled


class TestBatchedMatchesReference:
    @settings(max_examples=40, deadline=None)
    @given(case=executor_cases())
    def test_bit_identical_outputs_and_plans(self, case):
        network, tokens, config, links, compiled = case
        batched = LSTMExecutor(network, config, predicted_links=links, compile=compiled)
        reference = ReferenceExecutor(network, config, predicted_links=links)
        out_b = batched.run_batch(tokens)
        out_r = reference.run_batch(tokens)
        assert np.array_equal(out_b.logits, out_r.logits)
        assert len(out_b.layer_outputs) == len(out_r.layer_outputs)
        for h_b, h_r in zip(out_b.layer_outputs, out_r.layer_outputs):
            assert np.array_equal(h_b, h_r)
        assert_plans_equal(out_b.plans, out_r.plans)

    @settings(max_examples=20, deadline=None)
    @given(case=executor_cases())
    def test_compiled_matches_interpreted(self, case):
        network, tokens, config, links, _ = case
        interpreted = LSTMExecutor(network, config, predicted_links=links, compile=False)
        compiled = LSTMExecutor(network, config, predicted_links=links, compile=True)
        out_i = interpreted.run_batch(tokens)
        out_c = compiled.run_batch(tokens)
        assert np.array_equal(out_i.logits, out_c.logits)
        for h_i, h_c in zip(out_i.layer_outputs, out_c.layer_outputs):
            assert np.array_equal(h_i, h_c)
        assert_plans_equal(out_i.plans, out_c.plans)

    @settings(max_examples=15, deadline=None)
    @given(case=executor_cases())
    def test_plan_cache_does_not_change_results(self, case):
        network, tokens, config, links, compiled = case
        cache = PlanCache()
        uncached = LSTMExecutor(network, config, predicted_links=links, compile=compiled)
        cached = LSTMExecutor(
            network, config, predicted_links=links, plan_cache=cache, compile=compiled
        )
        out_u = uncached.run_batch(tokens)
        out_c1 = cached.run_batch(tokens)
        out_c2 = cached.run_batch(tokens)  # second run served from cache
        assert np.array_equal(out_u.logits, out_c1.logits)
        assert np.array_equal(out_c1.logits, out_c2.logits)
        assert_plans_equal(out_u.plans, out_c1.plans)
        assert_plans_equal(out_c1.plans, out_c2.plans)
        if config.mode in (ExecutionMode.INTER, ExecutionMode.COMBINED):
            layers = network.num_layers
            expected = 2 * tokens.shape[0] * layers
            assert cache.stats.plan_requests == expected
            assert cache.stats.plan_hits >= tokens.shape[0] * layers


class TestPerSequenceMatchesBatch:
    @settings(max_examples=30, deadline=None)
    @given(case=executor_cases())
    def test_each_sequence_alone_reproduces_the_batch(self, case):
        network, tokens, config, links, compiled = case
        executor = LSTMExecutor(network, config, predicted_links=links, compile=compiled)
        batch_out = executor.run_batch(tokens)
        for b in range(tokens.shape[0]):
            solo = executor.run_batch(tokens[b : b + 1])
            # Every mode is batch-composition-invariant: the stepwise
            # recurrences and the pooled head run as stacked per-row GEMVs
            # and the combined walk dispatches the same GEMM per
            # leading-axis slice at any group size — so trajectories,
            # plan floats, and logits are all bit-exact.
            assert_plans_equal(solo.plans, [batch_out.plans[b]])
            for h_solo, h_batch in zip(solo.layer_outputs, batch_out.layer_outputs):
                assert np.array_equal(h_solo[0], h_batch[b])
            assert np.array_equal(solo.logits[0], batch_out.logits[b])
