"""Tests for the top-level OptimizedLSTM API."""

import numpy as np
import pytest

from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.errors import CalibrationError
from repro.gpu.specs import TESLA_M40


class TestConstruction:
    def test_from_app_config(self, tiny_app_config):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1)
        assert app.network.config is tiny_app_config.model

    def test_sample_tokens_shape(self, tiny_app):
        tokens = tiny_app.sample_tokens(5, seed=0)
        assert tokens.shape == (5, tiny_app.network.config.seq_length)
        assert tokens.max() < tiny_app.network.vocab_size

    def test_sample_tokens_seeded(self, tiny_app):
        np.testing.assert_array_equal(
            tiny_app.sample_tokens(3, seed=9), tiny_app.sample_tokens(3, seed=9)
        )


class TestCalibrationGate:
    def test_optimized_modes_require_calibration(self, tiny_app_config):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1)
        with pytest.raises(CalibrationError):
            app.execution_config(ExecutionMode.COMBINED)

    def test_baseline_works_uncalibrated(self, tiny_app_config, tiny_tokens):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1)
        outcome = app.run(tiny_tokens, mode=ExecutionMode.BASELINE)
        assert outcome.mean_time > 0

    def test_zero_prune_works_uncalibrated(self, tiny_app_config, tiny_tokens):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1)
        outcome = app.run(tiny_tokens, mode=ExecutionMode.ZERO_PRUNE)
        assert outcome.mean_time > 0


class TestExecutionConfigResolution:
    def test_threshold_index_resolves_alphas(self, tiny_app):
        cfg = tiny_app.execution_config(ExecutionMode.COMBINED, threshold_index=5)
        schedule = tiny_app.calibration.schedule()
        assert cfg.alpha_inter == schedule[5].alpha_inter
        assert cfg.alpha_intra == schedule[5].alpha_intra

    def test_defaults_to_maxima(self, tiny_app):
        cfg = tiny_app.execution_config(ExecutionMode.COMBINED)
        assert cfg.alpha_inter == tiny_app.calibration.alpha_inter_max
        assert cfg.alpha_intra == tiny_app.calibration.alpha_intra_max

    def test_inter_mode_zeroes_intra(self, tiny_app):
        cfg = tiny_app.execution_config(ExecutionMode.INTER, threshold_index=5)
        assert cfg.alpha_intra == 0.0

    def test_intra_mode_zeroes_inter(self, tiny_app):
        cfg = tiny_app.execution_config(ExecutionMode.INTRA, threshold_index=5)
        assert cfg.alpha_inter == 0.0

    def test_explicit_alpha_overrides_index(self, tiny_app):
        cfg = tiny_app.execution_config(
            ExecutionMode.COMBINED, threshold_index=5, alpha_intra=0.123
        )
        assert cfg.alpha_intra == 0.123


class TestOutcomes:
    def test_baseline_agreement_with_itself(self, tiny_app, tiny_tokens):
        a = tiny_app.run(tiny_tokens, mode=ExecutionMode.BASELINE)
        b = tiny_app.run(tiny_tokens, mode=ExecutionMode.BASELINE)
        assert a.agreement_with(b) == 1.0
        assert a.speedup_vs(b) == pytest.approx(1.0)

    def test_all_modes_produce_outcomes(self, tiny_app, tiny_tokens):
        for mode in ExecutionMode:
            outcome = tiny_app.run(tiny_tokens, mode=mode, threshold_index=4)
            assert outcome.mean_time > 0
            assert outcome.mean_energy > 0
            assert outcome.predictions.shape[0] == tiny_tokens.shape[0]

    def test_traces_kept_on_request(self, tiny_app, tiny_tokens):
        outcome = tiny_app.run(tiny_tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
        assert len(outcome.traces) == tiny_tokens.shape[0]

    def test_result_kept_on_request(self, tiny_app, tiny_tokens):
        outcome = tiny_app.run(
            tiny_tokens, mode=ExecutionMode.BASELINE, keep_result=True
        )
        assert outcome.result is not None

    def test_mismatched_batches_rejected(self, tiny_app, tiny_tokens):
        a = tiny_app.run(tiny_tokens, mode=ExecutionMode.BASELINE)
        b = tiny_app.run(tiny_tokens[:2], mode=ExecutionMode.BASELINE)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            a.agreement_with(b)

    def test_tiny_models_fit_in_l2_so_inter_saves_no_traffic(self, tiny_app, tiny_tokens):
        """A tiny united matrix stays L2-resident across cells, so the
        inter-cell optimization saves (almost) no DRAM traffic — the
        memory bottleneck is specific to real model sizes. (Wall-clock can
        still improve from launch-overhead amortization.)"""
        base = tiny_app.run(tiny_tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
        inter = tiny_app.run(
            tiny_tokens, mode=ExecutionMode.INTER, threshold_index=10, keep_traces=True
        )
        base_bytes = base.traces[0].total_dram_bytes
        inter_bytes = inter.traces[0].total_dram_bytes
        assert inter_bytes > 0.6 * base_bytes


class TestAlternateSpec:
    def test_runs_on_m40(self, tiny_app_config, tiny_tokens):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1, spec=TESLA_M40)
        outcome = app.run(tiny_tokens, mode=ExecutionMode.BASELINE)
        assert outcome.mean_time > 0


class TestCalibrationErrorMessages:
    def test_message_is_actionable(self, tiny_app_config, tiny_tokens):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1)
        with pytest.raises(CalibrationError) as excinfo:
            app.run(tiny_tokens, mode=ExecutionMode.COMBINED)
        message = str(excinfo.value)
        assert "COMBINED" in message
        assert "calibrate()" in message

    @pytest.mark.parametrize("mode", [ExecutionMode.INTER, ExecutionMode.COMBINED])
    def test_raised_at_api_boundary_per_mode(self, tiny_app_config, tiny_tokens, mode):
        app = OptimizedLSTM.from_app(tiny_app_config, seed=1)
        with pytest.raises(CalibrationError, match=mode.value.upper()):
            app.run(tiny_tokens, mode=mode)

    def test_threshold_index_out_of_range(self, tiny_app):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="out of range"):
            tiny_app.execution_config(ExecutionMode.COMBINED, threshold_index=99)
