"""The hard-sigmoid framework variant (Section IV-A).

The paper notes some frameworks model the sigmoid with the piecewise-
linear hard sigmoid, and that the sensitive-area boundaries fit both. The
reference cell path supports swapping the activation; these tests verify
the sensitive-area analysis transfers.
"""

import numpy as np

from repro.nn.activations import hard_sigmoid, sigmoid
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_layer import LSTMLayer
from repro.core.relevance import relevance_values
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights


def test_hard_sigmoid_layer_stays_bounded():
    layer = LSTMLayer.create(16, 12, WeightInitializer(0), forget_bias=0.5)
    layer.sigmoid_fn = hard_sigmoid
    xs = np.random.default_rng(0).normal(size=(12, 12)) * 2
    hs, cs = layer.forward(xs)
    assert np.all(np.abs(hs) <= 1.0)
    assert np.all(np.isfinite(cs))


def test_hard_and_exact_sigmoid_agree_in_saturation():
    """Outside the sensitive area the two activations coincide, so
    saturated cells behave identically under either framework."""
    xs = np.array([-6.0, -3.0, 3.0, 6.0])
    np.testing.assert_allclose(hard_sigmoid(xs), sigmoid(xs), atol=0.05)


def test_relevance_is_activation_independent():
    """Algorithm 2 uses only the shared sensitive-area boundaries, so the
    relevance values do not depend on which sigmoid the framework uses."""
    w = LSTMCellWeights.initialize(10, 8, WeightInitializer(1))
    xs = np.random.default_rng(2).normal(size=(5, 8))
    proj = {g: xs @ w.gate_w(g).T for g in GATE_ORDER}
    # relevance_values has no activation argument at all — assert the API
    # reflects the framework independence the paper claims.
    s = relevance_values(w, proj)
    assert s.shape == (5,)


def test_zero_output_under_hard_sigmoid_skip_reasoning():
    """Under the hard sigmoid, o_t below the threshold is *exactly* zero
    for sufficiently negative pre-activations, making DRS lossless there."""
    pre = np.array([-2.5, -2.01])
    assert np.all(hard_sigmoid(pre) == 0.0)
