"""Tests for the GRU adjustment of relevance and row skipping."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.activations import sigmoid
from repro.nn.gru import GRU_GATE_ORDER, GRUCellWeights, gru_cell_step
from repro.nn.initializers import WeightInitializer
from repro.core.gru_adaptation import (
    gru_compression_ratio,
    gru_recurrent_row_ranges,
    gru_relevance_values,
    gru_trivial_row_mask,
)

H, E, T = 10, 8, 6


def weights_and_proj(seed=0, scale=1.0):
    w = GRUCellWeights.initialize(H, E, WeightInitializer(seed))
    xs = np.random.default_rng(seed + 1).normal(size=(T, E)) * scale
    proj = {g: xs @ getattr(w, f"w_{g}").T for g in GRU_GATE_ORDER}
    return w, proj


class TestRowRanges:
    def test_l1_norms(self):
        w, _ = weights_and_proj()
        ranges = gru_recurrent_row_ranges(w)
        for g in GRU_GATE_ORDER:
            np.testing.assert_allclose(
                ranges[g], np.abs(getattr(w, f"u_{g}")).sum(axis=1)
            )


class TestRelevance:
    def test_shape_and_bounds(self):
        w, proj = weights_and_proj()
        s = gru_relevance_values(w, proj)
        assert s.shape == (T,)
        assert np.all(s >= 0)

    def test_saturated_update_gate_severs_link(self):
        """z saturated at 1 everywhere -> old state fully discarded -> S=0."""
        w, _ = weights_and_proj()
        for g in GRU_GATE_ORDER:
            setattr(w, f"u_{g}", np.zeros((H, H)))
            setattr(w, f"b_{g}", np.zeros(H))
        proj = {g: np.full((T, H), 50.0) for g in GRU_GATE_ORDER}
        np.testing.assert_allclose(gru_relevance_values(w, proj), 0.0)

    def test_saturation_semantics_match_cell(self):
        """When the relevance says the link is severed, replacing h_{t-1}
        must not change the cell output (the end-to-end guarantee)."""
        w, _ = weights_and_proj()
        for g in GRU_GATE_ORDER:
            setattr(w, f"u_{g}", np.zeros((H, H)))
        # Drive z hard to 1 via the bias; r/n unconstrained.
        w.b_z = np.full(H, 50.0)
        x = np.random.default_rng(3).normal(size=E)
        out_a = gru_cell_step(w, x, np.zeros(H))
        out_b = gru_cell_step(w, x, np.random.default_rng(4).normal(size=H) * 0.5)
        np.testing.assert_allclose(out_a, out_b, atol=1e-10)

    def test_missing_gate_rejected(self):
        w, proj = weights_and_proj()
        del proj["n"]
        with pytest.raises(ShapeError):
            gru_relevance_values(w, proj)

    def test_more_saturation_weakens_links(self):
        w, proj_small = weights_and_proj(scale=0.5)
        _, proj_large = weights_and_proj(scale=8.0)
        assert (
            gru_relevance_values(w, proj_large).mean()
            < gru_relevance_values(w, proj_small).mean()
        )


class TestGRUDRS:
    def test_mask_threshold(self):
        z = np.array([0.01, 0.5, 0.04])
        np.testing.assert_array_equal(
            gru_trivial_row_mask(z, 0.05), [True, False, True]
        )

    def test_zero_alpha_disables(self):
        assert not gru_trivial_row_mask(np.zeros(4), 0.0).any()

    def test_skip_consistency_with_cell(self):
        """Rows the mask marks trivial keep h almost unchanged when skipped."""
        w = GRUCellWeights.initialize(H, E, WeightInitializer(2))
        w.b_z -= 3.0  # close most update gates
        rng = np.random.default_rng(5)
        x = rng.normal(size=E)
        h = rng.normal(size=H) * 0.3
        z = sigmoid(x @ w.w_z.T + h @ w.u_z.T + w.b_z)
        mask = gru_trivial_row_mask(z, 0.05)
        exact = gru_cell_step(w, x, h)
        skipped = gru_cell_step(w, x, h, skip_rows=mask)
        # Trivial rows: |h_new - h_old| <= alpha * 2, and skipping keeps h_old.
        assert np.max(np.abs(skipped[mask] - exact[mask])) < 0.12

    def test_compression_ceiling_is_two_thirds(self):
        full = [np.ones(H, dtype=bool)]
        assert gru_compression_ratio(full) == pytest.approx(2.0 / 3.0)

    def test_compression_empty(self):
        assert gru_compression_ratio([]) == 0.0
