"""Tests for the result export helpers."""

import json

import numpy as np
import pytest

from repro.bench.export import dump_json, sweep_to_csv, to_jsonable
from repro.core.executor import ExecutionMode
from repro.errors import ConfigurationError
from repro.workloads.apps import WorkloadEvaluation


def make_eval(index=1):
    return WorkloadEvaluation(
        app_name="X",
        mode=ExecutionMode.COMBINED,
        threshold_index=index,
        alpha_inter=1.5,
        alpha_intra=0.1,
        accuracy=0.99,
        speedup=2.0,
        energy_saving=0.4,
        mean_tissue_size=2.5,
        mean_skip_fraction=0.5,
        mean_breakpoints=3.0,
        mean_time=1e-3,
        mean_energy=1e-2,
    )


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.arange(3)})
        assert out == {"a": 1.5, "b": [0, 1, 2]}

    def test_dataclass_and_enum(self):
        out = to_jsonable(make_eval())
        assert out["mode"] == "combined"
        assert out["speedup"] == 2.0

    def test_nested_containers(self):
        out = to_jsonable({"x": [make_eval(), {"y": (1, 2)}]})
        assert out["x"][1]["y"] == [1, 2]

    def test_unserializable_rejected(self):
        with pytest.raises(ConfigurationError):
            to_jsonable(object())


class TestDumpJson:
    def test_round_trip(self, tmp_path):
        path = dump_json({"sweep": [make_eval(i) for i in range(3)]}, tmp_path / "r.json")
        loaded = json.loads(path.read_text())
        assert len(loaded["sweep"]) == 3
        assert loaded["sweep"][2]["threshold_index"] == 2


class TestSweepCsv:
    def test_header_and_rows(self, tmp_path):
        text = sweep_to_csv([make_eval(0), make_eval(1)], tmp_path / "s.csv")
        lines = text.strip().splitlines()
        assert lines[0].startswith("threshold_index,alpha_inter")
        assert len(lines) == 3
        assert (tmp_path / "s.csv").exists()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_to_csv([])
