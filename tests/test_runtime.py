"""Property and lifecycle tests of the sharded serving runtime.

The runtime's numerics contract: every dispatched group executes
bit-identically to :meth:`repro.core.executor.LSTMExecutor.run_batch` on
that group in the calling process — shared-memory weight views, the
process boundary, and the worker count change no bits — and grouping is
a pure function of ``(network, config, tokens)``, so fleet outputs are
identical at any parallelism. ``workers=0`` must reproduce the worker
path exactly. Lifecycle: the weight arena tears down cleanly (no leaked
``/dev/shm`` segments), the bounded queue raises
:class:`~repro.errors.BackpressureError` when full, and per-worker run
records merge into one schema-valid fleet record.

Worker processes spawn per test, so the cross-process tests use one
fixed mid-size workload per mode instead of hypothesis-sized fleets;
hypothesis drives the (cheap, in-process) ``workers=0`` fallback and the
shard-split grouping properties.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.config import LSTMConfig  # noqa: E402
from repro.core.executor import (  # noqa: E402
    ExecutionConfig,
    ExecutionMode,
    LSTMExecutor,
)
from repro.errors import (  # noqa: E402
    BackpressureError,
    ConfigurationError,
    RuntimeStateError,
)
from repro.nn.network import LSTMNetwork  # noqa: E402
from repro.obs import Recorder, merge_run_records, validate_run_dict  # noqa: E402
from repro.runtime import (  # noqa: E402
    FleetScheduler,
    InferenceRuntime,
    WeightArena,
    leaked_segments,
)
from tests.test_executor_equivalence import assert_plans_equal  # noqa: E402

VOCAB = 50
CLASSES = 4

MODE_CONFIGS = {
    ExecutionMode.BASELINE: ExecutionConfig(mode=ExecutionMode.BASELINE),
    ExecutionMode.INTER: ExecutionConfig(
        mode=ExecutionMode.INTER, alpha_inter=50.0, mts=3
    ),
    ExecutionMode.INTRA: ExecutionConfig(mode=ExecutionMode.INTRA, alpha_intra=0.5),
    ExecutionMode.COMBINED: ExecutionConfig(
        mode=ExecutionMode.COMBINED, alpha_inter=50.0, alpha_intra=0.5, mts=3
    ),
    ExecutionMode.ZERO_PRUNE: ExecutionConfig(mode=ExecutionMode.ZERO_PRUNE),
}


def build_workload(
    hidden: int = 24, layers: int = 2, seq: int = 12, batch: int = 7, seed: int = 5
):
    config = LSTMConfig(hidden_size=hidden, num_layers=layers, seq_length=seq,
                        input_size=hidden)
    network = LSTMNetwork(config, VOCAB, CLASSES, seed=seed)
    rng = np.random.default_rng(seed + 1)
    tokens = rng.integers(0, VOCAB, size=(batch, seq))
    return network, tokens


def groupwise_expected(network, exec_config, tokens, max_batch):
    """Executor logits/plans per dispatch group, scattered to request order."""
    scheduler = FleetScheduler(network, exec_config, max_batch=max_batch)
    executor = LSTMExecutor(network, exec_config)
    logits = None
    plans = [None] * tokens.shape[0]
    for group in scheduler.plan_dispatch(tokens):
        out = executor.run_batch(group.tokens)
        if logits is None:
            logits = np.empty((tokens.shape[0],) + out.logits.shape[1:],
                              dtype=out.logits.dtype)
        for row, index in enumerate(group.indices):
            logits[index] = out.logits[row]
            plans[index] = out.plans[row]
    return logits, plans


@st.composite
def runtime_cases(draw):
    """Small workload + mode + shard split for the in-process properties."""
    hidden = draw(st.sampled_from([8, 16]))
    layers = draw(st.integers(1, 2))
    seq = draw(st.integers(4, 10))
    batch = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**10))
    mode = draw(st.sampled_from(list(ExecutionMode)))
    max_batch = draw(st.integers(1, 6))
    network, tokens = build_workload(hidden, layers, seq, batch, seed)
    return network, tokens, MODE_CONFIGS[mode], max_batch


class TestSynchronousFallback:
    @settings(max_examples=25, deadline=None)
    @given(case=runtime_cases())
    def test_workers0_matches_groupwise_executor(self, case):
        network, tokens, exec_config, max_batch = case
        with InferenceRuntime(
            network, exec_config, workers=0, max_batch=max_batch
        ) as runtime:
            fleet = runtime.run_batch(tokens)
        expected_logits, expected_plans = groupwise_expected(
            network, exec_config, tokens, max_batch
        )
        assert np.array_equal(fleet.logits, expected_logits)
        assert_plans_equal(fleet.plans, expected_plans)

    @settings(max_examples=15, deadline=None)
    @given(case=runtime_cases())
    def test_grouping_covers_batch_exactly_once(self, case):
        network, tokens, exec_config, max_batch = case
        scheduler = FleetScheduler(network, exec_config, max_batch=max_batch)
        groups = scheduler.plan_dispatch(tokens)
        covered = sorted(i for g in groups for i in g.indices)
        assert covered == list(range(tokens.shape[0]))
        for group in groups:
            assert 1 <= len(group.indices) <= max_batch
            assert np.array_equal(group.tokens, tokens[list(group.indices)])
            for index in group.indices:
                assert scheduler.signature(tokens[index]) == group.signature


class TestFleetBitIdentity:
    @pytest.mark.parametrize("mode", list(ExecutionMode), ids=lambda m: m.value)
    def test_two_workers_match_groupwise_executor(self, mode):
        network, tokens = build_workload()
        exec_config = MODE_CONFIGS[mode]
        with InferenceRuntime(
            network, exec_config, workers=2, max_batch=3
        ) as runtime:
            fleet = runtime.run_batch(tokens)
        expected_logits, expected_plans = groupwise_expected(
            network, exec_config, tokens, max_batch=3
        )
        assert np.array_equal(fleet.logits, expected_logits)
        assert_plans_equal(fleet.plans, expected_plans)
        assert leaked_segments() == []

    def test_worker_count_does_not_change_bits(self):
        network, tokens = build_workload()
        exec_config = MODE_CONFIGS[ExecutionMode.COMBINED]
        outputs = []
        for workers in (0, 1, 2):
            with InferenceRuntime(
                network, exec_config, workers=workers, max_batch=3
            ) as runtime:
                outputs.append(runtime.run_batch(tokens))
        for fleet in outputs[1:]:
            assert np.array_equal(fleet.logits, outputs[0].logits)
            assert_plans_equal(fleet.plans, outputs[0].plans)


class TestArena:
    def test_attached_network_is_bit_identical_and_read_only(self):
        network, tokens = build_workload(batch=3)
        exec_config = MODE_CONFIGS[ExecutionMode.COMBINED]
        expected = LSTMExecutor(network, exec_config).run_batch(tokens)
        with WeightArena.publish(network) as arena:
            attached = arena.network()
            with pytest.raises((ValueError, RuntimeError)):
                attached.embedding[0, 0] = 1.0
            out = LSTMExecutor(attached, exec_config).run_batch(tokens)
            assert np.array_equal(out.logits, expected.logits)
            assert_plans_equal(out.plans, expected.plans)
        assert leaked_segments() == []

    def test_publish_unlink_leaves_no_segment(self):
        network, _ = build_workload(batch=1)
        arena = WeightArena.publish(network)
        name = arena.manifest.shm_name
        assert any(name in leaked for leaked in leaked_segments())
        arena.close()
        arena.unlink()
        assert leaked_segments() == []


class TestBackpressure:
    def test_nonblocking_submit_raises_when_queue_full(self):
        network, tokens = build_workload(batch=6)
        exec_config = MODE_CONFIGS[ExecutionMode.BASELINE]
        # In-flight is counted parent-side (dispatched, not yet collected),
        # so a slow worker is not required for determinism — but the dwell
        # keeps results from racing into the buffer during submit.
        with InferenceRuntime(
            network,
            exec_config,
            workers=1,
            max_batch=2,
            queue_depth=2,
            dwell_s=0.05,
        ) as runtime:
            groups = runtime.scheduler.plan_dispatch(tokens)
            assert len(groups) == 3
            runtime.submit(groups[0], block=False)
            runtime.submit(groups[1], block=False)
            with pytest.raises(BackpressureError):
                runtime.submit(groups[2], block=False)
            runtime.collect(1)  # frees a slot
            runtime.submit(groups[2], block=False)
            runtime.collect(2)

    def test_lifecycle_errors(self):
        network, tokens = build_workload(batch=2)
        runtime = InferenceRuntime(network, MODE_CONFIGS[ExecutionMode.BASELINE])
        with pytest.raises(RuntimeStateError):
            runtime.run_batch(tokens)
        runtime.start()
        runtime.run_batch(tokens)
        runtime.close()
        with pytest.raises(RuntimeStateError):
            runtime.run_batch(tokens)


class TestFleetRecords:
    def test_fleet_record_merges_and_validates(self):
        network, tokens = build_workload()
        exec_config = MODE_CONFIGS[ExecutionMode.COMBINED]
        recorder = Recorder()
        with InferenceRuntime(
            network, exec_config, workers=2, max_batch=3, recorder=recorder
        ) as runtime:
            fleet = runtime.run_batch(tokens)
        assert fleet.record is not None
        assert len(recorder.records) == 1
        record = recorder.last()
        assert record.label == "fleet"
        assert record.batch == tokens.shape[0]
        assert [seq.seq_index for seq in record.sequences] == list(
            range(tokens.shape[0])
        )
        validate_run_dict(record.to_dict())

    def test_workers0_record_matches_schema_and_batch(self):
        network, tokens = build_workload(batch=4)
        recorder = Recorder()
        with InferenceRuntime(
            network,
            MODE_CONFIGS[ExecutionMode.INTER],
            workers=0,
            max_batch=2,
            recorder=recorder,
        ) as runtime:
            runtime.run_batch(tokens)
        record = recorder.last()
        assert record.batch == tokens.shape[0]
        validate_run_dict(record.to_dict())

    def test_merge_rejects_mismatched_records(self):
        network, tokens = build_workload(batch=2)
        records = []
        for mode in (ExecutionMode.BASELINE, ExecutionMode.INTRA):
            recorder = Recorder()
            LSTMExecutor(
                network, MODE_CONFIGS[mode], recorder=recorder
            ).run_batch(tokens)
            records.append(recorder.last())
        with pytest.raises(ConfigurationError):
            merge_run_records(records)
        with pytest.raises(ConfigurationError):
            merge_run_records([])

    def test_merge_reindexes_when_asked(self):
        network, tokens = build_workload(batch=3)
        config = MODE_CONFIGS[ExecutionMode.BASELINE]
        records = []
        for _ in range(2):
            recorder = Recorder()
            LSTMExecutor(network, config, recorder=recorder).run_batch(tokens)
            records.append(recorder.last())
        merged = merge_run_records(records, reindex=True)
        assert merged.batch == 2 * tokens.shape[0]
        assert [seq.seq_index for seq in merged.sequences] == list(
            range(2 * tokens.shape[0])
        )
        validate_run_dict(merged.to_dict())
