"""Cross-module flow tests: threshold selection drives the user study.

Exercises the Fig. 19 -> Fig. 18 pipeline on a tiny workload: sweep, AO /
BPA selection, replay construction, and the study's qualitative ordering.
"""

import numpy as np
import pytest

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.workloads.apps import Workload
from repro.workloads.datasets import build_dataset
from repro.workloads.userstudy import ReplayProgram, UserStudy


@pytest.fixture(scope="module")
def workload():
    cfg = AppConfig(
        name="FLOW",
        family=TaskFamily.SENTIMENT_CLASSIFICATION,
        model=LSTMConfig(hidden_size=96, num_layers=1, seq_length=20),
        vocab_size=300,
        num_classes=2,
    )
    app = OptimizedLSTM.from_app(cfg, seed=2)
    app.calibrate(num_sequences=5)
    dataset = build_dataset(app, 12, seed=3, confidence_keep=0.7)
    return Workload(app, dataset, "FLOW")


@pytest.fixture(scope="module")
def sweep(workload):
    return workload.threshold_sweep(ExecutionMode.COMBINED)


class TestSweepShape:
    def test_eleven_points(self, sweep):
        assert len(sweep) == 11

    def test_speedup_trend(self, sweep):
        speeds = [e.speedup for e in sweep]
        assert speeds[0] == 1.0
        assert speeds[-1] > speeds[0]
        assert np.mean(np.diff(speeds)) > 0

    def test_accuracy_trend(self, sweep):
        accs = [e.accuracy for e in sweep]
        assert accs[0] == 1.0
        assert accs[-1] <= accs[0]

    def test_ao_meets_target(self, workload, sweep):
        ao = Workload.ao_index(sweep)
        assert sweep[ao].accuracy >= 0.98 or ao == 0

    def test_bpa_at_product_max(self, workload, sweep):
        bpa = Workload.bpa_index(sweep)
        products = [e.speedup * e.accuracy for e in sweep]
        assert products[bpa] == max(products)


class TestStudyFromSweep:
    def test_uo_dominates_every_fixed_scheme(self, workload, sweep):
        """UO optimizes per user, so (up to rating noise) it can never lose
        to any fixed scheme — even on a workload whose trade-off curve is
        unfavorable (this tiny model's weights are L2-resident, so the
        approximations cost accuracy without buying speed, and the
        rational choice for most users is the baseline itself)."""
        replay = ReplayProgram(sweep)
        study = UserStudy(replay, seed=11)
        result = study.run(
            ao_index=Workload.ao_index(sweep), bpa_index=Workload.bpa_index(sweep)
        )
        scores = result.scores
        best_fixed = max(scores["baseline"], scores["AO"], scores["BPA"])
        assert scores["UO"] >= best_fixed - 0.1

    def test_uo_choice_is_utility_optimal_per_user(self, sweep):
        from repro.workloads.userstudy import sample_participants

        replay = ReplayProgram(sweep)
        for participant in sample_participants(seed=1)[:5]:
            choice = replay.uo_choice(participant)
            best = max(
                participant.expected_satisfaction(e) for e in replay.experiences
            )
            assert participant.expected_satisfaction(choice) == pytest.approx(best)
