"""Tests for the mode executor — the numerical heart of the reproduction.

The key invariants: every optimized mode with its thresholds at zero is
numerically identical to the baseline; the baseline executor matches the
reference network forward; and the combined mode degenerates to the inter /
intra modes when the other knob is off.
"""

import numpy as np
import pytest

from repro.core.context_prediction import PredictedLink
from repro.core.executor import (
    ExecutionConfig,
    ExecutionMode,
    LSTMExecutor,
)
from repro.errors import ConfigurationError, ShapeError
from tests.conftest import make_executor


class TestConfig:
    def test_mode_flags(self):
        assert ExecutionConfig(mode=ExecutionMode.COMBINED).inter_active
        assert ExecutionConfig(mode=ExecutionMode.COMBINED).intra_active
        assert not ExecutionConfig(mode=ExecutionMode.INTER).intra_active
        assert not ExecutionConfig(mode=ExecutionMode.INTRA).inter_active
        assert not ExecutionConfig(mode=ExecutionMode.BASELINE).inter_active

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(alpha_inter=-1.0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(mts=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(drs_style="quantum")
        with pytest.raises(ConfigurationError):
            ExecutionConfig(zero_prune_fraction=1.0)


class TestBaseline:
    def test_matches_reference_forward(self, tiny_network, tiny_tokens):
        executor = make_executor(tiny_network)
        result = executor.run_batch(tiny_tokens)
        for b, tokens in enumerate(tiny_tokens):
            ref = tiny_network.forward(tokens)
            np.testing.assert_allclose(result.logits[b], ref.logits, atol=1e-10)

    def test_plans_are_singleton_tissues(self, tiny_network, tiny_tokens):
        result = make_executor(tiny_network).run_batch(tiny_tokens)
        for plan in result.plans:
            for record in plan.layers:
                record.validate()
                assert all(t.size == 1 for t in record.tissues)
                assert record.breakpoints == []

    def test_collect_states(self, tiny_network, tiny_tokens):
        result = make_executor(tiny_network).run_batch(tiny_tokens, collect_states=True)
        assert len(result.layer_states) == tiny_network.num_layers
        assert result.layer_states[0].shape == result.layer_outputs[0].shape

    def test_rejects_1d_tokens(self, tiny_network, tiny_tokens):
        with pytest.raises(ShapeError):
            make_executor(tiny_network).run_batch(tiny_tokens[0])


class TestIntra:
    def test_alpha_zero_equals_baseline(self, tiny_network, tiny_tokens):
        base = make_executor(tiny_network).run_batch(tiny_tokens)
        intra = make_executor(
            tiny_network, ExecutionMode.INTRA, alpha_intra=0.0
        ).run_batch(tiny_tokens)
        np.testing.assert_allclose(intra.logits, base.logits, atol=1e-12)

    def test_skip_semantics_match_reference_cell(self, calibrated_network, tiny_tokens):
        """Batched masked-matmul numerics == sliced-weight row skipping."""
        from repro.nn.lstm_cell import (
            CellState,
            GATE_ORDER,
            input_projections,
            lstm_cell_step,
        )

        alpha = 0.1
        executor = make_executor(
            calibrated_network, ExecutionMode.INTRA, alpha_intra=alpha
        )
        result = executor.run_batch(tiny_tokens[:1])

        # Reference: single-sequence loop with true row slicing.
        net = calibrated_network
        xs = net.embed(tiny_tokens[0])
        for layer in net.layers:
            w = layer.weights
            proj = input_projections(w, xs)
            state = CellState.zeros(w.hidden_size)
            hs = []
            for t in range(xs.shape[0]):
                step_proj = {g: proj[g][t] for g in GATE_ORDER}
                # Compute o first to build the mask, as DRS does.
                o_pre = step_proj["o"] + w.u_o @ state.h + w.b_o
                from repro.nn.activations import sigmoid

                mask = sigmoid(o_pre) < alpha
                state, _ = lstm_cell_step(w, step_proj, state, skip_rows=mask)
                hs.append(state.h)
            xs = np.asarray(hs)
        ref_logits = net.head_logits(net.pool_top(xs))
        np.testing.assert_allclose(result.logits[0], ref_logits, atol=1e-10)

    def test_records_skip_fractions(self, calibrated_network, tiny_tokens):
        executor = make_executor(
            calibrated_network, ExecutionMode.INTRA, alpha_intra=0.2
        )
        result = executor.run_batch(tiny_tokens)
        fractions = [p.mean_skip_fraction for p in result.plans]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert any(f > 0.0 for f in fractions)

    def test_higher_alpha_skips_more(self, calibrated_network, tiny_tokens):
        low = make_executor(
            calibrated_network, ExecutionMode.INTRA, alpha_intra=0.05
        ).run_batch(tiny_tokens)
        high = make_executor(
            calibrated_network, ExecutionMode.INTRA, alpha_intra=0.4
        ).run_batch(tiny_tokens)
        assert (
            np.mean([p.mean_skip_fraction for p in high.plans])
            >= np.mean([p.mean_skip_fraction for p in low.plans])
        )


class TestInter:
    def test_epsilon_alpha_equals_baseline(self, calibrated_network, tiny_tokens):
        base = make_executor(calibrated_network).run_batch(tiny_tokens)
        inter = make_executor(
            calibrated_network, ExecutionMode.INTER, alpha_inter=1e-300
        ).run_batch(tiny_tokens)
        np.testing.assert_allclose(inter.logits, base.logits, atol=1e-12)

    def test_relevance_recorded(self, calibrated_network, tiny_tokens):
        inter = make_executor(
            calibrated_network, ExecutionMode.INTER, alpha_inter=1e-300
        ).run_batch(tiny_tokens)
        for plan in inter.plans:
            for record in plan.layers:
                assert record.relevance is not None
                assert record.relevance.shape == (record.seq_length,)

    def test_breaking_everything_uses_predicted_link(self, calibrated_network, tiny_tokens):
        """With every link broken, each cell starts from the predicted
        link, so the recurrence contributes nothing sequence-specific."""
        hidden = calibrated_network.config.hidden_size
        link = PredictedLink(
            h_bar=np.full(hidden, 0.1), c_bar=np.full(hidden, 0.2)
        )
        config = ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=1e12)
        executor = LSTMExecutor(
            calibrated_network,
            config,
            predicted_links=[link] * calibrated_network.num_layers,
        )
        result = executor.run_batch(tiny_tokens)
        for plan in result.plans:
            rec = plan.layers[0]
            assert len(rec.breakpoints) == rec.seq_length - 1

    def test_plans_valid_and_tissues_capped(self, calibrated_network, tiny_tokens):
        mts = 3
        executor = make_executor(
            calibrated_network, ExecutionMode.INTER, alpha_inter=1e12, mts=mts
        )
        result = executor.run_batch(tiny_tokens)
        for plan in result.plans:
            for record in plan.layers:
                record.validate()
                assert all(t.size <= mts for t in record.tissues)

    def test_predicted_link_count_validated(self, calibrated_network):
        with pytest.raises(ConfigurationError):
            LSTMExecutor(
                calibrated_network,
                ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=1.0),
                predicted_links=[PredictedLink.zeros(calibrated_network.config.hidden_size)],
            )


class TestCombined:
    def test_reduces_to_inter_when_alpha_intra_zero(self, calibrated_network, tiny_tokens):
        alpha = 100.0
        inter = make_executor(
            calibrated_network, ExecutionMode.INTER, alpha_inter=alpha
        ).run_batch(tiny_tokens)
        combined = make_executor(
            calibrated_network,
            ExecutionMode.COMBINED,
            alpha_inter=alpha,
            alpha_intra=0.0,
        ).run_batch(tiny_tokens)
        np.testing.assert_allclose(combined.logits, inter.logits, atol=1e-10)

    def test_reduces_to_intra_when_alpha_inter_zero(self, calibrated_network, tiny_tokens):
        alpha = 0.15
        intra = make_executor(
            calibrated_network, ExecutionMode.INTRA, alpha_intra=alpha
        ).run_batch(tiny_tokens)
        combined = make_executor(
            calibrated_network,
            ExecutionMode.COMBINED,
            alpha_inter=0.0,
            alpha_intra=alpha,
        ).run_batch(tiny_tokens)
        np.testing.assert_allclose(combined.logits, intra.logits, atol=1e-10)

    def test_tissue_skip_is_intersection(self, calibrated_network, tiny_tokens):
        """A multi-cell tissue can never skip more rows than the stingiest
        of its cells (the shared-load constraint)."""
        combined = make_executor(
            calibrated_network,
            ExecutionMode.COMBINED,
            alpha_inter=1e12,
            alpha_intra=0.3,
            mts=4,
        ).run_batch(tiny_tokens)
        intra = make_executor(
            calibrated_network, ExecutionMode.INTRA, alpha_intra=0.3
        ).run_batch(tiny_tokens)
        assert (
            np.mean([p.mean_skip_fraction for p in combined.plans])
            <= np.mean([p.mean_skip_fraction for p in intra.plans]) + 1e-9
        )

    def test_plans_valid(self, calibrated_network, tiny_tokens):
        result = make_executor(
            calibrated_network,
            ExecutionMode.COMBINED,
            alpha_inter=1e12,
            alpha_intra=0.2,
            mts=3,
        ).run_batch(tiny_tokens)
        for plan in result.plans:
            for record in plan.layers:
                record.validate()


class TestZeroPrune:
    def test_prunes_and_runs(self, tiny_network, tiny_tokens):
        executor = make_executor(
            tiny_network, ExecutionMode.ZERO_PRUNE, zero_prune_fraction=0.4
        )
        assert executor.pruning_kept_fraction == pytest.approx(0.6, abs=0.02)
        result = executor.run_batch(tiny_tokens)
        assert result.logits.shape == (tiny_tokens.shape[0], tiny_network.num_classes)

    def test_zero_fraction_matches_baseline(self, tiny_network, tiny_tokens):
        base = make_executor(tiny_network).run_batch(tiny_tokens)
        pruned = make_executor(
            tiny_network, ExecutionMode.ZERO_PRUNE, zero_prune_fraction=0.0
        ).run_batch(tiny_tokens)
        np.testing.assert_allclose(pruned.logits, base.logits, atol=1e-12)

    def test_pruning_perturbs_outputs(self, tiny_network, tiny_tokens):
        base = make_executor(tiny_network).run_batch(tiny_tokens)
        pruned = make_executor(
            tiny_network, ExecutionMode.ZERO_PRUNE, zero_prune_fraction=0.6
        ).run_batch(tiny_tokens)
        assert not np.allclose(pruned.logits, base.logits)


class TestKernelTraces:
    @pytest.mark.parametrize(
        "mode,kwargs",
        [
            (ExecutionMode.BASELINE, {}),
            (ExecutionMode.INTER, {"alpha_inter": 1e12}),
            (ExecutionMode.INTRA, {"alpha_intra": 0.2}),
            (ExecutionMode.COMBINED, {"alpha_inter": 1e12, "alpha_intra": 0.2}),
            (ExecutionMode.ZERO_PRUNE, {}),
        ],
    )
    def test_every_mode_produces_a_trace(self, calibrated_network, tiny_tokens, mode, kwargs):
        executor = make_executor(calibrated_network, mode, **kwargs)
        result = executor.run_batch(tiny_tokens[:1])
        kernels = executor.kernel_trace(result.plans[0])
        assert len(kernels) > 0
        names = {k.name for k in kernels}
        assert "sgemm" in names  # the per-layer Sgemm(W, x) is always there

    def test_intra_trace_has_algorithm3_kernels(self, calibrated_network, tiny_tokens):
        executor = make_executor(calibrated_network, ExecutionMode.INTRA, alpha_intra=0.2)
        result = executor.run_batch(tiny_tokens[:1])
        names = [k.name for k in executor.kernel_trace(result.plans[0])]
        assert "drs" in names

    def test_inter_trace_has_relevance_kernel(self, calibrated_network, tiny_tokens):
        executor = make_executor(calibrated_network, ExecutionMode.INTER, alpha_inter=1e-300)
        result = executor.run_batch(tiny_tokens[:1])
        names = [k.name for k in executor.kernel_trace(result.plans[0])]
        assert "relevance" in names


class TestPartialWarp:
    """Hidden sizes that are not a multiple of the 32-lane warp size.

    The trailing partial warp must be weighted by its real lane count:
    the old unweighted mean could report a warp-level skip fraction above
    the row-level one, which made software-DRS efficiencies exceed 1 and
    KernelLaunch validation blow up (regression: hidden_size=48).
    """

    @pytest.fixture
    def network48(self):
        from repro.config import LSTMConfig
        from repro.nn.network import LSTMNetwork

        config = LSTMConfig(hidden_size=48, num_layers=2, seq_length=10, input_size=20)
        return LSTMNetwork(config, vocab_size=60, num_classes=3, seed=9)

    def test_fractions_agree_with_cta_model(self):
        from repro.core.executor import _warp_skip_fractions
        from repro.gpu.cta import warp_level_skip_fraction

        rng = np.random.default_rng(17)
        for hidden in (33, 48, 64, 90):
            masks = rng.random((5, hidden)) < 0.6
            batched = _warp_skip_fractions(masks)
            for row, mask in zip(batched, masks):
                assert row == pytest.approx(warp_level_skip_fraction(mask))
                assert row <= mask.mean() + 1e-12

    def test_trailing_warp_weighted_by_lanes(self):
        from repro.core.executor import _warp_skip_fractions

        # hidden=48: rows 32..47 trivial -> row skip 1/3, and the whole
        # 16-lane tail warp skips, so the warp-level fraction is also 1/3
        # (the buggy unweighted mean said 0.5).
        mask = np.zeros((1, 48), bool)
        mask[0, 32:] = True
        assert _warp_skip_fractions(mask)[0] == pytest.approx(1 / 3)

    def test_software_drs_trace_simulates(self, network48):
        from repro.gpu.simulator import TimingSimulator

        rng = np.random.default_rng(3)
        tokens = rng.integers(0, 60, size=(3, 10))
        executor = make_executor(
            network48, ExecutionMode.INTRA, alpha_intra=0.6, drs_style="software"
        )
        result = executor.run_batch(tokens)
        simulator = TimingSimulator()
        for plan in result.plans:
            kernels = executor.kernel_trace(plan)
            for kernel in kernels:
                assert 0.0 < kernel.warp_efficiency <= 1.0
                assert 0.0 < kernel.gather_efficiency <= 1.0
            summary = simulator.run_trace(kernels)
            assert summary.total_time > 0.0

    def test_batched_matches_reference(self, network48):
        from repro.core.reference import ReferenceExecutor

        rng = np.random.default_rng(5)
        tokens = rng.integers(0, 60, size=(3, 10))
        config = ExecutionConfig(
            mode=ExecutionMode.INTRA, alpha_intra=0.4, drs_style="software"
        )
        batched = LSTMExecutor(network48, config).run_batch(tokens)
        reference = ReferenceExecutor(network48, config).run_batch(tokens)
        # BLAS accumulation order differs at non-power-of-two widths, so
        # equality holds only to machine epsilon here (unlike hidden=64).
        np.testing.assert_allclose(batched.logits, reference.logits, atol=1e-12)
