"""Tests for the warp-level efficiency models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.cta import (
    hardware_drs_penalties,
    pruned_spmv_penalties,
    software_drs_penalties,
    warp_level_skip_fraction,
)


class TestWarpLevelSkip:
    def test_no_skips(self):
        assert warp_level_skip_fraction(np.zeros(64, bool)) == 0.0

    def test_all_skips(self):
        assert warp_level_skip_fraction(np.ones(64, bool)) == 1.0

    def test_one_full_warp(self):
        mask = np.zeros(64, bool)
        mask[:32] = True
        assert warp_level_skip_fraction(mask) == 0.5

    def test_scattered_skips_yield_no_full_warps(self):
        mask = np.zeros(64, bool)
        mask[::2] = True  # every other row
        assert warp_level_skip_fraction(mask) == 0.0

    def test_partial_warp_weighted_by_real_lanes(self):
        # 33 rows = 2 warps; the second warp has 1 real row. Its skip
        # contributes that one row, not half the grid.
        mask = np.zeros(33, bool)
        mask[32] = True
        assert warp_level_skip_fraction(mask) == pytest.approx(1 / 33)

    def test_never_exceeds_row_level_skip(self):
        # hidden=48: rows 32..47 trivial -> row skip 1/3. The old unweighted
        # mean reported 0.5 here, which broke software_drs_penalties.
        mask = np.zeros(48, bool)
        mask[32:] = True
        warp_skip = warp_level_skip_fraction(mask)
        assert warp_skip == pytest.approx(1 / 3)
        assert warp_skip <= mask.mean()
        warp, gather, _ = software_drs_penalties(float(mask.mean()), warp_skip)
        assert warp <= 1.0 and gather <= 1.0

    @given(st.integers(1, 130), st.integers(0, 2**32 - 1))
    def test_lane_weighting_bounds(self, size, seed):
        mask = np.random.default_rng(seed).random(size) < 0.5
        warp_skip = warp_level_skip_fraction(mask)
        assert 0.0 <= warp_skip <= mask.mean() + 1e-12

    def test_empty(self):
        assert warp_level_skip_fraction(np.zeros(0, bool)) == 0.0


class TestSoftwareDRS:
    def test_no_skip_no_penalty(self):
        warp, gather, eff = software_drs_penalties(0.0, 0.0)
        assert warp == 1.0 and gather == 1.0 and eff == 0.0

    def test_mixed_skips_cost_efficiency(self):
        warp, gather, eff = software_drs_penalties(0.5, 0.0)
        assert warp < 1.0 and gather < 1.0
        assert eff < 0.5  # per-thread skips are only partially effective

    def test_whole_warp_skips_are_free(self):
        warp, gather, eff = software_drs_penalties(0.5, 0.5)
        assert warp == 1.0 and gather == 1.0
        assert eff == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            software_drs_penalties(1.5, 0.0)
        with pytest.raises(ConfigurationError):
            software_drs_penalties(0.5, -0.1)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_outputs_in_range(self, skip, warp_skip):
        warp_skip = min(warp_skip, skip)
        warp, gather, eff = software_drs_penalties(skip, warp_skip)
        assert 0 < warp <= 1 and 0 < gather <= 1
        assert 0 <= eff <= skip + 1e-12


class TestHardwareDRS:
    def test_full_effectiveness(self):
        warp, gather, eff = hardware_drs_penalties(0.6)
        assert warp == 1.0 and gather == 1.0 and eff == 0.6

    def test_beats_software(self):
        _, _, hw = hardware_drs_penalties(0.5)
        _, _, sw = software_drs_penalties(0.5, 0.05)
        assert hw > sw

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hardware_drs_penalties(-0.1)


class TestPrunedSpmv:
    def test_dense_is_free(self):
        assert pruned_spmv_penalties(1.0) == (1.0, 1.0)

    def test_sparsity_costs(self):
        warp, gather = pruned_spmv_penalties(0.63)
        assert warp < 1.0 and gather < 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pruned_spmv_penalties(0.0)
