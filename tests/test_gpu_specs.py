"""Tests for the GPU platform specifications."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.gpu.specs import TEGRA_X1, TESLA_M40


class TestTegraX1:
    def test_table1_values(self):
        assert TEGRA_X1.num_sms * TEGRA_X1.cores_per_sm == 256
        assert TEGRA_X1.clock_hz == 998e6
        assert TEGRA_X1.dram_bandwidth == 25.6e9

    def test_peak_flops(self):
        # 256 cores x 2 (FMA) x 998 MHz ~= 511 GFLOP/s
        assert TEGRA_X1.peak_flops == pytest.approx(511e9, rel=0.01)

    def test_effective_bandwidth_below_peak(self):
        assert TEGRA_X1.effective_dram_bandwidth < TEGRA_X1.dram_bandwidth

    def test_shared_bandwidth_far_exceeds_dram(self):
        """The premise of the MTS analysis: a large on-chip/off-chip ratio."""
        assert TEGRA_X1.shared_bandwidth > 5 * TEGRA_X1.dram_bandwidth

    def test_onchip_traffic_grows_with_hidden(self):
        assert TEGRA_X1.onchip_traffic_per_flop(650) > TEGRA_X1.onchip_traffic_per_flop(256)


class TestTeslaM40:
    def test_larger_than_mobile(self):
        assert TESLA_M40.peak_flops > 5 * TEGRA_X1.peak_flops
        assert TESLA_M40.l2_bytes > TEGRA_X1.l2_bytes
        assert TESLA_M40.dram_bandwidth > TEGRA_X1.dram_bandwidth


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TEGRA_X1, num_sms=0)

    def test_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TEGRA_X1, dram_efficiency=1.5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TEGRA_X1.clock_hz = 1
