"""Section II-C on the large GPU: layer-level parallelism territory.

On the Tesla M40 the mobile-sized united matrix is L2-resident, so the
sequential per-cell Sgemv no longer thrashes DRAM and the inter-cell
optimization's *traffic* saving disappears — the quantitative backing for
the paper's claim that the problem is mobile specific.
"""

import pytest

from repro.config import AppConfig, LSTMConfig, TaskFamily
from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.gpu.specs import TEGRA_X1, TESLA_M40


@pytest.fixture(scope="module")
def apps():
    cfg = AppConfig(
        name="X",
        family=TaskFamily.SENTIMENT_CLASSIFICATION,
        model=LSTMConfig(hidden_size=144, num_layers=1, seq_length=24),
        vocab_size=200,
        num_classes=2,
    )
    result = {}
    for spec in (TEGRA_X1, TESLA_M40):
        app = OptimizedLSTM.from_app(cfg, seed=0, spec=spec)
        app.calibrate(num_sequences=4)
        result[spec.name] = app
    return result


def sgemv_traffic(app):
    tokens = app.sample_tokens(2, seed=5)
    base = app.run(tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
    trace = base.traces[0]
    return sum(k.dram_bytes for k in trace.kernels if k.name == "sgemv")


class TestMobileVsServer:
    def test_mobile_reloads_server_does_not(self, apps):
        mobile = sgemv_traffic(apps[TEGRA_X1.name])
        server = sgemv_traffic(apps[TESLA_M40.name])
        assert mobile > 5 * server

    def test_server_baseline_is_much_faster(self, apps):
        tokens = apps[TEGRA_X1.name].sample_tokens(2, seed=5)
        mobile = apps[TEGRA_X1.name].run(tokens, mode=ExecutionMode.BASELINE)
        tokens = apps[TESLA_M40.name].sample_tokens(2, seed=5)
        server = apps[TESLA_M40.name].run(tokens, mode=ExecutionMode.BASELINE)
        assert server.mean_time < mobile.mean_time / 3

    def test_inter_traffic_saving_is_mobile_specific(self, apps):
        """Inter-cell removes DRAM traffic on mobile but has almost none
        left to remove on the server."""
        results = {}
        for name, app in apps.items():
            tokens = app.sample_tokens(2, seed=5)
            base = app.run(tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
            inter = app.run(
                tokens, mode=ExecutionMode.INTER, threshold_index=8, keep_traces=True
            )
            results[name] = (
                inter.traces[0].total_dram_bytes / base.traces[0].total_dram_bytes
            )
        assert results[TEGRA_X1.name] < 0.8  # real traffic saving
        assert results[TESLA_M40.name] > 0.6  # little to save
