"""Streaming serving: bit-identity, session lifecycle, backpressure, records.

The contracts of :mod:`repro.runtime.streaming`:

* **Bit-identity.** A session served in any chunking under any batch
  composition equals the frozen
  :class:`~repro.core.reference.ReferenceExecutor` running the full
  sequence contiguously — per-timestep and pooled heads, every
  streamable mode.

* **Session lifecycle.** Resident state survives between arrivals; LRU
  capacity eviction and TTL idle-sweep drop only idle sessions, a
  returning evicted session restarts from zeroed state, and busy
  sessions are pinned (a full table of them sheds instead).

* **Deterministic backpressure.** Admission beyond the queue bound sheds
  all-or-nothing with :class:`~repro.errors.BackpressureError`; the same
  submit/tick history always sheds the same requests.

* **Observability.** Tick records and the merged serving-window record
  are schema-valid ``repro.obs/run/v1`` documents carrying the
  ``queue_wait_s`` / ``ticks`` timing keys.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.reference import ReferenceExecutor
from repro.errors import BackpressureError, ConfigurationError, ShapeError
from repro.nn.network import LSTMNetwork
from repro.obs.recorder import Recorder
from repro.obs.schema import validate_run_dict
from repro.runtime import (
    LoadSpec,
    StreamingFrontDoor,
    StreamingServer,
    generate_arrivals,
    run_open_loop,
)

VOCAB = 29
CLASSES = 3
HIDDEN = 12
LAYERS = 2
HEAD_POOL = 3

STREAM_MODES = {
    "baseline": {"mode": ExecutionMode.BASELINE},
    "intra": {"mode": ExecutionMode.INTRA, "alpha_intra": 0.4},
    "zero_prune": {"mode": ExecutionMode.ZERO_PRUNE},
}


def make_network(per_timestep_head: bool, seed: int = 5) -> LSTMNetwork:
    config = LSTMConfig(
        hidden_size=HIDDEN, num_layers=LAYERS, seq_length=16, input_size=HIDDEN
    )
    return LSTMNetwork(
        config,
        vocab_size=VOCAB,
        num_classes=CLASSES,
        seed=seed,
        per_timestep_head=per_timestep_head,
        head_pool=1 if per_timestep_head else HEAD_POOL,
    )


def make_server(network: LSTMNetwork, mode: str = "baseline", **kwargs) -> StreamingServer:
    defaults = dict(
        max_batch=4,
        chunk_len=4,
        queue_limit=1000,
        max_sessions=32,
        session_ttl_s=1e9,
        clock=lambda: 0.0,
    )
    defaults.update(kwargs)
    return StreamingServer(network, ExecutionConfig(**STREAM_MODES[mode]), **defaults)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# --------------------------------------------------------------- bit-identity


class TestBitIdentity:
    @pytest.mark.parametrize("mode", sorted(STREAM_MODES))
    @pytest.mark.parametrize("per_ts", [True, False], ids=["per-timestep", "pooled"])
    def test_random_chunking_matches_contiguous_reference(self, mode, per_ts):
        """Any chunking, any batch mix == the full-sequence frozen oracle."""
        network = make_network(per_timestep_head=per_ts)
        config = ExecutionConfig(**STREAM_MODES[mode])
        reference = ReferenceExecutor(network, config)
        rng = np.random.default_rng(17)
        # Length 2 < head_pool exercises the partially-filled pooled window.
        sessions = {
            f"s{i}": rng.integers(0, VOCAB, size=length)
            for i, length in enumerate([2, 5, 9, 16, 13])
        }
        server = make_server(network, mode)
        tickets = {sid: [] for sid in sessions}
        cursor = dict.fromkeys(sessions, 0)
        live = sorted(sessions)
        while live:
            sid = live[int(rng.integers(len(live)))]
            tokens = sessions[sid]
            take = min(int(rng.integers(1, 5)), len(tokens) - cursor[sid])
            tickets[sid].append(
                server.submit(sid, tokens[cursor[sid] : cursor[sid] + take], now=0.0)
            )
            cursor[sid] += take
            if cursor[sid] == len(tokens):
                live.remove(sid)
            if rng.random() < 0.5:
                server.tick(now=0.0)
        server.drain(now=0.0)

        for sid, tokens in sessions.items():
            expected = reference.run_batch(tokens[None]).logits[0]
            if per_ts:
                streamed = np.concatenate(
                    [t.result.logits for t in tickets[sid]], axis=0
                )
            else:
                streamed = tickets[sid][-1].result.logits
            assert np.array_equal(streamed, expected), sid

    def test_single_step_submissions_match_reference(self):
        """The pure online shape: one token per submission, every tick."""
        network = make_network(per_timestep_head=True)
        config = ExecutionConfig(**STREAM_MODES["intra"])
        reference = ReferenceExecutor(network, config)
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, VOCAB, size=10)
        server = make_server(network, "intra", chunk_len=1)
        logits = []
        for token in tokens:
            ticket = server.submit("s", np.array([token]), now=0.0)
            server.tick(now=0.0)
            logits.append(ticket.result.logits)
        streamed = np.concatenate(logits, axis=0)
        assert np.array_equal(streamed, reference.run_batch(tokens[None]).logits[0])


# ----------------------------------------------------------- session lifecycle


class TestSessionLifecycle:
    def test_lru_eviction_and_fresh_readmission(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(9)
        tokens = rng.integers(0, VOCAB, size=4)
        clock = FakeClock()
        server = make_server(network, max_sessions=2, clock=clock)

        first = server.submit("a", tokens)
        server.tick()
        clock.now = 1.0
        server.submit("b", tokens)
        server.tick()
        clock.now = 2.0
        server.submit("c", tokens)  # table full -> evicts idle LRU "a"
        server.tick()
        assert "a" not in server.sessions
        assert "b" in server.sessions and "c" in server.sessions
        assert server.sessions.lru_evictions == 1

        clock.now = 3.0
        again = server.submit("a", tokens)  # re-admitted from zeroed state
        server.tick()
        assert np.array_equal(again.result.logits, first.result.logits)

    def test_resident_state_survives_between_arrivals(self):
        """The second arrival continues the first one's state, not zeros."""
        network = make_network(per_timestep_head=True)
        config = ExecutionConfig(**STREAM_MODES["baseline"])
        rng = np.random.default_rng(29)
        tokens = rng.integers(0, VOCAB, size=8)
        server = make_server(network)
        server.submit("s", tokens[:4], now=0.0)
        server.tick(now=0.0)
        second = server.submit("s", tokens[4:], now=0.0)
        server.tick(now=0.0)
        full = ReferenceExecutor(network, config).run_batch(tokens[None]).logits[0]
        assert np.array_equal(second.result.logits, full[4:])
        assert not np.array_equal(
            second.result.logits,
            ReferenceExecutor(network, config).run_batch(tokens[4:][None]).logits[0],
        )

    def test_ttl_sweep_evicts_idle_sessions(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(9)
        clock = FakeClock()
        server = make_server(network, session_ttl_s=10.0, clock=clock)
        server.submit("idle", rng.integers(0, VOCAB, size=2))
        server.tick()
        assert "idle" in server.sessions
        clock.now = 11.0
        report = server.tick()  # empty queue still sweeps
        assert report.ttl_evictions == 1
        assert "idle" not in server.sessions
        assert server.stats.ttl_evictions == 1

    def test_busy_sessions_are_pinned(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(9)
        server = make_server(network, max_sessions=1)
        server.submit("busy", rng.integers(0, VOCAB, size=4), now=0.0)
        with pytest.raises(BackpressureError):
            server.submit("other", rng.integers(0, VOCAB, size=4), now=0.0)
        server.tick(now=0.0)  # "busy" drains and unpins
        server.submit("other", rng.integers(0, VOCAB, size=4), now=0.0)


# --------------------------------------------------------------- backpressure


class TestBackpressure:
    def test_queue_bound_sheds_deterministically(self):
        def history(server):
            rng = np.random.default_rng(4)
            shed = []
            for i in range(8):
                try:
                    server.submit(f"s{i}", rng.integers(0, VOCAB, size=4), now=0.0)
                except BackpressureError:
                    shed.append(i)
            return shed

        network = make_network(per_timestep_head=True)
        first = history(make_server(network, queue_limit=3))
        second = history(make_server(network, queue_limit=3))
        assert first == second == [3, 4, 5, 6, 7]

    def test_shedding_is_all_or_nothing(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(4)
        server = make_server(network, chunk_len=1, queue_limit=3)
        with pytest.raises(BackpressureError):
            server.submit("s", rng.integers(0, VOCAB, size=4), now=0.0)  # needs 4
        assert server.queue_depth == 0  # nothing partially enqueued
        assert server.stats.shed_chunks == 4
        server.submit("s", rng.integers(0, VOCAB, size=3), now=0.0)  # fits
        assert server.queue_depth == 3

    def test_session_table_shed_counts_chunks(self):
        """A full-table shed increments shed_chunks like a queue shed."""
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(9)
        server = make_server(network, max_sessions=1)
        server.submit("busy", rng.integers(0, VOCAB, size=4), now=0.0)
        assert server.stats.shed_chunks == 0
        with pytest.raises(BackpressureError):
            server.submit("other", rng.integers(0, VOCAB, size=8), now=0.0)
        assert server.stats.shed_chunks == 2  # the shed submission's 2 chunks
        assert server.queue_depth == 1  # only "busy"'s chunk remains


# ------------------------------------------------------------- ticket merging


class TestTicketMerge:
    def _ticket(self, n_chunks: int) -> "StreamTicket":
        from repro.runtime.streaming import StreamTicket

        return StreamTicket("s", 0.0, n_chunks=n_chunks, n_tokens=3 * n_chunks)

    def test_pooled_merge_reads_highest_chunk_index(self):
        """Pooled result is the *last* chunk's logits by index, not by
        completion order."""
        ticket = self._ticket(3)
        first, middle, last = (np.full((1, 2), v) for v in (0.0, 1.0, 2.0))
        assert ticket._complete_chunk(last, False, 1.0, 2) is None
        assert ticket._complete_chunk(first, False, 1.0, 0) is None
        result = ticket._complete_chunk(middle, False, 1.0, 1)
        assert result is not None
        assert np.array_equal(result.logits, last)

    def test_per_timestep_merge_orders_by_chunk_index(self):
        ticket = self._ticket(3)
        parts = [np.full((2, 2), v) for v in (0.0, 1.0, 2.0)]
        ticket._complete_chunk(parts[1], True, 1.0, 1)
        ticket._complete_chunk(parts[2], True, 1.0, 2)
        result = ticket._complete_chunk(parts[0], True, 1.0, 0)
        assert np.array_equal(result.logits, np.concatenate(parts, axis=0))

    def test_multi_chunk_pooled_submission_matches_reference(self):
        """One pooled-head submission spanning several chunks resolves to
        the full-sequence pooled logits."""
        network = make_network(per_timestep_head=False)
        config = ExecutionConfig(**STREAM_MODES["baseline"])
        rng = np.random.default_rng(31)
        tokens = rng.integers(0, VOCAB, size=10)  # 3 chunks at chunk_len=4
        server = make_server(network)
        ticket = server.submit("s", tokens, now=0.0)
        server.drain(now=0.0)
        expected = ReferenceExecutor(network, config).run_batch(tokens[None]).logits[0]
        assert np.array_equal(ticket.result.logits, expected)


# ------------------------------------------------------------- tick batching


class TestTickBatching:
    def test_head_chunk_sets_length_and_sessions_serialize(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(6)
        server = make_server(network, max_batch=8)
        server.submit("a", rng.integers(0, VOCAB, size=8), now=0.0)  # 2 chunks
        server.submit("b", rng.integers(0, VOCAB, size=4), now=0.0)
        server.submit("c", rng.integers(0, VOCAB, size=2), now=0.0)  # shorter
        first = server.tick(now=0.0)
        # Head chunk (a's first, length 4) sets the tick length: a and b
        # batch, c's length-2 chunk and a's second chunk wait.
        assert (first.batch, first.chunk_len) == (2, 4)
        second = server.tick(now=0.0)
        assert (second.batch, second.chunk_len) == (1, 4)  # a's second chunk
        third = server.tick(now=0.0)
        assert (third.batch, third.chunk_len) == (1, 2)  # c
        assert server.queue_depth == 0
        assert server.stats.max_occupancy == 2

    def test_queue_wait_attribution(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(6)
        server = make_server(network)
        server.submit("a", rng.integers(0, VOCAB, size=4), now=1.0)
        server.submit("b", rng.integers(0, VOCAB, size=4), now=2.0)
        report = server.tick(now=5.0)
        assert report.queue_wait_s == pytest.approx((5.0 - 1.0) + (5.0 - 2.0))


# -------------------------------------------------------------------- records


class TestRecords:
    def test_tick_and_merged_records_are_schema_valid(self):
        network = make_network(per_timestep_head=True)
        rng = np.random.default_rng(8)
        recorder = Recorder()
        server = make_server(network, recorder=recorder)
        for i in range(3):
            server.submit(f"s{i}", rng.integers(0, VOCAB, size=4), now=0.0)
        server.tick(now=0.0)
        server.drain(now=0.0)

        for record in recorder.records:
            data = record.to_dict()
            validate_run_dict(data)
            assert data["label"] == "stream-tick"
            assert data["timing"]["ticks"] == 1.0

        merged = server.merged_record()
        data = merged.to_dict()
        validate_run_dict(data)
        assert data["label"] == "stream"
        assert data["batch"] == 3
        assert data["timing"]["ticks"] == float(len(recorder.records))
        assert "queue_wait_s" in data["timing"]

    def test_merged_record_none_without_recorder(self):
        network = make_network(per_timestep_head=True)
        server = make_server(network)
        server.submit("s", np.arange(4) % VOCAB, now=0.0)
        server.tick(now=0.0)
        assert server.merged_record() is None


# ----------------------------------------------------------------- rejections


class TestRejections:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": ExecutionMode.INTER, "alpha_inter": 50.0, "mts": 3},
            {
                "mode": ExecutionMode.COMBINED,
                "alpha_inter": 50.0,
                "alpha_intra": 0.4,
                "mts": 3,
            },
        ],
        ids=["inter", "combined"],
    )
    def test_inter_modes_rejected_at_construction(self, kwargs):
        network = make_network(per_timestep_head=True)
        with pytest.raises(ConfigurationError, match="full-sequence relevance"):
            StreamingServer(network, ExecutionConfig(**kwargs))

    def test_compact_drs_gemm_rejected(self):
        network = make_network(per_timestep_head=True)
        config = ExecutionConfig(
            mode=ExecutionMode.INTRA, alpha_intra=0.4, compact_drs_gemm=True
        )
        with pytest.raises(ConfigurationError, match="compact_drs_gemm"):
            StreamingServer(network, config)

    def test_submit_rejects_bad_tokens(self):
        network = make_network(per_timestep_head=True)
        server = make_server(network)
        with pytest.raises(ShapeError):
            server.submit("s", np.zeros((2, 3), dtype=int), now=0.0)
        with pytest.raises(ShapeError):
            server.submit("s", np.array([], dtype=int), now=0.0)

    def test_run_stream_rejects_bad_state_shapes(self):
        network = make_network(per_timestep_head=True)
        executor = LSTMExecutor(
            network, ExecutionConfig(**STREAM_MODES["baseline"]), compile=True
        )
        tokens = np.zeros((2, 3), dtype=int)
        good = np.zeros((LAYERS, 2, HIDDEN))
        with pytest.raises(ShapeError):
            executor.run_stream(tokens, np.zeros((LAYERS, 2, HIDDEN + 1)), good)
        with pytest.raises(ShapeError):
            executor.run_stream(np.zeros(3, dtype=int), good, good)


# -------------------------------------------------------------------- loadgen


class TestLoadgen:
    def test_arrivals_deterministic_and_time_ordered(self):
        spec = LoadSpec(duration_s=2.0, session_rate=15.0, seed=12)
        first = generate_arrivals(spec, vocab_size=VOCAB)
        second = generate_arrivals(spec, vocab_size=VOCAB)
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert (a.time_s, a.session_id) == (b.time_s, b.session_id)
            assert np.array_equal(a.tokens, b.tokens)
        times = [a.time_s for a in first]
        assert times == sorted(times)

    def test_followup_chunks_never_land_past_duration(self):
        """Long sessions near the window's end are truncated, not allowed
        to schedule think-time follow-ups past duration_s."""
        spec = LoadSpec(
            duration_s=0.5,
            session_rate=30.0,
            seed=3,
            chunk_len=2,
            think_time_s=0.2,
            session_len_min=16,
            session_len_max=64,
        )
        arrivals = generate_arrivals(spec, vocab_size=VOCAB)
        assert arrivals
        assert max(a.time_s for a in arrivals) < spec.duration_s
        # Sanity: the spec's geometry would overhang without the clamp —
        # some session has enough chunks to reach past the window.
        starts = {}
        for a in arrivals:
            starts.setdefault(a.session_id, a.time_s)
        would_overhang = any(
            starts[sid]
            + (spec.session_len_min // spec.chunk_len - 1) * spec.think_time_s
            >= spec.duration_s
            for sid in starts
        )
        assert would_overhang

    def test_open_loop_overload_sheds_and_replays_identically(self):
        network = make_network(per_timestep_head=True)
        spec = LoadSpec(duration_s=1.0, session_rate=40.0, seed=2)
        arrivals = generate_arrivals(spec, vocab_size=VOCAB)

        def run_once():
            server = make_server(network, max_batch=2, queue_limit=6)
            report = run_open_loop(
                server,
                arrivals,
                tick_interval_s=0.002,
                # Modeled slow ticks make 40 sessions/s an overload.
                service_time=lambda wall: 0.05 if wall > 0.0 else 0.0,
            )
            return report, server.stats

        first, stats_a = run_once()
        second, stats_b = run_once()
        assert first.shed_submissions > 0
        assert first.completed_submissions > 0
        assert first.as_dict() == second.as_dict()
        assert stats_a.as_dict(2) == stats_b.as_dict(2)
        assert (
            first.completed_submissions + first.shed_submissions
            == first.offered_submissions
        )


# ------------------------------------------------------------------ asyncio


class TestFrontDoor:
    def test_async_round_trip_matches_reference(self):
        network = make_network(per_timestep_head=True)
        config = ExecutionConfig(**STREAM_MODES["baseline"])
        rng = np.random.default_rng(21)
        tokens = rng.integers(0, VOCAB, size=6)
        server = StreamingServer(network, config, chunk_len=4)

        async def go():
            async with StreamingFrontDoor(server, tick_interval_s=0.001) as door:
                return await asyncio.gather(
                    door.request("x", tokens[:3]), door.request("x", tokens[3:])
                )

        first, second = asyncio.run(go())
        full = ReferenceExecutor(network, config).run_batch(tokens[None]).logits[0]
        streamed = np.concatenate([first.logits, second.logits], axis=0)
        assert np.array_equal(streamed, full)
        assert second.latency_s >= 0.0

    def test_backpressure_surfaces_to_the_caller(self):
        network = make_network(per_timestep_head=True)
        config = ExecutionConfig(**STREAM_MODES["baseline"])
        server = StreamingServer(network, config, chunk_len=1, queue_limit=2)

        async def go():
            async with StreamingFrontDoor(server, tick_interval_s=0.001) as door:
                with pytest.raises(BackpressureError):
                    # 3 chunks > queue_limit before the loop can drain them:
                    # submit happens synchronously inside request().
                    server.submit("y", np.arange(3) % VOCAB)
                return await door.request("y", np.arange(2) % VOCAB)

        result = asyncio.run(go())
        assert result.n_tokens == 2
