"""Tests for the user-study simulation (Fig. 18)."""

import numpy as np
import pytest

from repro.core.executor import ExecutionMode
from repro.errors import ConfigurationError
from repro.workloads.apps import WorkloadEvaluation
from repro.workloads.userstudy import (
    Participant,
    ReplayProgram,
    SchemeExperience,
    UserStudy,
    sample_participants,
)


def make_eval(speedup, accuracy, index):
    return WorkloadEvaluation(
        app_name="X",
        mode=ExecutionMode.COMBINED,
        threshold_index=index,
        alpha_inter=float(index),
        alpha_intra=float(index) / 20,
        accuracy=accuracy,
        speedup=speedup,
        energy_saving=0.1,
        mean_tissue_size=1.0,
        mean_skip_fraction=0.0,
        mean_breakpoints=0.0,
        mean_time=1.0 / speedup,
        mean_energy=1.0,
    )


@pytest.fixture
def sweep():
    speeds = [1.0, 1.3, 1.6, 1.9, 2.2, 2.5, 2.8, 3.0, 3.2, 3.4, 3.6]
    accs = [1.0, 1.0, 0.995, 0.99, 0.985, 0.97, 0.95, 0.92, 0.88, 0.84, 0.80]
    return [make_eval(s, a, i) for i, (s, a) in enumerate(zip(speeds, accs))]


class TestExperience:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SchemeExperience("x", delay_ratio=0.0, accuracy=0.9)
        with pytest.raises(ConfigurationError):
            SchemeExperience("x", delay_ratio=1.0, accuracy=1.5)


class TestParticipants:
    def test_panel_size(self):
        assert len(sample_participants()) == 30

    def test_seeded(self):
        a = sample_participants(seed=3)
        b = sample_participants(seed=3)
        assert a[0] == b[0]

    def test_heterogeneous(self):
        panel = sample_participants(seed=0)
        prefs = {p.speed_preference for p in panel}
        assert len(prefs) == len(panel)

    def test_ratings_in_scale(self):
        p = sample_participants(seed=1)[0]
        rng = np.random.default_rng(0)
        exp = SchemeExperience("x", delay_ratio=0.4, accuracy=0.9)
        for _ in range(20):
            assert 1 <= p.satisfaction(exp, rng) <= 5

    def test_faster_is_better_below_threshold(self):
        p = Participant(speed_preference=1.0, loss_aversion=0.1, perception_threshold=0.02)
        slow = SchemeExperience("s", delay_ratio=1.0, accuracy=1.0)
        fast = SchemeExperience("f", delay_ratio=0.5, accuracy=0.99)
        assert p.expected_satisfaction(fast) > p.expected_satisfaction(slow)

    def test_visible_loss_hurts(self):
        p = Participant(speed_preference=1.0, loss_aversion=0.15, perception_threshold=0.02)
        mild = SchemeExperience("m", delay_ratio=0.5, accuracy=0.99)
        harsh = SchemeExperience("h", delay_ratio=0.4, accuracy=0.80)
        assert p.expected_satisfaction(mild) > p.expected_satisfaction(harsh)


class TestReplayProgram:
    def test_experiences_match_sweep(self, sweep):
        replay = ReplayProgram(sweep)
        exps = replay.experiences
        assert len(exps) == len(sweep)
        assert exps[0].delay_ratio == pytest.approx(1.0)
        assert exps[5].delay_ratio == pytest.approx(1 / 2.5)

    def test_uo_choice_maximizes_utility(self, sweep):
        replay = ReplayProgram(sweep)
        p = Participant(speed_preference=1.2, loss_aversion=0.08, perception_threshold=0.02)
        choice = replay.uo_choice(p)
        utilities = [p.expected_satisfaction(e) for e in replay.experiences]
        assert p.expected_satisfaction(choice) == pytest.approx(max(utilities))

    def test_needs_sweep(self):
        with pytest.raises(ConfigurationError):
            ReplayProgram([])


class TestUserStudy:
    def test_fig18_ordering(self, sweep):
        """The paper's Fig. 18 shape: UO >= AO > baseline, BPA < UO."""
        replay = ReplayProgram(sweep)
        study = UserStudy(replay, seed=5)
        result = study.run(ao_index=4, bpa_index=9)
        scores = result.scores
        assert scores["AO"] > scores["baseline"]
        assert scores["UO"] >= scores["AO"] - 0.05
        assert scores["UO"] > scores["BPA"]

    def test_scores_in_scale(self, sweep):
        result = UserStudy(ReplayProgram(sweep), seed=5).run(4, 9)
        for score in result.scores.values():
            assert 1.0 <= score <= 5.0

    def test_per_participant_shapes(self, sweep):
        study = UserStudy(ReplayProgram(sweep), seed=5)
        result = study.run(4, 9)
        for arr in result.per_participant.values():
            assert arr.shape == (len(study.participants),)
