"""Unit tests of the structural plan cache and its reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import format_cache_stats
from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.plan import (
    PlanCache,
    PlanCacheStats,
    fingerprint_array,
    fingerprint_weights,
)
from repro.errors import ConfigurationError
from repro.nn.network import LSTMNetwork


@pytest.fixture
def network() -> LSTMNetwork:
    config = LSTMConfig(hidden_size=16, num_layers=2, seq_length=10, input_size=12)
    return LSTMNetwork(config, 30, 3, seed=4)


@pytest.fixture
def tokens(network) -> np.ndarray:
    rng = np.random.default_rng(9)
    return rng.integers(0, 30, size=(5, network.config.seq_length))


def combined_config(**overrides) -> ExecutionConfig:
    defaults = dict(
        mode=ExecutionMode.COMBINED, alpha_inter=100.0, alpha_intra=0.3, mts=3
    )
    defaults.update(overrides)
    return ExecutionConfig(**defaults)


class TestFingerprints:
    def test_array_fingerprint_is_content_addressed(self):
        a = np.arange(12.0).reshape(3, 4)
        assert fingerprint_array(a) == fingerprint_array(a.copy())
        assert fingerprint_array(a) != fingerprint_array(a + 1)
        # Same bytes, different shape must not collide.
        assert fingerprint_array(a) != fingerprint_array(a.reshape(4, 3))

    def test_array_fingerprint_handles_views(self):
        a = np.arange(24.0).reshape(4, 6)
        assert fingerprint_array(a[:, ::2]) == fingerprint_array(
            np.ascontiguousarray(a[:, ::2])
        )

    def test_weights_fingerprint_memoized_and_distinct(self, network):
        w0 = network.layers[0].weights
        w1 = network.layers[1].weights
        first = fingerprint_weights(w0)
        assert fingerprint_weights(w0) is first  # memoized on the object
        assert fingerprint_weights(w0) != fingerprint_weights(w1)


class TestPlanCacheStore:
    def test_relevance_hit_miss_counters(self):
        cache = PlanCache()
        calls = []

        def compute():
            calls.append(1)
            return np.arange(4.0)

        first = cache.relevance("k", compute)
        second = cache.relevance("k", compute)
        assert np.array_equal(first, second)
        assert len(calls) == 1
        assert cache.stats.relevance_misses == 1
        assert cache.stats.relevance_hits == 1
        assert cache.stats.relevance_hit_rate == 0.5

    def test_cached_relevance_is_read_only(self):
        cache = PlanCache()
        value = cache.relevance("k", lambda: np.arange(4.0))
        with pytest.raises(ValueError):
            value[0] = 99.0

    def test_plan_miss_falls_through_to_relevance_store(self):
        cache = PlanCache()
        relevance_calls = []
        plan_calls = []

        def compute():
            relevance_calls.append(1)
            return np.arange(3.0)

        def build(relevance):
            plan_calls.append(1)
            return ("plan", tuple(relevance))

        cache.layer_plan(("p", 1.0), "rel", compute, build)
        # Different threshold -> plan miss, but the relevance is reused.
        cache.layer_plan(("p", 2.0), "rel", compute, build)
        assert len(relevance_calls) == 1
        assert len(plan_calls) == 2
        assert cache.stats.plan_misses == 2
        assert cache.stats.relevance_hits == 1

    def test_lru_eviction_counts_and_bounds(self):
        cache = PlanCache(max_entries=2)
        for i in range(4):
            cache.relevance(i, lambda i=i: np.array([float(i)]))
        assert cache.stats.evictions == 2
        # Oldest entries were dropped; newest survive.
        assert np.array_equal(cache.relevance(3, lambda: np.array([-1.0])), [3.0])
        assert np.array_equal(cache.relevance(0, lambda: np.array([-1.0])), [-1.0])

    def test_clear_and_reset_stats(self):
        cache = PlanCache()
        cache.relevance("k", lambda: np.arange(2.0))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.relevance_misses == 1
        cache.reset_stats()
        assert cache.stats.relevance_misses == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            PlanCache(max_entries=0)


class TestExecutorIntegration:
    def test_repeat_run_hits_plan_store(self, network, tokens):
        cache = PlanCache()
        executor = LSTMExecutor(network, combined_config(), plan_cache=cache)
        executor.run_batch(tokens)
        lookups = tokens.shape[0] * network.num_layers
        assert cache.stats.plan_misses == lookups
        executor.run_batch(tokens)
        assert cache.stats.plan_hits == lookups

    def test_cache_shared_across_executors_and_thresholds(self, network, tokens):
        cache = PlanCache()
        batch = tokens.shape[0]
        first = LSTMExecutor(network, combined_config(), plan_cache=cache)
        first.run_batch(tokens)
        misses = cache.stats.relevance_misses
        assert misses == batch * network.num_layers
        # New executor, different inter threshold: every plan misses, but
        # layer 0 sees the same embeddings, so its relevance is served from
        # cache. Deeper layers consume layer 0's *output*, which the new
        # threshold changes — their relevance keys legitimately differ.
        second = LSTMExecutor(
            network, combined_config(alpha_inter=500.0), plan_cache=cache
        )
        second.run_batch(tokens)
        assert cache.stats.relevance_hits == batch
        assert cache.stats.relevance_misses == misses + batch * (
            network.num_layers - 1
        )
        assert cache.stats.plan_hits == 0

    def test_exact_relevance_variant_does_not_collide(self, network, tokens):
        cache = PlanCache()
        LSTMExecutor(network, combined_config(), plan_cache=cache).run_batch(tokens)
        misses = cache.stats.relevance_misses
        LSTMExecutor(
            network, combined_config(use_exact_relevance=True), plan_cache=cache
        ).run_batch(tokens)
        assert cache.stats.relevance_misses == 2 * misses

    def test_inter_mode_uses_cache_too(self, network, tokens):
        cache = PlanCache()
        config = ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=100.0, mts=3)
        executor = LSTMExecutor(network, config, plan_cache=cache)
        executor.run_batch(tokens)
        executor.run_batch(tokens)
        assert cache.stats.plan_hits == tokens.shape[0] * network.num_layers

    def test_baseline_mode_never_touches_cache(self, network, tokens):
        cache = PlanCache()
        config = ExecutionConfig(mode=ExecutionMode.BASELINE)
        LSTMExecutor(network, config, plan_cache=cache).run_batch(tokens)
        assert cache.stats.plan_requests == 0
        assert cache.stats.relevance_requests == 0


class TestReporting:
    def test_format_cache_stats_renders_counters(self):
        stats = PlanCacheStats(
            relevance_hits=3, relevance_misses=1, plan_hits=4, plan_misses=4
        )
        text = format_cache_stats(stats)
        assert "relevance" in text
        assert "75.0%" in text
        assert "50.0%" in text
        assert "evictions: 0" in text

    def test_stats_as_dict_round_trip(self):
        stats = PlanCacheStats(plan_hits=2, plan_misses=2)
        d = stats.as_dict()
        assert d["plan_hit_rate"] == 0.5
        assert d["relevance_hit_rate"] == 0.0
