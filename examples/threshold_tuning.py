#!/usr/bin/env python
"""User-oriented threshold tuning and the simulated user study (Fig. 18).

The paper's last experiment: four deployment schemes — the exact baseline,
AO (accuracy-oriented), BPA (best performance-accuracy), and UO
(user-oriented, tuned per user) — rated by a panel of 30 participants who
weigh response delay against perceptible accuracy loss differently.

Run:  python examples/threshold_tuning.py
"""

from repro.core.executor import ExecutionMode
from repro.workloads.apps import Workload, build_workload
from repro.workloads.userstudy import ReplayProgram, UserStudy, sample_participants


def main() -> None:
    print("Building the MR workload and sweeping the threshold sets ...")
    workload = build_workload("MR", seed=0)
    sweep = workload.threshold_sweep(ExecutionMode.COMBINED)

    ao = Workload.ao_index(sweep)
    bpa = Workload.bpa_index(sweep)
    print(f"  AO scheme  -> set {ao}  ({sweep[ao].speedup:.2f}x, {sweep[ao].accuracy:.1%})")
    print(f"  BPA scheme -> set {bpa} ({sweep[bpa].speedup:.2f}x, {sweep[bpa].accuracy:.1%})")

    print("\nReplaying the four schemes for 30 simulated participants ...")
    replay = ReplayProgram(sweep)
    participants = sample_participants(seed=7)
    study = UserStudy(replay, participants=participants, seed=7)
    result = study.run(ao_index=ao, bpa_index=bpa)

    print("\nMean satisfaction (1 = unsatisfied .. 5 = most satisfied):")
    for scheme in ("baseline", "AO", "BPA", "UO"):
        bar = "#" * int(round(result.scores[scheme] * 8))
        print(f"  {scheme:9s} {result.scores[scheme]:.2f}  {bar}")

    print(
        "\nPaper's Fig. 18 shape: AO > baseline (speed with imperceptible "
        "loss), BPA\npenalized by visible loss, UO best because it matches "
        "each user's own trade-off."
    )

    # Show three participants' UO choices to make 'per-user' concrete.
    print("\nPer-user UO choices (first three participants):")
    for i, participant in enumerate(participants[:3]):
        choice = replay.uo_choice(participant)
        print(
            f"  user {i}: speed_pref={participant.speed_preference:.2f}, "
            f"loss_aversion={participant.loss_aversion:.2f} -> "
            f"delay x{choice.delay_ratio:.2f}, accuracy {choice.accuracy:.1%}"
        )


if __name__ == "__main__":
    main()
