#!/usr/bin/env python
"""Quickstart: run one Table II application through the full pipeline.

Builds the BABI question-answering model from the calibrated zoo, runs the
offline calibration (Fig. 10), and compares the exact baseline against the
combined inter+intra optimized execution on the simulated Jetson TX1 —
printing speedup, whole-system energy saving, and the measured accuracy
loss, exactly the quantities of the paper's headline result.

Run:  python examples/quickstart.py
"""

from repro import ExecutionMode, OptimizedLSTM


def main() -> None:
    print("Building BABI (Table II: H=256, 3 layers, 86 cells) ...")
    app = OptimizedLSTM.from_app("BABI", seed=0)

    print("Offline calibration (MTS search, alpha limits, Eq. 6 links) ...")
    calibration = app.calibrate(num_sequences=8)
    print(
        f"  MTS = {calibration.mts}, "
        f"alpha_inter upper limit = {calibration.alpha_inter_max:.1f}, "
        f"alpha_intra upper limit = {calibration.alpha_intra_max:.2f}"
    )

    tokens = app.sample_tokens(16, seed=42)
    print(f"\nRunning {tokens.shape[0]} sequences ...")
    baseline = app.run(tokens, mode=ExecutionMode.BASELINE)
    print(
        f"  baseline: {baseline.mean_time * 1e3:.2f} ms/seq, "
        f"{baseline.mean_energy * 1e3:.1f} mJ/seq"
    )

    for index in (2, 4, 6):
        optimized = app.run(tokens, mode=ExecutionMode.COMBINED, threshold_index=index)
        print(
            f"  combined set {index}: "
            f"{optimized.speedup_vs(baseline):.2f}x speedup, "
            f"{optimized.energy_saving_vs(baseline):.1%} energy saving, "
            f"{optimized.agreement_with(baseline):.1%} agreement, "
            f"tissue size {optimized.mean_tissue_size:.1f}, "
            f"rows skipped {optimized.mean_skip_fraction:.0%}"
        )

    print(
        "\nNote: 'agreement' here counts every sequence, including the "
        "knife-edge\ndecisions a random teacher produces; the benchmark "
        "harness evaluates accuracy\non confidently-decided inputs (see "
        "repro.workloads) as trained models would.\n"
        "\nThe paper's headline (Fig. 14): 2.54x average speedup and 47.23% "
        "energy saving\nat a 2% (user-imperceptible) accuracy loss."
    )


if __name__ == "__main__":
    main()
