#!/usr/bin/env python
"""The GRU extension (Section II-B: "simple adjustment").

The paper notes its methods transfer to GRUs. This example demonstrates
the GRU analogue of DRS: the update gate ``z_t`` plays the role of the
output gate — where ``z_t`` is near zero the hidden state barely changes
(``h_t ~= h_{t-1}``), so the candidate/reset rows can be skipped. We
measure the numerical deviation the skip introduces as the threshold
rises, mirroring the LSTM intra-cell trade-off.

Run:  python examples/gru_extension.py
"""

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.gru import GRULayer, gru_cell_step
from repro.nn.initializers import WeightInitializer

HIDDEN, INPUT, STEPS = 96, 64, 40


def run_with_skip(layer: GRULayer, xs: np.ndarray, alpha: float):
    """GRU-DRS: threshold z_t, skip trivial candidate rows."""
    h = np.zeros(layer.hidden_size)
    outputs, skipped = [], []
    w = layer.weights
    for x in xs:
        z = sigmoid(x @ w.w_z.T + h @ w.u_z.T + w.b_z)
        mask = z < alpha
        h = gru_cell_step(w, x, h, skip_rows=mask)
        outputs.append(h)
        skipped.append(mask.mean())
    return np.asarray(outputs), float(np.mean(skipped))


def main() -> None:
    rng = np.random.default_rng(3)
    init = WeightInitializer(5)
    layer = GRULayer.create(HIDDEN, INPUT, init)
    # Bias the update gate negative so a realistic share of elements is
    # quiet — the same statistic the LSTM zoo calibrates for o_t.
    layer.weights.b_z -= 1.5

    xs = rng.normal(size=(STEPS, INPUT)) * 0.6
    exact = layer.forward(xs)

    print("GRU dynamic row skip (update gate as the selector):")
    print(f"{'alpha':>7} {'rows skipped':>13} {'h rel. error':>13}")
    for alpha in (0.0, 0.02, 0.05, 0.1, 0.2, 0.3):
        approx, skipped = run_with_skip(layer, xs, alpha)
        err = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        print(f"{alpha:>7.2f} {skipped:>12.1%} {err:>13.4f}")

    print(
        "\nAs with the LSTM, the skipped rows' update gates are nearly "
        "closed, so the\nhidden state they would have written barely "
        "changes — error grows smoothly\nwith the threshold while the "
        "candidate/reset weight loads shrink."
    )


if __name__ == "__main__":
    main()
