#!/usr/bin/env python
"""Sentiment classification (IMDB) under the accuracy/performance knob.

The motivating IPA scenario of the paper's introduction: a mobile device
classifies user text locally. This example builds the IMDB workload
(confidence-labelled synthetic dataset, Section VI-A methodology), sweeps
the 11 threshold sets of Fig. 19, and reports where the AO
(accuracy-oriented) and BPA (best performance-accuracy) schemes land.

Run:  python examples/sentiment_analysis.py
"""

from repro.core.executor import ExecutionMode
from repro.workloads.apps import Workload, build_workload


def main() -> None:
    print("Building the IMDB workload (H=512, 3 layers, 80 cells) ...")
    workload = build_workload("IMDB", seed=0, num_sequences=24)
    print(
        f"  dataset: {workload.dataset.num_sequences} confidently-decided "
        "reviews, teacher = exact network"
    )

    print("\nThreshold sweep (combined system, Fig. 19 row):")
    print(f"{'set':>4} {'alpha_inter':>12} {'alpha_intra':>12} "
          f"{'speedup':>8} {'energy':>8} {'accuracy':>9}")
    sweep = workload.threshold_sweep(ExecutionMode.COMBINED)
    for ev in sweep:
        print(
            f"{ev.threshold_index:>4} {ev.alpha_inter:>12.1f} "
            f"{ev.alpha_intra:>12.3f} {ev.speedup:>7.2f}x "
            f"{ev.energy_saving:>7.1%} {ev.accuracy:>9.1%}"
        )

    ao = Workload.ao_index(sweep)
    bpa = Workload.bpa_index(sweep)
    print(
        f"\nAO (<=2% loss)  -> set {ao}: {sweep[ao].speedup:.2f}x at "
        f"{sweep[ao].accuracy:.1%}"
    )
    print(
        f"BPA (max s*a)   -> set {bpa}: {sweep[bpa].speedup:.2f}x at "
        f"{sweep[bpa].accuracy:.1%}"
    )


if __name__ == "__main__":
    main()
