#!/usr/bin/env python
"""Why this is a *mobile* GPU problem (Section II-C).

On a large GPU (Tesla M40) the united recurrent matrix of a mobile-sized
LSTM fits comfortably in the 6 MB L2, so consecutive Sgemv launches hit
on-chip and the redundant data movement never happens; layer-level
parallelism is also available. On the Tegra X1 the same matrix thrashes the
256 KB L2 every cell. This example quantifies the contrast.

Run:  python examples/mobile_vs_server.py
"""

from repro import ExecutionMode, OptimizedLSTM, TEGRA_X1, TESLA_M40
from repro.config import get_app


def describe(spec, app_name="MR"):
    app = OptimizedLSTM.from_app(app_name, seed=0, spec=spec)
    app.calibrate(num_sequences=6)
    tokens = app.sample_tokens(4, seed=1)
    baseline = app.run(tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
    inter = app.run(tokens, mode=ExecutionMode.INTER, threshold_index=6)

    trace = baseline.traces[0]
    weight_bytes = get_app(app_name).model.recurrent_weight_bytes
    sgemv_bytes = sum(k.dram_bytes for k in trace.kernels if k.name == "sgemv")
    print(f"\n{spec.name}:")
    print(f"  united U matrix:            {weight_bytes / 1024:.0f} KB "
          f"(L2: {spec.l2_bytes / 1024:.0f} KB)")
    print(f"  U re-loads per layer pass:  {sgemv_bytes / weight_bytes:.1f}x the matrix")
    print(f"  baseline latency:           {baseline.mean_time * 1e3:.2f} ms/seq")
    print(f"  inter-cell speedup:         {inter.speedup_vs(baseline):.2f}x")


def main() -> None:
    print(
        "The same MR model (H=256: U is ~1 MB) on a mobile and a server GPU."
    )
    describe(TEGRA_X1)
    describe(TESLA_M40)
    print(
        "\nOn the server GPU the matrix is L2-resident, so there is little "
        "redundant\ntraffic for the inter-cell optimization to remove — the "
        "bottleneck this paper\nattacks is specific to mobile memory "
        "hierarchies."
    )


if __name__ == "__main__":
    main()
