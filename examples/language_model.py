#!/usr/bin/env python
"""Word-level language modelling (PTB) — the paper's biggest winner.

PTB has the largest recurrent matrices (650 hidden units) and the longest
unrolled layers (200 cells) of Table II, so it suffers the most from the
per-cell weight re-loads — and gains the most from the optimizations. This
example dissects *where* the gains come from:

* the baseline's Sgemv-dominated time and DRAM-saturated execution
  (Fig. 4 / Fig. 6),
* the weight re-load amplification across the unrolled layer (Fig. 5),
* the inter-cell and intra-cell contributions at matched accuracy.

Run:  python examples/language_model.py
"""

from repro import ExecutionMode, OptimizedLSTM
from repro.config import get_app


def main() -> None:
    app_config = get_app("PTB")
    print(
        f"Building PTB (H={app_config.model.hidden_size}, "
        f"{app_config.model.num_layers} layers, "
        f"{app_config.model.seq_length} cells) ..."
    )
    app = OptimizedLSTM.from_app(app_config, seed=0)
    app.calibrate(num_sequences=6)

    tokens = app.sample_tokens(3, seed=11)
    baseline = app.run(tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
    trace = baseline.traces[0]

    print("\nBaseline anatomy (the Section III bottleneck):")
    print(f"  Sgemv share of time:        {trace.time_fraction('sgemv'):.1%}")
    print(f"  off-chip bandwidth util:    {trace.mean_utilization('dram', 'sgemv'):.1%}")
    print(f"  on-chip bandwidth util:     {trace.mean_utilization('onchip', 'sgemv'):.1%}")
    stalls = trace.stall_breakdown("sgemv")
    print(f"  stalls from off-chip mem:   {stalls['off_chip_memory']:.1%}")

    weight_bytes = app_config.model.recurrent_weight_bytes
    sgemv_bytes = sum(k.dram_bytes for k in trace.kernels if k.name == "sgemv")
    layers = app_config.model.num_layers
    print(
        f"  weight re-load amplification: {sgemv_bytes / (layers * weight_bytes):.0f}x "
        "the matrix size per layer pass (Fig. 5's ~100x observation; "
        f"one load per cell x {app_config.model.seq_length} cells)"
    )

    print("\nOptimized executions (threshold set 3):")
    for mode in (ExecutionMode.INTER, ExecutionMode.INTRA, ExecutionMode.COMBINED):
        out = app.run(tokens, mode=mode, threshold_index=3)
        print(
            f"  {mode.value:8s}: {out.speedup_vs(baseline):.2f}x, "
            f"energy saving {out.energy_saving_vs(baseline):.1%}, "
            f"raw token agreement {out.agreement_with(baseline):.1%}, "
            f"breakpoints/seq {out.mean_breakpoints:.0f}, "
            f"rows skipped {out.mean_skip_fraction:.0%}"
        )
    print(
        "\nNote: raw agreement scores *every* token, including the near-tie "
        "predictions\na random teacher produces; the benchmark harness "
        "measures top-5 accuracy on\nconfident tokens (the trained-LM "
        "equivalent — see repro.workloads)."
    )


if __name__ == "__main__":
    main()
