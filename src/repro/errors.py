"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid model, application, or simulator configuration."""


class ShapeError(ConfigurationError):
    """Tensor operands with incompatible shapes."""


class PlanError(ReproError):
    """An execution plan is internally inconsistent.

    Raised, for example, when a tissue schedule violates a sub-layer data
    dependency or exceeds the maximum tissue size.
    """


class SimulationError(ReproError):
    """The GPU timing simulator was driven with an impossible workload."""


class CalibrationError(ReproError):
    """Offline calibration (MTS search, threshold tuning) failed to converge."""
