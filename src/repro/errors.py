"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid model, application, or simulator configuration."""


class ShapeError(ConfigurationError):
    """Tensor operands with incompatible shapes."""


class BackendUnavailableError(ConfigurationError):
    """A requested execution backend cannot run on this host.

    Raised when :func:`repro.core.backends.resolve_backend` is asked for a
    backend whose toolchain is missing — ``numba``/``torch`` not importable,
    or no C compiler for the generated-C backend. The message carries the
    per-backend reason so callers (CLI, benches) can skip cleanly instead
    of crashing mid-run.
    """


class PlanError(ReproError):
    """An execution plan is internally inconsistent.

    Raised, for example, when a tissue schedule violates a sub-layer data
    dependency or exceeds the maximum tissue size.
    """


class SimulationError(ReproError):
    """The GPU timing simulator was driven with an impossible workload."""


class BackpressureError(ReproError):
    """The serving runtime's bounded request queue is full.

    Raised by non-blocking submission when accepting the shard would push
    the number of in-flight dispatches past the configured queue depth.
    Callers either retry after collecting results or submit blocking.
    """


class RuntimeStateError(ReproError):
    """The serving runtime was used outside its lifecycle (not started,
    already closed, or a worker died)."""


class ArenaLayoutError(RuntimeStateError):
    """A shared-memory arena segment's layout is invalid.

    Raised when a manifest entry is misaligned (every payload must start
    on a 64-byte boundary), overlaps a neighbour, or runs past the end of
    the segment — instead of silently building a mis-strided view over
    mixed-dtype (int8 payload + float scale) storage.
    """


class CalibrationError(ReproError):
    """Offline calibration (MTS search, threshold tuning) failed to converge."""
