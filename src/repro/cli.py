"""Command-line interface for the reproduction.

Four subcommands::

    repro info                         # Table I + Table II
    repro run BABI --mode combined --set 4 --sequences 8
    repro sweep MR --mode combined     # the Fig. 19 row for one app
    repro figure fig14 --apps MR,PTB   # regenerate a paper figure

(Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.config import APP_NAMES
from repro.core.executor import ExecutionMode

#: Figure names accepted by ``repro figure``.
FIGURES = (
    "table1",
    "table2",
    "fig04",
    "fig06",
    "fig09",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "overheads",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-friendly LSTMs on mobile GPUs (MICRO 2018) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print Table I and Table II")

    run = sub.add_parser("run", help="run one application under one scheme")
    run.add_argument("app", choices=[*APP_NAMES], help="Table II application")
    run.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode],
        default="combined",
        help="execution scheme",
    )
    run.add_argument("--set", dest="threshold_set", type=int, default=4,
                     help="threshold set index 0..10")
    run.add_argument("--sequences", type=int, default=8, help="batch size")
    run.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep", help="threshold sweep for one application")
    sweep.add_argument("app", choices=[*APP_NAMES])
    sweep.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode if m is not ExecutionMode.BASELINE],
        default="combined",
    )
    sweep.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument(
        "--apps", default=None, help="comma-separated app subset (default: all)"
    )
    return parser


def _cmd_info() -> int:
    from repro.bench.harness import table1_platform, table2_applications

    print(table1_platform())
    print()
    print(table2_applications())
    return 0


def _cmd_run(args) -> int:
    from repro.core.pipeline import OptimizedLSTM

    mode = ExecutionMode(args.mode)
    print(f"Building {args.app} ...", file=sys.stderr)
    app = OptimizedLSTM.from_app(args.app, seed=args.seed)
    if mode not in (ExecutionMode.BASELINE, ExecutionMode.ZERO_PRUNE):
        app.calibrate()
    tokens = app.sample_tokens(args.sequences, seed=args.seed + 1)
    baseline = app.run(tokens, mode=ExecutionMode.BASELINE)
    if mode is ExecutionMode.BASELINE:
        print(
            f"{args.app} baseline: {baseline.mean_time * 1e3:.2f} ms/seq, "
            f"{baseline.mean_energy * 1e3:.1f} mJ/seq"
        )
        return 0
    outcome = app.run(tokens, mode=mode, threshold_index=args.threshold_set)
    print(
        f"{args.app} {mode.value} (set {args.threshold_set}): "
        f"{outcome.speedup_vs(baseline):.2f}x speedup, "
        f"{outcome.energy_saving_vs(baseline):.1%} energy saving, "
        f"{outcome.agreement_with(baseline):.1%} agreement"
    )
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench.reporting import format_table
    from repro.workloads.apps import Workload, build_workload

    mode = ExecutionMode(args.mode)
    print(f"Building the {args.app} workload ...", file=sys.stderr)
    workload = build_workload(args.app, seed=args.seed)
    sweep = workload.threshold_sweep(mode)
    rows = [
        (e.threshold_index, f"{e.speedup:.2f}x", f"{e.energy_saving:.1%}", f"{e.accuracy:.1%}")
        for e in sweep
    ]
    print(
        format_table(
            ["set", "speedup", "energy saving", "accuracy"],
            rows,
            title=f"{args.app} — {mode.value} threshold sweep",
        )
    )
    ao = Workload.ao_index(sweep)
    bpa = Workload.bpa_index(sweep)
    print(f"AO -> set {ao}; BPA -> set {bpa}")
    return 0


def _cmd_figure(args) -> int:
    from repro.bench import harness

    if args.apps:
        os.environ["REPRO_BENCH_APPS"] = args.apps
    functions = {
        "table1": lambda: harness.table1_platform(),
        "table2": lambda: harness.table2_applications(),
        "fig04": lambda: harness.fig04_stall_breakdown()[-1],
        "fig06": lambda: harness.fig06_bandwidth_utilization()[-1],
        "fig09": lambda: harness.fig09_tissue_size_sweep()[-1],
        "fig14": lambda: harness.fig14_overall()[-1],
        "fig15": lambda: harness.fig15_per_layer()[-1],
        "fig16": lambda: harness.fig16_compression_schemes()[-1],
        "fig17": lambda: harness.fig17_model_capacity()[-1],
        "fig18": lambda: harness.fig18_user_study()[-1],
        "fig19": lambda: harness.fig19_threshold_sweep()[-1],
        "overheads": lambda: harness.overheads_section6f()[-1],
    }
    print(functions[args.name]())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "figure":
        return _cmd_figure(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
