"""Command-line interface for the reproduction.

Subcommands::

    repro info                         # Table I + Table II
    repro run BABI --mode combined --set 4 --sequences 8
    repro sweep MR --mode combined     # the Fig. 19 row for one app
    repro figure fig14 --apps MR,PTB   # regenerate a paper figure
    repro serve-bench --workers 2 --sequences 16 --mode combined
    repro serve-stream --mode intra --duration-s 2 --record stream.jsonl
    repro serve-zoo --tenant MR:2:fp64 --tenant MR:1:int8 --duration-s 2
    repro calibrate MR --steps 5 --optimizer adam --policy recompute
    repro trace record MR --out runs.jsonl --chrome trace.json
    repro trace summarize runs.jsonl
    repro trace diff base.jsonl other.jsonl

(Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.)

Library errors (:class:`~repro.errors.ReproError`) are reported as a
one-line ``repro: error: ...`` message on stderr with exit status 1;
argument mistakes get argparse's usage message and exit status 2.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.config import APP_NAMES
from repro.core.backends import BACKEND_NAMES
from repro.core.executor import ExecutionMode
from repro.errors import ConfigurationError, ReproError
from repro.nn.quantize import PRECISIONS

#: Shared help text for the ``--backend`` flag.
_BACKEND_HELP = (
    "compiled-program lowering: 'numpy' is the bit-exact oracle, 'fused' "
    "picks the fastest available fused kernel backend (cgen, then numba)"
)

_THREADS_HELP = (
    "in-process dispatch threads per executor (1 = serial; >1 shards "
    "batch rows over a persistent thread pool, bit-identical to serial)"
)

#: Figure names accepted by ``repro figure``.
FIGURES = (
    "table1",
    "table2",
    "fig04",
    "fig06",
    "fig09",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "overheads",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-friendly LSTMs on mobile GPUs (MICRO 2018) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print Table I and Table II")

    run = sub.add_parser("run", help="run one application under one scheme")
    run.add_argument("app", choices=[*APP_NAMES], help="Table II application")
    run.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode],
        default="combined",
        help="execution scheme",
    )
    run.add_argument("--set", dest="threshold_set", type=int, default=4,
                     help="threshold set index 0..10")
    run.add_argument("--sequences", type=int, default=8, help="batch size")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--precision",
        choices=[*PRECISIONS],
        default="fp64",
        help="weight-storage policy (int8/fp16 quantize W/U, fp64 is exact)",
    )
    run.add_argument(
        "--backend", choices=[*BACKEND_NAMES], default="numpy", help=_BACKEND_HELP
    )
    run.add_argument("--threads", type=int, default=1, help=_THREADS_HELP)

    sweep = sub.add_parser("sweep", help="threshold sweep for one application")
    sweep.add_argument("app", choices=[*APP_NAMES])
    sweep.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode if m is not ExecutionMode.BASELINE],
        default="combined",
    )
    sweep.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument(
        "--apps", default=None, help="comma-separated app subset (default: all)"
    )

    serve = sub.add_parser(
        "serve-bench",
        help="drive the sharded serving runtime once and report fleet figures",
    )
    serve.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode],
        default="combined",
        help="execution scheme to serve",
    )
    serve.add_argument("--sequences", type=int, default=16, help="fleet batch size")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker process count (0 = synchronous in-process fallback)",
    )
    serve.add_argument("--max-batch", type=int, default=8,
                       help="largest dispatched shard")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="bound on in-flight shards (backpressure window)")
    serve.add_argument(
        "--dwell-ms", type=float, default=0.0,
        help="modeled per-sequence device dwell in the workers (ms)",
    )
    serve.add_argument("--seed", type=int, default=11)
    serve.add_argument(
        "--record", default=None,
        help="write the merged fleet RunRecord to this JSONL path",
    )
    serve.add_argument(
        "--precision",
        choices=[*PRECISIONS],
        default="fp64",
        help="weight-storage policy served by the fleet (arena publishes "
        "quantized payloads)",
    )
    serve.add_argument(
        "--backend", choices=[*BACKEND_NAMES], default="numpy", help=_BACKEND_HELP
    )
    serve.add_argument("--threads", type=int, default=1, help=_THREADS_HELP)

    stream = sub.add_parser(
        "serve-stream",
        help="drive the streaming runtime through a deterministic open-loop "
        "workload and report latency/goodput figures",
    )
    stream.add_argument(
        "--mode",
        choices=["baseline", "intra", "zero_prune"],
        default="baseline",
        help="execution scheme to stream (inter/combined plan from "
        "full-sequence relevance and cannot stream)",
    )
    stream.add_argument("--alpha-intra", type=float, default=0.35,
                        help="intra-cell threshold when --mode intra")
    stream.add_argument("--duration-s", type=float, default=2.0,
                        help="arrival window (virtual seconds)")
    stream.add_argument("--session-rate", type=float, default=10.0,
                        help="mean session starts per second")
    stream.add_argument("--max-batch", type=int, default=8,
                        help="sessions batched per tick")
    stream.add_argument("--chunk-len", type=int, default=4,
                        help="max tokens served per session per tick")
    stream.add_argument("--queue-limit", type=int, default=64,
                        help="admission-queue bound (backpressure window)")
    stream.add_argument("--tick-interval-ms", type=float, default=2.0,
                        help="virtual tick cadence")
    stream.add_argument("--hidden", type=int, default=64, help="hidden size")
    stream.add_argument("--layers", type=int, default=2, help="LSTM layers")
    stream.add_argument("--seed", type=int, default=11)
    stream.add_argument(
        "--record", default=None,
        help="write the merged serving-window RunRecord to this JSONL path",
    )
    stream.add_argument(
        "--backend", choices=[*BACKEND_NAMES], default="numpy", help=_BACKEND_HELP
    )
    stream.add_argument("--threads", type=int, default=1, help=_THREADS_HELP)

    zoo = sub.add_parser(
        "serve-zoo",
        help="serve N tenants over one deduplicated weight arena and shared "
        "program/plan caches under QoS-weighted scheduling",
    )
    zoo.add_argument(
        "--tenant",
        action="append",
        dest="tenants",
        metavar="APP[:WEIGHT[:PRECISION]]",
        default=None,
        help="add one tenant bound to a Table II app (repeatable); WEIGHT "
        "is its QoS share (default 1), PRECISION its weight storage "
        "(default fp64). Tenants of the same app share arena segments. "
        "Default: MR:2:fp64 MR:1:fp64 MR:1:int8",
    )
    zoo.add_argument("--duration-s", type=float, default=2.0,
                     help="arrival window (virtual seconds)")
    zoo.add_argument("--session-rate", type=float, default=8.0,
                     help="mean request starts per second across all tenants")
    zoo.add_argument("--max-batch", type=int, default=8,
                     help="largest batch served to one tenant per tick")
    zoo.add_argument("--queue-limit", type=int, default=64,
                     help="per-tenant admission bound (backpressure window)")
    zoo.add_argument("--tick-interval-ms", type=float, default=2.0,
                     help="virtual tick cadence")
    zoo.add_argument("--seed", type=int, default=11)
    zoo.add_argument("--threads", type=int, default=1, help=_THREADS_HELP)
    zoo.add_argument(
        "--record", default=None,
        help="write the merged zoo-window RunRecord (per-tenant cache "
        "attribution under namespaced keys) to this JSONL path",
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="fine-tune one zoo model on synthetic drift with the "
        "memory-frugal BPTT and report how the measured gate statistics "
        "(DRS skip ratio, breakpoint placement) moved",
    )
    calibrate.add_argument("app", choices=[*APP_NAMES], help="Table II application")
    calibrate.add_argument("--steps", type=int, default=5,
                           help="optimizer steps over the drift batch")
    calibrate.add_argument("--lr", type=float, default=5e-2, help="learning rate")
    calibrate.add_argument(
        "--optimizer", choices=["adam", "sgd"], default="adam",
        help="update rule for the fine-tuning loop",
    )
    calibrate.add_argument(
        "--policy", choices=["stash", "recompute"], default="recompute",
        help="saved-tensor policy of the backward pass (gradients are "
        "bit-identical either way; only peak memory differs)",
    )
    calibrate.add_argument(
        "--truncation", type=int, default=None,
        help="truncated-BPTT window (default: backpropagate the full "
        "sequence)",
    )
    calibrate.add_argument("--sequences", type=int, default=6,
                           help="drift-batch size")
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument(
        "--drift", type=float, default=1.0,
        help="synthetic-drift magnitude (scales every teacher shift)",
    )
    calibrate.add_argument(
        "--alpha-intra", type=float, default=0.25,
        help="DRS threshold the before/after skip ratio is measured at",
    )
    calibrate.add_argument(
        "--record", default=None,
        help="write a RunRecord of the training run (memory accounting "
        "included) to this JSONL path",
    )

    trace = sub.add_parser(
        "trace", help="record, summarize, and diff structured run traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record", help="run one application and export its RunRecord(s)"
    )
    record.add_argument("app", choices=[*APP_NAMES], help="Table II application")
    record.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode],
        default="combined",
        help="execution scheme to record",
    )
    record.add_argument("--set", dest="threshold_set", type=int, default=4,
                        help="threshold set index 0..10")
    record.add_argument("--sequences", type=int, default=8, help="batch size")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument(
        "--precision",
        choices=[*PRECISIONS],
        default="fp64",
        help="weight-storage policy of the recorded --mode run (the "
        "baseline stays fp64 so the diff shows the traffic reduction)",
    )
    record.add_argument(
        "--out", required=True, help="JSONL output path (one RunRecord per line)"
    )
    record.add_argument(
        "--chrome",
        default=None,
        help="also export a Chrome trace_event JSON (open in Perfetto)",
    )
    record.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the baseline run (by default both baseline and --mode "
        "are recorded so the file can be diffed directly)",
    )

    summarize = trace_sub.add_parser(
        "summarize", help="print a human summary of each run in a JSONL file"
    )
    summarize.add_argument("file", help="JSONL file written by 'trace record'")

    diff = trace_sub.add_parser(
        "diff", help="compare two recorded runs down to the kernel class"
    )
    diff.add_argument("base", help="JSONL file with the baseline run")
    diff.add_argument("other", help="JSONL file with the optimized run")
    diff.add_argument(
        "--base-index", type=int, default=0,
        help="record index inside BASE (default 0, negatives allowed)",
    )
    diff.add_argument(
        "--other-index", type=int, default=-1,
        help="record index inside OTHER (default -1, the last record)",
    )
    return parser


def _cmd_info(args) -> int:
    from repro.bench.harness import table1_platform, table2_applications

    print(table1_platform())
    print()
    print(table2_applications())
    return 0


def _cmd_run(args) -> int:
    from repro.core.pipeline import OptimizedLSTM

    mode = ExecutionMode(args.mode)
    print(f"Building {args.app} ...", file=sys.stderr)
    app = OptimizedLSTM.from_app(args.app, seed=args.seed)
    if mode not in (ExecutionMode.BASELINE, ExecutionMode.ZERO_PRUNE):
        app.calibrate()
    tokens = app.sample_tokens(args.sequences, seed=args.seed + 1)
    baseline = app.run(tokens, mode=ExecutionMode.BASELINE, backend=args.backend)
    if mode is ExecutionMode.BASELINE:
        print(
            f"{args.app} baseline: {baseline.mean_time * 1e3:.2f} ms/seq, "
            f"{baseline.mean_energy * 1e3:.1f} mJ/seq"
        )
        return 0
    from repro.obs import Recorder

    recorder = Recorder()
    kwargs = {}
    if mode is not ExecutionMode.ZERO_PRUNE:
        kwargs["threshold_index"] = args.threshold_set
    outcome = app.run(
        tokens, mode=mode, precision=args.precision, backend=args.backend,
        threads=args.threads, recorder=recorder, **kwargs
    )
    print(
        f"{args.app} {mode.value} (set {args.threshold_set}, {args.precision}): "
        f"{outcome.speedup_vs(baseline):.2f}x speedup, "
        f"{outcome.energy_saving_vs(baseline):.1%} energy saving, "
        f"{outcome.agreement_with(baseline):.1%} agreement"
    )
    weight_bytes = recorder.last().weight_bytes_totals()
    if weight_bytes["moved"] > 0.0:
        print(
            f"weight traffic: {weight_bytes['moved'] / 1e6:.2f} MB moved "
            f"({weight_bytes['fp64'] / max(weight_bytes['moved'], 1e-30):.2f}x "
            "less than fp64 storage)"
        )
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench.reporting import format_table
    from repro.workloads.apps import Workload, build_workload

    mode = ExecutionMode(args.mode)
    print(f"Building the {args.app} workload ...", file=sys.stderr)
    workload = build_workload(args.app, seed=args.seed)
    sweep = workload.threshold_sweep(mode)
    rows = [
        (e.threshold_index, f"{e.speedup:.2f}x", f"{e.energy_saving:.1%}", f"{e.accuracy:.1%}")
        for e in sweep
    ]
    print(
        format_table(
            ["set", "speedup", "energy saving", "accuracy"],
            rows,
            title=f"{args.app} — {mode.value} threshold sweep",
        )
    )
    ao = Workload.ao_index(sweep)
    bpa = Workload.bpa_index(sweep)
    print(f"AO -> set {ao}; BPA -> set {bpa}")
    return 0


def _cmd_figure(args) -> int:
    from repro.bench import harness

    if args.apps:
        requested = [a.strip() for a in args.apps.split(",") if a.strip()]
        unknown = [a for a in requested if a not in APP_NAMES]
        if unknown:
            raise ConfigurationError(
                f"unknown app(s) {', '.join(unknown)} in --apps "
                f"(choose from {', '.join(APP_NAMES)})"
            )
        os.environ["REPRO_BENCH_APPS"] = ",".join(requested)
    functions = {
        "table1": lambda: harness.table1_platform(),
        "table2": lambda: harness.table2_applications(),
        "fig04": lambda: harness.fig04_stall_breakdown()[-1],
        "fig06": lambda: harness.fig06_bandwidth_utilization()[-1],
        "fig09": lambda: harness.fig09_tissue_size_sweep()[-1],
        "fig14": lambda: harness.fig14_overall()[-1],
        "fig15": lambda: harness.fig15_per_layer()[-1],
        "fig16": lambda: harness.fig16_compression_schemes()[-1],
        "fig17": lambda: harness.fig17_model_capacity()[-1],
        "fig18": lambda: harness.fig18_user_study()[-1],
        "fig19": lambda: harness.fig19_threshold_sweep()[-1],
        "overheads": lambda: harness.overheads_section6f()[-1],
    }
    print(functions[args.name]())
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.bench.harness import serve_bench

    mode = ExecutionMode(args.mode)
    stats, report = serve_bench(
        mode=mode,
        sequences=args.sequences,
        workers=args.workers,
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
        dwell_s=args.dwell_ms / 1e3,
        seed=args.seed,
        record_path=args.record,
        precision=args.precision,
        backend=args.backend,
        threads=args.threads,
    )
    print(report)
    if args.record:
        print(f"wrote merged fleet record to {args.record}")
    if not stats["bit_identical"]:
        print("repro: error: fleet outputs diverged from the executor", file=sys.stderr)
        return 1
    if stats["leaked_segments"]:
        print("repro: error: leaked shared-memory segments remain", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_stream(args) -> int:
    from repro.config import LSTMConfig
    from repro.core.executor import ExecutionConfig
    from repro.nn.network import LSTMNetwork
    from repro.obs import Recorder, write_jsonl
    from repro.runtime import (
        LoadSpec,
        StreamingServer,
        generate_arrivals,
        run_open_loop,
    )

    mode = ExecutionMode(args.mode)
    exec_kwargs = {"mode": mode, "backend": args.backend, "threads": args.threads}
    if mode is ExecutionMode.INTRA:
        exec_kwargs["alpha_intra"] = args.alpha_intra
    exec_config = ExecutionConfig(**exec_kwargs)
    net_config = LSTMConfig(
        hidden_size=args.hidden,
        num_layers=args.layers,
        seq_length=64,
        input_size=args.hidden,
    )
    network = LSTMNetwork(
        net_config, vocab_size=200, num_classes=8, seed=args.seed,
        per_timestep_head=True,
    )
    recorder = Recorder()
    server = StreamingServer(
        network,
        exec_config,
        max_batch=args.max_batch,
        chunk_len=args.chunk_len,
        queue_limit=args.queue_limit,
        recorder=recorder,
    )
    spec = LoadSpec(
        duration_s=args.duration_s,
        session_rate=args.session_rate,
        seed=args.seed,
        chunk_len=args.chunk_len,
    )
    arrivals = generate_arrivals(spec, vocab_size=200)
    print(f"Serving {len(arrivals)} scheduled submissions ...", file=sys.stderr)
    report = run_open_loop(
        server, arrivals, tick_interval_s=args.tick_interval_ms / 1e3
    )
    stats = server.stats
    print(
        f"streamed {report.completed_submissions}/{report.offered_submissions} "
        f"submissions ({report.completed_tokens} tokens) over "
        f"{report.duration_s:.2f} virtual s in {stats.ticks} ticks"
    )
    print(
        f"latency: p50 {report.percentile(50) * 1e3:.1f} ms, "
        f"p99 {report.percentile(99) * 1e3:.1f} ms, "
        f"max {report.as_dict()['latency_max_s'] * 1e3:.1f} ms"
    )
    print(
        f"goodput {report.goodput_tokens_per_s:.1f} tokens/s, "
        f"shed {report.shed_fraction:.1%}, "
        f"occupancy {stats.occupancy_mean(args.max_batch):.2f}, "
        f"evictions lru={stats.lru_evictions} ttl={stats.ttl_evictions}"
    )
    if args.record:
        merged = server.merged_record()
        if merged is None:
            print("repro: error: no ticks were recorded", file=sys.stderr)
            return 1
        write_jsonl([merged], args.record)
        print(f"wrote merged serving-window record to {args.record}")
    return 0


def _cmd_serve_zoo(args) -> int:
    from repro.config import get_app
    from repro.nn.model_zoo import build_calibrated_network
    from repro.nn.quantize import PRECISIONS
    from repro.obs import Recorder, write_jsonl
    from repro.runtime import (
        LoadSpec,
        OperatingPoint,
        TenantSpec,
        ZooServer,
        generate_tenant_arrivals,
        run_zoo_open_loop,
    )

    raw = args.tenants or ["MR:2:fp64", "MR:1:fp64", "MR:1:int8"]
    parsed: list[tuple[str, float, str]] = []
    for entry in raw:
        parts = entry.split(":")
        if not 1 <= len(parts) <= 3:
            raise ConfigurationError(
                f"tenant spec {entry!r} is not APP[:WEIGHT[:PRECISION]]"
            )
        app_name = parts[0]
        try:
            weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        except ValueError:
            raise ConfigurationError(
                f"tenant weight in {entry!r} is not a number"
            ) from None
        precision = parts[2] if len(parts) > 2 and parts[2] else "fp64"
        if precision not in PRECISIONS:
            raise ConfigurationError(
                f"unknown precision {precision!r} in tenant spec {entry!r}; "
                f"known: {', '.join(PRECISIONS)}"
            )
        parsed.append((app_name, weight, precision))

    # One network build per distinct app: tenants of the same app submit
    # the *same* weights to the registry, which is what deduplicates them.
    networks = {}
    for app_name, _, _ in parsed:
        if app_name not in networks:
            app = get_app(app_name)
            print(f"Building {app.name} ...", file=sys.stderr)
            networks[app_name] = (app, build_calibrated_network(app, seed=args.seed))

    recorder = Recorder()
    with ZooServer(recorder=recorder, threads=args.threads) as server:
        weights_by_name: dict[str, float] = {}
        vocab_by_name: dict[str, int] = {}
        for index, (app_name, weight, precision) in enumerate(parsed):
            app, network = networks[app_name]
            name = f"t{index}-{app_name.lower()}-{precision}"
            server.add_tenant(
                TenantSpec(
                    name=name,
                    model=app_name,
                    weight=weight,
                    point=OperatingPoint(precision=precision),
                    max_batch=args.max_batch,
                    queue_limit=args.queue_limit,
                ),
                network,
            )
            weights_by_name[name] = weight
            vocab_by_name[name] = app.vocab_size
        spec = LoadSpec(
            duration_s=args.duration_s,
            session_rate=args.session_rate,
            seed=args.seed,
            session_len_min=8,
            session_len_max=32,
        )
        arrivals = generate_tenant_arrivals(spec, weights_by_name, vocab_by_name)
        print(
            f"Serving {len(arrivals)} scheduled requests across "
            f"{len(parsed)} tenant(s) ...",
            file=sys.stderr,
        )
        report = run_zoo_open_loop(
            server, arrivals, tick_interval_s=args.tick_interval_ms / 1e3
        )
        overall = report.overall()
        print(
            f"served {overall.completed_submissions}/{overall.offered_submissions} "
            f"requests ({overall.completed_tokens} tokens) over "
            f"{report.duration_s:.2f} virtual s in {server.ticks} ticks"
        )
        for name in server.tenant_names():
            tenant_report = report.per_tenant[name]
            point = server.tenant_point(name)
            print(
                f"  {name}: weight {weights_by_name[name]:g}, "
                f"{tenant_report.completed_submissions} served / "
                f"{tenant_report.shed_submissions} shed, "
                f"p50 {tenant_report.percentile(50) * 1e3:.1f} ms, "
                f"p99 {tenant_report.percentile(99) * 1e3:.1f} ms "
                f"[{point.precision}]"
            )
        stats = server.registry.stats
        print(
            f"arena: {stats.published_segments} segment(s), "
            f"{stats.published_bytes / 1e6:.2f} MB published vs "
            f"{stats.naive_bytes / 1e6:.2f} MB naive "
            f"({stats.dedup_ratio:.2f}x ratio, {stats.dedup_hits} dedup hits)"
        )
        program = server.program_cache.stats.as_dict()
        plan = server.plan_cache.stats.as_dict()
        print(
            f"shared caches: program {program['program_hits']} hits / "
            f"{program['program_misses']} misses, "
            f"plan {plan['plan_hits']} hits / {plan['plan_misses']} misses"
        )
        if args.record:
            merged = server.merged_record()
            if merged is None:
                print("repro: error: no ticks were recorded", file=sys.stderr)
                return 1
            write_jsonl([merged], args.record)
            print(f"wrote merged zoo-window record to {args.record}")
    return 0


def _cmd_calibrate(args) -> int:
    import numpy as np

    from repro.config import get_app
    from repro.core.tuner import collect_relevance_samples
    from repro.nn.backprop import TrainingConfig, measure_training_memory
    from repro.nn.calibrate import (
        DriftSpec,
        drift_network,
        drift_report,
        fine_tune,
        synthetic_drift_batch,
    )
    from repro.nn.model_zoo import build_calibrated_network

    app = get_app(args.app)
    print(f"Building {app.name} ...", file=sys.stderr)
    network = build_calibrated_network(app, seed=args.seed)
    frozen = build_calibrated_network(app, seed=args.seed)

    teacher = drift_network(network, DriftSpec(magnitude=args.drift))
    tokens, labels = synthetic_drift_batch(
        teacher, num_sequences=args.sequences, seed=args.seed + 1
    )
    config = TrainingConfig(policy=args.policy, truncation=args.truncation)
    print(
        f"Fine-tuning on drift (magnitude {args.drift:g}) for {args.steps} "
        f"step(s) [{args.optimizer}, {args.policy}] ...",
        file=sys.stderr,
    )
    result = fine_tune(
        network,
        tokens,
        labels,
        steps=args.steps,
        optimizer=args.optimizer,
        lr=args.lr,
        config=config,
        keep_final_tape=True,
    )
    print(
        f"{app.name} calibrate: loss {result.losses[0]:.4f} -> "
        f"{result.losses[-1]:.4f} over {result.steps} step(s) "
        f"({result.wall_s * 1e3:.0f} ms)"
    )
    print(
        f"fingerprint: {result.fingerprint_before[:12]} -> "
        f"{result.fingerprint_after[:12]} "
        f"({'changed' if result.weights_changed else 'UNCHANGED'})"
    )
    memory = dict(result.final_tape.memory_report())
    print(
        f"saved tensors [{args.policy}]: {memory['saved_bytes'] / 1e6:.3f} MB "
        f"(stash would hold {memory['saved_bytes_stash'] / 1e6:.3f} MB, "
        f"recompute {memory['saved_bytes_recompute'] / 1e6:.3f} MB)"
    )

    # Breakpoint threshold: a fixed quantile of the *frozen* relevance
    # distribution, so placements exist on both sides and any movement is
    # the weights', not the threshold's.
    pooled = np.sort(
        np.concatenate(collect_relevance_samples(frozen, tokens))
    )
    alpha_inter = float(pooled[int(0.3 * (len(pooled) - 1))])
    report = drift_report(
        frozen, network, tokens, alpha_inter=alpha_inter, alpha_intra=args.alpha_intra
    )
    print(
        f"DRS skip ratio (alpha_intra={args.alpha_intra:g}): "
        f"{report.before.skip_fraction:.1%} -> {report.after.skip_fraction:.1%} "
        f"({report.skip_fraction_delta:+.1%})"
    )
    print(
        f"breakpoints (alpha_inter={alpha_inter:.3g}): "
        f"{report.before.num_breakpoints} -> {report.after.num_breakpoints} "
        f"placements, {report.breakpoints_moved} moved"
    )
    if args.record:
        from repro.obs import RunRecord, write_jsonl

        trained = measure_training_memory(network, tokens, labels, config)
        memory["measured_saved_bytes"] = float(trained["measured_saved_bytes"])
        memory["measured_peak_bytes"] = float(trained["measured_peak_bytes"])
        record = RunRecord(
            label=f"calibrate-{app.name}",
            mode="train",
            spec="host",
            batch=int(tokens.shape[0]),
            seq_length=int(tokens.shape[1]),
            config={
                "policy": args.policy,
                "truncation": args.truncation,
                "optimizer": args.optimizer,
                "lr": args.lr,
                "steps": args.steps,
                "drift": args.drift,
                "loss_first": result.losses[0],
                "loss_last": result.losses[-1],
                "fingerprint_before": result.fingerprint_before,
                "fingerprint_after": result.fingerprint_after,
                "skip_fraction_before": report.before.skip_fraction,
                "skip_fraction_after": report.after.skip_fraction,
                "breakpoints_moved": report.breakpoints_moved,
            },
            timing={"train_wall_s": result.wall_s},
            memory=memory,
        )
        write_jsonl([record], args.record)
        print(f"wrote training record to {args.record}")
    if not result.weights_changed:
        print("repro: error: fine-tuning left the weights unchanged", file=sys.stderr)
        return 1
    return 0


def _cmd_trace_record(args) -> int:
    from repro.core.pipeline import OptimizedLSTM
    from repro.obs import Recorder, write_chrome_trace, write_jsonl

    mode = ExecutionMode(args.mode)
    print(f"Building {args.app} ...", file=sys.stderr)
    app = OptimizedLSTM.from_app(args.app, seed=args.seed)
    if mode not in (ExecutionMode.BASELINE, ExecutionMode.ZERO_PRUNE):
        app.calibrate()
    tokens = app.sample_tokens(args.sequences, seed=args.seed + 1)
    recorder = Recorder()
    if not args.no_baseline and mode is not ExecutionMode.BASELINE:
        app.run(tokens, mode=ExecutionMode.BASELINE, recorder=recorder)
    kwargs = {}
    if mode not in (ExecutionMode.BASELINE, ExecutionMode.ZERO_PRUNE):
        kwargs["threshold_index"] = args.threshold_set
    app.run(
        tokens, mode=mode, precision=args.precision, recorder=recorder, **kwargs
    )
    write_jsonl(recorder.records, args.out)
    print(f"wrote {len(recorder.records)} run record(s) to {args.out}")
    if args.chrome:
        write_chrome_trace(recorder.records, args.chrome)
        print(f"wrote Chrome trace to {args.chrome} (open in ui.perfetto.dev)")
    return 0


def _cmd_trace_summarize(args) -> int:
    from repro.obs import format_run_summary, read_jsonl

    records = read_jsonl(args.file)
    for index, record in enumerate(records):
        if index:
            print()
        print(format_run_summary(record))
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.obs import diff_runs, format_diff, read_jsonl

    def pick(path: str, index: int):
        records = read_jsonl(path)
        try:
            return records[index]
        except IndexError:
            raise ConfigurationError(
                f"{path} holds {len(records)} record(s); index {index} is out of range"
            ) from None

    base = pick(args.base, args.base_index)
    other = pick(args.other, args.other_index)
    print(format_diff(diff_runs(base, other)))
    return 0


def _cmd_trace(args) -> int:
    handlers = {
        "record": _cmd_trace_record,
        "summarize": _cmd_trace_summarize,
        "diff": _cmd_trace_diff,
    }
    return handlers[args.trace_command](args)


#: Subcommand dispatch table (names match the subparser names above).
_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "serve-bench": _cmd_serve_bench,
    "serve-stream": _cmd_serve_stream,
    "serve-zoo": _cmd_serve_zoo,
    "calibrate": _cmd_calibrate,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Returns 0 on success and 1 when the library raises a
    :class:`~repro.errors.ReproError` (reported on stderr, no traceback);
    argparse itself exits with status 2 on unknown commands/apps/modes.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
    try:
        return handler(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
