"""Offline operations of the inter/intra framework (Fig. 10, steps 1-4).

Given a network, a calibration token batch and a GPU spec, the tuner:

1. **Determines the MTS** by sweeping the tissue size on the GPU model
   (:func:`repro.core.tissue.calibrate_mts`).
2. **Finds the upper limit of** ``alpha_inter`` — the smallest relevance
   threshold that already drives the tissue count down to the minimum
   ``N_min = ceil(N_origin / MTS)`` (Eq. 7); pushing the threshold past
   this point only costs accuracy without saving further weight loads.
3. **Fits the predicted context links** (Eq. 6) from the distribution of
   links observed in an exact calibration run.
4. **Adjusts thresholds to the user-preferred accuracy** — exposed as
   :func:`accuracy_guided_index` over a measured accuracy curve (the AO
   selection of :mod:`repro.core.thresholds`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.breakpoints import divide_layer
from repro.core.context_prediction import ContextLinkPredictor, PredictedLink
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.thresholds import ThresholdSchedule, select_ao
from repro.core.tissue import align_tissues, calibrate_mts
from repro.errors import CalibrationError
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.nn.network import LSTMNetwork
from repro.nn.quantize import PRECISIONS, Precision

if TYPE_CHECKING:
    from repro.core.pipeline import OptimizedLSTM

#: Quantile grid searched for the alpha_inter upper limit.
_ALPHA_QUANTILES = np.linspace(0.02, 0.98, 33)

#: Largest meaningful near-zero threshold for the output gate: at 0.5 the
#: sigmoid midpoint itself would count as "near zero".
DEFAULT_ALPHA_INTRA_MAX: float = 0.5


@dataclass
class OfflineCalibration:
    """Everything the runtime needs, produced once per application."""

    mts: int
    alpha_inter_max: float
    alpha_intra_max: float
    predicted_links: list[PredictedLink]
    relevance_samples: list[np.ndarray]

    def schedule(self, count: int = 11) -> ThresholdSchedule:
        """The Fig. 19 threshold schedule for this application.

        ``alpha_intra`` steps linearly from 0 to its maximum;
        ``alpha_inter`` steps through relevance-*quantile* space so that set
        ``i`` breaks roughly ``i / (count - 1)`` of the links broken at the
        upper limit (see :meth:`ThresholdSchedule.from_values`).
        """
        pooled = np.sort(np.concatenate(self.relevance_samples))
        q_max = float(np.mean(pooled < self.alpha_inter_max))
        inter_values = [0.0]
        for i in range(1, count):
            if i == count - 1:
                inter_values.append(self.alpha_inter_max)
            else:
                # Quadratic spacing: the first sets should pick only the
                # clearly weak links (the low tail of S), leaving fine
                # resolution where the accuracy budget binds.
                q = q_max * (i / (count - 1)) ** 2
                inter_values.append(min(float(np.quantile(pooled, q)), self.alpha_inter_max))
        # Quadratic spacing for alpha_intra: the near-zero mass of trained
        # output gates sits at o ~ 0.01, so the interesting low end of the
        # threshold needs finer steps than the top.
        intra_values = [
            self.alpha_intra_max * (i / (count - 1)) ** 2 for i in range(count)
        ]
        return ThresholdSchedule.from_values(inter_values, intra_values)


def _mean_tissue_count(
    relevance_samples: list[np.ndarray], alpha: float, mts: int
) -> float:
    """Average tissues per layer at a given threshold (plan-only, no numerics)."""
    counts = []
    for s in relevance_samples:
        breaks = [int(t) for t in np.flatnonzero(s < alpha) if t >= 1]
        sublayers = divide_layer(s.shape[0], breaks)
        counts.append(len(align_tissues(sublayers, mts)))
    return float(np.mean(counts))


def find_alpha_inter_max(
    relevance_samples: list[np.ndarray], mts: int, tolerance: float = 1.05
) -> float:
    """Fig. 10, step 2: the smallest threshold reaching ``N_min`` tissues.

    Args:
        relevance_samples: Per-(sequence, layer) relevance arrays ``S``.
        mts: The calibrated maximum tissue size.
        tolerance: Accept a tissue count within this factor of ``N_min``.

    Returns:
        The chosen ``alpha_inter`` upper limit. If even breaking every link
        cannot reach ``N_min`` (short layers), returns the threshold with
        the lowest achievable count.
    """
    if not relevance_samples:
        raise CalibrationError("no relevance samples supplied")
    n_min = float(np.mean([-(-s.shape[0] // mts) for s in relevance_samples]))
    pooled = np.concatenate(relevance_samples)
    candidates = np.unique(np.quantile(pooled, _ALPHA_QUANTILES))
    best_alpha = float(candidates[-1]) * 1.001
    best_count = _mean_tissue_count(relevance_samples, best_alpha, mts)
    for alpha in candidates:
        count = _mean_tissue_count(relevance_samples, float(alpha), mts)
        if count <= n_min * tolerance:
            return float(alpha)
        if count < best_count:
            best_count = count
            best_alpha = float(alpha)
    return best_alpha


def collect_relevance_samples(
    network: LSTMNetwork, tokens: np.ndarray, spec: GPUSpec = TEGRA_X1
) -> list[np.ndarray]:
    """Relevance arrays ``S`` for every (sequence, layer) of a calibration
    batch, computed with an epsilon threshold (no links actually break)."""
    probe = LSTMExecutor(
        network,
        ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=1e-300, spec=spec),
    )
    result = probe.run_batch(np.asarray(tokens))
    samples = []
    for plan in result.plans:
        for record in plan.layers:
            if record.relevance is not None:
                samples.append(record.relevance)
    if not samples:
        raise CalibrationError("calibration run produced no relevance samples")
    return samples


def fit_predicted_links(
    network: LSTMNetwork, tokens: np.ndarray, spec: GPUSpec = TEGRA_X1
) -> list[PredictedLink]:
    """Fig. 10, step 4: Eq. 6 link predictors from an exact calibration run."""
    baseline = LSTMExecutor(
        network, ExecutionConfig(mode=ExecutionMode.BASELINE, spec=spec)
    )
    result = baseline.run_batch(np.asarray(tokens), collect_states=True)
    links = []
    for hs, cs in zip(result.layer_outputs, result.layer_states):
        predictor = ContextLinkPredictor(hs.shape[-1])
        for b in range(hs.shape[0]):
            predictor.observe(hs[b], cs[b])
        links.append(predictor.fit())
    return links


def calibrate_offline(
    network: LSTMNetwork,
    tokens: np.ndarray,
    spec: GPUSpec = TEGRA_X1,
    mts: int | None = None,
    alpha_intra_max: float = DEFAULT_ALPHA_INTRA_MAX,
) -> OfflineCalibration:
    """Run all offline operations (Fig. 10, steps 1-4) for one application."""
    hidden = network.config.hidden_size
    if mts is None:
        # The MTS is a property of the GPU and the layer width, not of any
        # particular sequence: probe with a fixed, amortization-friendly
        # length so short applications do not bias the knee (Fig. 10 (1)).
        mts = calibrate_mts(spec, hidden)
    relevance_samples = collect_relevance_samples(network, tokens, spec)
    alpha_max = find_alpha_inter_max(relevance_samples, mts)
    links = fit_predicted_links(network, tokens, spec)
    return OfflineCalibration(
        mts=mts,
        alpha_inter_max=alpha_max,
        alpha_intra_max=alpha_intra_max,
        predicted_links=links,
        relevance_samples=relevance_samples,
    )


@dataclass(frozen=True)
class CalibrationDrift:
    """How one calibration moved relative to another.

    Produced by :func:`compare_calibrations` for two calibrations of the
    *same application* (same batch, same GPU spec) taken before and after
    a weight update — e.g. a :func:`repro.nn.calibrate.fine_tune` run.
    Breakpoints are compared at the *before* calibration's
    ``alpha_inter_max`` so the threshold is held fixed and any movement is
    attributable to the weights alone.
    """

    alpha_inter_max_before: float
    alpha_inter_max_after: float
    breakpoints_before: tuple[tuple[int, ...], ...]
    breakpoints_after: tuple[tuple[int, ...], ...]
    relevance_mean_before: float
    relevance_mean_after: float

    @property
    def alpha_inter_max_delta(self) -> float:
        """Signed movement of the usable threshold ceiling."""
        return self.alpha_inter_max_after - self.alpha_inter_max_before

    @property
    def breakpoints_moved(self) -> int:
        """Placements that changed: symmetric-difference size summed over
        every (sequence, layer) relevance sample."""
        return sum(
            len(set(b) ^ set(a))
            for b, a in zip(self.breakpoints_before, self.breakpoints_after)
        )

    @property
    def shifted(self) -> bool:
        """Whether recalibration would produce a different plan."""
        return self.breakpoints_moved > 0 or self.alpha_inter_max_delta != 0.0


def _breakpoints_at(samples: Sequence[np.ndarray], alpha: float) -> tuple:
    """Per-sample breakpoint placements at a fixed relevance threshold."""
    return tuple(
        tuple(int(t) for t in np.flatnonzero(s < alpha) if t >= 1) for s in samples
    )


def compare_calibrations(
    before: OfflineCalibration, after: OfflineCalibration
) -> CalibrationDrift:
    """Diff two calibrations of the same application (see
    :class:`CalibrationDrift`); raises if the sample layouts differ."""
    if len(before.relevance_samples) != len(after.relevance_samples):
        raise CalibrationError(
            "calibrations are not comparable: "
            f"{len(before.relevance_samples)} vs {len(after.relevance_samples)} "
            "relevance samples (different batch or network depth)"
        )
    alpha = before.alpha_inter_max
    return CalibrationDrift(
        alpha_inter_max_before=before.alpha_inter_max,
        alpha_inter_max_after=after.alpha_inter_max,
        breakpoints_before=_breakpoints_at(before.relevance_samples, alpha),
        breakpoints_after=_breakpoints_at(after.relevance_samples, alpha),
        relevance_mean_before=float(
            np.mean([s.mean() for s in before.relevance_samples])
        ),
        relevance_mean_after=float(
            np.mean([s.mean() for s in after.relevance_samples])
        ),
    )


@dataclass(frozen=True)
class PrecisionSweepPoint:
    """One configuration of the joint (thresholds x precision) sweep.

    ``accuracy`` is agreement with the exact fp64 baseline on the same
    batch — the paper's Δ-accuracy metric, now charging quantization and
    skipping jointly. The byte counters come from the run's kernel trace,
    so ``traffic_reduction`` reflects skip x precision compounding.
    """

    threshold_index: int
    alpha_inter: float
    alpha_intra: float
    precision: str
    accuracy: float
    mean_time: float
    speedup: float
    weight_bytes_fp64: float
    weight_bytes_moved: float

    @property
    def traffic_reduction(self) -> float:
        """Weight-traffic reduction vs moving survivors at fp64."""
        if self.weight_bytes_moved <= 0.0:
            return 1.0
        return self.weight_bytes_fp64 / self.weight_bytes_moved


def sweep_precision_thresholds(
    app: "OptimizedLSTM",
    tokens: np.ndarray,
    mode: ExecutionMode = ExecutionMode.COMBINED,
    precisions: Iterable["Precision | str"] = PRECISIONS,
    threshold_indices: Iterable[int] | None = None,
    count: int = 11,
) -> list[PrecisionSweepPoint]:
    """Joint (``alpha_inter``, ``alpha_intra``, ``precision``) sweep.

    Extends the Fig. 19 threshold schedule with the precision axis: each
    threshold set of the calibrated schedule runs once per storage
    policy, and every point carries its accuracy delta vs the exact fp64
    baseline plus its measured weight-byte traffic. Feed the result to
    :func:`accuracy_guided_precision` for the step-3-style selection.

    Args:
        app: A calibrated :class:`~repro.core.pipeline.OptimizedLSTM`.
        tokens: Evaluation batch ``(B, T)``.
        mode: Scheme swept (INTER / INTRA / COMBINED).
        precisions: Storage policies to cross with the schedule.
        threshold_indices: Schedule sets to run; all ``count`` by default.
        count: Schedule length when ``threshold_indices`` is ``None``.
    """
    from repro.obs import Recorder

    baseline = app.run(tokens, mode=ExecutionMode.BASELINE)
    if threshold_indices is None:
        threshold_indices = range(count)
    indices = list(threshold_indices)
    points: list[PrecisionSweepPoint] = []
    for precision in precisions:
        tag = Precision.parse(precision).tag
        for index in indices:
            recorder = Recorder()
            outcome = app.run(
                tokens,
                mode=mode,
                threshold_index=index,
                precision=tag,
                recorder=recorder,
            )
            record = recorder.last()
            totals = record.weight_bytes_totals()
            points.append(
                PrecisionSweepPoint(
                    threshold_index=index,
                    alpha_inter=float(record.config["alpha_inter"]),
                    alpha_intra=float(record.config["alpha_intra"]),
                    precision=tag,
                    accuracy=outcome.agreement_with(baseline),
                    mean_time=outcome.mean_time,
                    speedup=outcome.speedup_vs(baseline),
                    weight_bytes_fp64=totals["fp64"],
                    weight_bytes_moved=totals["moved"],
                )
            )
    return points


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal operating point of the joint sweep.

    The online UO control loop (:mod:`repro.runtime.controller`) walks a
    list of these, ordered most-accurate first, stepping toward the fast
    end under latency pressure and back under accuracy pressure.
    """

    alpha_inter: float
    alpha_intra: float
    precision: str
    accuracy: float
    mean_time: float
    weight_bytes_moved: float
    threshold_index: int

    def as_dict(self) -> dict:
        """JSON form (the serve-zoo CLI and bench reports embed it)."""
        return {
            "alpha_inter": self.alpha_inter,
            "alpha_intra": self.alpha_intra,
            "precision": self.precision,
            "accuracy": self.accuracy,
            "mean_time": self.mean_time,
            "weight_bytes_moved": self.weight_bytes_moved,
            "threshold_index": self.threshold_index,
        }


def export_frontier(points: Sequence[PrecisionSweepPoint]) -> list[FrontierPoint]:
    """Pareto frontier of a joint sweep, ordered most-accurate first.

    A point survives only if no other point is at least as accurate *and*
    strictly faster — the dominated interior of the (accuracy, latency)
    cloud is useless to a controller, which needs every step along the
    list to actually trade accuracy for speed. Ties in both coordinates
    keep the first occurrence. The result is strictly decreasing in
    accuracy and strictly decreasing in ``mean_time``, so index ``i + 1``
    is always faster and never more accurate than index ``i``.
    """
    if not points:
        raise CalibrationError("cannot export a frontier from an empty sweep")
    ordered = sorted(points, key=lambda p: (-p.accuracy, p.mean_time))
    frontier: list[FrontierPoint] = []
    best_time = float("inf")
    for point in ordered:
        if point.mean_time >= best_time:
            continue  # dominated: something at least as accurate is faster
        best_time = point.mean_time
        frontier.append(
            FrontierPoint(
                alpha_inter=point.alpha_inter,
                alpha_intra=point.alpha_intra,
                precision=point.precision,
                accuracy=point.accuracy,
                mean_time=point.mean_time,
                weight_bytes_moved=point.weight_bytes_moved,
                threshold_index=point.threshold_index,
            )
        )
    return frontier


def accuracy_guided_precision(
    points: Sequence[PrecisionSweepPoint], target_accuracy: float
) -> PrecisionSweepPoint:
    """Pick the cheapest sweep point still meeting the accuracy target.

    Mirrors :func:`accuracy_guided_index` on the joint grid: among the
    points whose agreement with the fp64 baseline meets
    ``target_accuracy``, choose the one that moves the fewest weight
    bytes (precision and skipping compound in that metric). If no point
    qualifies, fall back to the most accurate one.
    """
    if not points:
        raise CalibrationError("precision sweep produced no points")
    eligible = [p for p in points if p.accuracy >= target_accuracy]
    if not eligible:
        return max(points, key=lambda p: (p.accuracy, p.traffic_reduction))
    return min(eligible, key=lambda p: (p.weight_bytes_moved, -p.accuracy))


def accuracy_guided_index(
    accuracies: np.ndarray, target_accuracy: float
) -> int:
    """Fig. 10, step 3: per-application threshold adjustment.

    A thin, explicitly named wrapper over the AO selection — given the
    measured accuracy per threshold set, choose the most aggressive set
    still meeting the user-preferred accuracy.
    """
    return select_ao(accuracies, target_accuracy)
