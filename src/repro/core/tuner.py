"""Offline operations of the inter/intra framework (Fig. 10, steps 1-4).

Given a network, a calibration token batch and a GPU spec, the tuner:

1. **Determines the MTS** by sweeping the tissue size on the GPU model
   (:func:`repro.core.tissue.calibrate_mts`).
2. **Finds the upper limit of** ``alpha_inter`` — the smallest relevance
   threshold that already drives the tissue count down to the minimum
   ``N_min = ceil(N_origin / MTS)`` (Eq. 7); pushing the threshold past
   this point only costs accuracy without saving further weight loads.
3. **Fits the predicted context links** (Eq. 6) from the distribution of
   links observed in an exact calibration run.
4. **Adjusts thresholds to the user-preferred accuracy** — exposed as
   :func:`accuracy_guided_index` over a measured accuracy curve (the AO
   selection of :mod:`repro.core.thresholds`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.breakpoints import divide_layer
from repro.core.context_prediction import ContextLinkPredictor, PredictedLink
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.thresholds import ThresholdSchedule, select_ao
from repro.core.tissue import align_tissues, calibrate_mts
from repro.errors import CalibrationError
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.nn.network import LSTMNetwork

#: Quantile grid searched for the alpha_inter upper limit.
_ALPHA_QUANTILES = np.linspace(0.02, 0.98, 33)

#: Largest meaningful near-zero threshold for the output gate: at 0.5 the
#: sigmoid midpoint itself would count as "near zero".
DEFAULT_ALPHA_INTRA_MAX: float = 0.5


@dataclass
class OfflineCalibration:
    """Everything the runtime needs, produced once per application."""

    mts: int
    alpha_inter_max: float
    alpha_intra_max: float
    predicted_links: list[PredictedLink]
    relevance_samples: list[np.ndarray]

    def schedule(self, count: int = 11) -> ThresholdSchedule:
        """The Fig. 19 threshold schedule for this application.

        ``alpha_intra`` steps linearly from 0 to its maximum;
        ``alpha_inter`` steps through relevance-*quantile* space so that set
        ``i`` breaks roughly ``i / (count - 1)`` of the links broken at the
        upper limit (see :meth:`ThresholdSchedule.from_values`).
        """
        pooled = np.sort(np.concatenate(self.relevance_samples))
        q_max = float(np.mean(pooled < self.alpha_inter_max))
        inter_values = [0.0]
        for i in range(1, count):
            if i == count - 1:
                inter_values.append(self.alpha_inter_max)
            else:
                # Quadratic spacing: the first sets should pick only the
                # clearly weak links (the low tail of S), leaving fine
                # resolution where the accuracy budget binds.
                q = q_max * (i / (count - 1)) ** 2
                inter_values.append(min(float(np.quantile(pooled, q)), self.alpha_inter_max))
        # Quadratic spacing for alpha_intra: the near-zero mass of trained
        # output gates sits at o ~ 0.01, so the interesting low end of the
        # threshold needs finer steps than the top.
        intra_values = [
            self.alpha_intra_max * (i / (count - 1)) ** 2 for i in range(count)
        ]
        return ThresholdSchedule.from_values(inter_values, intra_values)


def _mean_tissue_count(
    relevance_samples: list[np.ndarray], alpha: float, mts: int
) -> float:
    """Average tissues per layer at a given threshold (plan-only, no numerics)."""
    counts = []
    for s in relevance_samples:
        breaks = [int(t) for t in np.flatnonzero(s < alpha) if t >= 1]
        sublayers = divide_layer(s.shape[0], breaks)
        counts.append(len(align_tissues(sublayers, mts)))
    return float(np.mean(counts))


def find_alpha_inter_max(
    relevance_samples: list[np.ndarray], mts: int, tolerance: float = 1.05
) -> float:
    """Fig. 10, step 2: the smallest threshold reaching ``N_min`` tissues.

    Args:
        relevance_samples: Per-(sequence, layer) relevance arrays ``S``.
        mts: The calibrated maximum tissue size.
        tolerance: Accept a tissue count within this factor of ``N_min``.

    Returns:
        The chosen ``alpha_inter`` upper limit. If even breaking every link
        cannot reach ``N_min`` (short layers), returns the threshold with
        the lowest achievable count.
    """
    if not relevance_samples:
        raise CalibrationError("no relevance samples supplied")
    n_min = float(np.mean([-(-s.shape[0] // mts) for s in relevance_samples]))
    pooled = np.concatenate(relevance_samples)
    candidates = np.unique(np.quantile(pooled, _ALPHA_QUANTILES))
    best_alpha = float(candidates[-1]) * 1.001
    best_count = _mean_tissue_count(relevance_samples, best_alpha, mts)
    for alpha in candidates:
        count = _mean_tissue_count(relevance_samples, float(alpha), mts)
        if count <= n_min * tolerance:
            return float(alpha)
        if count < best_count:
            best_count = count
            best_alpha = float(alpha)
    return best_alpha


def collect_relevance_samples(
    network: LSTMNetwork, tokens: np.ndarray, spec: GPUSpec = TEGRA_X1
) -> list[np.ndarray]:
    """Relevance arrays ``S`` for every (sequence, layer) of a calibration
    batch, computed with an epsilon threshold (no links actually break)."""
    probe = LSTMExecutor(
        network,
        ExecutionConfig(mode=ExecutionMode.INTER, alpha_inter=1e-300, spec=spec),
    )
    result = probe.run_batch(np.asarray(tokens))
    samples = []
    for plan in result.plans:
        for record in plan.layers:
            if record.relevance is not None:
                samples.append(record.relevance)
    if not samples:
        raise CalibrationError("calibration run produced no relevance samples")
    return samples


def fit_predicted_links(
    network: LSTMNetwork, tokens: np.ndarray, spec: GPUSpec = TEGRA_X1
) -> list[PredictedLink]:
    """Fig. 10, step 4: Eq. 6 link predictors from an exact calibration run."""
    baseline = LSTMExecutor(
        network, ExecutionConfig(mode=ExecutionMode.BASELINE, spec=spec)
    )
    result = baseline.run_batch(np.asarray(tokens), collect_states=True)
    links = []
    for hs, cs in zip(result.layer_outputs, result.layer_states):
        predictor = ContextLinkPredictor(hs.shape[-1])
        for b in range(hs.shape[0]):
            predictor.observe(hs[b], cs[b])
        links.append(predictor.fit())
    return links


def calibrate_offline(
    network: LSTMNetwork,
    tokens: np.ndarray,
    spec: GPUSpec = TEGRA_X1,
    mts: int | None = None,
    alpha_intra_max: float = DEFAULT_ALPHA_INTRA_MAX,
) -> OfflineCalibration:
    """Run all offline operations (Fig. 10, steps 1-4) for one application."""
    hidden = network.config.hidden_size
    if mts is None:
        # The MTS is a property of the GPU and the layer width, not of any
        # particular sequence: probe with a fixed, amortization-friendly
        # length so short applications do not bias the knee (Fig. 10 (1)).
        mts = calibrate_mts(spec, hidden)
    relevance_samples = collect_relevance_samples(network, tokens, spec)
    alpha_max = find_alpha_inter_max(relevance_samples, mts)
    links = fit_predicted_links(network, tokens, spec)
    return OfflineCalibration(
        mts=mts,
        alpha_inter_max=alpha_max,
        alpha_intra_max=alpha_intra_max,
        predicted_links=links,
        relevance_samples=relevance_samples,
    )


def accuracy_guided_index(
    accuracies: np.ndarray, target_accuracy: float
) -> int:
    """Fig. 10, step 3: per-application threshold adjustment.

    A thin, explicitly named wrapper over the AO selection — given the
    measured accuracy per threshold set, choose the most aggressive set
    still meeting the user-preferred accuracy.
    """
    return select_ao(accuracies, target_accuracy)
