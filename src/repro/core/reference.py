"""The seed executor, preserved verbatim as the equivalence oracle.

:class:`ReferenceExecutor` is the original (pre-batching) implementation of
:class:`repro.core.executor.LSTMExecutor`: per-gate recurrent GEMMs in the
stepwise modes and a per-sequence tissue-ordered walk in the combined mode.
It exists for two reasons:

* **Equivalence testing** — the batched executor must produce *bit-identical*
  ``h_t`` / ``c_t`` trajectories and identical :class:`~repro.core.plan.
  SequencePlan` records (``tests/test_executor_equivalence.py`` asserts
  this property across all five modes with hypothesis).
* **Benchmark regression gating** — ``benchmarks/bench_executor_regression.py``
  times the batched executor against this per-sequence walk on a fixed
  workload and CI fails if the batched path stops being faster.

The arithmetic in this module is intentionally frozen: do not "optimize" it.
Any numerical change here silently weakens the equivalence guarantee.

Two disclosed amendments since the seed, both of the same species — the
oracle's bits must not depend on how a workload happens to be delivered:

1. The stepwise recurrent products and the pooled classifier head are
   *lifted* to stacked per-row GEMVs (:func:`repro.core.executor.
   _row_gemv`). The seed's 2-D ``h @ U_g.T`` dispatched a GEMM at
   ``B > 1`` whose low bits drifted from the GEMV a solo sequence runs —
   so the oracle's own batched output depended on how sequences were
   grouped (the latent plan-float inheritance disclosed in PR 3). The
   lift dispatches the identical GEMV per row at every batch size,
   making the oracle equal to its own per-sequence walk.
2. The input projections and the per-timestep head are lifted the same
   way (:func:`repro.core.executor._row_proj`). The seed's
   ``(T, E) @ (E, H)`` GEMM made row ``t``'s bits depend on ``T``
   through OpenBLAS's M-blocking (measured: 30-70 % of chunked-vs-full
   products differ in the last bit), so the oracle's per-timestep bits
   depended on the sequence *length* — the same prefix of tokens scored
   differently in a length-10 and a length-12 session. The lift makes
   each timestep's projection a pure function of its token, which is
   what lets the streaming runtime replay a session in arbitrary chunks
   and still match this oracle bit for bit (PR 6).

Solo sequences (``B == 1``) are otherwise bit-identical to the seed
arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.core.breakpoints import divide_layer, find_breakpoints
from repro.core.context_prediction import PredictedLink
from repro.core.executor import (
    ExecutionConfig,
    ExecutionMode,
    ExecutionResult,
    _row_gemv,
    _row_proj,
    _warp_skip_fractions,
)
from repro.core.plan import LayerPlanRecord, SequencePlan, TissueRecord
from repro.core.relevance import (
    exact_relevance_values,
    recurrent_row_ranges,
    relevance_values,
)
from repro.core.tissue import align_tissues
from repro.core.trace_builder import build_kernel_trace
from repro.errors import ConfigurationError, ShapeError
from repro.nn.activations import sigmoid, tanh
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights
from repro.nn.network import LSTMNetwork
from repro.nn.pruning import prune_cell_weights


class ReferenceExecutor:
    """The seed per-gate, per-sequence executor (see module docstring)."""

    def __init__(
        self,
        network: LSTMNetwork,
        config: ExecutionConfig,
        predicted_links: list[PredictedLink] | None = None,
    ) -> None:
        self.network = network
        self.config = config
        hidden = network.config.hidden_size
        if predicted_links is None:
            predicted_links = [PredictedLink.zeros(hidden) for _ in network.layers]
        if len(predicted_links) != len(network.layers):
            raise ConfigurationError(
                f"need one predicted link per layer "
                f"({len(network.layers)}), got {len(predicted_links)}"
            )
        self.predicted_links = predicted_links
        self._row_ranges = [recurrent_row_ranges(layer.weights) for layer in network.layers]
        self._weights: list[LSTMCellWeights] = [layer.weights for layer in network.layers]
        self._collect_states = False
        self._last_states: np.ndarray | None = None
        self.pruning_kept_fraction: float | None = None
        if config.mode is ExecutionMode.ZERO_PRUNE:
            pruned = []
            kept = []
            for layer in network.layers:
                new_weights, aggregate = prune_cell_weights(
                    layer.weights, config.zero_prune_fraction
                )
                pruned.append(new_weights)
                kept.append(aggregate.kept_fraction)
            self._weights = pruned
            self.pruning_kept_fraction = float(np.mean(kept))

    # ------------------------------------------------------------------ API

    def run_batch(self, tokens: np.ndarray, collect_states: bool = False) -> ExecutionResult:
        """Execute a batch of token sequences, shape ``(B, T)``."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"tokens must be (B, T), got shape {tokens.shape}")
        batch, seq_len = tokens.shape
        xs = self.network.embedding[tokens]  # (B, T, E)

        plan_layers: list[list[LayerPlanRecord]] = [[] for _ in range(batch)]
        layer_outputs: list[np.ndarray] = []
        layer_states: list[np.ndarray] = []
        self._collect_states = collect_states
        for layer_index, weights in enumerate(self._weights):
            xs, records = self._run_layer(layer_index, weights, xs)
            layer_outputs.append(xs)
            if collect_states and self._last_states is not None:
                layer_states.append(self._last_states)
            for b in range(batch):
                plan_layers[b].append(records[b])

        top = xs if self.network.per_timestep_head else self.network.pool_top(xs)
        if top.ndim == 2:
            # Pooled readout: per-row GEMV lift, batch-composition-invariant
            # (see the module docstring's disclosed amendment).
            logits = self.network.head_logits(top[:, None, :])[:, 0]
        else:
            # Per-timestep heads take the same per-row lift (amendment 2).
            logits = self.network.head_logits(top[..., None, :])[..., 0, :]
        plans = [SequencePlan(layers=plan_layers[b]) for b in range(batch)]
        return ExecutionResult(
            logits=logits,
            plans=plans,
            layer_outputs=layer_outputs,
            layer_states=layer_states,
        )

    def kernel_trace(self, plan: SequencePlan):
        """GPU kernel trace of one executed sequence (for the simulator)."""
        cfg = self.config
        return build_kernel_trace(
            plan,
            cfg.spec,
            inter=cfg.inter_active,
            intra=cfg.intra_active,
            drs_style=cfg.drs_style,
            zero_prune_kept=(
                self.pruning_kept_fraction
                if cfg.mode is ExecutionMode.ZERO_PRUNE
                else None
            ),
        )

    # ------------------------------------------------------------ internals

    def _run_layer(
        self, layer_index: int, weights: LSTMCellWeights, xs: np.ndarray
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        # Per-row GEMV lift (disclosed amendment 2): each timestep's
        # projection is a pure function of its token, never of T.
        proj = {g: _row_proj(xs, weights.gate_w(g).T) for g in GATE_ORDER}  # (B, T, H)
        if self.config.mode is ExecutionMode.COMBINED:
            return self._run_layer_combined(layer_index, weights, proj)
        return self._run_layer_stepwise(layer_index, weights, proj)

    def _relevance(self, layer_index: int, weights, proj_b: dict[str, np.ndarray]):
        fn = exact_relevance_values if self.config.use_exact_relevance else relevance_values
        return fn(weights, proj_b, row_ranges=self._row_ranges[layer_index])

    def _plan_inter(
        self, layer_index: int, weights: LSTMCellWeights, proj: dict[str, np.ndarray]
    ) -> tuple[list[np.ndarray], list[list], list[list]]:
        """Per-sequence relevance, breakpoints, sub-layers and tissues."""
        batch, seq_len, _ = proj["f"].shape
        relevances, sublayers_all, tissues_all = [], [], []
        for b in range(batch):
            proj_b = {g: proj[g][b] for g in GATE_ORDER}
            s = self._relevance(layer_index, weights, proj_b)
            breaks = find_breakpoints(s, self.config.alpha_inter)
            sublayers = divide_layer(seq_len, breaks)
            tissues = align_tissues(sublayers, self.config.mts)
            relevances.append(s)
            sublayers_all.append(sublayers)
            tissues_all.append(tissues)
        return relevances, sublayers_all, tissues_all

    def _run_layer_stepwise(
        self, layer_index: int, weights: LSTMCellWeights, proj: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Batched timestep loop with per-gate GEMMs (the seed arithmetic)."""
        cfg = self.config
        batch, seq_len, hidden = proj["f"].shape
        link = self.predicted_links[layer_index]

        break_mask = np.zeros((batch, seq_len), dtype=bool)
        relevances: list[np.ndarray | None] = [None] * batch
        sublayers_all: list[list] = [[] for _ in range(batch)]
        tissues_all: list[list] = [[] for _ in range(batch)]
        if cfg.inter_active:
            rel, subs, tis = self._plan_inter(layer_index, weights, proj)
            for b in range(batch):
                relevances[b] = rel[b]
                sublayers_all[b] = subs[b]
                tissues_all[b] = tis[b]
                for sub in subs[b][1:]:
                    break_mask[b, sub.start] = True

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden)) if self._collect_states else None
        skip_fracs = np.zeros((batch, seq_len))
        warp_fracs = np.zeros((batch, seq_len))

        for t in range(seq_len):
            if cfg.inter_active and break_mask[:, t].any():
                reset = break_mask[:, t][:, None]
                h = np.where(reset, link.h_bar[None, :], h)
                c = np.where(reset, link.c_bar[None, :], c)

            o = sigmoid(proj["o"][:, t] + _row_gemv(h, weights.u_o.T) + weights.b_o)
            f = sigmoid(proj["f"][:, t] + _row_gemv(h, weights.u_f.T) + weights.b_f)
            i = sigmoid(proj["i"][:, t] + _row_gemv(h, weights.u_i.T) + weights.b_i)
            g = tanh(proj["c"][:, t] + _row_gemv(h, weights.u_c.T) + weights.b_c)
            c = f * c + i * g
            if cfg.intra_active and cfg.alpha_intra > 0.0:
                masks = o < cfg.alpha_intra  # (B, H)
                c = np.where(masks, 0.0, c)
                skip_fracs[:, t] = masks.mean(axis=1)
                warp_fracs[:, t] = _warp_skip_fractions(masks)
            h = o * tanh(c)
            hs[:, t] = h
            if cs is not None:
                cs[:, t] = c
        self._last_states = cs

        records = []
        for b in range(batch):
            records.append(
                self._stepwise_record(
                    layer_index,
                    weights,
                    seq_len,
                    sublayers_all[b],
                    tissues_all[b],
                    relevances[b],
                    skip_fracs[b],
                    warp_fracs[b],
                )
            )
        return hs, records

    def _stepwise_record(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        seq_len: int,
        sublayers: list,
        tissues: list,
        relevance: np.ndarray | None,
        skip_fracs: np.ndarray,
        warp_fracs: np.ndarray,
    ) -> LayerPlanRecord:
        if self.config.inter_active:
            tissue_records = []
            for tissue in tissues:
                # Timestamp-resolved skip stats; the per-tissue shared-load
                # fraction is the mean of the fused cells' fractions here
                # because stepwise modes never intersect masks (INTER has
                # alpha_intra == 0, so the fractions are all zero anyway).
                ts = tissue.timestamps()
                tissue_records.append(
                    TissueRecord(
                        cells=list(tissue.cells),
                        skip_fraction=float(np.mean([skip_fracs[t] for t in ts])),
                        warp_skip_fraction=float(np.mean([warp_fracs[t] for t in ts])),
                    )
                )
            breakpoints = [sub.start for sub in sublayers[1:]]
            sublayer_lengths = [sub.length for sub in sublayers]
        else:
            tissue_records = [
                TissueRecord(
                    cells=[(0, t)],
                    skip_fraction=float(skip_fracs[t]),
                    warp_skip_fraction=float(warp_fracs[t]),
                )
                for t in range(seq_len)
            ]
            breakpoints = []
            sublayer_lengths = [seq_len]
        return LayerPlanRecord(
            layer_index=layer_index,
            hidden_size=weights.hidden_size,
            input_size=weights.input_size,
            seq_length=seq_len,
            breakpoints=breakpoints,
            sublayer_lengths=sublayer_lengths,
            tissues=tissue_records,
            relevance=relevance,
        )

    def _run_layer_combined(
        self, layer_index: int, weights: LSTMCellWeights, proj: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Per-sequence tissue-ordered walk (inter + intra together)."""
        cfg = self.config
        batch, seq_len, hidden = proj["f"].shape
        link = self.predicted_links[layer_index]
        self._last_states = None  # combined mode does not collect states
        relevances, sublayers_all, tissues_all = self._plan_inter(layer_index, weights, proj)

        hs = np.empty((batch, seq_len, hidden))
        records = []
        for b in range(batch):
            sublayers = sublayers_all[b]
            tissues = tissues_all[b]
            h_state = np.zeros((len(sublayers), hidden))
            c_state = np.zeros((len(sublayers), hidden))
            for sub_idx in range(1, len(sublayers)):
                h_state[sub_idx] = link.h_bar
                c_state[sub_idx] = link.c_bar

            tissue_records = []
            for tissue in tissues:
                subs = [s for s, _ in tissue.cells]
                ts = [t for _, t in tissue.cells]
                h_prev = h_state[subs]
                c_prev = c_state[subs]
                x_o = proj["o"][b, ts]
                o = sigmoid(x_o + h_prev @ weights.u_o.T + weights.b_o)
                skip_frac = 0.0
                warp_frac = 0.0
                f = sigmoid(proj["f"][b, ts] + h_prev @ weights.u_f.T + weights.b_f)
                i = sigmoid(proj["i"][b, ts] + h_prev @ weights.u_i.T + weights.b_i)
                g = tanh(proj["c"][b, ts] + h_prev @ weights.u_c.T + weights.b_c)
                c_new = f * c_prev + i * g
                if cfg.alpha_intra > 0.0:
                    masks = o < cfg.alpha_intra  # (k, H)
                    shared = masks.all(axis=0)  # the tissue's intersection
                    c_new = np.where(shared[None, :], 0.0, c_new)
                    skip_frac = float(shared.mean())
                    warp_frac = float(_warp_skip_fractions(shared[None, :])[0])
                h_new = o * tanh(c_new)
                h_state[subs] = h_new
                c_state[subs] = c_new
                hs[b, ts] = h_new
                tissue_records.append(
                    TissueRecord(
                        cells=list(tissue.cells),
                        skip_fraction=skip_frac,
                        warp_skip_fraction=warp_frac,
                    )
                )
            records.append(
                LayerPlanRecord(
                    layer_index=layer_index,
                    hidden_size=hidden,
                    input_size=weights.input_size,
                    seq_length=seq_len,
                    breakpoints=[sub.start for sub in sublayers[1:]],
                    sublayer_lengths=[sub.length for sub in sublayers],
                    tissues=tissue_records,
                    relevance=relevances[b],
                )
            )
        return hs, records
