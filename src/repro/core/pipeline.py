"""The top-level public API: :class:`OptimizedLSTM`.

Typical use::

    from repro import OptimizedLSTM, ExecutionMode

    app = OptimizedLSTM.from_app("BABI", seed=0)
    app.calibrate(num_sequences=16)                  # offline (Fig. 10)
    base = app.run(tokens, mode=ExecutionMode.BASELINE)
    fast = app.run(tokens, mode=ExecutionMode.COMBINED, threshold_index=4)
    print(fast.speedup_vs(base), fast.agreement_with(base))

``run`` executes the exact numerics of the chosen scheme *and* replays the
recorded plan on the GPU timing model, so one call yields predictions,
simulated latency, and simulated whole-system energy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.config import AppConfig, get_app
from repro.core.executor import (
    ExecutionConfig,
    ExecutionMode,
    ExecutionResult,
    LSTMExecutor,
)
from repro.core.plan import PlanCache
from repro.core.program import ProgramCache
from repro.core.tuner import OfflineCalibration, calibrate_offline
from repro.errors import CalibrationError, ConfigurationError
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.gpu.trace import TraceSummary
from repro.nn.model_zoo import build_calibrated_network
from repro.nn.network import LSTMNetwork
from repro.nn.quantize import Precision

if TYPE_CHECKING:
    from repro.obs.recorder import Recorder


@dataclass
class InferenceOutcome:
    """Numerics plus simulated platform behaviour of one batched inference."""

    mode: ExecutionMode
    logits: np.ndarray
    predictions: np.ndarray
    times: np.ndarray
    energies: np.ndarray
    mean_tissue_size: float
    mean_skip_fraction: float
    mean_breakpoints: float
    traces: list[TraceSummary] = field(default_factory=list)
    result: ExecutionResult | None = None

    @property
    def mean_time(self) -> float:
        """Mean simulated latency per sequence (s)."""
        return float(self.times.mean())

    @property
    def mean_energy(self) -> float:
        """Mean simulated whole-system energy per sequence (J)."""
        return float(self.energies.mean())

    def speedup_vs(self, baseline: "InferenceOutcome") -> float:
        """Latency speedup relative to another outcome."""
        return baseline.mean_time / self.mean_time

    def energy_saving_vs(self, baseline: "InferenceOutcome") -> float:
        """Fractional energy saving relative to another outcome."""
        return 1.0 - self.mean_energy / baseline.mean_energy

    def agreement_with(self, baseline: "InferenceOutcome") -> float:
        """Fraction of matching predictions (per token for LM/MT heads).

        This is the paper's Δ-accuracy metric: the baseline is exact, so
        ``1 - agreement`` is the accuracy loss of the approximation.
        """
        if self.predictions.shape != baseline.predictions.shape:
            raise ConfigurationError("outcomes were produced on different batches")
        return float(np.mean(self.predictions == baseline.predictions))


class OptimizedLSTM:
    """Memory-friendly LSTM inference on a simulated mobile GPU."""

    def __init__(
        self,
        network: LSTMNetwork,
        spec: GPUSpec = TEGRA_X1,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.network = network
        self.spec = spec
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        # Compiled executor programs persist across run() calls (each call
        # builds a fresh LSTMExecutor, so without this, threshold sweeps
        # would recompile identical programs every run).
        self.program_cache = ProgramCache()
        self.calibration: OfflineCalibration | None = None
        self._calibration_tokens: np.ndarray | None = None
        self._rng = np.random.default_rng(0xA11CE)

    @classmethod
    def from_app(
        cls,
        app: str | AppConfig,
        seed: int = 0,
        spec: GPUSpec = TEGRA_X1,
        plan_cache: PlanCache | None = None,
    ) -> "OptimizedLSTM":
        """Build a Table II application from the calibrated model zoo."""
        app_config = get_app(app) if isinstance(app, str) else app
        network = build_calibrated_network(app_config, seed=seed)
        instance = cls(network, spec=spec, plan_cache=plan_cache)
        instance._app_config = app_config
        return instance

    def sample_tokens(self, num_sequences: int, seed: int | None = None) -> np.ndarray:
        """Draw a synthetic token batch matching the model geometry."""
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        return rng.integers(
            0,
            self.network.vocab_size,
            size=(num_sequences, self.network.config.seq_length),
        )

    def calibrate(
        self,
        tokens: np.ndarray | None = None,
        num_sequences: int = 8,
        mts: int | None = None,
    ) -> OfflineCalibration:
        """Run the offline operations of Fig. 10 and cache the result."""
        if tokens is None:
            tokens = self.sample_tokens(num_sequences, seed=0xCA11B)
        self._calibration_tokens = np.asarray(tokens)
        self.calibration = calibrate_offline(
            self.network, self._calibration_tokens, spec=self.spec, mts=mts
        )
        return self.calibration

    def _require_calibration(self, mode: ExecutionMode | None = None) -> OfflineCalibration:
        if self.calibration is None:
            wanted = f" in {mode.value.upper()} mode" if mode is not None else ""
            raise CalibrationError(
                f"running{wanted} needs the offline calibration (thresholds, MTS, "
                "predicted context links) — call calibrate() once after "
                "construction, e.g. app.calibrate(num_sequences=16)"
            )
        return self.calibration

    def execution_config(
        self,
        mode: ExecutionMode,
        alpha_inter: float | None = None,
        alpha_intra: float | None = None,
        threshold_index: int | None = None,
        drs_style: str = "hardware",
        zero_prune_fraction: float = 0.37,
        precision: "Precision | str" = "fp64",
        backend: str = "numpy",
        threads: int = 1,
    ) -> ExecutionConfig:
        """Resolve thresholds (explicit, by schedule index, or maxima)."""
        precision = Precision.parse(precision)
        if mode is ExecutionMode.BASELINE:
            return ExecutionConfig(
                mode=mode, spec=self.spec, precision=precision, backend=backend,
                threads=threads,
            )
        if mode is ExecutionMode.ZERO_PRUNE:
            return ExecutionConfig(
                mode=mode,
                spec=self.spec,
                zero_prune_fraction=zero_prune_fraction,
                precision=precision,
                backend=backend,
                threads=threads,
            )
        calibration = self._require_calibration(mode)
        if threshold_index is not None:
            schedule = calibration.schedule()
            if not 0 <= threshold_index < len(schedule):
                raise ConfigurationError(
                    f"threshold_index {threshold_index} out of range "
                    f"(schedule has sets 0..{len(schedule) - 1})"
                )
            ts = schedule[threshold_index]
            alpha_inter = ts.alpha_inter if alpha_inter is None else alpha_inter
            alpha_intra = ts.alpha_intra if alpha_intra is None else alpha_intra
        if alpha_inter is None:
            alpha_inter = calibration.alpha_inter_max
        if alpha_intra is None:
            alpha_intra = calibration.alpha_intra_max
        if mode is ExecutionMode.INTER:
            alpha_intra = 0.0
        if mode is ExecutionMode.INTRA:
            alpha_inter = 0.0
        return ExecutionConfig(
            mode=mode,
            alpha_inter=alpha_inter,
            alpha_intra=alpha_intra,
            mts=calibration.mts,
            drs_style=drs_style,
            spec=self.spec,
            precision=precision,
            backend=backend,
            threads=threads,
        )

    def run(
        self,
        tokens: np.ndarray,
        mode: ExecutionMode = ExecutionMode.COMBINED,
        alpha_inter: float | None = None,
        alpha_intra: float | None = None,
        threshold_index: int | None = None,
        drs_style: str = "hardware",
        zero_prune_fraction: float = 0.37,
        precision: "Precision | str" = "fp64",
        backend: str = "numpy",
        threads: int = 1,
        keep_traces: bool = False,
        keep_result: bool = False,
        recorder: "Recorder | None" = None,
        label: str | None = None,
    ) -> InferenceOutcome:
        """Execute a batch under one scheme and simulate it on the GPU model.

        Args:
            precision: Weight-storage policy (``"fp64"`` / ``"fp16"`` /
                ``"int8"`` or a :class:`~repro.nn.quantize.Precision`).
                Quantized runs compute on dequantized weights and report
                quantized weight traffic in trace records.
            recorder: Optional :class:`~repro.obs.recorder.Recorder`; when
                enabled, the run emits a full :class:`~repro.obs.record.
                RunRecord` — per-kernel launches with stall attribution,
                per-layer structural counters, the plan-cache hit/miss
                delta, and wall-clock vs simulated time. Recording never
                changes the numerics: the executor runs identically with
                and without it.
            label: Free-form label stamped on the run record (defaults to
                the application name when built via :meth:`from_app`).
        """
        wall_start = time.perf_counter()
        config = self.execution_config(
            mode,
            alpha_inter=alpha_inter,
            alpha_intra=alpha_intra,
            threshold_index=threshold_index,
            drs_style=drs_style,
            zero_prune_fraction=zero_prune_fraction,
            precision=precision,
            backend=backend,
            threads=threads,
        )
        links = self.calibration.predicted_links if self.calibration is not None else None
        executor = LSTMExecutor(
            self.network,
            config,
            predicted_links=links,
            plan_cache=self.plan_cache,
            program_cache=self.program_cache,
        )
        cache_before = self.plan_cache.stats.as_dict()
        program_before = self.program_cache.stats.as_dict()
        tokens = np.asarray(tokens)
        if label is None:
            app_config = getattr(self, "_app_config", None)
            label = app_config.name if app_config is not None else ""
        builder = (
            recorder.start_run(
                label=label,
                mode=mode.value,
                spec=self.spec.name,
                batch=int(tokens.shape[0]),
                seq_length=int(tokens.shape[-1]),
                config={
                    "backend": executor.backend,
                    "alpha_inter": config.alpha_inter,
                    "alpha_intra": config.alpha_intra,
                    "mts": config.mts,
                    "drs_style": config.drs_style,
                    "threshold_index": threshold_index,
                    "precision": config.precision.tag,
                    "threads": config.threads,
                },
            )
            if recorder is not None
            else None
        )
        result = executor.run_batch(tokens)

        sim_start = time.perf_counter()
        simulator = TimingSimulator(self.spec)
        times, energies, traces = [], [], []
        for seq_index, plan in enumerate(result.plans):
            trace = simulator.run_trace(executor.kernel_trace(plan))
            times.append(trace.total_time)
            energies.append(trace.total_energy)
            if keep_traces:
                traces.append(trace)
            if builder is not None:
                builder.observe_plan(seq_index, plan)
                builder.observe_trace(seq_index, trace)

        if builder is not None:
            builder.observe_cache_delta(cache_before, self.plan_cache.stats.as_dict())
            builder.observe_program_cache_delta(
                program_before, self.program_cache.stats.as_dict()
            )
            builder.set_timing(
                wall_s=time.perf_counter() - wall_start,
                sim_wall_s=time.perf_counter() - sim_start,
                **result.timings,
            )
            builder.finish()

        plans = result.plans
        return InferenceOutcome(
            mode=mode,
            logits=result.logits,
            predictions=result.predictions(),
            times=np.asarray(times),
            energies=np.asarray(energies),
            mean_tissue_size=float(np.mean([p.mean_tissue_size for p in plans])),
            mean_skip_fraction=float(np.mean([p.mean_skip_fraction for p in plans])),
            mean_breakpoints=float(np.mean([p.total_breakpoints for p in plans])),
            traces=traces,
            result=result if keep_result else None,
        )
