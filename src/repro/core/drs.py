"""Dynamic Row Skip — Algorithm 3 (Section V-A).

``h_t = o_t * tanh(c_t)`` (Eq. 5): wherever an element of ``o_t`` is near
zero the matching element of ``h_t`` is near zero *regardless* of ``c_t``,
so the rows of ``U_f``, ``U_i`` and ``U_c`` that feed that element are
irrelevant to the cell output. DRS computes ``o_t`` first, thresholds it
against ``alpha_intra`` and skips the loads and computations of the trivial
rows. ``U_o`` is never skipped — it produces the selector itself.

When the inter-cell optimization is active, the cells fused into one tissue
share a single ``Sgemm(U_{f,i,c}, H_t)``; a row can then only be skipped if
it is trivial for *every* cell of the tissue (otherwise the shared load must
happen anyway). :func:`tissue_skip_mask` computes that intersection — this
shared-load constraint is exactly the "overlap" the paper cites when noting
the combined gains are less than the sum of the individual gains.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import PlanError


def trivial_row_mask(o_t: np.ndarray, alpha_intra: float) -> np.ndarray:
    """Boolean mask of trivial rows for one cell (``True`` = skip).

    Args:
        o_t: Output-gate activations, shape ``(H,)`` or ``(B, H)`` —
            sigmoid outputs in ``[0, 1]``.
        alpha_intra: The near-zero threshold; 0 disables skipping entirely
            (the baseline case).
    """
    o_t = np.asarray(o_t, dtype=np.float64)
    if alpha_intra < 0:
        raise PlanError(f"alpha_intra must be non-negative, got {alpha_intra}")
    if alpha_intra == 0.0:
        return np.zeros_like(o_t, dtype=bool)
    return o_t < alpha_intra


def tissue_skip_mask(masks: Sequence[np.ndarray]) -> np.ndarray:
    """Intersection of per-cell trivial-row masks within one tissue.

    A row of the shared weight load can be skipped only when every fused
    cell finds it trivial.
    """
    if not masks:
        raise PlanError("tissue_skip_mask needs at least one cell mask")
    out = np.asarray(masks[0], dtype=bool).copy()
    for mask in masks[1:]:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != out.shape:
            raise PlanError("tissue cell masks must share one shape")
        out &= mask
    return out


def skip_fraction(mask: np.ndarray) -> float:
    """Fraction of rows skipped (the per-cell compression knob)."""
    mask = np.asarray(mask, dtype=bool)
    return float(mask.mean()) if mask.size else 0.0


def skipped_weight_bytes(
    hidden_size: int, mask: np.ndarray, dtype_bytes: int = 4
) -> tuple[float, float]:
    """Bytes of ``U_{f,i,c}`` actually loaded vs. the full load.

    Returns:
        ``(loaded_bytes, full_bytes)`` for the 3H x H united matrix. ``U_o``
        is accounted separately by the executor (it is always fully loaded).
    """
    full = 3.0 * hidden_size * hidden_size * dtype_bytes
    loaded = full * (1.0 - skip_fraction(mask))
    return loaded, full


def compression_ratio(masks: Sequence[np.ndarray]) -> float:
    """Average fraction of ``U_{f,i,c,o}`` weight bytes eliminated.

    The Fig. 16a metric: the skipped rows cover 3 of the 4 gate matrices,
    so a mean per-cell skip fraction ``r`` compresses the united matrix by
    ``0.75 * r``.
    """
    if not masks:
        return 0.0
    mean_skip = float(np.mean([skip_fraction(m) for m in masks]))
    return 0.75 * mean_skip
