"""Generated-C fused kernels: the default ``fused`` backend lowering.

The numpy programs in :mod:`repro.core.program` are already allocation-free,
but every timestep still crosses the interpreter a dozen times (matmul
dispatch, ufunc ladder, mask bookkeeping). This module lowers the same
arithmetic into two C kernels — compiled once per host with the system C
compiler, loaded through :mod:`ctypes` — so one layer's whole timestep loop
(or one combined plan group's whole tissue walk) is a single native call:

* ``stepwise_run`` — the Appleyard single-pass shape: for each ``(b, t)``
  the recurrent GEMV and the sigmoid/tanh gate epilogue fuse into one pass
  over the united weight rows. Algorithm 3's DRS runs *inside* the kernel:
  the output gate's rows are computed first, and a trivial row skips its
  ``f``/``i``/``g`` dot products entirely — the literal row compaction the
  paper's GPU kernel performs, not compute-then-zero.
* ``combined_run`` — one plan group's tissue walk. Per tissue, pass one
  computes every fused cell's output gate and intersects the trivial-row
  masks into the tissue's *shared* mask (the shared-weight-load
  constraint); pass two runs the remaining gate math, skipping shared
  rows; state writes happen only after every cell has read the pre-tissue
  state, matching the interpreted walk's gather-then-scatter order.

The input projections are hoisted out of the kernels: the program stages
``W·x_t`` for *all* timesteps as one large GEMM at :meth:`project` time
(Appleyard's timestep-batched input GEMM) — except when the caller needs
the planner's bit-exact per-row lift (``exact=True``), which keeps
structural plans identical across backends.

Numerics contract: these kernels are **tolerance-level**, not bit-exact —
plain ``1/(1+exp(-x))``/``tanh`` in fp64 and natural dot-product order
instead of the numpy programs' BLAS-dispatch-pinned ladders. The frozen
oracle stays the numpy backend; agreement is gated per mode in
``benchmarks/bench_backends.py``.

Build pipeline: the C source below is hashed together with the compiler
identity; the shared object is cached under the user's temp directory and
rebuilt only when either changes, so spawned fleet workers load the same
``.so`` without recompiling. No compiler on the host simply makes the
backend unavailable (:func:`compiler_available`), it never breaks import.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BackendUnavailableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context_prediction import PredictedLink
    from repro.core.executor import _UnitedWeights
    from repro.core.plan import CachedLayerPlan

#: United-matrix row offsets, in multiples of H, following
#: :data:`repro.nn.lstm_cell.GATE_ORDER` = (f, i, c, o).
_OFF_F, _OFF_I, _OFF_C, _OFF_O = 0, 1, 2, 3

C_SOURCE = r"""
#include <math.h>
#include <string.h>

static double sigmoid(double x) { return 1.0 / (1.0 + exp(-x)); }

static double dot(const double *a, const double *b, long n) {
    double acc = 0.0;
    for (long k = 0; k < n; k++) acc += a[k] * b[k];
    return acc;
}

/* One stepwise layer: proj (B,T,4H) staged by the caller, united u (4H,H)
 * row-major with gate rows at offsets {f:0, i:H, c:2H, o:3H}, h/c (B,H)
 * carried in place across timesteps.  DRS (alpha > 0): o-gate rows first,
 * trivial rows skip their f/i/g dot products.  scratch holds 3H doubles. */
void stepwise_run(
    const double *proj, const double *u, const double *bias,
    double *h, double *c, double *hs, double *cs,
    unsigned char *masks, const unsigned char *resets,
    const double *h_bar, const double *c_bar,
    double alpha, double *scratch, long B, long T, long H)
{
    const long H4 = 4 * H;
    const int drs = alpha > 0.0;
    double *o_buf = scratch;
    double *c_new = scratch + H;
    double *h_new = scratch + 2 * H;
    for (long t = 0; t < T; t++) {
        for (long b = 0; b < B; b++) {
            double *h_row = h + b * H;
            double *c_row = c + b * H;
            if (resets && resets[t * B + b]) {
                memcpy(h_row, h_bar, H * sizeof(double));
                memcpy(c_row, c_bar, H * sizeof(double));
            }
            const double *p = proj + (b * T + t) * H4;
            unsigned char *m_row = drs ? masks + (b * T + t) * H : 0;
            for (long j = 0; j < H; j++) {
                double o = sigmoid(
                    p[3 * H + j] + dot(u + (3 * H + j) * H, h_row, H)
                    + bias[3 * H + j]);
                o_buf[j] = o;
                if (drs) m_row[j] = o < alpha;
            }
            for (long j = 0; j < H; j++) {
                if (drs && m_row[j]) {
                    /* Trivial row: never read the f/i/g weight rows. */
                    c_new[j] = 0.0;
                    h_new[j] = 0.0;
                    continue;
                }
                double f = sigmoid(
                    p[j] + dot(u + j * H, h_row, H) + bias[j]);
                double i = sigmoid(
                    p[H + j] + dot(u + (H + j) * H, h_row, H) + bias[H + j]);
                double g = tanh(
                    p[2 * H + j] + dot(u + (2 * H + j) * H, h_row, H)
                    + bias[2 * H + j]);
                double cc = f * c_row[j] + i * g;
                c_new[j] = cc;
                h_new[j] = o_buf[j] * tanh(cc);
            }
            memcpy(c_row, c_new, H * sizeof(double));
            memcpy(h_row, h_new, H * sizeof(double));
            memcpy(hs + (b * T + t) * H, h_new, H * sizeof(double));
            if (cs) memcpy(cs + (b * T + t) * H, c_new, H * sizeof(double));
        }
    }
}

/* One combined plan group's tissue walk: cells flattened as (subs, ts)
 * with per-tissue extents in offsets (n_tissues + 1 entries).  Pass one
 * computes every fused cell's output gate and intersects the trivial-row
 * masks into the tissue's shared mask; pass two runs f/i/g skipping
 * shared rows; writes land only after every cell read pre-tissue state.
 * scratch holds 3 * max_k * H doubles. */
void combined_run(
    const double *proj, const double *u, const double *bias,
    double *h_state, double *c_state, double *hs,
    unsigned char *shared, const long *offsets,
    const long *subs, const long *ts,
    double alpha, double *scratch,
    long G, long T, long H, long n_sub, long n_tissues)
{
    const long H4 = 4 * H;
    const int drs = alpha > 0.0;
    for (long ti = 0; ti < n_tissues; ti++) {
        const long lo = offsets[ti], hi = offsets[ti + 1];
        const long k = hi - lo;
        double *o_buf = scratch;
        double *c_buf = scratch + k * H;
        double *h_buf = scratch + 2 * k * H;
        for (long g_row = 0; g_row < G; g_row++) {
            unsigned char *sh = drs ? shared + (ti * G + g_row) * H : 0;
            for (long m = 0; m < k; m++) {
                const double *h_prev =
                    h_state + (g_row * n_sub + subs[lo + m]) * H;
                const double *p = proj + (g_row * T + ts[lo + m]) * H4;
                for (long j = 0; j < H; j++) {
                    o_buf[m * H + j] = sigmoid(
                        p[3 * H + j] + dot(u + (3 * H + j) * H, h_prev, H)
                        + bias[3 * H + j]);
                }
            }
            if (drs) {
                for (long j = 0; j < H; j++) {
                    unsigned char all_trivial = 1;
                    for (long m = 0; m < k; m++)
                        all_trivial &= (unsigned char)(o_buf[m * H + j] < alpha);
                    sh[j] = all_trivial;
                }
            }
            for (long m = 0; m < k; m++) {
                const double *h_prev =
                    h_state + (g_row * n_sub + subs[lo + m]) * H;
                const double *c_prev =
                    c_state + (g_row * n_sub + subs[lo + m]) * H;
                const double *p = proj + (g_row * T + ts[lo + m]) * H4;
                for (long j = 0; j < H; j++) {
                    double cc;
                    if (drs && sh[j]) {
                        cc = 0.0;
                    } else {
                        double f = sigmoid(
                            p[j] + dot(u + j * H, h_prev, H) + bias[j]);
                        double i = sigmoid(
                            p[H + j] + dot(u + (H + j) * H, h_prev, H)
                            + bias[H + j]);
                        double g = tanh(
                            p[2 * H + j] + dot(u + (2 * H + j) * H, h_prev, H)
                            + bias[2 * H + j]);
                        cc = f * c_prev[j] + i * g;
                    }
                    c_buf[m * H + j] = cc;
                    h_buf[m * H + j] = o_buf[m * H + j] * tanh(cc);
                }
            }
            for (long m = 0; m < k; m++) {
                double *h_dst = h_state + (g_row * n_sub + subs[lo + m]) * H;
                double *c_dst = c_state + (g_row * n_sub + subs[lo + m]) * H;
                memcpy(h_dst, h_buf + m * H, H * sizeof(double));
                memcpy(c_dst, c_buf + m * H, H * sizeof(double));
                memcpy(hs + (g_row * T + ts[lo + m]) * H, h_buf + m * H,
                       H * sizeof(double));
            }
        }
    }
}
"""


def _compiler() -> str | None:
    """The host C compiler, or ``None``."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def compiler_available() -> bool:
    """Whether this host can build the generated-C backend."""
    return _compiler() is not None


_lib: ctypes.CDLL | None = None

#: Serializes the first-use build/load of :data:`_lib`. Two dispatcher
#: threads racing the cold path would otherwise both run the compiler
#: and both ``CDLL``-load the object — wasted work, and two live handles
#: where the module promises one.
_lib_lock = threading.Lock()


#: Compile flags for the generated kernels. ``-ffast-math`` is deliberate:
#: this backend carries a tolerance contract, not bit-identity, and letting
#: the compiler vectorize the gate transcendentals (libmvec on glibc) is
#: where most of the fused speedup comes from. Flags are part of the build
#: cache key, so changing them forces a rebuild.
CFLAGS: tuple[str, ...] = (
    "-O3",
    "-march=native",
    "-ffast-math",
    "-funroll-loops",
    "-fPIC",
)

#: Link flags — deliberately *without* the fast-math family. Passing
#: ``-ffast-math`` at link time pulls in crtfastmath.o, whose constructor
#: sets FTZ/DAZ in the FPU control register for the whole process when the
#: shared object loads, silently breaking IEEE subnormals for numpy and
#: every other library in the host interpreter. Compiling with fast-math
#: but linking without it keeps the vectorized kernel code while leaving
#: global floating-point state untouched.
LDFLAGS: tuple[str, ...] = ("-shared",)


def _build_dir(tag: str) -> Path:
    """Cache directory of one keyed build.

    ``REPRO_CGEN_CACHE`` overrides the root: point it at a persistent
    path (a CI cache mount, a fleet-shared volume) and repeated jobs and
    restarts reuse the compiled object instead of paying the
    ``-O3 -march=native`` rebuild. Unset, the per-host temp directory
    keeps the seed behavior.
    """
    root = os.environ.get("REPRO_CGEN_CACHE")
    base = Path(root).expanduser() if root else Path(tempfile.gettempdir())
    return base / f"repro-cgen-{tag}"


def load_library() -> ctypes.CDLL:
    """Build (once per source+compiler) and load the kernel library.

    The shared object is cached under :func:`_build_dir` keyed on a hash
    of the C source and the compiler identity, so repeated runs — and the
    fleet's spawned worker processes — reuse one build. The compile step
    writes to a process-unique name and atomically renames into place, so
    concurrent builder *processes* never read a half-written object;
    concurrent *threads* are serialized by :data:`_lib_lock` (double-
    checked, so the warm path stays lock-free).
    """
    global _lib
    if _lib is not None:
        return _lib
    with _lib_lock:
        if _lib is not None:
            return _lib
        return _load_library_locked()


def _load_library_locked() -> ctypes.CDLL:
    global _lib
    compiler = _compiler()
    if compiler is None:
        raise BackendUnavailableError(
            "generated-C backend needs a C compiler (cc/gcc/clang); none found"
        )
    tag = hashlib.sha256(
        (
            C_SOURCE + "\n" + compiler + "\n"
            + " ".join(CFLAGS) + "\n" + " ".join(LDFLAGS)
        ).encode()
    ).hexdigest()[:16]
    build = _build_dir(tag)
    so_path = build / "repro_kernels.so"
    if not so_path.exists():
        build.mkdir(parents=True, exist_ok=True)
        src = build / "repro_kernels.c"
        src.write_text(C_SOURCE)
        obj = build / f"repro_kernels.{os.getpid()}.tmp.o"
        tmp = build / f"repro_kernels.{os.getpid()}.tmp.so"
        # Two steps on purpose: fast-math at compile only (see LDFLAGS).
        compile_cmd = [compiler, *CFLAGS, "-c", str(src), "-o", str(obj)]
        link_cmd = [compiler, *LDFLAGS, str(obj), "-o", str(tmp), "-lm"]
        for cmd in (compile_cmd, link_cmd):
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                raise BackendUnavailableError(
                    f"C kernel build failed ({' '.join(cmd)}):\n{proc.stderr}"
                )
        obj.unlink(missing_ok=True)
        os.replace(tmp, so_path)
    lib = ctypes.CDLL(str(so_path))
    ptr, dbl, lng = ctypes.c_void_p, ctypes.c_double, ctypes.c_long
    lib.stepwise_run.restype = None
    lib.stepwise_run.argtypes = [
        ptr, ptr, ptr,  # proj, u, bias
        ptr, ptr, ptr, ptr,  # h, c, hs, cs
        ptr, ptr,  # masks, resets
        ptr, ptr,  # h_bar, c_bar
        dbl, ptr, lng, lng, lng,  # alpha, scratch, B, T, H
    ]
    lib.combined_run.restype = None
    lib.combined_run.argtypes = [
        ptr, ptr, ptr,  # proj, u, bias
        ptr, ptr, ptr,  # h_state, c_state, hs
        ptr, ptr, ptr, ptr,  # shared, offsets, subs, ts
        dbl, ptr,  # alpha, scratch
        lng, lng, lng, lng, lng,  # G, T, H, n_sub, n_tissues
    ]
    _lib = lib
    return lib


def _ptr(array: np.ndarray | None) -> int | None:
    """C-contiguous data pointer (``None`` maps to C ``NULL``)."""
    if array is None:
        return None
    assert array.flags.c_contiguous
    return array.ctypes.data


class CGenStepwiseProgram:
    """C-kernel twin of :class:`repro.core.program.StepwiseProgram`.

    Same two-phase API and the same workspace-ownership rules; the
    timestep loop runs in ``stepwise_run`` as one native call. Tolerance-
    level agreement with the numpy lowering, never bit-contracted.
    """

    bit_exact = False

    def __init__(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        batch: int,
        seq_len: int,
        drs_alpha: float = 0.0,
    ) -> None:
        self._lib = load_library()
        hidden = united.u.shape[1]
        self.batch = batch
        self.seq_len = seq_len
        self.hidden = hidden
        self.drs_alpha = drs_alpha
        self._u = np.ascontiguousarray(united.u)
        self._b = np.ascontiguousarray(united.b)
        self._w_t = united.w.T  # (E, 4H) view: exact per-row lift operand
        self._w_t_dense = np.ascontiguousarray(united.w.T)  # big-GEMM operand
        self._h_bar = np.ascontiguousarray(link.h_bar)
        self._c_bar = np.ascontiguousarray(link.c_bar)
        self._slices = dict(united.slices)
        self.proj = np.empty((batch, seq_len, 4 * hidden))
        self.h = np.zeros((batch, hidden))
        self.c = np.zeros((batch, hidden))
        self._scratch = np.empty(3 * hidden)
        self._resets = np.zeros((seq_len, batch), dtype=np.uint8)
        self.masks_all = (
            np.empty((batch, seq_len, hidden), dtype=bool) if drs_alpha > 0.0 else None
        )

    def project(self, xs: np.ndarray, exact: bool = False) -> dict[str, np.ndarray]:
        """Stage the input projections; returns per-gate planner views.

        ``exact=False`` (the default) hoists ``W·x_t`` for every timestep
        into one ``(B*T, E) @ (E, 4H)`` GEMM — Appleyard's timestep-batched
        input GEMM. ``exact=True`` keeps the per-row GEMV lift of
        :func:`repro.core.executor._row_proj` so the inter-level planner
        sees the same projection bits on every backend (structural plans
        stay backend-invariant).
        """
        if exact:
            np.matmul(xs[:, :, None, :], self._w_t, out=self.proj[:, :, None, :])
        else:
            flat = xs.reshape(-1, xs.shape[-1])
            np.matmul(flat, self._w_t_dense, out=self.proj.reshape(flat.shape[0], -1))
        return {g: self.proj[..., sl] for g, sl in self._slices.items()}

    def execute(
        self,
        hs: np.ndarray,
        reset_cols: list[np.ndarray | None] | None = None,
        cs: np.ndarray | None = None,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
        state_out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Run the fused timestep loop (same contract as the numpy program)."""
        self.h[:] = 0.0 if h0 is None else h0
        self.c[:] = 0.0 if c0 is None else c0
        resets = None
        if reset_cols is not None:
            self._resets[:] = 0
            for t, col in enumerate(reset_cols):
                if col is not None:
                    self._resets[t] = col[:, 0]
            resets = self._resets
        masks = self.masks_all if self.drs_alpha > 0.0 else None
        self._lib.stepwise_run(
            _ptr(self.proj), _ptr(self._u), _ptr(self._b),
            _ptr(self.h), _ptr(self.c), _ptr(hs), _ptr(cs),
            _ptr(masks), _ptr(resets),
            _ptr(self._h_bar), _ptr(self._c_bar),
            float(self.drs_alpha), _ptr(self._scratch),
            self.batch, self.seq_len, self.hidden,
        )
        if state_out is not None:
            out_h, out_c = state_out
            out_h[:] = self.h
            out_c[:] = self.c


class CGenCombinedProgram:
    """C-kernel twin of :class:`repro.core.program.CombinedGroupProgram`.

    One lowering covers both of the numpy program's regimes (constant-
    folded and tissue walk): the kernel walks the plan's tissues in
    schedule order with the per-tissue shared-mask intersection inside
    the pass. Exposes the same ``hs`` / ``shared`` outputs the executor
    reads for scatter and DRS statistics.
    """

    bit_exact = False

    def __init__(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        plan: "CachedLayerPlan",
        group: int,
        seq_len: int,
        alpha_intra: float = 0.0,
    ) -> None:
        self._lib = load_library()
        hidden = united.u.shape[1]
        self.group = group
        self.seq_len = seq_len
        self.hidden = hidden
        self.alpha_intra = alpha_intra
        self.n_sub = len(plan.sublayers)
        self.n_tissues = len(plan.tissues)
        self._u = np.ascontiguousarray(united.u)
        self._b = np.ascontiguousarray(united.b)
        self._h_bar = np.ascontiguousarray(link.h_bar)
        self._c_bar = np.ascontiguousarray(link.c_bar)
        subs: list[int] = []
        ts: list[int] = []
        offsets = [0]
        max_k = 1
        for tissue in plan.tissues:
            for s, t in tissue.cells:
                subs.append(s)
                ts.append(t)
            offsets.append(len(subs))
            max_k = max(max_k, len(tissue.cells))
        self._subs = np.asarray(subs, dtype=np.int64)
        self._ts = np.asarray(ts, dtype=np.int64)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._scratch = np.empty(3 * max_k * hidden)
        self.h_state = np.zeros((group, self.n_sub, hidden))
        self.c_state = np.zeros((group, self.n_sub, hidden))
        self.hs = np.empty((group, seq_len, hidden))
        self.shared: np.ndarray | None = (
            np.empty((self.n_tissues, group, hidden), dtype=bool)
            if alpha_intra > 0.0
            else None
        )

    def execute(self, proj_group: np.ndarray) -> None:
        """Run the compiled group over ``proj_group`` ``(G, T, 4H)``."""
        proj = np.ascontiguousarray(proj_group)
        self.h_state[:, 0] = 0.0
        self.c_state[:, 0] = 0.0
        if self.n_sub > 1:
            self.h_state[:, 1:] = self._h_bar
            self.c_state[:, 1:] = self._c_bar
        self._lib.combined_run(
            _ptr(proj), _ptr(self._u), _ptr(self._b),
            _ptr(self.h_state), _ptr(self.c_state), _ptr(self.hs),
            _ptr(self.shared), _ptr(self._offsets),
            _ptr(self._subs), _ptr(self._ts),
            float(self.alpha_intra), _ptr(self._scratch),
            self.group, self.seq_len, self.hidden, self.n_sub, self.n_tissues,
        )
