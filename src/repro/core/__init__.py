"""The paper's contribution: inter-cell and intra-cell LSTM optimizations.

* :mod:`repro.core.relevance` — Algorithm 2, the relevance value ``S``.
* :mod:`repro.core.breakpoints` — weak-link search and layer division.
* :mod:`repro.core.context_prediction` — Eq. 6, the predicted context link.
* :mod:`repro.core.tissue` — tissue formation, alignment, MTS calibration.
* :mod:`repro.core.drs` — Algorithm 3, dynamic row skip.
* :mod:`repro.core.plan` / :mod:`repro.core.planner` — per-sequence plans.
* :mod:`repro.core.executor` — numerically exact execution of every mode.
* :mod:`repro.core.trace_builder` — plan -> GPU kernel trace.
* :mod:`repro.core.thresholds` / :mod:`repro.core.tuner` — the
  accuracy/performance knob (threshold sets, AO/BPA/UO schemes).
* :mod:`repro.core.pipeline` — the top-level :class:`OptimizedLSTM` API.
"""

from repro.core.relevance import relevance_values, exact_relevance_values
from repro.core.breakpoints import find_breakpoints, divide_layer, SubLayer
from repro.core.context_prediction import ContextLinkPredictor, PredictedLink
from repro.core.drs import trivial_row_mask, tissue_skip_mask, skip_fraction
from repro.core.gru_adaptation import (
    gru_compression_ratio,
    gru_relevance_values,
    gru_trivial_row_mask,
)
from repro.core.tissue import Tissue, align_tissues, form_tissues, calibrate_mts
from repro.core.plan import LayerPlanRecord, SequencePlan, TissueRecord
from repro.core.executor import ExecutionConfig, ExecutionMode, ExecutionResult, LSTMExecutor
from repro.core.trace_builder import build_kernel_trace
from repro.core.thresholds import ThresholdSchedule, ThresholdSet
from repro.core.tuner import OfflineCalibration, calibrate_offline
from repro.core.pipeline import OptimizedLSTM, InferenceOutcome

__all__ = [
    "ContextLinkPredictor",
    "ExecutionConfig",
    "ExecutionMode",
    "ExecutionResult",
    "InferenceOutcome",
    "LSTMExecutor",
    "LayerPlanRecord",
    "OfflineCalibration",
    "OptimizedLSTM",
    "PredictedLink",
    "SequencePlan",
    "SubLayer",
    "ThresholdSchedule",
    "ThresholdSet",
    "Tissue",
    "TissueRecord",
    "align_tissues",
    "build_kernel_trace",
    "calibrate_mts",
    "calibrate_offline",
    "divide_layer",
    "exact_relevance_values",
    "find_breakpoints",
    "form_tissues",
    "gru_compression_ratio",
    "gru_relevance_values",
    "gru_trivial_row_mask",
    "relevance_values",
    "skip_fraction",
    "tissue_skip_mask",
    "trivial_row_mask",
]
