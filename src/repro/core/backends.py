"""Execution-backend registry for compiled programs.

``ExecutionConfig.backend`` names how :class:`~repro.core.executor.
LSTMExecutor` lowers plans into compiled programs:

* ``"numpy"`` — the default: the :mod:`repro.core.program` lowerings,
  whose BLAS-dispatch-pinned arithmetic is the frozen fp64 bit-exact
  oracle (bit-identical to :class:`~repro.core.reference.
  ReferenceExecutor` in all five modes).
* ``"cgen"`` — generated-C fused kernels (:mod:`repro.core.cgen`): one
  native call per layer run, GEMM + fused gate epilogue, in-kernel DRS
  row compaction, Appleyard timestep-batched input GEMM. Needs a host C
  compiler; tolerance-level agreement with the oracle.
* ``"numba"`` — the same fused pass jitted with numba
  (:mod:`repro.core.backend_numba`); unavailable when numba is not
  installed.
* ``"torch"`` — an optional torch lowering
  (:mod:`repro.core.backend_torch`); unavailable when torch is not
  installed.
* ``"fused"`` — alias resolving to the best available fused backend:
  ``cgen`` first (the complete lowering — it also covers combined-mode
  tissue walks), then ``numba``.

Resolution happens once, at executor construction
(:func:`resolve_backend`), so a missing toolchain fails fast with a
:class:`~repro.errors.BackendUnavailableError` naming the reason rather
than deep inside a run. Two invariants every non-oracle backend keeps:

* **Plans are backend-invariant.** Anywhere the inter-level planner reads
  projection bits (combined mode, inter-active stepwise), the projection
  stays the exact per-row lift — so relevance values, breakpoints, and
  tissue schedules are identical across backends, and only the gate
  arithmetic differs at tolerance level.
* **The simulator plane is untouched.** Kernel traces and bytes-moved
  accounting describe the *modeled mobile GPU* execution of a plan; a
  host backend changes how the numerics are computed, never the plan, so
  weight-traffic counters are identical across backends (tested).

Combined-mode programs: ``cgen`` lowers them natively; ``numba`` and
``torch`` fall back to the numpy :class:`~repro.core.program.
CombinedGroupProgram` (correct, just not accelerated).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import backend_numba, backend_torch
from repro.core.program import CombinedGroupProgram, StepwiseProgram
from repro.errors import BackendUnavailableError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context_prediction import PredictedLink
    from repro.core.executor import _UnitedWeights
    from repro.core.plan import CachedLayerPlan

#: Every accepted ``ExecutionConfig.backend`` value (including the alias).
BACKEND_NAMES: tuple[str, ...] = ("numpy", "fused", "cgen", "numba", "torch")

#: Resolution order of the ``fused`` alias.
FUSED_ORDER: tuple[str, ...] = ("cgen", "numba")


def _cgen_available() -> tuple[bool, str]:
    from repro.core import cgen

    if cgen.compiler_available():
        return True, ""
    return False, "no C compiler (cc/gcc/clang) on this host"


def backend_availability() -> dict[str, tuple[bool, str]]:
    """Map every concrete backend to ``(available, reason-if-not)``."""
    return {
        "numpy": (True, ""),
        "cgen": _cgen_available(),
        "numba": (backend_numba.available(), backend_numba.unavailable_reason()),
        "torch": (backend_torch.available(), backend_torch.unavailable_reason()),
    }


def validate_backend_name(name: str) -> str:
    """Check a config-level backend name (availability is not probed)."""
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return name


def resolve_backend(name: str) -> str:
    """Resolve a backend name to a concrete, available backend.

    ``"fused"`` picks the first available entry of :data:`FUSED_ORDER`.
    Raises :class:`~repro.errors.BackendUnavailableError` with the
    per-backend reason when nothing can run.
    """
    validate_backend_name(name)
    availability = backend_availability()
    if name == "fused":
        reasons = []
        for candidate in FUSED_ORDER:
            ok, reason = availability[candidate]
            if ok:
                return candidate
            reasons.append(f"{candidate}: {reason}")
        raise BackendUnavailableError(
            "no fused backend available (" + "; ".join(reasons) + ")"
        )
    ok, reason = availability[name]
    if not ok:
        raise BackendUnavailableError(f"backend {name!r} unavailable: {reason}")
    return name


def backend_is_exact(name: str) -> bool:
    """Whether a resolved backend carries the bit-identity contract."""
    return name == "numpy"


def make_stepwise_program(
    backend: str,
    united: "_UnitedWeights",
    link: "PredictedLink",
    batch: int,
    seq_len: int,
    drs_alpha: float = 0.0,
):
    """Build one stepwise program under a *resolved* backend name."""
    if backend == "numpy":
        return StepwiseProgram(united, link, batch, seq_len, drs_alpha=drs_alpha)
    if backend == "cgen":
        from repro.core.cgen import CGenStepwiseProgram

        return CGenStepwiseProgram(united, link, batch, seq_len, drs_alpha=drs_alpha)
    if backend == "numba":  # pragma: no cover - needs numba
        return backend_numba.NumbaStepwiseProgram(
            united, link, batch, seq_len, drs_alpha=drs_alpha
        )
    if backend == "torch":  # pragma: no cover - needs torch
        return backend_torch.TorchStepwiseProgram(
            united, link, batch, seq_len, drs_alpha=drs_alpha
        )
    raise ConfigurationError(f"unresolved backend {backend!r}")


def make_combined_program(
    backend: str,
    united: "_UnitedWeights",
    link: "PredictedLink",
    plan: "CachedLayerPlan",
    group: int,
    seq_len: int,
    alpha_intra: float = 0.0,
):
    """Build one combined-group program under a *resolved* backend name.

    ``numba`` / ``torch`` fall back to the numpy lowering (see module
    docstring); ``cgen`` lowers the tissue walk natively.
    """
    if backend == "cgen":
        from repro.core.cgen import CGenCombinedProgram

        return CGenCombinedProgram(
            united, link, plan, group, seq_len, alpha_intra=alpha_intra
        )
    return CombinedGroupProgram(
        united, link, plan, group, seq_len, alpha_intra=alpha_intra
    )
