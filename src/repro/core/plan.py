"""Execution-plan records.

The executor separates *numerics* from *timing*: while it runs the exact
arithmetic of an optimized execution, it records — per sequence, per layer —
the structural decisions the optimizations made (breakpoints, tissue
composition, rows skipped). The :mod:`repro.core.trace_builder` later turns
these records into the GPU kernel trace that the timing simulator consumes.
This mirrors the paper's own methodology (Fig. 13): PyTorch produces the
breakpoints and trivial-row counts, DeepBench replays them on the board.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlanError


@dataclass
class TissueRecord:
    """One executed tissue (or single cell when the inter level is off).

    Attributes:
        cells: The fused cells as ``(sublayer_index, timestamp)`` pairs.
        skip_fraction: Fraction of ``U_{f,i,c}`` rows skipped by the tissue's
            shared load (the intersection mask; 0 when DRS is off).
        warp_skip_fraction: Fraction of warps that were *entirely* trivial —
            what a software-only DRS can skip without divergence.
    """

    cells: list[tuple[int, int]]
    skip_fraction: float = 0.0
    warp_skip_fraction: float = 0.0

    @property
    def size(self) -> int:
        """Number of fused cells."""
        return len(self.cells)


@dataclass
class LayerPlanRecord:
    """Structural record of one layer's optimized execution."""

    layer_index: int
    hidden_size: int
    input_size: int
    seq_length: int
    breakpoints: list[int] = field(default_factory=list)
    sublayer_lengths: list[int] = field(default_factory=list)
    tissues: list[TissueRecord] = field(default_factory=list)
    relevance: np.ndarray | None = None

    @property
    def num_sublayers(self) -> int:
        """Number of independent sub-layers after division."""
        return len(self.sublayer_lengths) if self.sublayer_lengths else 1

    @property
    def num_tissues(self) -> int:
        """Number of tissues (equals cell count when the inter level is off)."""
        return len(self.tissues)

    @property
    def mean_tissue_size(self) -> float:
        """Average number of cells fused per tissue."""
        if not self.tissues:
            return 0.0
        return float(np.mean([t.size for t in self.tissues]))

    @property
    def mean_skip_fraction(self) -> float:
        """Cell-weighted average skipped-row fraction."""
        if not self.tissues:
            return 0.0
        total_cells = sum(t.size for t in self.tissues)
        return sum(t.skip_fraction * t.size for t in self.tissues) / total_cells

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        covered = sorted(t for rec in self.tissues for _, t in rec.cells)
        if covered != list(range(self.seq_length)):
            raise PlanError(
                f"layer {self.layer_index}: tissues cover {len(covered)} cells, "
                f"expected {self.seq_length}"
            )
        if self.sublayer_lengths and sum(self.sublayer_lengths) != self.seq_length:
            raise PlanError(f"layer {self.layer_index}: sub-layer lengths are inconsistent")


@dataclass
class SequencePlan:
    """Per-sequence execution plan: one record per layer."""

    layers: list[LayerPlanRecord]

    @property
    def total_breakpoints(self) -> int:
        """Breakpoints found across all layers."""
        return sum(len(rec.breakpoints) for rec in self.layers)

    @property
    def mean_tissue_size(self) -> float:
        """Layer-averaged mean tissue size."""
        if not self.layers:
            return 0.0
        return float(np.mean([rec.mean_tissue_size for rec in self.layers]))

    @property
    def mean_skip_fraction(self) -> float:
        """Layer-averaged mean skipped-row fraction."""
        if not self.layers:
            return 0.0
        return float(np.mean([rec.mean_skip_fraction for rec in self.layers]))
