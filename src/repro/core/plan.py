"""Execution-plan records.

The executor separates *numerics* from *timing*: while it runs the exact
arithmetic of an optimized execution, it records — per sequence, per layer —
the structural decisions the optimizations made (breakpoints, tissue
composition, rows skipped). The :mod:`repro.core.trace_builder` later turns
these records into the GPU kernel trace that the timing simulator consumes.
This mirrors the paper's own methodology (Fig. 13): PyTorch produces the
breakpoints and trivial-row counts, DeepBench replays them on the board.

Two cache layers sit on top of these records: the :class:`PlanCache` here
memoizes the *structural* pipeline (relevance arrays and layer plans,
content-addressed by weights + inputs), and the :class:`~repro.core.
program.ProgramCache` memoizes the *executable* lowering of a plan — a
:class:`CachedLayerPlan`'s ``signature`` (:func:`repro.core.tissue.
schedule_key`) is the shared key that links a cached plan to its compiled
combined-mode program.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, PlanError

if TYPE_CHECKING:
    from repro.core.breakpoints import SubLayer
    from repro.core.tissue import Tissue
    from repro.nn.lstm_cell import LSTMCellWeights


@dataclass(slots=True)
class TissueRecord:
    """One executed tissue (or single cell when the inter level is off).

    ``slots=True`` because batched runs materialize one record per
    (sequence, timestep) — tens of thousands per run — and the slotted
    layout constructs faster and drops the per-instance ``__dict__``.

    Attributes:
        cells: The fused cells as ``(sublayer_index, timestamp)`` pairs.
        skip_fraction: Fraction of ``U_{f,i,c}`` rows skipped by the tissue's
            shared load (the intersection mask; 0 when DRS is off).
        warp_skip_fraction: Fraction of warps that were *entirely* trivial —
            what a software-only DRS can skip without divergence.
    """

    cells: list[tuple[int, int]]
    skip_fraction: float = 0.0
    warp_skip_fraction: float = 0.0

    @property
    def size(self) -> int:
        """Number of fused cells."""
        return len(self.cells)


class SingleCellTissues(Sequence):
    """Materialize-on-demand tissue list for the stepwise modes.

    A batched stepwise run records one single-cell tissue per
    (sequence, timestep) — tens of thousands of :class:`TissueRecord`
    objects per run whose only varying payload is two floats. Building
    them eagerly costs more wall-clock than the structural information
    is worth on the hot path, and the only per-run consumer (the
    recorder's layer counters) reads aggregates, never elements. This
    sequence therefore stores the shared per-timestep cell lists plus
    the raw fraction lists and builds the records on first *element*
    access (equivalence tests, trace building, diffing). ``len()``,
    equality against another unresolved lazy sequence, and the
    aggregate properties never materialize.

    The fraction lists themselves may also be deferred: instead of
    lists, the constructor accepts a ``loader`` callable returning
    ``(skip_fractions, warp_skip_fractions)`` on first use, so a
    compiled executor run can skip even the mask reductions unless
    someone reads the statistics. Whatever state the loader captures
    (e.g. a DRS mask snapshot) stays alive until then.

    The aggregates reduce the same floats in the same order as reducing
    the materialized records, so they are bit-identical to the eager
    path.
    """

    __slots__ = ("_cells_by_t", "_skip", "_warp", "_loader", "_items")

    def __init__(
        self,
        cells_by_t: list[list[tuple[int, int]]],
        skip_fractions: list[float] | None = None,
        warp_skip_fractions: list[float] | None = None,
        loader: Callable[[], tuple[list[float], list[float]]] | None = None,
    ) -> None:
        if (skip_fractions is None) != (warp_skip_fractions is None) or (
            (skip_fractions is None) == (loader is None)
        ):
            raise ConfigurationError(
                "pass either both fraction lists or a loader, not both"
            )
        self._cells_by_t = cells_by_t
        self._skip = skip_fractions
        self._warp = warp_skip_fractions
        self._loader = loader
        self._items: list[TissueRecord] | None = None

    def _resolve(self) -> None:
        if self._skip is None:
            self._skip, self._warp = self._loader()
            self._loader = None

    def _materialize(self) -> list[TissueRecord]:
        items = self._items
        if items is None:
            self._resolve()
            items = self._items = [
                TissueRecord(c, s, w)
                for c, s, w in zip(self._cells_by_t, self._skip, self._warp)
            ]
        return items

    def __len__(self) -> int:
        return len(self._cells_by_t)

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())

    def __eq__(self, other) -> bool:
        if isinstance(other, SingleCellTissues):
            self._resolve()
            other._resolve()
            return (
                self._cells_by_t == other._cells_by_t
                and self._skip == other._skip
                and self._warp == other._warp
            )
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable-by-materialization; match list semantics

    def __reduce__(self):
        # Loaders may close over process-local state (DRS mask
        # snapshots), so crossing a pickle boundary — e.g. runtime worker
        # result queues — resolves the fraction lists and ships those.
        self._resolve()
        return (SingleCellTissues, (self._cells_by_t, self._skip, self._warp))

    def __repr__(self) -> str:
        return (
            f"SingleCellTissues(len={len(self)}, "
            f"materialized={self._items is not None})"
        )

    @property
    def mean_size(self) -> float:
        """Every tissue holds exactly one cell."""
        return 1.0 if self._cells_by_t else 0.0

    @property
    def mean_skip_fraction(self) -> float:
        if not self._cells_by_t:
            return 0.0
        self._resolve()
        return sum(self._skip) / len(self._skip)

    @property
    def mean_warp_skip_fraction(self) -> float:
        if not self._cells_by_t:
            return 0.0
        self._resolve()
        return sum(self._warp) / len(self._warp)


@dataclass
class LayerPlanRecord:
    """Structural record of one layer's optimized execution.

    ``tissues`` is list-like rather than strictly a list: the stepwise
    executor paths hand over a :class:`SingleCellTissues` so the hot
    path never pays for materializing per-timestep records.
    """

    layer_index: int
    hidden_size: int
    input_size: int
    seq_length: int
    breakpoints: list[int] = field(default_factory=list)
    sublayer_lengths: list[int] = field(default_factory=list)
    tissues: Sequence[TissueRecord] = field(default_factory=list)
    relevance: np.ndarray | None = None

    @property
    def num_sublayers(self) -> int:
        """Number of independent sub-layers after division."""
        return len(self.sublayer_lengths) if self.sublayer_lengths else 1

    @property
    def num_tissues(self) -> int:
        """Number of tissues (equals cell count when the inter level is off)."""
        return len(self.tissues)

    @property
    def mean_tissue_size(self) -> float:
        """Average number of cells fused per tissue.

        Computed in exact integer arithmetic (cell counts are small ints,
        so the sum never rounds) — the recorder reads this once per layer
        record, and an ``np.mean`` call here costs more in dispatch than
        the whole reduction.
        """
        tissues = self.tissues
        if not tissues:
            return 0.0
        if isinstance(tissues, SingleCellTissues):
            return tissues.mean_size
        return sum(len(t.cells) for t in tissues) / len(tissues)

    @property
    def mean_skip_fraction(self) -> float:
        """Cell-weighted average skipped-row fraction."""
        tissues = self.tissues
        if not tissues:
            return 0.0
        if isinstance(tissues, SingleCellTissues):
            return tissues.mean_skip_fraction
        sizes = [len(t.cells) for t in tissues]
        total_cells = sum(sizes)
        return (
            sum(t.skip_fraction * s for t, s in zip(tissues, sizes))
            / total_cells
        )

    @property
    def mean_warp_skip_fraction(self) -> float:
        """Plain average warp-skip fraction across tissues."""
        tissues = self.tissues
        if not tissues:
            return 0.0
        if isinstance(tissues, SingleCellTissues):
            return tissues.mean_warp_skip_fraction
        return float(
            sum(t.warp_skip_fraction for t in tissues) / len(tissues)
        )

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        covered = sorted(t for rec in self.tissues for _, t in rec.cells)
        if covered != list(range(self.seq_length)):
            raise PlanError(
                f"layer {self.layer_index}: tissues cover {len(covered)} cells, "
                f"expected {self.seq_length}"
            )
        if self.sublayer_lengths and sum(self.sublayer_lengths) != self.seq_length:
            raise PlanError(f"layer {self.layer_index}: sub-layer lengths are inconsistent")


@dataclass(frozen=True)
class CachedLayerPlan:
    """One layer's structural plan for one sequence, as cached/reused.

    This is the *input-side* counterpart of :class:`LayerPlanRecord`: the
    record describes what executed (including measured skip statistics);
    the cached plan holds only what can be decided *before* execution —
    relevance, breakpoints, sub-layers, and the aligned tissue schedule —
    which is exactly the part that is identical across repeated runs of the
    same sequence under the same configuration.

    Attributes:
        relevance: Per-timestep relevance ``S`` of shape ``(T,)``. Marked
            read-only when served from a :class:`PlanCache` because many
            plans/records may share it.
        breakpoints: Sorted timestamps where the layer divides.
        sublayers: The division (empty breakpoints -> one sub-layer).
        tissues: The MTS-aligned tissue schedule.
        signature: Hashable schedule key (:func:`repro.core.tissue.
            schedule_key`); equal signatures mean structurally identical
            execution, which is what the batched combined mode groups by.
    """

    relevance: np.ndarray
    breakpoints: tuple[int, ...]
    sublayers: tuple["SubLayer", ...]
    tissues: tuple["Tissue", ...]
    signature: tuple


@dataclass
class PlanCacheStats:
    """Hit/miss counters of one :class:`PlanCache`."""

    relevance_hits: int = 0
    relevance_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    evictions: int = 0

    @property
    def relevance_requests(self) -> int:
        """Total relevance lookups."""
        return self.relevance_hits + self.relevance_misses

    @property
    def plan_requests(self) -> int:
        """Total plan lookups."""
        return self.plan_hits + self.plan_misses

    @property
    def relevance_hit_rate(self) -> float:
        """Fraction of relevance lookups served from cache."""
        total = self.relevance_requests
        return self.relevance_hits / total if total else 0.0

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of plan lookups served from cache."""
        total = self.plan_requests
        return self.plan_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict form (for JSON export and the bench reports)."""
        return {
            "relevance_hits": self.relevance_hits,
            "relevance_misses": self.relevance_misses,
            "relevance_hit_rate": self.relevance_hit_rate,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": self.plan_hit_rate,
            "evictions": self.evictions,
        }


def fingerprint_array(array: np.ndarray) -> str:
    """Content fingerprint of one ndarray (dtype + shape + bytes)."""
    arr = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def fingerprint_weights(weights: "LSTMCellWeights") -> str:
    """Content fingerprint of one layer's cell weights, memoized.

    The digest covers every gate's ``W``, ``U``, and ``b`` — anything that
    can change a relevance value or a gate pre-activation. It is memoized on
    the weights object (weights are immutable at inference time), so the
    hashing cost is paid once per layer per process, not once per run.
    """
    cached = getattr(weights, "_plan_fingerprint", None)
    if cached is not None:
        return cached
    from repro.nn.lstm_cell import GATE_ORDER

    digest = hashlib.blake2b(digest_size=16)
    for gate in GATE_ORDER:
        for mat in (weights.gate_w(gate), weights.gate_u(gate), weights.gate_b(gate)):
            digest.update(np.ascontiguousarray(mat).tobytes())
    fingerprint = digest.hexdigest()
    weights._plan_fingerprint = fingerprint
    return fingerprint


def invalidate_weight_fingerprints(network) -> None:
    """Drop the memoized per-layer digests after a weight mutation.

    :func:`fingerprint_weights` memoizes on the weights object under the
    inference-time immutability assumption. Training breaks it: an
    optimizer step (or :func:`repro.nn.calibrate.drift_network`, whose
    ``deepcopy`` even clones the memo) rewrites the arrays in place and
    would leave :func:`fingerprint_network` reporting the stale digest.
    Every mutating path must call this before re-fingerprinting.
    """
    for layer in network.layers:
        if hasattr(layer.weights, "_plan_fingerprint"):
            del layer.weights._plan_fingerprint


def fingerprint_network(network) -> str:
    """Content fingerprint of a whole :class:`~repro.nn.network.LSTMNetwork`.

    Combines the embedding table, every layer's cell-weight fingerprint
    (:func:`fingerprint_weights`), and the head parameters — anything that
    can change a logit bit. The serving runtime keys its shared-memory
    weight arena on this digest, so two runtimes publishing the same
    network never collide with two publishing different ones.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(fingerprint_array(network.embedding).encode())
    for layer in network.layers:
        digest.update(fingerprint_weights(layer.weights).encode())
    digest.update(fingerprint_array(network.head_weight).encode())
    digest.update(fingerprint_array(network.head_bias).encode())
    return digest.hexdigest()


class PlanCache:
    """Memoizes per-sequence structural planning across executions.

    Planning a sequence costs a relevance pass (Algorithm 2) plus a
    breakpoint search and an LPT tissue alignment — and the benchmark
    harness re-executes the *same* token batches under dozens of
    (mode, threshold) configurations, recomputing all of it each time.
    The cache splits the work at its natural reuse boundaries:

    * **relevance** is keyed on ``(weights fingerprint, layer-input
      fingerprint, exact-variant flag)`` — it does not depend on any
      threshold, so one entry serves every threshold set of a sweep;
    * **plans** (breakpoints + sub-layers + aligned tissues) are keyed on
      the relevance key extended with ``(alpha_inter, MTS, GPU spec)`` —
      the full configuration that determines the structural schedule.

    Both stores are bounded LRU maps; hit/miss counters are kept in
    :attr:`stats` and rendered by :func:`repro.bench.reporting.
    format_cache_stats`. A shared instance is carried by
    :class:`repro.core.pipeline.OptimizedLSTM` and (session-wide) by
    :class:`repro.bench.harness.ExperimentContext`.

    Thread-safe with *single-flight* builds: the in-process dispatcher
    (:mod:`repro.core.parallel`) runs equal-plan shards concurrently, and
    a relevance pass is exactly the kind of work that must not duplicate.
    On a cold key, one thread becomes the build leader and computes
    outside the lock; peers requesting the same key park on an event and
    are served the stored value as hits. Miss counters therefore count
    *distinct builds* — the property ``bench_parallel``'s cold-start gate
    asserts.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._relevance: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._plans: OrderedDict[Hashable, CachedLayerPlan] = OrderedDict()
        self._lock = threading.Lock()
        self._pending: dict[Hashable, threading.Event] = {}
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._relevance) + len(self._plans)

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._relevance.clear()
            self._plans.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.stats = PlanCacheStats()

    def relevance(
        self, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Cached relevance lookup; ``compute`` runs only on a miss."""

        def build() -> np.ndarray:
            value = np.asarray(compute())
            value.setflags(write=False)  # shared across plans and records
            return value

        return self._single_flight(
            self._relevance, key, build, "relevance_hits", "relevance_misses"
        )

    def layer_plan(
        self,
        plan_key: Hashable,
        relevance_key: Hashable,
        compute_relevance: Callable[[], np.ndarray],
        build_plan: Callable[[np.ndarray], CachedLayerPlan],
    ) -> CachedLayerPlan:
        """Cached plan lookup with relevance-level fallthrough.

        On a plan miss, the relevance store is consulted (and filled) before
        ``build_plan`` runs — so sweeping thresholds over the same batch
        misses the plan store but still reuses every relevance array.
        """

        def build() -> CachedLayerPlan:
            # Leader-only: the nested relevance lookup runs outside the
            # cache lock, so it takes its own single-flight round.
            return build_plan(self.relevance(relevance_key, compute_relevance))

        return self._single_flight(
            self._plans, plan_key, build, "plan_hits", "plan_misses"
        )

    def _single_flight(
        self,
        store: OrderedDict,
        key: Hashable,
        build: Callable[[], object],
        hit_attr: str,
        miss_attr: str,
    ):
        """Locked lookup; on a cold key one leader builds, peers wait.

        The build runs with the lock *released* (relevance passes are the
        expensive part), guarded by a per-key pending event. Waiters loop
        back after the event fires and take the stored value as a hit —
        or, if the leader's build raised, one of them becomes the next
        leader. Miss counters count distinct completed builds.
        """
        while True:
            with self._lock:
                hit = store.get(key)
                if hit is not None:
                    store.move_to_end(key)
                    setattr(self.stats, hit_attr, getattr(self.stats, hit_attr) + 1)
                    return hit
                event = self._pending.get(key)
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
                    break  # this thread leads the build
            event.wait()
        try:
            value = build()
        except BaseException:
            with self._lock:
                self._pending.pop(key, None)
            event.set()
            raise
        with self._lock:
            setattr(self.stats, miss_attr, getattr(self.stats, miss_attr) + 1)
            self._store(store, key, value)
            self._pending.pop(key, None)
        event.set()
        return value

    def _store(self, store: OrderedDict, key: Hashable, value) -> None:
        # Callers hold self._lock.
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)
            self.stats.evictions += 1


@dataclass
class SequencePlan:
    """Per-sequence execution plan: one record per layer."""

    layers: list[LayerPlanRecord]

    @property
    def total_breakpoints(self) -> int:
        """Breakpoints found across all layers."""
        return sum(len(rec.breakpoints) for rec in self.layers)

    @property
    def mean_tissue_size(self) -> float:
        """Layer-averaged mean tissue size."""
        if not self.layers:
            return 0.0
        return float(np.mean([rec.mean_tissue_size for rec in self.layers]))

    @property
    def mean_skip_fraction(self) -> float:
        """Layer-averaged mean skipped-row fraction."""
        if not self.layers:
            return 0.0
        return float(np.mean([rec.mean_skip_fraction for rec in self.layers]))
