"""Execution-plan records.

The executor separates *numerics* from *timing*: while it runs the exact
arithmetic of an optimized execution, it records — per sequence, per layer —
the structural decisions the optimizations made (breakpoints, tissue
composition, rows skipped). The :mod:`repro.core.trace_builder` later turns
these records into the GPU kernel trace that the timing simulator consumes.
This mirrors the paper's own methodology (Fig. 13): PyTorch produces the
breakpoints and trivial-row counts, DeepBench replays them on the board.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, PlanError

if TYPE_CHECKING:
    from repro.core.breakpoints import SubLayer
    from repro.core.tissue import Tissue
    from repro.nn.lstm_cell import LSTMCellWeights


@dataclass
class TissueRecord:
    """One executed tissue (or single cell when the inter level is off).

    Attributes:
        cells: The fused cells as ``(sublayer_index, timestamp)`` pairs.
        skip_fraction: Fraction of ``U_{f,i,c}`` rows skipped by the tissue's
            shared load (the intersection mask; 0 when DRS is off).
        warp_skip_fraction: Fraction of warps that were *entirely* trivial —
            what a software-only DRS can skip without divergence.
    """

    cells: list[tuple[int, int]]
    skip_fraction: float = 0.0
    warp_skip_fraction: float = 0.0

    @property
    def size(self) -> int:
        """Number of fused cells."""
        return len(self.cells)


@dataclass
class LayerPlanRecord:
    """Structural record of one layer's optimized execution."""

    layer_index: int
    hidden_size: int
    input_size: int
    seq_length: int
    breakpoints: list[int] = field(default_factory=list)
    sublayer_lengths: list[int] = field(default_factory=list)
    tissues: list[TissueRecord] = field(default_factory=list)
    relevance: np.ndarray | None = None

    @property
    def num_sublayers(self) -> int:
        """Number of independent sub-layers after division."""
        return len(self.sublayer_lengths) if self.sublayer_lengths else 1

    @property
    def num_tissues(self) -> int:
        """Number of tissues (equals cell count when the inter level is off)."""
        return len(self.tissues)

    @property
    def mean_tissue_size(self) -> float:
        """Average number of cells fused per tissue."""
        if not self.tissues:
            return 0.0
        return float(np.mean([t.size for t in self.tissues]))

    @property
    def mean_skip_fraction(self) -> float:
        """Cell-weighted average skipped-row fraction."""
        if not self.tissues:
            return 0.0
        total_cells = sum(t.size for t in self.tissues)
        return sum(t.skip_fraction * t.size for t in self.tissues) / total_cells

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        covered = sorted(t for rec in self.tissues for _, t in rec.cells)
        if covered != list(range(self.seq_length)):
            raise PlanError(
                f"layer {self.layer_index}: tissues cover {len(covered)} cells, "
                f"expected {self.seq_length}"
            )
        if self.sublayer_lengths and sum(self.sublayer_lengths) != self.seq_length:
            raise PlanError(f"layer {self.layer_index}: sub-layer lengths are inconsistent")


@dataclass(frozen=True)
class CachedLayerPlan:
    """One layer's structural plan for one sequence, as cached/reused.

    This is the *input-side* counterpart of :class:`LayerPlanRecord`: the
    record describes what executed (including measured skip statistics);
    the cached plan holds only what can be decided *before* execution —
    relevance, breakpoints, sub-layers, and the aligned tissue schedule —
    which is exactly the part that is identical across repeated runs of the
    same sequence under the same configuration.

    Attributes:
        relevance: Per-timestep relevance ``S`` of shape ``(T,)``. Marked
            read-only when served from a :class:`PlanCache` because many
            plans/records may share it.
        breakpoints: Sorted timestamps where the layer divides.
        sublayers: The division (empty breakpoints -> one sub-layer).
        tissues: The MTS-aligned tissue schedule.
        signature: Hashable schedule key (:func:`repro.core.tissue.
            schedule_key`); equal signatures mean structurally identical
            execution, which is what the batched combined mode groups by.
    """

    relevance: np.ndarray
    breakpoints: tuple[int, ...]
    sublayers: tuple["SubLayer", ...]
    tissues: tuple["Tissue", ...]
    signature: tuple


@dataclass
class PlanCacheStats:
    """Hit/miss counters of one :class:`PlanCache`."""

    relevance_hits: int = 0
    relevance_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    evictions: int = 0

    @property
    def relevance_requests(self) -> int:
        """Total relevance lookups."""
        return self.relevance_hits + self.relevance_misses

    @property
    def plan_requests(self) -> int:
        """Total plan lookups."""
        return self.plan_hits + self.plan_misses

    @property
    def relevance_hit_rate(self) -> float:
        """Fraction of relevance lookups served from cache."""
        total = self.relevance_requests
        return self.relevance_hits / total if total else 0.0

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of plan lookups served from cache."""
        total = self.plan_requests
        return self.plan_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict form (for JSON export and the bench reports)."""
        return {
            "relevance_hits": self.relevance_hits,
            "relevance_misses": self.relevance_misses,
            "relevance_hit_rate": self.relevance_hit_rate,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": self.plan_hit_rate,
            "evictions": self.evictions,
        }


def fingerprint_array(array: np.ndarray) -> str:
    """Content fingerprint of one ndarray (dtype + shape + bytes)."""
    arr = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def fingerprint_weights(weights: "LSTMCellWeights") -> str:
    """Content fingerprint of one layer's cell weights, memoized.

    The digest covers every gate's ``W``, ``U``, and ``b`` — anything that
    can change a relevance value or a gate pre-activation. It is memoized on
    the weights object (weights are immutable at inference time), so the
    hashing cost is paid once per layer per process, not once per run.
    """
    cached = getattr(weights, "_plan_fingerprint", None)
    if cached is not None:
        return cached
    from repro.nn.lstm_cell import GATE_ORDER

    digest = hashlib.blake2b(digest_size=16)
    for gate in GATE_ORDER:
        for mat in (weights.gate_w(gate), weights.gate_u(gate), weights.gate_b(gate)):
            digest.update(np.ascontiguousarray(mat).tobytes())
    fingerprint = digest.hexdigest()
    weights._plan_fingerprint = fingerprint
    return fingerprint


def fingerprint_network(network) -> str:
    """Content fingerprint of a whole :class:`~repro.nn.network.LSTMNetwork`.

    Combines the embedding table, every layer's cell-weight fingerprint
    (:func:`fingerprint_weights`), and the head parameters — anything that
    can change a logit bit. The serving runtime keys its shared-memory
    weight arena on this digest, so two runtimes publishing the same
    network never collide with two publishing different ones.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(fingerprint_array(network.embedding).encode())
    for layer in network.layers:
        digest.update(fingerprint_weights(layer.weights).encode())
    digest.update(fingerprint_array(network.head_weight).encode())
    digest.update(fingerprint_array(network.head_bias).encode())
    return digest.hexdigest()


class PlanCache:
    """Memoizes per-sequence structural planning across executions.

    Planning a sequence costs a relevance pass (Algorithm 2) plus a
    breakpoint search and an LPT tissue alignment — and the benchmark
    harness re-executes the *same* token batches under dozens of
    (mode, threshold) configurations, recomputing all of it each time.
    The cache splits the work at its natural reuse boundaries:

    * **relevance** is keyed on ``(weights fingerprint, layer-input
      fingerprint, exact-variant flag)`` — it does not depend on any
      threshold, so one entry serves every threshold set of a sweep;
    * **plans** (breakpoints + sub-layers + aligned tissues) are keyed on
      the relevance key extended with ``(alpha_inter, MTS, GPU spec)`` —
      the full configuration that determines the structural schedule.

    Both stores are bounded LRU maps; hit/miss counters are kept in
    :attr:`stats` and rendered by :func:`repro.bench.reporting.
    format_cache_stats`. A shared instance is carried by
    :class:`repro.core.pipeline.OptimizedLSTM` and (session-wide) by
    :class:`repro.bench.harness.ExperimentContext`.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._relevance: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._plans: OrderedDict[Hashable, CachedLayerPlan] = OrderedDict()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        return len(self._relevance) + len(self._plans)

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        self._relevance.clear()
        self._plans.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.stats = PlanCacheStats()

    def relevance(
        self, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Cached relevance lookup; ``compute`` runs only on a miss."""
        hit = self._relevance.get(key)
        if hit is not None:
            self._relevance.move_to_end(key)
            self.stats.relevance_hits += 1
            return hit
        self.stats.relevance_misses += 1
        value = np.asarray(compute())
        value.setflags(write=False)  # shared across plans and records
        self._store(self._relevance, key, value)
        return value

    def layer_plan(
        self,
        plan_key: Hashable,
        relevance_key: Hashable,
        compute_relevance: Callable[[], np.ndarray],
        build_plan: Callable[[np.ndarray], CachedLayerPlan],
    ) -> CachedLayerPlan:
        """Cached plan lookup with relevance-level fallthrough.

        On a plan miss, the relevance store is consulted (and filled) before
        ``build_plan`` runs — so sweeping thresholds over the same batch
        misses the plan store but still reuses every relevance array.
        """
        hit = self._plans.get(plan_key)
        if hit is not None:
            self._plans.move_to_end(plan_key)
            self.stats.plan_hits += 1
            return hit
        self.stats.plan_misses += 1
        relevance = self.relevance(relevance_key, compute_relevance)
        plan = build_plan(relevance)
        self._store(self._plans, plan_key, plan)
        return plan

    def _store(self, store: OrderedDict, key: Hashable, value) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)
            self.stats.evictions += 1


@dataclass
class SequencePlan:
    """Per-sequence execution plan: one record per layer."""

    layers: list[LayerPlanRecord]

    @property
    def total_breakpoints(self) -> int:
        """Breakpoints found across all layers."""
        return sum(len(rec.breakpoints) for rec in self.layers)

    @property
    def mean_tissue_size(self) -> float:
        """Layer-averaged mean tissue size."""
        if not self.layers:
            return 0.0
        return float(np.mean([rec.mean_tissue_size for rec in self.layers]))

    @property
    def mean_skip_fraction(self) -> float:
        """Layer-averaged mean skipped-row fraction."""
        if not self.layers:
            return 0.0
        return float(np.mean([rec.mean_skip_fraction for rec in self.layers]))
