"""The GRU adjustment of the paper's techniques (Section II-B).

The paper notes its methods "can also be applied to GRUs with simple
adjustment". The adjustments:

* **Relevance (inter-cell).** A GRU cell's context link is weak when the
  previous hidden state cannot modulate the new one. ``h_{t-1}`` enters
  through three paths — the update gate ``z``, the reset gate ``r``, and
  the pass-through term ``(1 - z) * h_{t-1}``. The sensitive-area argument
  of Algorithm 2 transfers directly to the ``z`` and ``r`` sigmoids and to
  the candidate tanh; the pass-through is covered by requiring ``z`` to
  saturate *high* (``z ~ 1`` discards the old state entirely — the GRU's
  one-sided analogue of the forget gate's role in Eq. 3).
* **Row skipping (intra-cell).** The update gate plays the output gate's
  selector role: where ``z_t`` is near zero, ``h_t ~= h_{t-1}`` regardless
  of the candidate, so the matching rows of ``U_r`` and ``U_n`` can skip
  their loads and computations (see :func:`repro.nn.gru.gru_cell_step`,
  which implements the skip numerics).

Only two of the three recurrent matrices are skippable (``U_z`` is the
selector), so the ceiling on weight compression is ``2/3`` of the united
matrix instead of the LSTM's ``3/4``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import SENSITIVE_WIDTH
from repro.nn.gru import GRU_GATE_ORDER, GRUCellWeights


def gru_recurrent_row_ranges(weights: GRUCellWeights) -> dict[str, np.ndarray]:
    """Row-wise L1 norms of the GRU recurrent matrices (Algorithm 2 line 2).

    ``h_{t-1}`` is bounded to ``[-1, 1]`` (the GRU output is a convex
    combination of tanh values), so ``[-D_g, D_g]`` bounds each gate's
    recurrent contribution.
    """
    return {g: np.abs(getattr(weights, f"u_{g}")).sum(axis=1) for g in GRU_GATE_ORDER}


def _check_projections(weights: GRUCellWeights, x_proj: dict[str, np.ndarray]) -> int:
    hidden = weights.hidden_size
    length = None
    for gate in GRU_GATE_ORDER:
        if gate not in x_proj:
            raise ShapeError(f"x_proj missing GRU gate {gate!r}")
        arr = x_proj[gate]
        if arr.ndim != 2 or arr.shape[1] != hidden:
            raise ShapeError(f"x_proj[{gate!r}] must be (T, {hidden}), got {arr.shape}")
        if length is None:
            length = arr.shape[0]
        elif arr.shape[0] != length:
            raise ShapeError("x_proj gates disagree on sequence length")
    assert length is not None
    return length


def gru_relevance_values(
    weights: GRUCellWeights,
    x_proj: dict[str, np.ndarray],
    row_ranges: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Per-timestep relevance of the GRU context link.

    Mirrors Algorithm 2's structure:

    * ``S_z`` — the update gate's sensitive-area overlap, measured
      one-sidedly like the LSTM forget gate but in the *opposite*
      direction: the link is severed when ``z`` saturates at 1 (old state
      discarded), i.e. when the reachable range sits above +2.
    * ``S_r`` / ``S_n`` — symmetric overlaps for the reset gate and the
      candidate (the line-5 expression).
    * Per element: ``S = S_z * (S_r + S_n)`` — the old state matters only
      if the update gate is still modulating (``S_z`` > 0), through either
      the reset path or the candidate path. Summed over the hidden dim.
    """
    length = _check_projections(weights, x_proj)
    ranges = row_ranges if row_ranges is not None else gru_recurrent_row_ranges(weights)

    # One-sided update-gate term: zero iff the whole range is above +2.
    center_z = x_proj["z"] + weights.b_z
    s_z = np.minimum(SENSITIVE_WIDTH, np.maximum(2.0 - (center_z - ranges["z"]), 0.0))

    per_gate = {}
    for gate in ("r", "n"):
        center = np.abs(x_proj[gate] + getattr(weights, f"b_{gate}"))
        term_a = 2.0 + np.minimum(2.0, center)
        term_b = np.minimum(2.0, 2.0 + ranges[gate] - np.maximum(2.0, center))
        per_gate[gate] = np.clip(np.minimum(term_a, term_b), 0.0, SENSITIVE_WIDTH)

    s_elem = s_z * (per_gate["r"] + per_gate["n"])
    s = s_elem.sum(axis=1)
    if s.shape != (length,):
        raise ShapeError("internal: GRU relevance reduction produced a bad shape")
    return s


def gru_trivial_row_mask(z_t: np.ndarray, alpha_intra: float) -> np.ndarray:
    """Trivial rows for GRU-DRS: update-gate elements near zero.

    Where ``z_t < alpha`` the new hidden value is (almost) the old one, so
    the reset/candidate rows feeding that element are irrelevant.
    """
    z_t = np.asarray(z_t, dtype=np.float64)
    if alpha_intra < 0:
        raise ShapeError(f"alpha_intra must be non-negative, got {alpha_intra}")
    if alpha_intra == 0.0:
        return np.zeros_like(z_t, dtype=bool)
    return z_t < alpha_intra


def gru_compression_ratio(masks) -> float:
    """Fraction of the united GRU recurrent matrix eliminated.

    The skipped rows cover ``U_r`` and ``U_n`` — 2 of the 3 gate matrices.
    """
    if not masks:
        return 0.0
    mean_skip = float(np.mean([np.asarray(m, dtype=bool).mean() for m in masks]))
    return (2.0 / 3.0) * mean_skip
