"""Tissue formation, alignment, and MTS calibration (Sections IV-C / IV-D).

Once a layer is divided into independent sub-layers, one cell per sub-layer
is fused into a *tissue*; all cells of a tissue execute concurrently as a
single ``Sgemm(U_{f,i,c,o}, H_t)``, so the united weight matrix is loaded
once per tissue instead of once per cell. The data dependence along each
sub-layer becomes a dependence across tissues.

Naive formation (:func:`form_tissues`) takes the ``k``-th cell of every
sub-layer, which produces *fat* tissues (wider than the maximum tissue
size, oversubscribing shared-memory bandwidth) early and *thin* tissues
late. :func:`align_tissues` rebalances: it schedules the sub-layer chains
onto tissue slots of capacity MTS, preferring the longest remaining chain
(the classic longest-processing-time rule), which both respects every chain
dependence and minimizes the number of tissues.

:func:`calibrate_mts` performs the offline step 1 of Fig. 10: sweep the
tissue size on the target GPU model and return the knee of the performance
curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.breakpoints import SubLayer
from repro.errors import CalibrationError, PlanError


@dataclass
class Tissue:
    """One tissue: the fused cells, each identified as (sub-layer, timestamp)."""

    cells: list[tuple[int, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of fused cells."""
        return len(self.cells)

    def timestamps(self) -> list[int]:
        """Original cell timestamps inside this tissue."""
        return [t for _, t in self.cells]


def form_tissues(sublayers: list[SubLayer]) -> list[Tissue]:
    """Naive tissue formation: fuse the k-th cell of every sub-layer.

    This reproduces Fig. 8(b1): tissue ``k`` contains one cell from every
    sub-layer that still has a ``k``-th cell, so early tissues are as wide
    as the number of sub-layers and late tissues shrink.
    """
    if not sublayers:
        raise PlanError("form_tissues needs at least one sub-layer")
    longest = max(s.length for s in sublayers)
    tissues = []
    for k in range(longest):
        cells = [
            (idx, sub.start + k) for idx, sub in enumerate(sublayers) if k < sub.length
        ]
        tissues.append(Tissue(cells=cells))
    return tissues


def align_tissues(sublayers: list[SubLayer], mts: int) -> list[Tissue]:
    """Tissue formation + alignment under the maximum tissue size.

    Greedy chain scheduling: at every tissue step each sub-layer offers its
    next unscheduled cell; if more than ``mts`` are on offer, the sub-layers
    with the most remaining cells win (LPT rule). No context link is broken
    beyond the existing breakpoints and every tissue has ``size <= mts``.
    """
    if mts < 1:
        raise PlanError(f"mts must be >= 1, got {mts}")
    if not sublayers:
        raise PlanError("align_tissues needs at least one sub-layer")
    progress = [0] * len(sublayers)
    tissues: list[Tissue] = []
    remaining = sum(s.length for s in sublayers)
    while remaining > 0:
        candidates = [
            idx for idx, sub in enumerate(sublayers) if progress[idx] < sub.length
        ]
        # Longest remaining chain first; stable tie-break on sub-layer index.
        candidates.sort(key=lambda idx: (-(sublayers[idx].length - progress[idx]), idx))
        chosen = candidates[:mts]
        cells = []
        for idx in sorted(chosen):
            cells.append((idx, sublayers[idx].start + progress[idx]))
            progress[idx] += 1
            remaining -= 1
        tissues.append(Tissue(cells=cells))
    return tissues


def schedule_key(tissues: list[Tissue] | tuple[Tissue, ...]) -> tuple:
    """A hashable signature of a tissue schedule.

    Two layers with equal signatures execute the *exact same* structural
    plan — same breakpoints (recoverable from the ``(sub-layer, timestamp)``
    cells), same tissue composition, same order. The batched executor groups
    combined-mode sequences by this key so that same-plan sequences execute
    together, and the :class:`~repro.core.plan.PlanCache` uses it when
    comparing cached plans.
    """
    return tuple(tuple(t.cells) for t in tissues)


def validate_schedule(sublayers: list[SubLayer], tissues: list[Tissue], mts: int) -> None:
    """Check a tissue schedule: capacity, coverage, and chain order.

    Raises :class:`~repro.errors.PlanError` on any violation. Used by tests
    and by the executor's debug mode.
    """
    seen: dict[tuple[int, int], int] = {}
    for step, tissue in enumerate(tissues):
        if tissue.size > mts:
            raise PlanError(f"tissue {step} has {tissue.size} cells (MTS {mts})")
        for cell in tissue.cells:
            if cell in seen:
                raise PlanError(f"cell {cell} scheduled twice")
            seen[cell] = step
    expected = {
        (idx, t) for idx, sub in enumerate(sublayers) for t in sub.timestamps()
    }
    if set(seen) != expected:
        raise PlanError("tissue schedule does not cover the layer exactly")
    for idx, sub in enumerate(sublayers):
        steps = [seen[(idx, t)] for t in sub.timestamps()]
        if any(b <= a for a, b in zip(steps, steps[1:])):
            raise PlanError(f"sub-layer {idx} chain order violated")


def minimum_tissues(sublayers: list[SubLayer], mts: int) -> int:
    """Lower bound on the tissue count (Eq. 7 generalized to real chains).

    The schedule can finish no earlier than the longest chain and no faster
    than total-work over capacity: ``max(longest, ceil(N / MTS))``.
    """
    if mts < 1:
        raise PlanError(f"mts must be >= 1, got {mts}")
    total = sum(s.length for s in sublayers)
    longest = max(s.length for s in sublayers)
    return max(longest, -(-total // mts))


def calibrate_mts(
    spec,
    hidden_size: int,
    seq_length: int = 60,
    max_tissue_size: int = 12,
) -> int:
    """Offline MTS search (Fig. 10, step 1).

    Simulates one LSTM layer executed with forced equal division into
    tissues of size ``1 .. max_tissue_size`` on the given GPU spec and
    returns the size with the best performance — the knee of Fig. 9.
    """
    from repro.core.trace_builder import forced_tissue_layer_trace
    from repro.gpu.simulator import TimingSimulator

    if max_tissue_size < 1:
        raise CalibrationError("max_tissue_size must be >= 1")
    simulator = TimingSimulator(spec)
    best_size, best_time = 1, float("inf")
    for size in range(1, max_tissue_size + 1):
        trace = simulator.run_trace(
            forced_tissue_layer_trace(spec, hidden_size, seq_length, size)
        )
        if trace.total_time < best_time:
            best_time = trace.total_time
            best_size = size
    return best_size
