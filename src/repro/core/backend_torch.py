"""Optional torch stepwise backend (gated on ``import torch``).

A straightforward fp64 torch lowering of the stepwise loop: one fused
pre-activation GEMM per step (``h @ U.T``) with the sigmoid/tanh gate
epilogue and DRS masking as tensor ops. When torch is absent — the normal
case in this repo's CI — the backend reports unavailable with a clean
reason and everything that asked for ``backend="torch"`` fails fast with
:class:`~repro.errors.BackendUnavailableError` instead of an ImportError
mid-run; the registry never routes ``fused`` here.

Combined-mode plan groups fall back to the numpy
:class:`~repro.core.program.CombinedGroupProgram`, exactly like the numba
backend: mode-complete correctness, stepwise acceleration only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BackendUnavailableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context_prediction import PredictedLink
    from repro.core.executor import _UnitedWeights

try:  # pragma: no cover - absent in the CI container
    import torch
except Exception:  # pragma: no cover - the expected path here
    torch = None


def available() -> bool:
    """Whether torch is importable on this host."""
    return torch is not None


def unavailable_reason() -> str:
    """Why the backend cannot run (empty when available)."""
    return "" if available() else "torch is not installed"


class TorchStepwiseProgram:  # pragma: no cover - needs torch to construct
    """Torch twin of :class:`repro.core.cgen.CGenStepwiseProgram`."""

    bit_exact = False

    def __init__(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        batch: int,
        seq_len: int,
        drs_alpha: float = 0.0,
    ) -> None:
        if torch is None:
            raise BackendUnavailableError(unavailable_reason())
        hidden = united.u.shape[1]
        self.batch = batch
        self.seq_len = seq_len
        self.hidden = hidden
        self.drs_alpha = drs_alpha
        self._u_t = torch.from_numpy(np.ascontiguousarray(united.u.T))  # (H, 4H)
        self._bias = torch.from_numpy(np.ascontiguousarray(united.b))
        self._w_t = united.w.T
        self._w_t_dense = np.ascontiguousarray(united.w.T)
        self._h_bar = torch.from_numpy(np.ascontiguousarray(link.h_bar))
        self._c_bar = torch.from_numpy(np.ascontiguousarray(link.c_bar))
        self._slices = dict(united.slices)
        self.proj = np.empty((batch, seq_len, 4 * hidden))
        self.masks_all = (
            np.empty((batch, seq_len, hidden), dtype=bool) if drs_alpha > 0.0 else None
        )

    def project(self, xs: np.ndarray, exact: bool = False) -> dict[str, np.ndarray]:
        """Stage input projections (same contract as the cgen program)."""
        if exact:
            np.matmul(xs[:, :, None, :], self._w_t, out=self.proj[:, :, None, :])
        else:
            flat = xs.reshape(-1, xs.shape[-1])
            np.matmul(flat, self._w_t_dense, out=self.proj.reshape(flat.shape[0], -1))
        return {g: self.proj[..., sl] for g, sl in self._slices.items()}

    def execute(
        self,
        hs: np.ndarray,
        reset_cols: list[np.ndarray | None] | None = None,
        cs: np.ndarray | None = None,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
        state_out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        hidden = self.hidden
        alpha = self.drs_alpha
        drs = alpha > 0.0
        h = torch.zeros((self.batch, hidden), dtype=torch.float64)
        c = torch.zeros((self.batch, hidden), dtype=torch.float64)
        if h0 is not None:
            h.copy_(torch.from_numpy(np.ascontiguousarray(h0)))
        if c0 is not None:
            c.copy_(torch.from_numpy(np.ascontiguousarray(c0)))
        proj = torch.from_numpy(self.proj)
        for t in range(self.seq_len):
            if reset_cols is not None and reset_cols[t] is not None:
                reset = torch.from_numpy(reset_cols[t])
                h = torch.where(reset, self._h_bar, h)
                c = torch.where(reset, self._c_bar, c)
            pre = proj[:, t] + h @ self._u_t + self._bias
            f = torch.sigmoid(pre[:, :hidden])
            i = torch.sigmoid(pre[:, hidden : 2 * hidden])
            g = torch.tanh(pre[:, 2 * hidden : 3 * hidden])
            o = torch.sigmoid(pre[:, 3 * hidden :])
            c = f * c + i * g
            if drs:
                mask = o < alpha
                self.masks_all[:, t] = mask.numpy()
                c = torch.where(mask, torch.zeros((), dtype=torch.float64), c)
            h = o * torch.tanh(c)
            hs[:, t] = h.numpy()
            if cs is not None:
                cs[:, t] = c.numpy()
        if state_out is not None:
            out_h, out_c = state_out
            out_h[:] = h.numpy()
            out_c[:] = c.numpy()
