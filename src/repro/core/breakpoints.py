"""Weak-link search and LSTM layer division (Section IV-B).

A *breakpoint* is a link between consecutive cells whose relevance value is
below the threshold ``alpha_inter``; dividing the layer at its breakpoints
yields independent *sub-layers* that can then be parallelized (tissue
formation, Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError


@dataclass(frozen=True)
class SubLayer:
    """A contiguous run of cells ``[start, end)`` within one LSTM layer."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise PlanError(f"invalid sub-layer bounds [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of cells in the sub-layer."""
        return self.end - self.start

    def timestamps(self) -> range:
        """The original cell timestamps covered by this sub-layer."""
        return range(self.start, self.end)


def find_breakpoints(relevance: np.ndarray, alpha_inter: float) -> list[int]:
    """Timestamps ``t`` whose incoming link (from ``t - 1``) is weak.

    Args:
        relevance: Per-timestep relevance ``S`` of shape ``(T,)``
            (from :func:`repro.core.relevance.relevance_values`).
        alpha_inter: The relevance threshold; links with ``S < alpha`` break.

    Returns:
        Sorted breakpoint timestamps in ``[1, T - 1]`` (``t = 0`` has no
        incoming link). An ``alpha_inter`` of 0 returns no breakpoints —
        the baseline case.
    """
    relevance = np.asarray(relevance, dtype=np.float64)
    if relevance.ndim != 1:
        raise PlanError(f"relevance must be 1-D, got shape {relevance.shape}")
    if alpha_inter < 0:
        raise PlanError(f"alpha_inter must be non-negative, got {alpha_inter}")
    if alpha_inter == 0.0:
        return []
    return [int(t) for t in np.flatnonzero(relevance < alpha_inter) if t >= 1]


def divide_layer(seq_length: int, breakpoints: list[int]) -> list[SubLayer]:
    """Divide a layer of ``seq_length`` cells at the given breakpoints.

    Returns sub-layers ordered by start timestamp; with no breakpoints the
    whole layer is one sub-layer.
    """
    if seq_length <= 0:
        raise PlanError(f"seq_length must be positive, got {seq_length}")
    boundaries = sorted(set(breakpoints))
    if boundaries and (boundaries[0] < 1 or boundaries[-1] >= seq_length):
        raise PlanError(f"breakpoints {boundaries} out of range for length {seq_length}")
    edges = [0, *boundaries, seq_length]
    return [SubLayer(edges[k], edges[k + 1]) for k in range(len(edges) - 1)]
