"""Numerically exact, batched execution of every evaluated LSTM scheme.

The executor runs the *actual arithmetic* of each scheme (so accuracy
results are measured, not modeled) while recording the structural plan that
the :mod:`repro.core.trace_builder` converts into GPU kernel traces (so
timing results come from the simulator). Modes:

* ``BASELINE`` — Algorithm 1, the exact reference.
* ``INTER`` — layer division at weak links + predicted context links +
  tissue-parallel execution. The tissue grouping only changes *when* cells
  execute, never their inputs, so the numerics reduce to: reset the
  recurrent state to the predicted link at every breakpoint.
* ``INTRA`` — Algorithm 3 DRS: compute ``o_t`` first, zero the state
  elements of trivial rows.
* ``COMBINED`` — both; inside a tissue the skipped rows are the
  intersection of the fused cells' trivial rows (the shared weight load
  constraint), so the executor walks tissues in schedule order.
* ``ZERO_PRUNE`` — the Fig. 16 baseline: magnitude-pruned ``U`` matrices,
  otherwise the baseline flow.

Three levels of batching keep the hot paths vectorized:

* **Gate fusion.** Every mode drives the recurrence through the *united*
  matrices; the combined mode runs one ``(G, k, H) @ (H, 4H)`` GEMM per
  tissue and one ``(B, T, E) @ (E, 4H)`` GEMM per layer for the input
  projections. The fused products are sliced per gate before the
  activations, which is bit-identical to the per-gate computation.
* **Batch-invariant stepwise recurrence.** The stepwise recurrent products
  run as *stacked per-row GEMVs* — ``h[:, None, :] @ U_g.T`` — instead of
  one ``(B, H) @ (H, H)`` GEMM (:func:`_row_gemv`). A ``(1, H)`` slice of
  a stacked matmul dispatches the exact GEMV the per-sequence walk uses,
  so every sequence's trajectory is bit-identical at *any* batch
  composition: solo runs, shards, and fleets of any grouping agree to the
  last bit. (The seed's batched GEMM did not have this property — its
  bits drifted between GEMV and GEMM dispatch across batch sizes.) The
  classifier head is lifted the same way for pooled readouts.
* **Plan grouping.** Combined-mode sequences whose structural plan
  (breakpoints + aligned tissue schedule) is identical execute *together*:
  each tissue step becomes a single stacked ``(G, k, H) @ (H, 4H)`` matmul
  across the group instead of ``G`` separate per-sequence products.

All transformations are bit-compatible with the per-sequence walk
(:class:`repro.core.reference.ReferenceExecutor`); the equivalence is
property-tested in ``tests/test_executor_equivalence.py``.

With ``compile=True`` (the default) the executor additionally lowers each
layer's execution into a preallocated, fused program
(:mod:`repro.core.program`): staged gate weights, a reusable workspace,
one stacked matmul per timestep, and in-place ufunc chains — same bits,
no per-step allocation. Programs are cached in a
:class:`~repro.core.program.ProgramCache` keyed on (weights fingerprint,
shapes, and — in combined mode — the plan ``schedule_key``), so repeated
runs and fleet shards grouped by the runtime scheduler reuse one program.

Structural planning (relevance -> breakpoints -> aligned tissues) can be
memoized across runs through an optional :class:`~repro.core.plan.
PlanCache` — the benchmark harness shares one per session so threshold
sweeps recompute no relevance array twice.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.backends import (
    backend_is_exact,
    make_combined_program,
    make_stepwise_program,
    resolve_backend,
    validate_backend_name,
)
from repro.core.breakpoints import divide_layer, find_breakpoints
from repro.core.context_prediction import PredictedLink
from repro.core.plan import (
    CachedLayerPlan,
    LayerPlanRecord,
    PlanCache,
    SequencePlan,
    SingleCellTissues,
    TissueRecord,
    fingerprint_array,
    fingerprint_weights,
)
from repro.core.program import ProgramCache, StepwiseProgram
from repro.core.relevance import (
    exact_relevance_values,
    recurrent_row_ranges,
    relevance_values,
)
from repro.core.tissue import align_tissues, schedule_key
from repro.core.trace_builder import build_kernel_trace
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.nn.activations import sigmoid, tanh
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights
from repro.nn.network import LSTMNetwork
from repro.nn.pruning import prune_cell_weights
from repro.nn.quantize import Precision, QuantizedCell, quantize_cell_weights

if TYPE_CHECKING:
    from repro.obs.recorder import Recorder


class ExecutionMode(enum.Enum):
    """The five evaluated execution schemes."""

    BASELINE = "baseline"
    INTER = "inter"
    INTRA = "intra"
    COMBINED = "combined"
    ZERO_PRUNE = "zero_prune"


@dataclass(frozen=True)
class ExecutionConfig:
    """Knobs of one execution scheme.

    Attributes:
        mode: The scheme to run.
        alpha_inter: Relevance threshold (breaks links with ``S < alpha``).
        alpha_intra: Near-zero threshold on ``o_t`` (skips rows below it).
        mts: Maximum tissue size (from :func:`repro.core.tissue.calibrate_mts`).
        drs_style: ``"hardware"`` (CRM-backed) or ``"software"`` DRS.
        zero_prune_fraction: Element fraction erased in ``ZERO_PRUNE`` mode.
        use_exact_relevance: Use the exact-overlap ablation of Algorithm 2.
        spec: GPU model used when building kernel traces.
        compact_drs_gemm: Opt-in row-compacted DRS recurrent products
            (``h @ U_g[alive].T``), mimicking the paper's GPU kernel that
            never computes dropped rows. **Approximate**: column-subset
            GEMV/GEMM products change OpenBLAS's blocking and reduction
            order (measured 19-75 % last-bit mismatch across shapes), so
            this flag trades the bit-identity contract with the reference
            walk for the literal memory-access pattern; outputs agree to
            ``allclose`` tolerance only. Forces the interpreted stepwise
            DRS loop. Off by default.
        precision: Weight-storage policy (:class:`~repro.nn.quantize.
            Precision`). ``fp64`` (the default) is the identity — bits
            match the frozen reference in every mode. ``int8`` / ``fp16``
            quantize ``W``/``U`` once at executor construction, so every
            downstream path (programs, planning, the fleet) runs on the
            dequantized values; a plain string (``"int8"``) is coerced.
        backend: How compiled programs execute
            (:mod:`repro.core.backends`). ``"numpy"`` (the default) is
            the frozen fp64 bit-exact oracle; ``"fused"`` resolves to the
            best available fused-kernel lowering (generated C, then
            numba); ``"cgen"`` / ``"numba"`` / ``"torch"`` name one
            explicitly. Non-numpy backends require ``compile=True`` and
            agree with the oracle at tolerance level, never bit-exactly;
            structural plans stay backend-invariant. Availability is
            resolved at executor construction.
        threads: In-process work-unit parallelism
            (:mod:`repro.core.parallel`). ``1`` (the default) is today's
            serial walk — the dispatcher is never touched, so the path is
            bit-identical by construction. Above one, ``run_batch`` /
            ``run_stream`` partition the batch into contiguous row shards
            executed on a persistent thread pool; each shard's bits are
            independent of the batch composition (per-row GEMV / per-row
            projection lifts), so outputs stay bit-identical at every
            thread count. Shards share the plan cache (single-flight) and
            key their compiled programs per dispatch slot, so each thread
            owns its program workspaces.
    """

    mode: ExecutionMode = ExecutionMode.BASELINE
    alpha_inter: float = 0.0
    alpha_intra: float = 0.0
    mts: int = 5
    drs_style: str = "hardware"
    zero_prune_fraction: float = 0.37
    use_exact_relevance: bool = False
    spec: GPUSpec = TEGRA_X1
    compact_drs_gemm: bool = False
    precision: Precision = Precision()
    backend: str = "numpy"
    threads: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.precision, Precision):
            object.__setattr__(self, "precision", Precision.parse(self.precision))
        validate_backend_name(self.backend)
        if self.alpha_inter < 0 or self.alpha_intra < 0:
            raise ConfigurationError("thresholds must be non-negative")
        if self.mts < 1:
            raise ConfigurationError(f"mts must be >= 1, got {self.mts}")
        if self.drs_style not in ("hardware", "software"):
            raise ConfigurationError(f"unknown drs_style {self.drs_style!r}")
        if not 0 <= self.zero_prune_fraction < 1:
            raise ConfigurationError("zero_prune_fraction must be in [0, 1)")
        if self.threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {self.threads}")

    @property
    def inter_active(self) -> bool:
        """Whether layer division runs."""
        return self.mode in (ExecutionMode.INTER, ExecutionMode.COMBINED)

    @property
    def intra_active(self) -> bool:
        """Whether DRS runs."""
        return self.mode in (ExecutionMode.INTRA, ExecutionMode.COMBINED)


@dataclass
class ExecutionResult:
    """Outcome of one batched execution.

    ``timings`` carries the host-side wall-clock split of the run —
    ``exec_wall_s`` (whole numerical execution), ``plan_wall_s``
    (structural planning: relevance, breakpoints, tissue alignment) and
    ``compile_wall_s`` (program lowering on a program-cache miss; ``0.0``
    once programs are warm, so steady-state speedups never include
    compile amortization) — measured at layer granularity, so the cost is
    a few clock reads per layer regardless of batch or sequence length.
    """

    logits: np.ndarray
    plans: list[SequencePlan]
    layer_outputs: list[np.ndarray] = field(default_factory=list)
    layer_states: list[np.ndarray] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def predictions(self) -> np.ndarray:
        """Argmax predictions: ``(B,)`` or ``(B, T)``."""
        return np.argmax(self.logits, axis=-1)


def _row_gemv(h: np.ndarray, u_t: np.ndarray) -> np.ndarray:
    """Batch-composition-invariant recurrent product ``h @ u_t``.

    Lifts ``(B, H) @ (H, N)`` to ``(B, 1, H) @ (H, N)``: numpy dispatches
    each ``(1, H)`` stack slice as the same BLAS GEMV a solo sequence
    runs, so the result rows are bit-identical at every batch size
    (measured: 0 mismatches across shapes/batches, versus near-certain
    last-bit drift for the GEMM dispatch the 2-D product takes at
    ``B > 1``). This is what makes stepwise trajectories — and therefore
    layer>=1 plan floats — independent of how sequences are grouped.
    ``u_t`` must stay a transpose *view* of the row-major gate block; a
    re-laid-out copy changes the GEMV kernel path and the bits.
    """
    return (h[:, None, :] @ u_t)[:, 0]


def _row_proj(xs: np.ndarray, w_t: np.ndarray) -> np.ndarray:
    """Sequence-length-invariant input projection ``xs @ w_t``.

    Lifts ``(..., E) @ (E, N)`` to ``(..., 1, E) @ (E, N)``: numpy
    dispatches each ``(1, E)`` row as the same BLAS GEMV no matter how
    many rows the call covers, so a token's projected bits depend only on
    the token and the weights — never on the sequence length, the chunk
    boundaries, or the batch around it. The 2-D GEMM the seed used does
    not have this property: OpenBLAS's M-blocking makes row ``t`` of a
    ``(T, E) @ (E, N)`` product depend on ``T`` (measured on this
    platform: 30-70 % of chunked-vs-full products differ in the last
    bit across shapes, single- and multi-threaded). This is the row-space
    twin of :func:`_row_gemv`, and it is what lets the streaming runtime
    (:mod:`repro.runtime.streaming`) deliver a session in arbitrary
    chunks bit-identically to one contiguous run.
    """
    return (xs[..., None, :] @ w_t)[..., 0, :]


def _warp_skip_fractions(masks: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Vectorized fraction of *rows* living in all-trivial warps, per mask.

    Each warp is weighted by its real lane count, so when ``H`` is not a
    multiple of the warp size the trailing partial warp contributes only
    its actual rows (a 16-lane tail warp of a 48-row layer is 16/48 of the
    rows, not 1/2 of the warps). This keeps the warp-level fraction <= the
    row-level skip fraction — the invariant the software-DRS divergence
    model in :mod:`repro.gpu.cta` relies on.

    Args:
        masks: Boolean array ``(..., H)``.
    Returns:
        Array of shape ``masks.shape[:-1]``.
    """
    hidden = masks.shape[-1]
    n_warps = -(-hidden // warp_size)
    padded = np.ones(masks.shape[:-1] + (n_warps * warp_size,), dtype=bool)
    padded[..., :hidden] = masks
    whole = padded.reshape(masks.shape[:-1] + (n_warps, warp_size)).all(axis=-1)
    lanes = np.full(n_warps, warp_size, dtype=float)
    lanes[-1] = hidden - (n_warps - 1) * warp_size
    return (whole * lanes).sum(axis=-1) / hidden


class _DeferredStepStats:
    """Batch-shared lazy DRS statistics for compiled stepwise runs.

    Holds a snapshot of the program's per-step masks (the program's own
    buffer is workspace, rewritten by the next run) and reduces it to
    per-sequence skip / warp-skip fraction lists only when some record's
    statistics are first read. ``count_nonzero`` sums booleans exactly
    and the division matches ``masks.mean(axis=2)`` bit for bit, so the
    deferred floats equal the eager ones.
    """

    __slots__ = ("_masks", "_hidden", "_skip", "_warp")

    def __init__(self, masks: np.ndarray, hidden: int) -> None:
        self._masks = masks
        self._hidden = hidden
        self._skip: list[list[float]] | None = None
        self._warp: list[list[float]] | None = None

    def loader(self, b: int):
        """A thunk resolving sequence ``b``'s fraction lists."""
        return lambda: self._row(b)

    def _row(self, b: int) -> tuple[list[float], list[float]]:
        if self._skip is None:
            masks = self._masks
            self._skip = (
                np.count_nonzero(masks, axis=2) / self._hidden
            ).tolist()
            self._warp = _warp_skip_fractions(masks).tolist()
            self._masks = None
        return self._skip[b], self._warp[b]


@dataclass
class _UnitedWeights:
    """The fused-gate view of one layer's weights.

    Rows follow :data:`~repro.nn.lstm_cell.GATE_ORDER` — ``(f, i, c, o)`` —
    so ``slices[g]`` selects gate ``g`` out of a ``(..., 4H)`` product.
    """

    w: np.ndarray  # (4H, E)
    u: np.ndarray  # (4H, H)
    b: np.ndarray  # (4H,)
    slices: dict[str, slice]
    _gate_ops: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None

    @classmethod
    def from_weights(cls, weights: LSTMCellWeights) -> "_UnitedWeights":
        hidden = weights.hidden_size
        slices = {
            gate: slice(k * hidden, (k + 1) * hidden)
            for k, gate in enumerate(GATE_ORDER)
        }
        return cls(
            w=weights.united_w(), u=weights.united_u(), b=weights.united_b(), slices=slices
        )

    def gate_ops(self) -> dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-gate operands for the stepwise loops.

        Maps each gate in :data:`~repro.nn.lstm_cell.GATE_ORDER` to
        ``(w, u, b)`` — row-major ``(H, E)`` / ``(H, H)`` slices of the
        united matrices plus the bias slice, consumed as ``x @ w.T`` /
        ``h @ u.T`` exactly like the reference walk. The stepwise loops run
        four narrow per-gate products instead of one wide fused GEMM: on
        cache-starved CPU cores the ``(B, 4H)`` fused pre-activation plus
        its strided per-gate slices spills the cache during the elementwise
        tail, and measures ~1.7x slower per step than per-gate ``(B, H)``
        work. The operands stay row-major transpose *views* (never
        re-laid-out copies) so BLAS takes the same transposed-kernel path
        as the reference and the reduction order — hence every bit —
        matches. The fused layout remains the right call for the
        tissue-grouped COMBINED path, where whole sublayer spans feed each
        product. Built lazily once per layer.
        """
        if self._gate_ops is None:
            self._gate_ops = {
                gate: (self.w[sl], self.u[sl], self.b[sl])
                for gate, sl in self.slices.items()
            }
        return self._gate_ops


class LSTMExecutor:
    """Executes an :class:`~repro.nn.network.LSTMNetwork` under one scheme.

    Args:
        network: The network to execute.
        config: The execution scheme and its thresholds.
        predicted_links: Per-layer Eq. 6 context links (zeros by default).
        plan_cache: Optional shared :class:`~repro.core.plan.PlanCache`;
            when given, per-sequence relevance arrays and structural plans
            are reused across executor instances and runs.
        recorder: Optional :class:`~repro.obs.recorder.Recorder`; when
            enabled, every ``run_batch`` emits a numerics-plane
            :class:`~repro.obs.record.RunRecord` (plan counters, cache
            deltas + wall clock, no kernel events). :meth:`repro.core.
            pipeline.OptimizedLSTM.run` records through its own builder
            instead and leaves this unset, so runs are never
            double-recorded.
        compile: Lower layer execution into cached, preallocated programs
            (:mod:`repro.core.program`) — same bits, no per-step
            allocation. ``False`` keeps the interpreted loops (the
            readable specification of the arithmetic).
        program_cache: Optional shared :class:`~repro.core.program.
            ProgramCache`; when omitted and ``compile`` is on, the
            executor owns a private one.
        quantized_cells: Pre-quantized per-layer payloads
            (:class:`~repro.nn.quantize.QuantizedCell`) to run with
            instead of quantizing ``network``'s weights here. The fleet
            workers pass the cells rebuilt from the shared-memory arena,
            so parent and workers compute on byte-identical codes and
            scales (re-quantizing a dequantized copy could drift by one
            ulp). Requires a quantized ``config.precision``.
        dwell_s: Modeled per-sequence device dwell (seconds) slept inside
            each work unit after its numerics — the in-process twin of the
            fleet workers' dwell, modeling the mobile GPU's device
            occupancy that concurrent dispatch overlaps (the disclosed
            scaling model of ``bench_runtime_scaling`` / ``bench_parallel``
            on core-starved CI hosts). ``0.0`` (the default) disables it;
            sleeping never touches the numerics.
    """

    def __init__(
        self,
        network: LSTMNetwork,
        config: ExecutionConfig,
        predicted_links: list[PredictedLink] | None = None,
        plan_cache: PlanCache | None = None,
        recorder: "Recorder | None" = None,
        compile: bool = True,
        program_cache: ProgramCache | None = None,
        quantized_cells: list[QuantizedCell] | None = None,
        dwell_s: float = 0.0,
    ) -> None:
        self.network = network
        self.config = config
        self.plan_cache = plan_cache
        self.recorder = recorder
        self.compile = compile
        if dwell_s < 0:
            raise ConfigurationError(f"dwell_s must be >= 0, got {dwell_s}")
        self.dwell_s = dwell_s
        #: Per-thread mutable run state. Sharded runs execute layers on
        #: pool threads; routing the wall-clock accumulators, the
        #: collect-states flag and the current dispatch slot through
        #: thread-local storage lets every existing ``self._plan_wall +=``
        #: site work unchanged whether it runs on the caller or a worker.
        self._tls = threading.local()
        #: Resolved concrete backend name ("fused" resolves here, once;
        #: a missing toolchain raises BackendUnavailableError now, not
        #: mid-run). Interpreted execution is numpy-only by definition.
        if compile:
            self.backend = resolve_backend(config.backend)
        elif config.backend != "numpy":
            raise ConfigurationError(
                f"backend {config.backend!r} requires compile=True "
                "(the interpreted loops are the numpy specification)"
            )
        else:
            self.backend = "numpy"
        self._exact_backend = backend_is_exact(self.backend)
        if config.compact_drs_gemm and not self._exact_backend:
            raise ConfigurationError(
                "compact_drs_gemm forces the interpreted numpy DRS loop; "
                f"it cannot run under backend {self.backend!r}"
            )
        if compile and program_cache is None:
            program_cache = ProgramCache()
        self.program_cache = program_cache
        self._link_fps: list[str | None] = [None] * len(network.layers)
        self._weights_fps: list[str | None] = [None] * len(network.layers)
        self._cells_by_t: dict[int, list[list[tuple[int, int]]]] = {}
        self._zero_fracs: dict[int, list[float]] = {}
        hidden = network.config.hidden_size
        if predicted_links is None:
            predicted_links = [PredictedLink.zeros(hidden) for _ in network.layers]
        if len(predicted_links) != len(network.layers):
            raise ConfigurationError(
                "need one predicted link per layer "
                f"({len(network.layers)}), got {len(predicted_links)}"
            )
        self.predicted_links = predicted_links
        self._row_ranges = [recurrent_row_ranges(layer.weights) for layer in network.layers]
        self._weights: list[LSTMCellWeights] = [layer.weights for layer in network.layers]
        self.pruning_kept_fraction: float | None = None
        if config.mode is ExecutionMode.ZERO_PRUNE:
            pruned = []
            kept = []
            for layer in network.layers:
                new_weights, aggregate = prune_cell_weights(
                    layer.weights, config.zero_prune_fraction
                )
                pruned.append(new_weights)
                kept.append(aggregate.kept_fraction)
            self._weights = pruned
            self.pruning_kept_fraction = float(np.mean(kept))
        #: Quantized W/U payloads (codes + scales) when the precision
        #: policy is low-precision; ``None`` under fp64. Retained so the
        #: compacted DRS GEMM can dequantize only the surviving rows.
        self.quantized_cells: list[QuantizedCell] | None = None
        if quantized_cells is not None and not config.precision.is_quantized:
            raise ConfigurationError(
                "quantized_cells were supplied but config.precision is fp64"
            )
        if config.precision.is_quantized:
            if quantized_cells is None:
                # Quantize whatever the mode executes (the pruned weights
                # under ZERO_PRUNE): one pass at construction, mirroring
                # how pruning replaces the weights before planning.
                quantized_cells = [
                    quantize_cell_weights(w, config.precision) for w in self._weights
                ]
            elif len(quantized_cells) != len(network.layers):
                raise ConfigurationError(
                    "need one quantized cell per layer "
                    f"({len(network.layers)}), got {len(quantized_cells)}"
                )
            self.quantized_cells = list(quantized_cells)
            self._weights = [cell.dequantized for cell in self.quantized_cells]
            # The deployed (dequantized) weights are what DRS profiles,
            # so row ranges are recomputed from them.
            self._row_ranges = [recurrent_row_ranges(w) for w in self._weights]
        self._united = [_UnitedWeights.from_weights(w) for w in self._weights]

    # ----------------------------------------------------- per-thread state
    # Sharded runs execute `_run_layer` on dispatcher threads, each of
    # which needs its own wall-clock accumulators, state buffers, and
    # dispatch slot. Routing them through `self._tls` keeps every legacy
    # `self._plan_wall += ...` site valid on any thread.

    @property
    def _plan_wall(self) -> float:
        return getattr(self._tls, "plan_wall", 0.0)

    @_plan_wall.setter
    def _plan_wall(self, value: float) -> None:
        self._tls.plan_wall = value

    @property
    def _compile_wall(self) -> float:
        return getattr(self._tls, "compile_wall", 0.0)

    @_compile_wall.setter
    def _compile_wall(self, value: float) -> None:
        self._tls.compile_wall = value

    @property
    def _collect_states(self) -> bool:
        return getattr(self._tls, "collect_states", False)

    @_collect_states.setter
    def _collect_states(self, value: bool) -> None:
        self._tls.collect_states = value

    @property
    def _last_states(self) -> np.ndarray | None:
        return getattr(self._tls, "last_states", None)

    @_last_states.setter
    def _last_states(self, value: np.ndarray | None) -> None:
        self._tls.last_states = value

    @property
    def _slot(self) -> int | None:
        """Dispatch-slot index of the current thread (``None`` = serial)."""
        return getattr(self._tls, "slot", None)

    @_slot.setter
    def _slot(self, value: int | None) -> None:
        self._tls.slot = value

    # ------------------------------------------------------------------ API

    def run_batch(self, tokens: np.ndarray, collect_states: bool = False) -> ExecutionResult:
        """Execute a batch of token sequences, shape ``(B, T)``.

        Args:
            tokens: Token-id batch.
            collect_states: Also return the per-layer cell-state sequences
                (used by the offline context-link calibration; stepwise
                modes only).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"tokens must be (B, T), got shape {tokens.shape}")
        batch, seq_len = tokens.shape
        start_wall = time.perf_counter()
        self._plan_wall = 0.0
        self._compile_wall = 0.0
        record = self.recorder is not None and self.recorder.enabled
        plan_stats_before = (
            self.plan_cache.stats.as_dict()
            if record and self.plan_cache is not None
            else None
        )
        program_stats_before = (
            self.program_cache.stats.as_dict()
            if record and self.program_cache is not None
            else None
        )
        xs = self.network.embedding[tokens]  # (B, T, E)

        if (
            self.config.threads > 1
            and batch > 1
            and not collect_states
            and not self.config.compact_drs_gemm
        ):
            # Contiguous row shards on the persistent thread pool. The
            # state-collecting calibration path and the approximate
            # compacted-GEMM opt-in stay on the serial walk.
            return self._run_batch_parallel(
                xs, batch, seq_len, start_wall, record,
                plan_stats_before, program_stats_before,
            )

        plan_layers: list[list[LayerPlanRecord]] = [[] for _ in range(batch)]
        layer_outputs: list[np.ndarray] = []
        layer_states: list[np.ndarray] = []
        self._collect_states = collect_states
        for layer_index, weights in enumerate(self._weights):
            xs, records = self._run_layer(layer_index, weights, xs)
            layer_outputs.append(xs)
            if collect_states and self._last_states is not None:
                layer_states.append(self._last_states)
            for b in range(batch):
                plan_layers[b].append(records[b])

        logits = self._head_logits(xs)
        if self.dwell_s > 0.0:
            time.sleep(self.dwell_s * batch)  # modeled device occupancy
        plans = [SequencePlan(layers=plan_layers[b]) for b in range(batch)]
        timings = {
            "exec_wall_s": time.perf_counter() - start_wall,
            "plan_wall_s": self._plan_wall,
            "compile_wall_s": self._compile_wall,
        }
        result = ExecutionResult(
            logits=logits,
            plans=plans,
            layer_outputs=layer_outputs,
            layer_states=layer_states,
            timings=timings,
        )
        if record:
            self._record_run(result, batch, seq_len, plan_stats_before, program_stats_before)
        return result

    def _head_logits(self, xs: np.ndarray) -> np.ndarray:
        """Classifier-head readout of the top layer's outputs."""
        top = xs if self.network.per_timestep_head else self.network.pool_top(xs)
        if not self._exact_backend:
            # Fused backends carry no bit contract, so the head readout
            # runs as one plain GEMM — the cheap form the per-row lift
            # deliberately gave up to keep the oracle's invariances.
            return self.network.head_logits(top)
        if top.ndim == 2:
            # Pooled readout: lift each row to its own (1, H) GEMV so the
            # logits stay batch-composition-invariant (see _row_gemv).
            return self.network.head_logits(top[:, None, :])[:, 0]
        # Per-timestep heads take the same per-row lift as the input
        # projections: a (T, H) GEMM's row bits depend on T, which
        # would make streamed logits diverge from contiguous runs.
        return self.network.head_logits(top[..., None, :])[..., 0, :]

    def _run_batch_parallel(
        self,
        xs: np.ndarray,
        batch: int,
        seq_len: int,
        start_wall: float,
        record: bool,
        plan_stats_before: dict | None,
        program_stats_before: dict | None,
    ) -> ExecutionResult:
        """Row-sharded ``run_batch`` body on the persistent thread pool.

        The batch splits into ``<= threads`` contiguous row shards; each
        shard walks every layer plus the head readout on its own pool
        thread and returns arrays covering only its rows. Because every
        stepwise product is a per-row GEMV lift and the combined-mode
        group walk dispatches per leading-axis slice, a row's bits are
        independent of which rows share its dispatch — so reassembling
        the shards in order is bit-identical to the serial walk (gated in
        ``bench_parallel``). Shards share the single-flight plan cache;
        compiled programs are keyed per dispatch slot so each thread owns
        its workspaces. Real concurrency comes from BLAS / ufunc / ctypes
        GIL release inside the shard bodies.
        """
        from repro.core.parallel import get_dispatcher, shard_slices

        cfg = self.config
        shards = shard_slices(batch, cfg.threads)
        dispatcher = get_dispatcher(cfg.threads)
        n_layers = len(self._weights)
        dwell = self.dwell_s

        def run_shard(slot: int, rows: slice):
            tls = self._tls
            tls.slot = slot
            tls.plan_wall = 0.0
            tls.compile_wall = 0.0
            tls.collect_states = False
            tls.last_states = None
            cur = xs[rows]
            shard_batch = cur.shape[0]
            shard_plans: list[list[LayerPlanRecord]] = [
                [] for _ in range(shard_batch)
            ]
            outs: list[np.ndarray] = []
            for layer_index, weights in enumerate(self._weights):
                cur, records = self._run_layer(layer_index, weights, cur)
                outs.append(cur)
                for i in range(shard_batch):
                    shard_plans[i].append(records[i])
            logits = self._head_logits(cur)
            if dwell > 0.0:
                time.sleep(dwell * shard_batch)  # modeled device occupancy
            return outs, shard_plans, logits, tls.plan_wall, tls.compile_wall

        thunks = [
            (lambda slot=slot, rows=rows: run_shard(slot, rows))
            for slot, rows in enumerate(shards)
        ]
        results, dstats = dispatcher.map(thunks)

        # Shards are ascending contiguous row ranges, so ordered
        # concatenation reassembles exactly the unsharded arrays.
        layer_outputs = [
            np.concatenate([res[0][li] for res in results], axis=0)
            for li in range(n_layers)
        ]
        logits = np.concatenate([res[2] for res in results], axis=0)
        plan_layers: list[list[LayerPlanRecord]] = []
        for res in results:
            plan_layers.extend(res[1])
        plans = [SequencePlan(layers=rows) for rows in plan_layers]
        timings = {
            "exec_wall_s": time.perf_counter() - start_wall,
            "plan_wall_s": sum(res[3] for res in results),
            "compile_wall_s": sum(res[4] for res in results),
            **dstats.timing_keys(),
        }
        result = ExecutionResult(
            logits=logits,
            plans=plans,
            layer_outputs=layer_outputs,
            layer_states=[],
            timings=timings,
        )
        if record:
            self._record_run(
                result, batch, seq_len, plan_stats_before, program_stats_before
            )
        return result

    def run_stream(
        self,
        tokens: np.ndarray,
        h_states: np.ndarray,
        c_states: np.ndarray,
    ) -> np.ndarray:
        """Run one streamed chunk against resident per-session state.

        The single-step / short-chunk entry the streaming runtime
        (:mod:`repro.runtime.streaming`) drives every tick: each layer
        replays the same cached :class:`~repro.core.program.
        StepwiseProgram` as :meth:`run_batch` at shape ``(B, L)``, with the
        callers' resident ``(h, c)`` injected as the initial state and the
        post-chunk state written back in place. Because the recurrent
        products are per-row GEMVs (:func:`_row_gemv`) and the input
        projections per-row lifts (:func:`_row_proj`), a session's bits
        are identical whether its sequence arrives as one contiguous run
        or as any partition into chunks under any batch composition —
        the bit-identity contract the streaming tests assert against the
        frozen reference.

        Structural modes are excluded: INTER / COMBINED plan from the
        *full* sequence's relevance, which a chunked arrival never has.

        Args:
            tokens: ``(B, L)`` token chunk, one row per live session.
            h_states: ``(num_layers, B, H)`` resident hidden state,
                updated in place to the post-chunk state.
            c_states: ``(num_layers, B, H)`` resident cell state, updated
                in place.

        Returns:
            ``(B, L, H)`` top-layer hidden outputs for the chunk. Head
            readout (per-timestep or pooled over a trailing window) is the
            caller's job — the streaming runtime owns the pooled-readout
            ring buffer.
        """
        cfg = self.config
        if cfg.inter_active:
            raise ConfigurationError(
                f"run_stream does not support mode {cfg.mode.value!r}: the inter "
                "level plans from full-sequence relevance, which chunked "
                "arrivals never have"
            )
        if not self.compile:
            raise ConfigurationError("run_stream requires compile=True")
        if cfg.compact_drs_gemm:
            raise ConfigurationError(
                "run_stream does not support compact_drs_gemm (interpreted loop only)"
            )
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"tokens must be (B, L), got shape {tokens.shape}")
        batch, chunk = tokens.shape
        n_layers = len(self._weights)
        hidden = self.network.config.hidden_size
        expected = (n_layers, batch, hidden)
        if h_states.shape != expected or c_states.shape != expected:
            raise ShapeError(
                f"resident states must be {expected}, got "
                f"{h_states.shape} / {c_states.shape}"
            )
        drs = cfg.intra_active and cfg.alpha_intra > 0.0
        xs = self.network.embedding[tokens]  # (B, L, E)
        if cfg.threads > 1 and batch > 1:
            return self._run_stream_parallel(
                xs, h_states, c_states, batch, chunk, hidden, drs
            )
        for layer_index, united in enumerate(self._united):
            program = self._compiled_stepwise(layer_index, united, batch, chunk, drs)
            program.project(xs)
            hs = np.empty((batch, chunk, hidden))
            program.execute(
                hs,
                h0=h_states[layer_index],
                c0=c_states[layer_index],
                state_out=(h_states[layer_index], c_states[layer_index]),
            )
            xs = hs
        return xs

    def _run_stream_parallel(
        self,
        xs: np.ndarray,
        h_states: np.ndarray,
        c_states: np.ndarray,
        batch: int,
        chunk: int,
        hidden: int,
        drs: bool,
    ) -> np.ndarray:
        """Row-sharded streaming tick: sessions split across pool threads.

        Each shard replays the whole layer stack for its contiguous slice
        of sessions against *views* of the resident state block — row
        slices of ``(B, H)`` per-layer state are disjoint memory, so
        in-place state writebacks never interleave. The per-row lifts
        make every session's bits independent of its tick batch
        composition, so sharded ticks match serial ticks exactly (the
        streaming runtime's existing chunked-replay contract, now at any
        thread count).
        """
        from repro.core.parallel import get_dispatcher, shard_slices

        shards = shard_slices(batch, self.config.threads)
        dispatcher = get_dispatcher(self.config.threads)
        out = np.empty((batch, chunk, hidden))

        def run_shard(slot: int, rows: slice):
            tls = self._tls
            tls.slot = slot
            tls.compile_wall = 0.0
            cur = xs[rows]
            shard_batch = cur.shape[0]
            for layer_index, united in enumerate(self._united):
                program = self._compiled_stepwise(
                    layer_index, united, shard_batch, chunk, drs
                )
                program.project(cur)
                hs = np.empty((shard_batch, chunk, hidden))
                h_view = h_states[layer_index, rows]
                c_view = c_states[layer_index, rows]
                program.execute(
                    hs, h0=h_view, c0=c_view, state_out=(h_view, c_view)
                )
                cur = hs
            out[rows] = cur

        thunks = [
            (lambda slot=slot, rows=rows: run_shard(slot, rows))
            for slot, rows in enumerate(shards)
        ]
        dispatcher.map(thunks)
        return out

    def _record_run(
        self,
        result: ExecutionResult,
        batch: int,
        seq_len: int,
        plan_stats_before: dict | None = None,
        program_stats_before: dict | None = None,
    ) -> None:
        """Emit a numerics-plane run record (no-op when recorder disabled)."""
        cfg = self.config
        builder = self.recorder.start_run(
            label="executor",
            mode=cfg.mode.value,
            spec=cfg.spec.name,
            batch=batch,
            seq_length=seq_len,
            config={
                "alpha_inter": cfg.alpha_inter,
                "alpha_intra": cfg.alpha_intra,
                "mts": cfg.mts,
                "drs_style": cfg.drs_style,
                "precision": cfg.precision.tag,
                "backend": self.backend,
                "threads": cfg.threads,
            },
        )
        if builder is None:
            return
        for b, plan in enumerate(result.plans):
            builder.observe_plan(b, plan)
        if plan_stats_before is not None:
            builder.observe_cache_delta(plan_stats_before, self.plan_cache.stats.as_dict())
        if program_stats_before is not None:
            builder.observe_program_cache_delta(
                program_stats_before, self.program_cache.stats.as_dict()
            )
        builder.set_timing(wall_s=result.timings["exec_wall_s"], **result.timings)
        builder.finish()

    def kernel_trace(self, plan: SequencePlan):
        """GPU kernel trace of one executed sequence (for the simulator)."""
        cfg = self.config
        return build_kernel_trace(
            plan,
            cfg.spec,
            inter=cfg.inter_active,
            intra=cfg.intra_active,
            drs_style=cfg.drs_style,
            zero_prune_kept=(
                self.pruning_kept_fraction
                if cfg.mode is ExecutionMode.ZERO_PRUNE
                else None
            ),
            precision=cfg.precision,
        )

    # ------------------------------------------------------------ internals

    def _run_layer(
        self, layer_index: int, weights: LSTMCellWeights, xs: np.ndarray
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        united = self._united[layer_index]
        if self.config.mode is ExecutionMode.COMBINED:
            proj_u = _row_proj(xs, united.w.T)  # (B, T, 4H) fused, per-row dispatch
            proj = {g: proj_u[..., united.slices[g]] for g in GATE_ORDER}
            plans = self._plan_inter(layer_index, weights, proj, xs)
            return self._run_layer_combined(layer_index, weights, united, proj_u, plans)
        return self._run_layer_stepwise(layer_index, weights, united, xs)

    def _relevance(self, layer_index: int, weights, proj_b: dict[str, np.ndarray]):
        fn = exact_relevance_values if self.config.use_exact_relevance else relevance_values
        return fn(weights, proj_b, row_ranges=self._row_ranges[layer_index])

    def _build_plan(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        relevance: np.ndarray,
        seq_len: int,
    ) -> CachedLayerPlan:
        breaks = find_breakpoints(relevance, self.config.alpha_inter)
        sublayers = divide_layer(seq_len, breaks)
        tissues = align_tissues(sublayers, self.config.mts)
        return CachedLayerPlan(
            relevance=relevance,
            breakpoints=tuple(breaks),
            sublayers=tuple(sublayers),
            tissues=tuple(tissues),
            signature=schedule_key(tissues),
        )

    def _plan_inter(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        proj: dict[str, np.ndarray],
        xs: np.ndarray,
    ) -> list[CachedLayerPlan]:
        """Per-sequence structural plans, served from the cache when wired."""
        cfg = self.config
        plan_start = time.perf_counter()
        batch, seq_len, _ = xs.shape
        cache = self.plan_cache
        weights_fp = fingerprint_weights(weights) if cache is not None else None
        plans = []
        for b in range(batch):
            def compute_relevance(b=b):
                proj_b = {g: proj[g][b] for g in GATE_ORDER}
                return self._relevance(layer_index, weights, proj_b)

            if cache is None:
                plans.append(
                    self._build_plan(layer_index, weights, compute_relevance(), seq_len)
                )
                continue
            relevance_key = (
                "rel",
                weights_fp,
                fingerprint_array(xs[b]),
                cfg.use_exact_relevance,
            )
            plan_key = relevance_key + (cfg.alpha_inter, cfg.mts, cfg.spec.name)
            plans.append(
                cache.layer_plan(
                    plan_key,
                    relevance_key,
                    compute_relevance,
                    lambda s: self._build_plan(layer_index, weights, s, seq_len),
                )
            )
        self._plan_wall += time.perf_counter() - plan_start
        return plans

    def _run_layer_stepwise(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        xs: np.ndarray,
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Per-gate batched timestep loop for every mode except COMBINED.

        Four narrow per-gate products per step instead of one fused
        ``(B, 4H)`` GEMM — see :meth:`_UnitedWeights.gate_ops` for why the
        narrow layout wins on CPU. Each recurrent product runs as stacked
        per-row GEMVs (:func:`_row_gemv`), so every sequence's bits are
        independent of the batch composition. This interpreted loop is the
        readable specification; ``compile=True`` lowers the same
        arithmetic into a preallocated program.
        """
        cfg = self.config
        drs = cfg.intra_active and cfg.alpha_intra > 0.0
        # INTRA never divides the layer (inter level off), so the DRS
        # loops need no breakpoint handling.
        if drs and cfg.compact_drs_gemm:
            # The approximate opt-in compaction lives only in the
            # interpreted DRS loop.
            return self._run_layer_stepwise_drs(layer_index, weights, united, xs)
        if self.compile:
            return self._run_layer_stepwise_compiled(layer_index, weights, united, xs, drs)
        if drs:
            return self._run_layer_stepwise_drs(layer_index, weights, united, xs)
        batch, seq_len, _ = xs.shape
        hidden = weights.hidden_size
        link = self.predicted_links[layer_index]
        ops = united.gate_ops()
        w_f, u_f, b_f = ops["f"]
        w_i, u_i, b_i = ops["i"]
        w_c, u_c, b_c = ops["c"]
        w_o, u_o, b_o = ops["o"]
        proj_f = _row_proj(xs, w_f.T)  # (B, T, H) per gate, per-row dispatch
        proj_i = _row_proj(xs, w_i.T)
        proj_c = _row_proj(xs, w_c.T)
        proj_o = _row_proj(xs, w_o.T)

        break_mask = np.zeros((batch, seq_len), dtype=bool)
        plans: list[CachedLayerPlan] | None = None
        if cfg.inter_active:
            proj = {"f": proj_f, "i": proj_i, "c": proj_c, "o": proj_o}
            plans = self._plan_inter(layer_index, weights, proj, xs)
            for b, plan in enumerate(plans):
                for start in plan.breakpoints:
                    break_mask[b, start] = True

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden)) if self._collect_states else None
        skip_fracs = np.zeros((batch, seq_len))
        warp_fracs = np.zeros((batch, seq_len))

        for t in range(seq_len):
            if cfg.inter_active and break_mask[:, t].any():
                reset = break_mask[:, t][:, None]
                h = np.where(reset, link.h_bar[None, :], h)
                c = np.where(reset, link.c_bar[None, :], c)

            f = sigmoid(proj_f[:, t] + _row_gemv(h, u_f.T) + b_f)
            i = sigmoid(proj_i[:, t] + _row_gemv(h, u_i.T) + b_i)
            g = tanh(proj_c[:, t] + _row_gemv(h, u_c.T) + b_c)
            o = sigmoid(proj_o[:, t] + _row_gemv(h, u_o.T) + b_o)
            c = f * c + i * g
            h = o * tanh(c)
            hs[:, t] = h
            if cs is not None:
                cs[:, t] = c
        self._last_states = cs

        records = []
        for b in range(batch):
            records.append(
                self._stepwise_record(
                    layer_index,
                    weights,
                    seq_len,
                    plans[b] if plans is not None else None,
                    skip_fracs[b],
                    warp_fracs[b],
                )
            )
        return hs, records

    def _run_layer_stepwise_compiled(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        xs: np.ndarray,
        drs: bool,
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Compiled stepwise path: one cached program per (shapes, weights).

        Mode differences are run-time inputs to the program — the inter
        level passes breakpoint reset columns resolved from the sequence
        plans, DRS reads its threshold out of the program — so BASELINE /
        ZERO_PRUNE / INTER / INTRA at one ``(B, T)`` all replay the same
        compiled object. Bit-identical to the interpreted loop above
        (property-tested in ``tests/test_program.py``).
        """
        cfg = self.config
        batch, seq_len, _ = xs.shape
        hidden = weights.hidden_size
        program = self._compiled_stepwise(layer_index, united, batch, seq_len, drs)
        # Inter-active planning reads the projection bits, so fused
        # backends project exactly there (plans stay backend-invariant);
        # everywhere else they take the timestep-batched input GEMM.
        proj = program.project(xs, exact=cfg.inter_active or self._exact_backend)

        plans: list[CachedLayerPlan] | None = None
        reset_cols: list[np.ndarray | None] | None = None
        if cfg.inter_active:
            plans = self._plan_inter(layer_index, weights, proj, xs)
            break_mask = np.zeros((batch, seq_len), dtype=bool)
            for b, plan in enumerate(plans):
                for start in plan.breakpoints:
                    break_mask[b, start] = True
            if break_mask.any():
                reset_cols = [
                    break_mask[:, t : t + 1] if break_mask[:, t].any() else None
                    for t in range(seq_len)
                ]

        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden)) if self._collect_states else None
        program.execute(hs, reset_cols=reset_cols, cs=cs)
        self._last_states = cs

        records: list[LayerPlanRecord] = []
        if plans is not None:
            # Inter-level records resolve per-tissue statistics against
            # the planned tissue structure, so their fractions stay eager.
            if drs:
                skip_fracs = np.count_nonzero(program.masks_all, axis=2) / hidden
                warp_fracs = _warp_skip_fractions(program.masks_all)
            else:
                skip_fracs = np.zeros((batch, seq_len))
                warp_fracs = np.zeros((batch, seq_len))
            for b in range(batch):
                records.append(
                    self._stepwise_record(
                        layer_index,
                        weights,
                        seq_len,
                        plans[b],
                        skip_fracs[b],
                        warp_fracs[b],
                    )
                )
            return hs, records
        # Single-cell records: both the record objects and the DRS mask
        # reductions are read at most once (if at all) after the run, so
        # everything defers — the masks are snapshotted because the
        # program buffer is workspace for the next run.
        cells_by_t = self._single_cells(seq_len)
        stats = (
            _DeferredStepStats(program.masks_all.copy(), hidden) if drs else None
        )
        zeros = None if drs else self._zero_fractions(seq_len)
        for b in range(batch):
            tissues = (
                SingleCellTissues(cells_by_t, loader=stats.loader(b))
                if drs
                else SingleCellTissues(cells_by_t, zeros, zeros)
            )
            records.append(
                self._stepwise_record(
                    layer_index, weights, seq_len, None, None, None, tissues=tissues
                )
            )
        return hs, records

    def _run_layer_stepwise_drs(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        xs: np.ndarray,
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Row-compacted DRS timestep loop (INTRA with a live threshold).

        Algorithm 3 taken literally instead of compute-then-zero: with the
        per-gate operand layout the output gate costs the same as any other
        gate, so every step computes ``o_t`` first and its mask picks the
        trivial rows. On steps where some row is trivial across the *whole*
        batch, the ``f``/``i``/``c`` work is gathered to the surviving
        columns, computed compacted, and scattered back into the cell
        state — dropped rows never see a bias add, an activation, or a
        cell update.

        By default the ``h @ U_g^T`` products stay full width and the
        compaction covers everything elementwise *after* them. A mobile
        GPU's DRS kernel skips output rows inside the kernel, where every
        output element is an independent dot product; CPU BLAS does not
        expose that guarantee — gathering rows of ``U_g`` (columns of the
        product) changes the GEMV's ``N`` dimension, which changes
        OpenBLAS's kernel/blocking choice and hence the reduction order.
        Measured on this platform: 19-75 % last-bit mismatch for
        column-subset products across ``(B, H)`` shapes, so shrinking the
        product would break the frozen bit-identity contract with
        :class:`~repro.core.reference.ReferenceExecutor`. Opting in to
        :attr:`ExecutionConfig.compact_drs_gemm` runs the literal
        row-compacted ``h @ U_g[alive].T`` per gate — the paper's true
        memory-access pattern, allclose-but-not-bit-equal. Everything
        elementwise after the product is subset-safe either way (ufuncs
        are per-element): surviving elements go through the same
        ``(x + hU) + b`` chain, dropped elements are exactly ``0.0`` on
        both sides.

        The skip/warp statistics are accumulated as raw masks and reduced
        once per layer, replacing the two per-timestep reductions that made
        the batched INTRA path slower than the seed walk.
        """
        cfg = self.config
        compact = cfg.compact_drs_gemm
        batch, seq_len, _ = xs.shape
        hidden = weights.hidden_size
        alpha = cfg.alpha_intra
        ops = united.gate_ops()
        w_f, u_f, b_f = ops["f"]
        w_i, u_i, b_i = ops["i"]
        w_c, u_c, b_c = ops["c"]
        w_o, u_o, b_o = ops["o"]
        proj_f = _row_proj(xs, w_f.T)  # (B, T, H) per gate, per-row dispatch
        proj_i = _row_proj(xs, w_i.T)
        proj_c = _row_proj(xs, w_c.T)
        proj_o = _row_proj(xs, w_o.T)

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden)) if self._collect_states else None
        masks_all = np.empty((batch, seq_len, hidden), dtype=bool)

        for t in range(seq_len):
            o = sigmoid(proj_o[:, t] + _row_gemv(h, u_o.T) + b_o)
            masks = o < alpha  # (B, H)
            masks_all[:, t] = masks
            dropped = masks.all(axis=0)
            if dropped.any():
                alive = np.flatnonzero(~dropped)
                if compact:
                    # Literal Algorithm-3 memory pattern: dropped rows of
                    # U_g are never read. Approximate (see docstring).
                    if self.quantized_cells is not None:
                        # Fused dequant-on-load: widen only the surviving
                        # rows of the stored codes, so the bytes touched
                        # shrink with both the precision and the skip.
                        # Same values as slicing the pre-dequantized
                        # matrix (per-row dequant is independent).
                        qu = self.quantized_cells[layer_index].u
                        hu_f = _row_gemv(h, qu["f"].dequantize_rows(alive).T)
                        hu_i = _row_gemv(h, qu["i"].dequantize_rows(alive).T)
                        hu_c = _row_gemv(h, qu["c"].dequantize_rows(alive).T)
                    else:
                        hu_f = _row_gemv(h, u_f[alive].T)
                        hu_i = _row_gemv(h, u_i[alive].T)
                        hu_c = _row_gemv(h, u_c[alive].T)
                else:
                    hu_f = _row_gemv(h, u_f.T)[:, alive]
                    hu_i = _row_gemv(h, u_i.T)[:, alive]
                    hu_c = _row_gemv(h, u_c.T)[:, alive]
                f = sigmoid(proj_f[:, t, alive] + hu_f + b_f[alive])
                i = sigmoid(proj_i[:, t, alive] + hu_i + b_i[alive])
                g = tanh(proj_c[:, t, alive] + hu_c + b_c[alive])
                c_next = np.zeros((batch, hidden))
                c_next[:, alive] = np.where(
                    masks[:, alive], 0.0, f * c[:, alive] + i * g
                )
                c = c_next
            else:
                f = sigmoid(proj_f[:, t] + _row_gemv(h, u_f.T) + b_f)
                i = sigmoid(proj_i[:, t] + _row_gemv(h, u_i.T) + b_i)
                g = tanh(proj_c[:, t] + _row_gemv(h, u_c.T) + b_c)
                c = np.where(masks, 0.0, f * c + i * g)
            h = o * tanh(c)
            hs[:, t] = h
            if cs is not None:
                cs[:, t] = c
        self._last_states = cs

        skip_fracs = masks_all.mean(axis=2)  # (B, T)
        warp_fracs = _warp_skip_fractions(masks_all)
        records = [
            self._stepwise_record(
                layer_index, weights, seq_len, None, skip_fracs[b], warp_fracs[b]
            )
            for b in range(batch)
        ]
        return hs, records

    def _single_cells(self, seq_len: int) -> list[list[tuple[int, int]]]:
        """One ``[(0, t)]`` list per timestep, shared across every
        sequence's records (nothing mutates record cells downstream)."""
        cells_by_t = self._cells_by_t.get(seq_len)
        if cells_by_t is None:
            cells_by_t = [[(0, t)] for t in range(seq_len)]
            self._cells_by_t[seq_len] = cells_by_t
        return cells_by_t

    def _zero_fractions(self, seq_len: int) -> list[float]:
        """Shared all-zero fraction list for non-DRS stepwise records."""
        zeros = self._zero_fracs.get(seq_len)
        if zeros is None:
            zeros = [0.0] * seq_len
            self._zero_fracs[seq_len] = zeros
        return zeros

    def _stepwise_record(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        seq_len: int,
        plan: CachedLayerPlan | None,
        skip_fracs: np.ndarray | None,
        warp_fracs: np.ndarray | None,
        tissues: SingleCellTissues | None = None,
    ) -> LayerPlanRecord:
        if self.config.inter_active:
            assert plan is not None
            tissue_records = []
            for tissue in plan.tissues:
                # Timestamp-resolved skip stats; the per-tissue shared-load
                # fraction is the mean of the fused cells' fractions here
                # because stepwise modes never intersect masks (INTER has
                # alpha_intra == 0, so the fractions are all zero anyway).
                ts = tissue.timestamps()
                tissue_records.append(
                    TissueRecord(
                        cells=list(tissue.cells),
                        skip_fraction=float(np.mean([skip_fracs[t] for t in ts])),
                        warp_skip_fraction=float(np.mean([warp_fracs[t] for t in ts])),
                    )
                )
            breakpoints = [sub.start for sub in plan.sublayers[1:]]
            sublayer_lengths = [sub.length for sub in plan.sublayers]
            relevance = plan.relevance
        else:
            if tissues is None:
                # tolist() converts to plain Python floats in one C pass —
                # identical values, far cheaper than 2*T numpy-scalar casts.
                skip_list = np.asarray(skip_fracs).tolist()
                warp_list = np.asarray(warp_fracs).tolist()
                tissues = SingleCellTissues(
                    self._single_cells(seq_len), skip_list, warp_list
                )
            # Lazy either way: B*T single-cell records per layer run cost
            # more to build than the arithmetic they describe; the
            # sequence materializes them only if something indexes or
            # iterates it (tests, trace building) — the recorder reads
            # aggregates.
            tissue_records = tissues
            breakpoints = []
            sublayer_lengths = [seq_len]
            relevance = None
        return LayerPlanRecord(
            layer_index=layer_index,
            hidden_size=weights.hidden_size,
            input_size=weights.input_size,
            seq_length=seq_len,
            breakpoints=breakpoints,
            sublayer_lengths=sublayer_lengths,
            tissues=tissue_records,
            relevance=relevance,
        )

    def _run_layer_combined(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        proj_u: np.ndarray,
        plans: list[CachedLayerPlan],
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Plan-grouped tissue-ordered walk (inter + intra together).

        Sequences with an identical structural plan walk the schedule
        *together*: each tissue step is one stacked ``(G, k, H) @ (H, 4H)``
        matmul over the group, bit-identical to ``G`` independent
        per-sequence ``(k, H)`` products (numpy dispatches the same GEMM
        per leading-axis slice). With ``compile=True`` each plan group
        replays a cached :class:`~repro.core.program.CombinedGroupProgram`
        keyed on the plan ``signature`` (the scheduler's ``schedule_key``),
        so fleet shards grouped by the runtime scheduler share programs.
        """
        cfg = self.config
        batch, seq_len, _ = proj_u.shape
        hidden = weights.hidden_size
        link = self.predicted_links[layer_index]
        self._last_states = None  # combined mode does not collect states
        sl = united.slices

        groups: dict[tuple, list[int]] = {}
        for b, plan in enumerate(plans):
            groups.setdefault(plan.signature, []).append(b)

        hs = np.empty((batch, seq_len, hidden))
        tissue_records: list[list[TissueRecord]] = [[] for _ in range(batch)]
        for indices in groups.values():
            plan = plans[indices[0]]
            group = len(indices)
            seq_idx = np.asarray(indices)
            if self.compile:
                program = self._compiled_combined(
                    layer_index, united, plan, group, seq_len
                )
                # One group covering the whole batch walks proj_u directly
                # (indices are ascending, so the gather would be identity).
                proj_group = proj_u if group == batch else proj_u[seq_idx]
                program.execute(proj_group)
                if group == batch:
                    hs[:] = program.hs
                else:
                    hs[seq_idx] = program.hs
                if cfg.alpha_intra > 0.0:
                    skip_all = program.shared.mean(axis=2).tolist()
                    warp_all = _warp_skip_fractions(program.shared).tolist()
                else:
                    zeros = [[0.0] * group] * len(plan.tissues)
                    skip_all = warp_all = zeros
                # One cells list per tissue, shared across the group's
                # records (nothing mutates record cells downstream).
                cells_lists = [list(t.cells) for t in plan.tissues]
                for ti in range(len(plan.tissues)):
                    cells = cells_lists[ti]
                    skip_row = skip_all[ti]
                    warp_row = warp_all[ti]
                    for gi, b in enumerate(indices):
                        tissue_records[b].append(
                            TissueRecord(cells, skip_row[gi], warp_row[gi])
                        )
                continue
            n_sub = len(plan.sublayers)
            h_state = np.zeros((group, n_sub, hidden))
            c_state = np.zeros((group, n_sub, hidden))
            if n_sub > 1:
                h_state[:, 1:] = link.h_bar
                c_state[:, 1:] = link.c_bar

            for tissue in plan.tissues:
                subs = [s for s, _ in tissue.cells]
                ts = np.asarray([t for _, t in tissue.cells])
                h_prev = h_state[:, subs]  # (G, k, H)
                c_prev = c_state[:, subs]
                x = proj_u[seq_idx[:, None], ts[None, :]]  # (G, k, 4H)
                pre = x + h_prev @ united.u.T + united.b
                o = sigmoid(pre[..., sl["o"]])
                f = sigmoid(pre[..., sl["f"]])
                i = sigmoid(pre[..., sl["i"]])
                g = tanh(pre[..., sl["c"]])
                c_new = f * c_prev + i * g
                skip = np.zeros(group)
                warp = np.zeros(group)
                if cfg.alpha_intra > 0.0:
                    masks = o < cfg.alpha_intra  # (G, k, H)
                    shared = masks.all(axis=1)  # per-sequence intersection
                    c_new = np.where(shared[:, None, :], 0.0, c_new)
                    skip = shared.mean(axis=1)
                    warp = _warp_skip_fractions(shared)
                h_new = o * tanh(c_new)
                h_state[:, subs] = h_new
                c_state[:, subs] = c_new
                hs[seq_idx[:, None], ts[None, :]] = h_new
                for gi, b in enumerate(indices):
                    tissue_records[b].append(
                        TissueRecord(
                            cells=list(tissue.cells),
                            skip_fraction=float(skip[gi]),
                            warp_skip_fraction=float(warp[gi]),
                        )
                    )

        records = []
        for b, plan in enumerate(plans):
            records.append(
                LayerPlanRecord(
                    layer_index=layer_index,
                    hidden_size=hidden,
                    input_size=weights.input_size,
                    seq_length=seq_len,
                    breakpoints=[sub.start for sub in plan.sublayers[1:]],
                    sublayer_lengths=[sub.length for sub in plan.sublayers],
                    tissues=tissue_records[b],
                    relevance=plan.relevance,
                )
            )
        return hs, records

    # -------------------------------------------------------- program cache

    def _link_fingerprint(self, layer_index: int) -> str:
        """Content fingerprint of one layer's predicted link (memoized)."""
        fp = self._link_fps[layer_index]
        if fp is None:
            link = self.predicted_links[layer_index]
            fp = fingerprint_array(link.h_bar) + fingerprint_array(link.c_bar)
            self._link_fps[layer_index] = fp
        return fp

    def _weights_fingerprint(self, layer_index: int) -> str:
        """Content fingerprint of one layer's weights (memoized — the
        executor's weights are fixed at construction, so hashing them once
        keeps program-cache keys off the steady-state path)."""
        fp = self._weights_fps[layer_index]
        if fp is None:
            fp = fingerprint_weights(self._weights[layer_index])
            self._weights_fps[layer_index] = fp
        return fp

    def _program(self, key, build):
        """Program-cache lookup; build time lands in ``compile_wall_s``."""

        def timed_build():
            start = time.perf_counter()
            program = build()
            self._compile_wall += time.perf_counter() - start
            return program

        return self.program_cache.get(key, timed_build)

    def _compiled_stepwise(
        self,
        layer_index: int,
        united: _UnitedWeights,
        batch: int,
        seq_len: int,
        drs: bool,
    ) -> StepwiseProgram:  # or a backend twin with the same interface
        """Cached stepwise program for this layer at ``(batch, seq_len)``.

        Keyed on content (weights + link fingerprints), the resolved
        backend, shapes, and the DRS threshold — *not* on breakpoints,
        which are run-time inputs — so every stepwise mode at one shape
        shares a program. On dispatcher threads the key additionally
        carries the dispatch slot: programs own mutable workspaces, so
        equal-shape shards running concurrently must not share one
        instance. Serial runs (``slot is None``) keep the unsuffixed key.
        """
        alpha = self.config.alpha_intra if drs else 0.0
        key = (
            "stepwise",
            self.backend,
            self._weights_fingerprint(layer_index),
            self._link_fingerprint(layer_index),
            batch,
            seq_len,
            alpha,
        )
        if self._slot is not None:
            key += (("slot", self._slot),)
        link = self.predicted_links[layer_index]
        return self._program(
            key,
            lambda: make_stepwise_program(
                self.backend, united, link, batch, seq_len, drs_alpha=alpha
            ),
        )

    def _compiled_combined(
        self,
        layer_index: int,
        united: _UnitedWeights,
        plan: CachedLayerPlan,
        group: int,
        seq_len: int,
    ):
        """Cached tissue-walk program for one combined-mode plan group.

        The plan ``signature`` in the key is :func:`repro.core.tissue.
        schedule_key` — the exact key the fleet scheduler groups dispatches
        by, so shards of one scheduler group replay one program.
        """
        cfg = self.config
        key = (
            "combined",
            self.backend,
            self._weights_fingerprint(layer_index),
            self._link_fingerprint(layer_index),
            plan.signature,
            group,
            seq_len,
            cfg.alpha_intra,
        )
        if self._slot is not None:
            # Per-slot instances: group programs own workspaces too (see
            # _compiled_stepwise), and two shards can hold equal-size
            # groups of the same schedule key.
            key += (("slot", self._slot),)
        link = self.predicted_links[layer_index]
        return self._program(
            key,
            lambda: make_combined_program(
                self.backend,
                united,
                link,
                plan,
                group,
                seq_len,
                alpha_intra=cfg.alpha_intra,
            ),
        )
