"""Numerically exact, batched execution of every evaluated LSTM scheme.

The executor runs the *actual arithmetic* of each scheme (so accuracy
results are measured, not modeled) while recording the structural plan that
the :mod:`repro.core.trace_builder` converts into GPU kernel traces (so
timing results come from the simulator). Modes:

* ``BASELINE`` — Algorithm 1, the exact reference.
* ``INTER`` — layer division at weak links + predicted context links +
  tissue-parallel execution. The tissue grouping only changes *when* cells
  execute, never their inputs, so the numerics reduce to: reset the
  recurrent state to the predicted link at every breakpoint.
* ``INTRA`` — Algorithm 3 DRS: compute ``o_t`` first, zero the state
  elements of trivial rows.
* ``COMBINED`` — both; inside a tissue the skipped rows are the
  intersection of the fused cells' trivial rows (the shared weight load
  constraint), so the executor walks tissues in schedule order.
* ``ZERO_PRUNE`` — the Fig. 16 baseline: magnitude-pruned ``U`` matrices,
  otherwise the baseline flow.

Two levels of batching keep the hot paths vectorized:

* **Gate fusion.** Every mode drives the recurrence through the *united*
  matrices: one ``(B, H) @ (H, 4H)`` GEMM per timestep (stepwise modes) or
  per tissue (combined mode) replaces the four per-gate GEMMs, and one
  ``(B, T, E) @ (E, 4H)`` GEMM per layer replaces the four input
  projections. The fused products are sliced per gate before the
  activations, which is bit-identical to the per-gate computation.
* **Plan grouping.** Combined-mode sequences whose structural plan
  (breakpoints + aligned tissue schedule) is identical execute *together*:
  each tissue step becomes a single stacked ``(G, k, H) @ (H, 4H)`` matmul
  across the group instead of ``G`` separate per-sequence products.

Both transformations are bit-compatible with the seed per-sequence walk
(preserved as :class:`repro.core.reference.ReferenceExecutor`); the
equivalence is property-tested in ``tests/test_executor_equivalence.py``.

Structural planning (relevance -> breakpoints -> aligned tissues) can be
memoized across runs through an optional :class:`~repro.core.plan.
PlanCache` — the benchmark harness shares one per session so threshold
sweeps recompute no relevance array twice.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.breakpoints import divide_layer, find_breakpoints
from repro.core.context_prediction import PredictedLink
from repro.core.plan import (
    CachedLayerPlan,
    LayerPlanRecord,
    PlanCache,
    SequencePlan,
    TissueRecord,
    fingerprint_array,
    fingerprint_weights,
)
from repro.core.relevance import (
    exact_relevance_values,
    recurrent_row_ranges,
    relevance_values,
)
from repro.core.tissue import align_tissues, schedule_key
from repro.core.trace_builder import build_kernel_trace
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.nn.activations import sigmoid, tanh
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights
from repro.nn.network import LSTMNetwork
from repro.nn.pruning import prune_cell_weights

if TYPE_CHECKING:
    from repro.obs.recorder import Recorder


class ExecutionMode(enum.Enum):
    """The five evaluated execution schemes."""

    BASELINE = "baseline"
    INTER = "inter"
    INTRA = "intra"
    COMBINED = "combined"
    ZERO_PRUNE = "zero_prune"


@dataclass(frozen=True)
class ExecutionConfig:
    """Knobs of one execution scheme.

    Attributes:
        mode: The scheme to run.
        alpha_inter: Relevance threshold (breaks links with ``S < alpha``).
        alpha_intra: Near-zero threshold on ``o_t`` (skips rows below it).
        mts: Maximum tissue size (from :func:`repro.core.tissue.calibrate_mts`).
        drs_style: ``"hardware"`` (CRM-backed) or ``"software"`` DRS.
        zero_prune_fraction: Element fraction erased in ``ZERO_PRUNE`` mode.
        use_exact_relevance: Use the exact-overlap ablation of Algorithm 2.
        spec: GPU model used when building kernel traces.
    """

    mode: ExecutionMode = ExecutionMode.BASELINE
    alpha_inter: float = 0.0
    alpha_intra: float = 0.0
    mts: int = 5
    drs_style: str = "hardware"
    zero_prune_fraction: float = 0.37
    use_exact_relevance: bool = False
    spec: GPUSpec = TEGRA_X1

    def __post_init__(self) -> None:
        if self.alpha_inter < 0 or self.alpha_intra < 0:
            raise ConfigurationError("thresholds must be non-negative")
        if self.mts < 1:
            raise ConfigurationError(f"mts must be >= 1, got {self.mts}")
        if self.drs_style not in ("hardware", "software"):
            raise ConfigurationError(f"unknown drs_style {self.drs_style!r}")
        if not 0 <= self.zero_prune_fraction < 1:
            raise ConfigurationError("zero_prune_fraction must be in [0, 1)")

    @property
    def inter_active(self) -> bool:
        """Whether layer division runs."""
        return self.mode in (ExecutionMode.INTER, ExecutionMode.COMBINED)

    @property
    def intra_active(self) -> bool:
        """Whether DRS runs."""
        return self.mode in (ExecutionMode.INTRA, ExecutionMode.COMBINED)


@dataclass
class ExecutionResult:
    """Outcome of one batched execution.

    ``timings`` carries the host-side wall-clock split of the run —
    ``exec_wall_s`` (whole numerical execution) and ``plan_wall_s``
    (structural planning: relevance, breakpoints, tissue alignment) —
    measured at layer granularity, so the cost is two clock reads per
    layer regardless of batch or sequence length.
    """

    logits: np.ndarray
    plans: list[SequencePlan]
    layer_outputs: list[np.ndarray] = field(default_factory=list)
    layer_states: list[np.ndarray] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def predictions(self) -> np.ndarray:
        """Argmax predictions: ``(B,)`` or ``(B, T)``."""
        return np.argmax(self.logits, axis=-1)


def _warp_skip_fractions(masks: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Vectorized fraction of *rows* living in all-trivial warps, per mask.

    Each warp is weighted by its real lane count, so when ``H`` is not a
    multiple of the warp size the trailing partial warp contributes only
    its actual rows (a 16-lane tail warp of a 48-row layer is 16/48 of the
    rows, not 1/2 of the warps). This keeps the warp-level fraction <= the
    row-level skip fraction — the invariant the software-DRS divergence
    model in :mod:`repro.gpu.cta` relies on.

    Args:
        masks: Boolean array ``(..., H)``.
    Returns:
        Array of shape ``masks.shape[:-1]``.
    """
    hidden = masks.shape[-1]
    n_warps = -(-hidden // warp_size)
    padded = np.ones(masks.shape[:-1] + (n_warps * warp_size,), dtype=bool)
    padded[..., :hidden] = masks
    whole = padded.reshape(masks.shape[:-1] + (n_warps, warp_size)).all(axis=-1)
    lanes = np.full(n_warps, warp_size, dtype=float)
    lanes[-1] = hidden - (n_warps - 1) * warp_size
    return (whole * lanes).sum(axis=-1) / hidden


@dataclass
class _UnitedWeights:
    """The fused-gate view of one layer's weights.

    Rows follow :data:`~repro.nn.lstm_cell.GATE_ORDER` — ``(f, i, c, o)`` —
    so ``slices[g]`` selects gate ``g`` out of a ``(..., 4H)`` product.
    """

    w: np.ndarray  # (4H, E)
    u: np.ndarray  # (4H, H)
    b: np.ndarray  # (4H,)
    slices: dict[str, slice]
    _gate_ops: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None

    @classmethod
    def from_weights(cls, weights: LSTMCellWeights) -> "_UnitedWeights":
        hidden = weights.hidden_size
        slices = {
            gate: slice(k * hidden, (k + 1) * hidden)
            for k, gate in enumerate(GATE_ORDER)
        }
        return cls(
            w=weights.united_w(), u=weights.united_u(), b=weights.united_b(), slices=slices
        )

    def gate_ops(self) -> dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-gate operands for the stepwise loops.

        Maps each gate in :data:`~repro.nn.lstm_cell.GATE_ORDER` to
        ``(w, u, b)`` — row-major ``(H, E)`` / ``(H, H)`` slices of the
        united matrices plus the bias slice, consumed as ``x @ w.T`` /
        ``h @ u.T`` exactly like the reference walk. The stepwise loops run
        four narrow per-gate products instead of one wide fused GEMM: on
        cache-starved CPU cores the ``(B, 4H)`` fused pre-activation plus
        its strided per-gate slices spills the cache during the elementwise
        tail, and measures ~1.7x slower per step than per-gate ``(B, H)``
        work. The operands stay row-major transpose *views* (never
        re-laid-out copies) so BLAS takes the same transposed-kernel path
        as the reference and the reduction order — hence every bit —
        matches. The fused layout remains the right call for the
        tissue-grouped COMBINED path, where whole sublayer spans feed each
        product. Built lazily once per layer.
        """
        if self._gate_ops is None:
            self._gate_ops = {
                gate: (self.w[sl], self.u[sl], self.b[sl])
                for gate, sl in self.slices.items()
            }
        return self._gate_ops


class LSTMExecutor:
    """Executes an :class:`~repro.nn.network.LSTMNetwork` under one scheme.

    Args:
        network: The network to execute.
        config: The execution scheme and its thresholds.
        predicted_links: Per-layer Eq. 6 context links (zeros by default).
        plan_cache: Optional shared :class:`~repro.core.plan.PlanCache`;
            when given, per-sequence relevance arrays and structural plans
            are reused across executor instances and runs.
        recorder: Optional :class:`~repro.obs.recorder.Recorder`; when
            enabled, every ``run_batch`` emits a numerics-plane
            :class:`~repro.obs.record.RunRecord` (plan counters + wall
            clock, no kernel events). :meth:`repro.core.pipeline.
            OptimizedLSTM.run` records through its own builder instead and
            leaves this unset, so runs are never double-recorded.
    """

    def __init__(
        self,
        network: LSTMNetwork,
        config: ExecutionConfig,
        predicted_links: list[PredictedLink] | None = None,
        plan_cache: PlanCache | None = None,
        recorder: "Recorder | None" = None,
    ) -> None:
        self.network = network
        self.config = config
        self.plan_cache = plan_cache
        self.recorder = recorder
        self._plan_wall = 0.0
        hidden = network.config.hidden_size
        if predicted_links is None:
            predicted_links = [PredictedLink.zeros(hidden) for _ in network.layers]
        if len(predicted_links) != len(network.layers):
            raise ConfigurationError(
                "need one predicted link per layer "
                f"({len(network.layers)}), got {len(predicted_links)}"
            )
        self.predicted_links = predicted_links
        self._row_ranges = [recurrent_row_ranges(layer.weights) for layer in network.layers]
        self._weights: list[LSTMCellWeights] = [layer.weights for layer in network.layers]
        self._collect_states = False
        self._last_states: np.ndarray | None = None
        self.pruning_kept_fraction: float | None = None
        if config.mode is ExecutionMode.ZERO_PRUNE:
            pruned = []
            kept = []
            for layer in network.layers:
                new_weights, aggregate = prune_cell_weights(
                    layer.weights, config.zero_prune_fraction
                )
                pruned.append(new_weights)
                kept.append(aggregate.kept_fraction)
            self._weights = pruned
            self.pruning_kept_fraction = float(np.mean(kept))
        self._united = [_UnitedWeights.from_weights(w) for w in self._weights]

    # ------------------------------------------------------------------ API

    def run_batch(self, tokens: np.ndarray, collect_states: bool = False) -> ExecutionResult:
        """Execute a batch of token sequences, shape ``(B, T)``.

        Args:
            tokens: Token-id batch.
            collect_states: Also return the per-layer cell-state sequences
                (used by the offline context-link calibration; stepwise
                modes only).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"tokens must be (B, T), got shape {tokens.shape}")
        batch, seq_len = tokens.shape
        start_wall = time.perf_counter()
        self._plan_wall = 0.0
        xs = self.network.embedding[tokens]  # (B, T, E)

        plan_layers: list[list[LayerPlanRecord]] = [[] for _ in range(batch)]
        layer_outputs: list[np.ndarray] = []
        layer_states: list[np.ndarray] = []
        self._collect_states = collect_states
        for layer_index, weights in enumerate(self._weights):
            xs, records = self._run_layer(layer_index, weights, xs)
            layer_outputs.append(xs)
            if collect_states and self._last_states is not None:
                layer_states.append(self._last_states)
            for b in range(batch):
                plan_layers[b].append(records[b])

        top = xs if self.network.per_timestep_head else self.network.pool_top(xs)
        logits = self.network.head_logits(top)
        plans = [SequencePlan(layers=plan_layers[b]) for b in range(batch)]
        timings = {
            "exec_wall_s": time.perf_counter() - start_wall,
            "plan_wall_s": self._plan_wall,
        }
        result = ExecutionResult(
            logits=logits,
            plans=plans,
            layer_outputs=layer_outputs,
            layer_states=layer_states,
            timings=timings,
        )
        if self.recorder is not None:
            self._record_run(result, batch, seq_len)
        return result

    def _record_run(self, result: ExecutionResult, batch: int, seq_len: int) -> None:
        """Emit a numerics-plane run record (no-op when recorder disabled)."""
        cfg = self.config
        builder = self.recorder.start_run(
            label="executor",
            mode=cfg.mode.value,
            spec=cfg.spec.name,
            batch=batch,
            seq_length=seq_len,
            config={
                "alpha_inter": cfg.alpha_inter,
                "alpha_intra": cfg.alpha_intra,
                "mts": cfg.mts,
                "drs_style": cfg.drs_style,
            },
        )
        if builder is None:
            return
        for b, plan in enumerate(result.plans):
            builder.observe_plan(b, plan)
        builder.set_timing(wall_s=result.timings["exec_wall_s"], **result.timings)
        builder.finish()

    def kernel_trace(self, plan: SequencePlan):
        """GPU kernel trace of one executed sequence (for the simulator)."""
        cfg = self.config
        return build_kernel_trace(
            plan,
            cfg.spec,
            inter=cfg.inter_active,
            intra=cfg.intra_active,
            drs_style=cfg.drs_style,
            zero_prune_kept=(
                self.pruning_kept_fraction
                if cfg.mode is ExecutionMode.ZERO_PRUNE
                else None
            ),
        )

    # ------------------------------------------------------------ internals

    def _run_layer(
        self, layer_index: int, weights: LSTMCellWeights, xs: np.ndarray
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        united = self._united[layer_index]
        if self.config.mode is ExecutionMode.COMBINED:
            proj_u = xs @ united.w.T  # (B, T, 4H) — one fused input GEMM
            proj = {g: proj_u[..., united.slices[g]] for g in GATE_ORDER}
            plans = self._plan_inter(layer_index, weights, proj, xs)
            return self._run_layer_combined(layer_index, weights, united, proj_u, plans)
        return self._run_layer_stepwise(layer_index, weights, united, xs)

    def _relevance(self, layer_index: int, weights, proj_b: dict[str, np.ndarray]):
        fn = exact_relevance_values if self.config.use_exact_relevance else relevance_values
        return fn(weights, proj_b, row_ranges=self._row_ranges[layer_index])

    def _build_plan(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        relevance: np.ndarray,
        seq_len: int,
    ) -> CachedLayerPlan:
        breaks = find_breakpoints(relevance, self.config.alpha_inter)
        sublayers = divide_layer(seq_len, breaks)
        tissues = align_tissues(sublayers, self.config.mts)
        return CachedLayerPlan(
            relevance=relevance,
            breakpoints=tuple(breaks),
            sublayers=tuple(sublayers),
            tissues=tuple(tissues),
            signature=schedule_key(tissues),
        )

    def _plan_inter(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        proj: dict[str, np.ndarray],
        xs: np.ndarray,
    ) -> list[CachedLayerPlan]:
        """Per-sequence structural plans, served from the cache when wired."""
        cfg = self.config
        plan_start = time.perf_counter()
        batch, seq_len, _ = xs.shape
        cache = self.plan_cache
        weights_fp = fingerprint_weights(weights) if cache is not None else None
        plans = []
        for b in range(batch):
            def compute_relevance(b=b):
                proj_b = {g: proj[g][b] for g in GATE_ORDER}
                return self._relevance(layer_index, weights, proj_b)

            if cache is None:
                plans.append(
                    self._build_plan(layer_index, weights, compute_relevance(), seq_len)
                )
                continue
            relevance_key = (
                "rel",
                weights_fp,
                fingerprint_array(xs[b]),
                cfg.use_exact_relevance,
            )
            plan_key = relevance_key + (cfg.alpha_inter, cfg.mts, cfg.spec.name)
            plans.append(
                cache.layer_plan(
                    plan_key,
                    relevance_key,
                    compute_relevance,
                    lambda s: self._build_plan(layer_index, weights, s, seq_len),
                )
            )
        self._plan_wall += time.perf_counter() - plan_start
        return plans

    def _run_layer_stepwise(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        xs: np.ndarray,
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Per-gate batched timestep loop for every mode except COMBINED.

        Four narrow per-gate products per step instead of one fused
        ``(B, 4H)`` GEMM — see :meth:`_UnitedWeights.gate_ops` for why the
        narrow layout wins on CPU. Each gate's value is the same ``K``-wide
        dot product either way, so outputs stay bit-identical.
        """
        cfg = self.config
        if cfg.intra_active and cfg.alpha_intra > 0.0:
            # INTRA never divides the layer (inter level off), so the DRS
            # loop needs no breakpoint handling.
            return self._run_layer_stepwise_drs(layer_index, weights, united, xs)
        batch, seq_len, _ = xs.shape
        hidden = weights.hidden_size
        link = self.predicted_links[layer_index]
        ops = united.gate_ops()
        w_f, u_f, b_f = ops["f"]
        w_i, u_i, b_i = ops["i"]
        w_c, u_c, b_c = ops["c"]
        w_o, u_o, b_o = ops["o"]
        proj_f = xs @ w_f.T  # (B, T, H) per gate, contiguous
        proj_i = xs @ w_i.T
        proj_c = xs @ w_c.T
        proj_o = xs @ w_o.T

        break_mask = np.zeros((batch, seq_len), dtype=bool)
        plans: list[CachedLayerPlan] | None = None
        if cfg.inter_active:
            proj = {"f": proj_f, "i": proj_i, "c": proj_c, "o": proj_o}
            plans = self._plan_inter(layer_index, weights, proj, xs)
            for b, plan in enumerate(plans):
                for start in plan.breakpoints:
                    break_mask[b, start] = True

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden)) if self._collect_states else None
        skip_fracs = np.zeros((batch, seq_len))
        warp_fracs = np.zeros((batch, seq_len))

        for t in range(seq_len):
            if cfg.inter_active and break_mask[:, t].any():
                reset = break_mask[:, t][:, None]
                h = np.where(reset, link.h_bar[None, :], h)
                c = np.where(reset, link.c_bar[None, :], c)

            f = sigmoid(proj_f[:, t] + h @ u_f.T + b_f)
            i = sigmoid(proj_i[:, t] + h @ u_i.T + b_i)
            g = tanh(proj_c[:, t] + h @ u_c.T + b_c)
            o = sigmoid(proj_o[:, t] + h @ u_o.T + b_o)
            c = f * c + i * g
            h = o * tanh(c)
            hs[:, t] = h
            if cs is not None:
                cs[:, t] = c
        self._last_states = cs

        records = []
        for b in range(batch):
            records.append(
                self._stepwise_record(
                    layer_index,
                    weights,
                    seq_len,
                    plans[b] if plans is not None else None,
                    skip_fracs[b],
                    warp_fracs[b],
                )
            )
        return hs, records

    def _run_layer_stepwise_drs(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        xs: np.ndarray,
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Row-compacted DRS timestep loop (INTRA with a live threshold).

        Algorithm 3 taken literally instead of compute-then-zero: with the
        per-gate operand layout the output gate costs the same as any other
        gate, so every step computes ``o_t`` first and its mask picks the
        trivial rows. On steps where some row is trivial across the *whole*
        batch, the ``f``/``i``/``c`` work is gathered to the surviving
        columns, computed compacted, and scattered back into the cell
        state — dropped rows never see a bias add, an activation, or a
        cell update.

        One deliberate asymmetry with the paper's GPU kernel: the
        ``h @ U_g^T`` products stay full width. A mobile GPU's DRS kernel
        skips output rows inside the kernel, where every output element is
        an independent dot product; CPU BLAS does not expose that
        guarantee — gathering columns of ``U_g^T`` changes the GEMM's
        ``N`` dimension, which changes OpenBLAS's kernel/blocking choice
        and hence the reduction order, and measured mismatch rates for
        column-subset products on this platform are 2-70 % across
        ``(B, H)`` shapes. Shrinking the product would therefore break the
        frozen bit-identity contract with :class:`~repro.core.reference.
        ReferenceExecutor`. Everything elementwise *after* the product is
        subset-safe (ufuncs are per-element), so the compaction covers the
        pre-activation adds, both activations, and the cell update, and
        stays bit-identical: surviving elements go through the same
        ``(x + hU) + b`` chain, dropped elements are exactly ``0.0`` on
        both sides.

        The skip/warp statistics are accumulated as raw masks and reduced
        once per layer, replacing the two per-timestep reductions that made
        the batched INTRA path slower than the seed walk.
        """
        cfg = self.config
        batch, seq_len, _ = xs.shape
        hidden = weights.hidden_size
        alpha = cfg.alpha_intra
        ops = united.gate_ops()
        w_f, u_f, b_f = ops["f"]
        w_i, u_i, b_i = ops["i"]
        w_c, u_c, b_c = ops["c"]
        w_o, u_o, b_o = ops["o"]
        proj_f = xs @ w_f.T  # (B, T, H) per gate, contiguous
        proj_i = xs @ w_i.T
        proj_c = xs @ w_c.T
        proj_o = xs @ w_o.T

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden)) if self._collect_states else None
        masks_all = np.empty((batch, seq_len, hidden), dtype=bool)

        for t in range(seq_len):
            o = sigmoid(proj_o[:, t] + h @ u_o.T + b_o)
            masks = o < alpha  # (B, H)
            masks_all[:, t] = masks
            dropped = masks.all(axis=0)
            if dropped.any():
                alive = np.flatnonzero(~dropped)
                f = sigmoid(proj_f[:, t, alive] + (h @ u_f.T)[:, alive] + b_f[alive])
                i = sigmoid(proj_i[:, t, alive] + (h @ u_i.T)[:, alive] + b_i[alive])
                g = tanh(proj_c[:, t, alive] + (h @ u_c.T)[:, alive] + b_c[alive])
                c_next = np.zeros((batch, hidden))
                c_next[:, alive] = np.where(
                    masks[:, alive], 0.0, f * c[:, alive] + i * g
                )
                c = c_next
            else:
                f = sigmoid(proj_f[:, t] + h @ u_f.T + b_f)
                i = sigmoid(proj_i[:, t] + h @ u_i.T + b_i)
                g = tanh(proj_c[:, t] + h @ u_c.T + b_c)
                c = np.where(masks, 0.0, f * c + i * g)
            h = o * tanh(c)
            hs[:, t] = h
            if cs is not None:
                cs[:, t] = c
        self._last_states = cs

        skip_fracs = masks_all.mean(axis=2)  # (B, T)
        warp_fracs = _warp_skip_fractions(masks_all)
        records = [
            self._stepwise_record(
                layer_index, weights, seq_len, None, skip_fracs[b], warp_fracs[b]
            )
            for b in range(batch)
        ]
        return hs, records

    def _stepwise_record(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        seq_len: int,
        plan: CachedLayerPlan | None,
        skip_fracs: np.ndarray,
        warp_fracs: np.ndarray,
    ) -> LayerPlanRecord:
        if self.config.inter_active:
            assert plan is not None
            tissue_records = []
            for tissue in plan.tissues:
                # Timestamp-resolved skip stats; the per-tissue shared-load
                # fraction is the mean of the fused cells' fractions here
                # because stepwise modes never intersect masks (INTER has
                # alpha_intra == 0, so the fractions are all zero anyway).
                ts = tissue.timestamps()
                tissue_records.append(
                    TissueRecord(
                        cells=list(tissue.cells),
                        skip_fraction=float(np.mean([skip_fracs[t] for t in ts])),
                        warp_skip_fraction=float(np.mean([warp_fracs[t] for t in ts])),
                    )
                )
            breakpoints = [sub.start for sub in plan.sublayers[1:]]
            sublayer_lengths = [sub.length for sub in plan.sublayers]
            relevance = plan.relevance
        else:
            # tolist() converts to plain Python floats in one C pass —
            # identical values, far cheaper than 2*T numpy-scalar casts.
            skip_list = np.asarray(skip_fracs).tolist()
            warp_list = np.asarray(warp_fracs).tolist()
            tissue_records = [
                TissueRecord(
                    cells=[(0, t)],
                    skip_fraction=skip_list[t],
                    warp_skip_fraction=warp_list[t],
                )
                for t in range(seq_len)
            ]
            breakpoints = []
            sublayer_lengths = [seq_len]
            relevance = None
        return LayerPlanRecord(
            layer_index=layer_index,
            hidden_size=weights.hidden_size,
            input_size=weights.input_size,
            seq_length=seq_len,
            breakpoints=breakpoints,
            sublayer_lengths=sublayer_lengths,
            tissues=tissue_records,
            relevance=relevance,
        )

    def _run_layer_combined(
        self,
        layer_index: int,
        weights: LSTMCellWeights,
        united: _UnitedWeights,
        proj_u: np.ndarray,
        plans: list[CachedLayerPlan],
    ) -> tuple[np.ndarray, list[LayerPlanRecord]]:
        """Plan-grouped tissue-ordered walk (inter + intra together).

        Sequences with an identical structural plan walk the schedule
        *together*: each tissue step is one stacked ``(G, k, H) @ (H, 4H)``
        matmul over the group, bit-identical to ``G`` independent
        per-sequence ``(k, H)`` products (numpy dispatches the same GEMM
        per leading-axis slice).
        """
        cfg = self.config
        batch, seq_len, _ = proj_u.shape
        hidden = weights.hidden_size
        link = self.predicted_links[layer_index]
        self._last_states = None  # combined mode does not collect states
        sl = united.slices

        groups: dict[tuple, list[int]] = {}
        for b, plan in enumerate(plans):
            groups.setdefault(plan.signature, []).append(b)

        hs = np.empty((batch, seq_len, hidden))
        tissue_records: list[list[TissueRecord]] = [[] for _ in range(batch)]
        for indices in groups.values():
            plan = plans[indices[0]]
            group = len(indices)
            seq_idx = np.asarray(indices)
            n_sub = len(plan.sublayers)
            h_state = np.zeros((group, n_sub, hidden))
            c_state = np.zeros((group, n_sub, hidden))
            if n_sub > 1:
                h_state[:, 1:] = link.h_bar
                c_state[:, 1:] = link.c_bar

            for tissue in plan.tissues:
                subs = [s for s, _ in tissue.cells]
                ts = np.asarray([t for _, t in tissue.cells])
                h_prev = h_state[:, subs]  # (G, k, H)
                c_prev = c_state[:, subs]
                x = proj_u[seq_idx[:, None], ts[None, :]]  # (G, k, 4H)
                pre = x + h_prev @ united.u.T + united.b
                o = sigmoid(pre[..., sl["o"]])
                f = sigmoid(pre[..., sl["f"]])
                i = sigmoid(pre[..., sl["i"]])
                g = tanh(pre[..., sl["c"]])
                c_new = f * c_prev + i * g
                skip = np.zeros(group)
                warp = np.zeros(group)
                if cfg.alpha_intra > 0.0:
                    masks = o < cfg.alpha_intra  # (G, k, H)
                    shared = masks.all(axis=1)  # per-sequence intersection
                    c_new = np.where(shared[:, None, :], 0.0, c_new)
                    skip = shared.mean(axis=1)
                    warp = _warp_skip_fractions(shared)
                h_new = o * tanh(c_new)
                h_state[:, subs] = h_new
                c_state[:, subs] = c_new
                hs[seq_idx[:, None], ts[None, :]] = h_new
                for gi, b in enumerate(indices):
                    tissue_records[b].append(
                        TissueRecord(
                            cells=list(tissue.cells),
                            skip_fraction=float(skip[gi]),
                            warp_skip_fraction=float(warp[gi]),
                        )
                    )

        records = []
        for b, plan in enumerate(plans):
            records.append(
                LayerPlanRecord(
                    layer_index=layer_index,
                    hidden_size=hidden,
                    input_size=weights.input_size,
                    seq_length=seq_len,
                    breakpoints=[sub.start for sub in plan.sublayers[1:]],
                    sublayer_lengths=[sub.length for sub in plan.sublayers],
                    tissues=tissue_records[b],
                    relevance=plan.relevance,
                )
            )
        return hs, records
