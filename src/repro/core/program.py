"""Compiled plan programs: preallocated, fused lowerings of layer execution.

The interpreted executor pays avoidable memory churn on every timestep:
each gate activation allocates fresh ``(B, H)`` arrays, every step
re-derives operand views, and the pre-activation chain materializes three
intermediates per gate. This module lowers one layer's execution — the
timestep loop of the stepwise modes, or one plan group's tissue walk in
combined mode — into a *program*: an object that owns

* **staged weights** — the per-gate recurrent blocks restacked once into a
  ``(4, H, H)`` array (each block kept row-major, so BLAS sees the same
  transposed-GEMV layout as the interpreted views and the bits match),
* **a single preallocated workspace** — gate slabs, ``h``/``c`` state,
  DRS mask scratch, gather/scatter index vectors — reused across
  timesteps and across runs via ``np.matmul(..., out=)`` and in-place
  ufunc chains,
* **a flat op list** — tissue steps are unrolled at compile time into
  ``(k, state-rows, gather-rows)`` tuples; breakpoint resets arrive as a
  per-timestep column list resolved by the caller from the sequence plans.

Bit-identity contract: every program below reproduces the interpreted
arithmetic *exactly* (property-tested in ``tests/test_program.py`` and
``tests/test_executor_equivalence.py``). The rules that make this work on
OpenBLAS, measured on this platform:

* ``np.matmul(..., out=)`` never changes bits relative to the allocating
  call — the dispatch is chosen from the operands, not the output.
* The four per-gate recurrent products collapse into **one** broadcast
  stacked matmul ``(1, B, 1, H) @ (4, 1, H, H)``: each ``(1, H) @ (H, H)``
  slice dispatches the same GEMV as the per-gate call (0 mismatches in
  10^4 random trials), so a step costs one BLAS dispatch instead of four.
* Gate blocks may be *restacked* (copied) as long as each ``(H, H)`` block
  stays row-major and is consumed through a transpose view — layout is
  what selects the BLAS kernel. Re-laying a block out transposed-
  contiguous changes the reduction order and the bits (up to 100 %
  mismatch measured), so that classic "pre-transpose the weights"
  staging is deliberately NOT done here.
* In-place ufunc chains (the sigmoid ladder below, ``tanh(out=)``, the
  cell update) are elementwise and bit-identical to their allocating
  forms; ``np.take(..., out=)`` and boolean ``np.copyto`` likewise.

Programs are built by :class:`~repro.core.executor.LSTMExecutor` (the
``compile=True`` fast path) and cached in a :class:`ProgramCache` keyed on
(weights fingerprint, link fingerprint, shapes, and — for combined mode —
the plan signature ``schedule_key``), so repeated runs, threshold sweeps
over one batch, and fleet shards grouped by the runtime scheduler all
reuse one compiled program. Workspace lifetime rule: a program owns its
buffers for as long as it is cached; every run rewrites the full state
(``h``/``c`` set on entry — zeros, or caller-injected resident state for
the streaming runtime — and every output cell written), so consecutive
runs are bit-identical to fresh executors — property-tested, including
across mid-sequence breakpoint resets.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context_prediction import PredictedLink
    from repro.core.executor import _UnitedWeights
    from repro.core.plan import CachedLayerPlan

#: Gate order of the *stacked* stepwise buffers: the three sigmoid gates
#: first (one fused in-place sigmoid over a contiguous ``[:3]`` slab), the
#: tanh candidate last. This is a buffer layout choice only — each gate's
#: arithmetic is unchanged — and differs from the united-matrix row order
#: ``GATE_ORDER`` (f, i, c, o), hence the explicit restack at compile time.
STACK_ORDER: tuple[str, ...] = ("f", "i", "o", "c")


def sigmoid_into(
    x: np.ndarray,
    out: np.ndarray,
    s1: np.ndarray,
    s2: np.ndarray,
    mask: np.ndarray,
) -> None:
    """In-place numerically-stable sigmoid, bit-identical to
    :func:`repro.nn.activations.sigmoid`.

    Mirrors the library ladder step for step — ``ex = exp(-|x|)``,
    ``denom = 1 + ex``, positive branch ``1/denom``, negative branch
    ``ex/denom`` — with every intermediate landing in caller scratch.
    ``out`` may alias ``x`` (the sign mask is read before the first
    overwrite). All buffers share ``x``'s shape; ``mask`` is boolean.
    """
    np.abs(x, out=s1)
    np.negative(s1, out=s1)
    np.exp(s1, out=s1)  # s1 = exp(-|x|)
    np.add(1.0, s1, out=s2)  # s2 = 1 + exp(-|x|)
    np.greater_equal(x, 0.0, out=mask)
    np.divide(s1, s2, out=out)  # negative branch
    np.divide(1.0, s2, out=s2)  # positive branch
    np.copyto(out, s2, where=mask)


@dataclass
class ProgramCacheStats:
    """Hit/miss counters of one :class:`ProgramCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total program lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict form (for run records and bench reports)."""
        return {
            "program_hits": self.hits,
            "program_misses": self.misses,
            "program_hit_rate": self.hit_rate,
            "program_evictions": self.evictions,
        }


class ProgramCache:
    """Bounded LRU cache of compiled programs.

    Programs own multi-megabyte workspaces, so the default bound is far
    smaller than the :class:`~repro.core.plan.PlanCache` bound; an entry
    is one (shape, weights, plan-signature) combination and a steady
    serving workload needs only a handful.

    Thread-safe with *single-flight* compilation: under the in-process
    dispatcher (:mod:`repro.core.parallel`) several threads can request
    an uncompiled key at once (concurrent cold-start). One thread
    compiles with the lock released; the peers park on a per-key event
    and take the stored program as hits, so ``stats.misses`` counts
    distinct compiles — zero duplicate work, the property the
    ``bench_parallel`` cold-start gate asserts.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._pending: dict[Hashable, threading.Event] = {}
        self.stats = ProgramCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        """Drop every program (counters are kept)."""
        with self._lock:
            self._store.clear()

    def get(self, key: Hashable, build: Callable[[], object]):
        """Cached lookup; ``build`` runs only on a miss (single-flight)."""
        while True:
            with self._lock:
                hit = self._store.get(key)
                if hit is not None:
                    self._store.move_to_end(key)
                    self.stats.hits += 1
                    return hit
                event = self._pending.get(key)
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
                    break  # this thread leads the compile
            event.wait()
        try:
            program = build()
        except BaseException:
            with self._lock:
                self._pending.pop(key, None)
            event.set()
            raise
        with self._lock:
            self.stats.misses += 1
            self._store[key] = program
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.stats.evictions += 1
            self._pending.pop(key, None)
        event.set()
        return program


class StepwiseProgram:
    """Compiled timestep loop for the stepwise modes.

    One program serves BASELINE / ZERO_PRUNE / INTER / INTRA at a fixed
    ``(B, T)``: the mode differences — breakpoint resets, the DRS mask —
    are run-time inputs, so the program is keyed on shapes and weights
    only and reused across plans.

    Two-phase API (the inter-level planner needs the input projections
    *before* the recurrence runs):

    1. :meth:`project` stages ``xs`` into the preallocated ``(4, B, T, H)``
       projection block and returns per-gate views for the planner.
    2. :meth:`execute` runs the unrolled timestep loop into caller-owned
       output arrays.
    """

    def __init__(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        batch: int,
        seq_len: int,
        drs_alpha: float = 0.0,
    ) -> None:
        hidden = united.u.shape[1]
        self.batch = batch
        self.seq_len = seq_len
        self.hidden = hidden
        self.drs_alpha = drs_alpha
        self._link = link
        sl = united.slices
        # Staged weights: restack the recurrent gate blocks into STACK_ORDER.
        # np.stack keeps each (H, H) block row-major — the layout that makes
        # the transpose view below dispatch the same GEMV as the interpreted
        # per-gate `h @ u_g.T` (see module docstring).
        u_stack = np.stack([united.u[sl[g]] for g in STACK_ORDER])
        self._u_op = u_stack.transpose(0, 2, 1)[:, None]  # (4, 1, H, H)
        self._w_ops = [united.w[sl[g]].T for g in STACK_ORDER]  # (E, H) views
        self._b = np.stack([united.b[sl[g]] for g in STACK_ORDER])[:, None, :]

        # The workspace: every per-step array the loop touches, allocated
        # once. `proj` is the largest block (4 * B * T * H doubles).
        self.proj = np.empty((4, batch, seq_len, hidden))
        self.h = np.zeros((batch, hidden))
        self.c = np.zeros((batch, hidden))
        self._hu = np.empty((4, batch, 1, hidden))
        self._pre = np.empty((4, batch, hidden))
        self._s1 = np.empty((3, batch, hidden))
        self._s2 = np.empty((3, batch, hidden))
        self._m = np.empty((3, batch, hidden), dtype=bool)
        self._t1 = np.empty((batch, hidden))
        #: Per-step DRS masks (read by the executor for skip statistics);
        #: fully rewritten on every DRS run.
        self.masks_all = (
            np.empty((batch, seq_len, hidden), dtype=bool) if drs_alpha > 0.0 else None
        )
        if drs_alpha > 0.0:
            # Compacted-update scratch (Algorithm 3 in the program): on
            # steps where some row is trivial across the whole batch, the
            # g tanh and the cell update run on the surviving columns
            # only, gathered into the leading elements of these buffers.
            # Flat full-capacity allocations reshaped per step — the alive
            # count varies, the capacity does not. The per-step views must
            # be CONTIGUOUS (prefix-of-flat, not a ``[:, :, :k]`` column
            # slice): in-place unary ufuncs on strided views read the gap
            # bytes on some numpy builds, leaking uninitialized scratch
            # into the activation ladder.
            self._cfi = np.empty(2 * batch * hidden)
            self._cg = np.empty(batch * hidden)
            self._cc = np.empty(batch * hidden)
            self._dropped = np.empty(hidden, dtype=bool)
            self._alive = np.empty(hidden, dtype=bool)
        # Fixed views, built once so the loop creates no per-step objects.
        self._h_op = self.h[None, :, None, :]  # (1, B, 1, H) matmul operand
        self._huv = self._hu[:, :, 0, :]  # (4, B, H)
        self._sig = self._pre[:3]  # the three sigmoid gates, contiguous
        self._f, self._i, self._o, self._g = self._pre
        self._proj_t = [self.proj[:, :, t] for t in range(seq_len)]
        self._mask_t = (
            [self.masks_all[:, t] for t in range(seq_len)]
            if self.masks_all is not None
            else None
        )

    def project(self, xs: np.ndarray, exact: bool = True) -> dict[str, np.ndarray]:
        """Stage the per-gate input projections; returns planner views.

        The matmul is lifted to per-row GEMV dispatch exactly like the
        interpreted :func:`repro.core.executor._row_proj` — each token's
        projected bits are a pure function of the token and the weights,
        independent of ``T``, ``B``, or chunk boundaries (the property the
        streaming runtime's chunked replay relies on). ``out=`` never
        changes bits relative to the allocating call.

        ``exact`` exists for signature parity with the fused backend
        programs (:mod:`repro.core.backends`) and is ignored: the numpy
        lowering always projects exactly — it *is* the oracle.
        """
        xs_rows = xs[:, :, None, :]  # (B, T, 1, E): one GEMV per token
        for idx in range(4):
            np.matmul(xs_rows, self._w_ops[idx], out=self.proj[idx][:, :, None, :])
        return {g: self.proj[idx] for idx, g in enumerate(STACK_ORDER)}

    def execute(
        self,
        hs: np.ndarray,
        reset_cols: list[np.ndarray | None] | None = None,
        cs: np.ndarray | None = None,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
        state_out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Run the compiled timestep loop.

        Args:
            hs: Caller-owned ``(B, T, H)`` output (freshly allocated per
                run — programs never alias output across runs).
            reset_cols: Per-timestep ``(B, 1)`` breakpoint reset columns
                (``None`` entries where no sequence resets), or ``None``
                when the inter level is off.
            cs: Optional ``(B, T, H)`` cell-state output.
            h0: Optional ``(B, H)`` initial hidden state (zeros when
                omitted). The streaming runtime injects each session's
                resident state here; bits are identical to a contiguous
                run because the loop's first recurrent operand is the
                same ``(1, H)`` row either way.
            c0: Optional ``(B, H)`` initial cell state (zeros when
                omitted).
            state_out: Optional ``(h_out, c_out)`` pair of ``(B, H)``
                arrays that receive the post-sequence state for
                re-injection on the next chunk.
        """
        link = self._link
        alpha = self.drs_alpha
        drs = alpha > 0.0
        h, c, t1 = self.h, self.c, self._t1
        if h0 is None:
            h[:] = 0.0
        else:
            h[:] = h0
        if c0 is None:
            c[:] = 0.0
        else:
            c[:] = c0
        # Without resets the loop writes each step's h straight into its
        # output column and reads it back as the next step's operand — a
        # (1, H) slice of hs is contiguous, so the stacked matmul
        # dispatches the same per-row GEMV as the h-buffer operand.
        direct = reset_cols is None
        h_out = h
        prev_op = self._h_op
        for t in range(self.seq_len):
            if not direct:
                reset = reset_cols[t]
                if reset is not None:
                    np.copyto(h, link.h_bar, where=reset)
                    np.copyto(c, link.c_bar, where=reset)
            np.matmul(prev_op, self._u_op, out=self._hu)
            np.add(self._proj_t[t], self._huv, out=self._pre)
            np.add(self._pre, self._b, out=self._pre)
            sigmoid_into(self._sig, self._sig, self._s1, self._s2, self._m)
            if drs:
                # Algorithm 3: the activated output gate decides how much
                # of the remaining elementwise work survives this step.
                # The fused three-gate sigmoid above stays on the hot path
                # (per-element, so activating f/i before the mask is known
                # is bit-free); only the tanh + cell update compact.
                mask = self._mask_t[t]
                np.less(self._o, alpha, out=mask)
                np.all(mask, axis=0, out=self._dropped)
                if self._dropped.any():
                    # Batch-wide trivial rows: gather the survivors into
                    # compact scratch, run the g tanh and the cell update
                    # on ``(B, alive)`` only, and scatter back. Per-element
                    # ops on a column subset are bit-identical to full
                    # width (the recurrent product above stays full width —
                    # shrinking a GEMV changes BLAS's reduction order; see
                    # the interpreted loop's docstring).
                    np.logical_not(self._dropped, out=self._alive)
                    alive = np.flatnonzero(self._alive)
                    k = alive.size
                    bk = self.batch * k
                    fi = self._cfi[: 2 * bk].reshape(2, self.batch, k)
                    np.take(self._f, alive, axis=1, out=fi[0])
                    np.take(self._i, alive, axis=1, out=fi[1])
                    g = self._cg[:bk].reshape(self.batch, k)
                    np.take(self._g, alive, axis=1, out=g)
                    np.tanh(g, out=g)
                    ck = self._cc[:bk].reshape(self.batch, k)
                    np.take(c, alive, axis=1, out=ck)
                    np.multiply(fi[0], ck, out=ck)
                    np.multiply(fi[1], g, out=g)
                    np.add(ck, g, out=ck)
                    c[:, alive] = ck
                else:
                    np.tanh(self._g, out=self._g)
                    np.multiply(self._f, c, out=c)
                    np.multiply(self._i, self._g, out=t1)
                    np.add(c, t1, out=c)
                # Masked elements end exactly 0.0 on both sides: surviving
                # elements ran the same chain as the interpreted compacted
                # update, dropped ones never see a stale value.
                np.copyto(c, 0.0, where=mask)
            else:
                np.tanh(self._g, out=self._g)
                np.multiply(self._f, c, out=c)
                np.multiply(self._i, self._g, out=t1)
                np.add(c, t1, out=c)
            np.tanh(c, out=t1)
            if direct:
                h_out = hs[:, t]
                np.multiply(self._o, t1, out=h_out)
                prev_op = h_out[None, :, None, :]
            else:
                np.multiply(self._o, t1, out=h)
                hs[:, t] = h
            if cs is not None:
                cs[:, t] = c
        if state_out is not None:
            out_h, out_c = state_out
            out_h[:] = hs[:, self.seq_len - 1]
            out_c[:] = c


class _TissueBuffers:
    """Per-tissue-width scratch of one :class:`CombinedGroupProgram`."""

    def __init__(self, group: int, k: int, hidden: int) -> None:
        self.x = np.empty((group, k, 4 * hidden))
        self.x2d = self.x.reshape(group * k, 4 * hidden)
        self.hu = np.empty((group, k, 4 * hidden))
        self.hp = np.empty((group, k, hidden))
        self.hp2d = self.hp.reshape(group * k, hidden)
        self.cp = np.empty((group, k, hidden))
        self.cp2d = self.cp.reshape(group * k, hidden)
        self.o = np.empty((group, k, hidden))
        self.f = np.empty((group, k, hidden))
        self.i = np.empty((group, k, hidden))
        self.g = np.empty((group, k, hidden))
        self.g2d = self.g.reshape(group * k, hidden)
        self.cn = np.empty((group, k, hidden))
        self.cn2d = self.cn.reshape(group * k, hidden)
        self.t1 = np.empty((group, k, hidden))
        self.s1 = np.empty((group, k, hidden))
        self.s2 = np.empty((group, k, hidden))
        self.m = np.empty((group, k, hidden), dtype=bool)
        self.masks = np.empty((group, k, hidden), dtype=bool)


class CombinedGroupProgram:
    """Compiled tissue walk for one combined-mode plan group.

    Compiled from one :class:`~repro.core.plan.CachedLayerPlan` for a fixed
    group size ``G``. Compilation analyzes the plan's dependency structure
    and picks one of two lowerings:

    * **Constant-folded layer** — when every sub-layer has length 1 (the
      fully-divided regime a high inter threshold produces), no cell's
      recurrent operand depends on another cell: every ``h_prev`` row is a
      pinned constant (zeros for sub-layer 0, the predicted link state
      elsewhere). The recurrent GEMMs are then evaluated *once at compile
      time* — per tissue, the same ``(k, H) @ (H, 4H)`` product the
      interpreted walk would run every step, staged into a ``(T, 4H)``
      table — and the whole layer collapses into a few full-width
      elementwise passes with no gathers, scatters, or per-tissue loop.
      The per-tissue DRS intersections become one ``logical_and.reduceat``
      over the tissue extents.
    * **Tissue walk** — for plans with real recurrence chains, the flat op
      list holds, per tissue, the precomputed state-row and projection-row
      index vectors, so the run-time loop is pure gather / stacked-GEMM /
      in-place-elementwise / scatter with no index arithmetic and no
      allocation.

    Both lowerings are bit-identical to the interpreted walk: the stacked
    ``(G, k, H) @ (H, 4H)`` matmul runs the same ``(k, H)`` GEMM per
    leading slice, so identical constant slices give identical bits, and
    every elementwise op is per-element. Cached under the plan's
    ``signature`` (:func:`repro.core.tissue.schedule_key`) — the same key
    the fleet scheduler groups dispatches by, so every shard of a
    scheduler group replays one program.
    """

    def __init__(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        plan: "CachedLayerPlan",
        group: int,
        seq_len: int,
        alpha_intra: float = 0.0,
    ) -> None:
        hidden = united.u.shape[1]
        self.group = group
        self.seq_len = seq_len
        self.hidden = hidden
        self.alpha_intra = alpha_intra
        self.n_sub = n_sub = len(plan.sublayers)
        self.n_tissues = len(plan.tissues)
        self._link = link
        self._u_t = united.u.T  # (H, 4H) transpose view, as interpreted
        self._b = united.b
        sl = united.slices
        self._sl_f, self._sl_i = sl["f"], sl["i"]
        self._sl_c, self._sl_o = sl["c"], sl["o"]

        #: Per-run hidden output, scattered back to batch rows by the caller.
        self.hs = np.empty((group, seq_len, hidden))
        #: Per-tissue shared (intersection) DRS masks for the statistics
        #: reductions, shaped ``(n_tissues, G, H)``; fully rewritten each
        #: run when DRS is live.
        self.shared: np.ndarray | None = None

        self.fused = self._compile_fused(united, link, plan)
        if not self.fused:
            self._compile_walk(plan)

    # ------------------------------------------------- constant-folded form

    def _compile_fused(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        plan: "CachedLayerPlan",
    ) -> bool:
        """Try the constant-folded lowering; returns False when the plan
        has a real recurrence chain (some sub-layer longer than one step)
        or a non-contiguous tissue partition."""
        group, seq_len, hidden = self.group, self.seq_len, self.hidden
        if any(sub.length != 1 for sub in plan.sublayers):
            return False
        starts = []
        cursor = 0
        for tissue in plan.tissues:
            ts = [t for _, t in tissue.cells]
            if ts != list(range(cursor, cursor + len(ts))):
                return False
            starts.append(cursor)
            cursor += len(ts)
        if cursor != seq_len:
            return False

        # Every h_prev/c_prev row is a pinned constant: zeros for
        # sub-layer 0, the predicted link state elsewhere. Evaluate each
        # tissue's recurrent GEMM once, with exactly the interpreted
        # dimensions — (k, H) @ (H, 4H) is what every slice of the stacked
        # runtime matmul dispatches — and stage the rows by timestamp.
        self._hu_map = np.empty((seq_len, 4 * hidden))
        self._c_map = np.empty((seq_len, hidden))
        for tissue in plan.tissues:
            h_prev = np.stack(
                [np.zeros(hidden) if s == 0 else link.h_bar for s, _ in tissue.cells]
            )
            hu = h_prev @ self._u_t  # (k, 4H), compile-time
            for j, (s, t) in enumerate(tissue.cells):
                self._hu_map[t] = hu[j]
                self._c_map[t] = 0.0 if s == 0 else link.c_bar

        # Full-width workspace: one slab per intermediate, reused across
        # runs; gate outputs land in fresh buffers exactly like the
        # interpreted walk's allocating calls.
        self._pre = np.empty((group, seq_len, 4 * hidden))
        self._o = np.empty((group, seq_len, hidden))
        self._f = np.empty((group, seq_len, hidden))
        self._i = np.empty((group, seq_len, hidden))
        self._g = np.empty((group, seq_len, hidden))
        self._cn = np.empty((group, seq_len, hidden))
        self._t1 = np.empty((group, seq_len, hidden))
        self._s1 = np.empty((group, seq_len, hidden))
        self._s2 = np.empty((group, seq_len, hidden))
        self._m = np.empty((group, seq_len, hidden), dtype=bool)
        if self.alpha_intra > 0.0:
            self._masks = np.empty((group, seq_len, hidden), dtype=bool)
            self._starts = np.asarray(starts)
            #: t -> tissue index, to expand the shared masks back per cell.
            self._rep_idx = np.repeat(
                np.arange(self.n_tissues),
                [len(t.cells) for t in plan.tissues],
            )
            self._shared_gt = np.empty((group, self.n_tissues, hidden), dtype=bool)
            self.shared = self._shared_gt.transpose(1, 0, 2)
            self._mask_full = np.empty((group, seq_len, hidden), dtype=bool)
        return True

    def _execute_fused(self, proj_group: np.ndarray) -> None:
        alpha = self.alpha_intra
        np.add(proj_group, self._hu_map, out=self._pre)
        np.add(self._pre, self._b, out=self._pre)
        pre = self._pre
        sigmoid_into(pre[..., self._sl_o], self._o, self._s1, self._s2, self._m)
        sigmoid_into(pre[..., self._sl_f], self._f, self._s1, self._s2, self._m)
        sigmoid_into(pre[..., self._sl_i], self._i, self._s1, self._s2, self._m)
        np.tanh(pre[..., self._sl_c], out=self._g)
        np.multiply(self._f, self._c_map, out=self._cn)
        np.multiply(self._i, self._g, out=self._t1)
        np.add(self._cn, self._t1, out=self._cn)
        if alpha > 0.0:
            np.less(self._o, alpha, out=self._masks)
            np.logical_and.reduceat(
                self._masks, self._starts, axis=1, out=self._shared_gt
            )
            np.take(self._shared_gt, self._rep_idx, axis=1, out=self._mask_full)
            np.copyto(self._cn, 0.0, where=self._mask_full)
        np.tanh(self._cn, out=self._t1)
        np.multiply(self._o, self._t1, out=self.hs)

    # ---------------------------------------------------- tissue-walk form

    def _compile_walk(self, plan: "CachedLayerPlan") -> None:
        group, seq_len, hidden = self.group, self.seq_len, self.hidden
        n_sub = self.n_sub
        self.h_state = np.zeros((group, n_sub, hidden))
        self.c_state = np.zeros((group, n_sub, hidden))
        self._h_flat = self.h_state.reshape(group * n_sub, hidden)
        self._c_flat = self.c_state.reshape(group * n_sub, hidden)
        self._hs_flat = self.hs.reshape(group * seq_len, hidden)
        if self.alpha_intra > 0.0:
            self.shared = np.empty((self.n_tissues, group, hidden), dtype=bool)
            self._shared_where = [
                self.shared[ti][:, None, :] for ti in range(self.n_tissues)
            ]

        rows = np.arange(group)[:, None]
        buffers: dict[int, _TissueBuffers] = {}
        ops = []
        for tissue in plan.tissues:
            subs = np.asarray([s for s, _ in tissue.cells])
            ts = np.asarray([t for _, t in tissue.cells])
            k = len(tissue.cells)
            if k not in buffers:
                buffers[k] = _TissueBuffers(group, k, hidden)
            state_rows = (rows * n_sub + subs[None, :]).ravel()
            proj_rows = (rows * seq_len + ts[None, :]).ravel()
            ops.append((state_rows, proj_rows, buffers[k]))
        #: The flat op list: one (state-rows, proj-rows, buffers) per tissue.
        self.ops = ops

    def _execute_walk(self, proj_group: np.ndarray) -> None:
        alpha = self.alpha_intra
        drs = alpha > 0.0
        link = self._link
        proj_flat = proj_group.reshape(self.group * self.seq_len, 4 * self.hidden)
        self.h_state[:, 0] = 0.0
        self.c_state[:, 0] = 0.0
        if self.n_sub > 1:
            self.h_state[:, 1:] = link.h_bar
            self.c_state[:, 1:] = link.c_bar
        for ti, (state_rows, proj_rows, bufs) in enumerate(self.ops):
            np.take(proj_flat, proj_rows, axis=0, out=bufs.x2d)
            np.take(self._h_flat, state_rows, axis=0, out=bufs.hp2d)
            np.take(self._c_flat, state_rows, axis=0, out=bufs.cp2d)
            np.matmul(bufs.hp, self._u_t, out=bufs.hu)
            np.add(bufs.x, bufs.hu, out=bufs.hu)
            np.add(bufs.hu, self._b, out=bufs.hu)
            pre = bufs.hu
            sigmoid_into(pre[..., self._sl_o], bufs.o, bufs.s1, bufs.s2, bufs.m)
            sigmoid_into(pre[..., self._sl_f], bufs.f, bufs.s1, bufs.s2, bufs.m)
            sigmoid_into(pre[..., self._sl_i], bufs.i, bufs.s1, bufs.s2, bufs.m)
            np.tanh(pre[..., self._sl_c], out=bufs.g)
            np.multiply(bufs.f, bufs.cp, out=bufs.cn)
            np.multiply(bufs.i, bufs.g, out=bufs.t1)
            np.add(bufs.cn, bufs.t1, out=bufs.cn)
            if drs:
                np.less(bufs.o, alpha, out=bufs.masks)
                bufs.masks.all(axis=1, out=self.shared[ti])
                np.copyto(bufs.cn, 0.0, where=self._shared_where[ti])
            np.tanh(bufs.cn, out=bufs.t1)
            np.multiply(bufs.o, bufs.t1, out=bufs.g)  # h_new, reusing g
            self._h_flat[state_rows] = bufs.g2d
            self._c_flat[state_rows] = bufs.cn2d
            self._hs_flat[proj_rows] = bufs.g2d

    def execute(self, proj_group: np.ndarray) -> None:
        """Run the compiled group over ``proj_group`` ``(G, T, 4H)``.

        Fills :attr:`hs` (and :attr:`shared` when DRS is live). The caller
        gathers the group's projection rows and scatters :attr:`hs` back —
        both outside the compiled loop.
        """
        if self.fused:
            self._execute_fused(proj_group)
        else:
            self._execute_walk(proj_group)
