"""Optional numba-jitted stepwise backend (gated on ``import numba``).

The kernel body is a plain-Python scalar-loop transcription of the
generated-C ``stepwise_run`` (:mod:`repro.core.cgen`) — the same fused
GEMV-plus-gate-epilogue pass with in-kernel DRS row skipping. When numba
is importable the function is ``njit``-compiled (``cache=True`` so the
machine code persists across processes); when it is not, the backend
reports unavailable and the registry falls back to the generated-C
lowering for ``fused``. Keeping the kernel importable either way lets the
test suite validate its arithmetic against the C backend on hosts without
numba (the un-jitted function is slow but correct Python).

Combined-mode plan groups fall back to the numpy
:class:`~repro.core.program.CombinedGroupProgram` under this backend:
correctness is mode-complete, acceleration covers the stepwise modes
(the streaming-relevant hot path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BackendUnavailableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context_prediction import PredictedLink
    from repro.core.executor import _UnitedWeights

try:  # pragma: no cover - absent in the CI container
    import numba
except Exception:  # pragma: no cover - the expected path here
    numba = None


def available() -> bool:
    """Whether numba is importable on this host."""
    return numba is not None


def unavailable_reason() -> str:
    """Why the backend cannot run (empty when available)."""
    return "" if available() else "numba is not installed"


def stepwise_kernel(
    proj: np.ndarray,  # (B, T, 4H)
    u: np.ndarray,  # (4H, H)
    bias: np.ndarray,  # (4H,)
    h: np.ndarray,  # (B, H) in/out
    c: np.ndarray,  # (B, H) in/out
    hs: np.ndarray,  # (B, T, H)
    cs: np.ndarray,  # (B, T, H); ignored unless use_cs
    masks: np.ndarray,  # (B, T, H) uint8; ignored unless alpha > 0
    resets: np.ndarray,  # (T, B) uint8; ignored unless use_resets
    h_bar: np.ndarray,  # (H,)
    c_bar: np.ndarray,  # (H,)
    alpha: float,
    use_cs: bool,
    use_resets: bool,
) -> None:
    """Fused stepwise pass; numba-jittable nopython loop nest."""
    batch, seq_len, _ = proj.shape
    hidden = u.shape[1]
    drs = alpha > 0.0
    o_buf = np.empty(hidden)
    c_new = np.empty(hidden)
    h_new = np.empty(hidden)
    for t in range(seq_len):
        for b in range(batch):
            if use_resets and resets[t, b]:
                for j in range(hidden):
                    h[b, j] = h_bar[j]
                    c[b, j] = c_bar[j]
            for j in range(hidden):
                acc = proj[b, t, 3 * hidden + j] + bias[3 * hidden + j]
                for k in range(hidden):
                    acc += u[3 * hidden + j, k] * h[b, k]
                o = 1.0 / (1.0 + np.exp(-acc))
                o_buf[j] = o
                if drs:
                    masks[b, t, j] = 1 if o < alpha else 0
            for j in range(hidden):
                if drs and masks[b, t, j]:
                    c_new[j] = 0.0
                    h_new[j] = 0.0
                    continue
                acc_f = proj[b, t, j] + bias[j]
                acc_i = proj[b, t, hidden + j] + bias[hidden + j]
                acc_g = proj[b, t, 2 * hidden + j] + bias[2 * hidden + j]
                for k in range(hidden):
                    hk = h[b, k]
                    acc_f += u[j, k] * hk
                    acc_i += u[hidden + j, k] * hk
                    acc_g += u[2 * hidden + j, k] * hk
                f = 1.0 / (1.0 + np.exp(-acc_f))
                i = 1.0 / (1.0 + np.exp(-acc_i))
                g = np.tanh(acc_g)
                cc = f * c[b, j] + i * g
                c_new[j] = cc
                h_new[j] = o_buf[j] * np.tanh(cc)
            for j in range(hidden):
                c[b, j] = c_new[j]
                h[b, j] = h_new[j]
                hs[b, t, j] = h_new[j]
                if use_cs:
                    cs[b, t, j] = c_new[j]


_jitted = None


def _kernel():
    """The njit-compiled kernel (built once; raises when numba is absent)."""
    global _jitted
    if _jitted is None:
        if numba is None:
            raise BackendUnavailableError(unavailable_reason())
        _jitted = numba.njit(cache=True, fastmath=False)(
            stepwise_kernel
        )  # pragma: no cover - needs numba
    return _jitted


class NumbaStepwiseProgram:  # pragma: no cover - needs numba to construct
    """Numba twin of :class:`repro.core.cgen.CGenStepwiseProgram`."""

    bit_exact = False

    def __init__(
        self,
        united: "_UnitedWeights",
        link: "PredictedLink",
        batch: int,
        seq_len: int,
        drs_alpha: float = 0.0,
    ) -> None:
        self._fn = _kernel()
        hidden = united.u.shape[1]
        self.batch = batch
        self.seq_len = seq_len
        self.hidden = hidden
        self.drs_alpha = drs_alpha
        self._u = np.ascontiguousarray(united.u)
        self._b = np.ascontiguousarray(united.b)
        self._w_t = united.w.T
        self._w_t_dense = np.ascontiguousarray(united.w.T)
        self._h_bar = np.ascontiguousarray(link.h_bar)
        self._c_bar = np.ascontiguousarray(link.c_bar)
        self._slices = dict(united.slices)
        self.proj = np.empty((batch, seq_len, 4 * hidden))
        self.h = np.zeros((batch, hidden))
        self.c = np.zeros((batch, hidden))
        self._resets = np.zeros((seq_len, batch), dtype=np.uint8)
        self._masks_u8 = np.zeros((batch, seq_len, hidden), dtype=np.uint8)
        self._no_cs = np.empty((1, 1, hidden))
        self.masks_all = (
            np.empty((batch, seq_len, hidden), dtype=bool) if drs_alpha > 0.0 else None
        )

    def project(self, xs: np.ndarray, exact: bool = False) -> dict[str, np.ndarray]:
        """Stage input projections (same contract as the cgen program)."""
        if exact:
            np.matmul(xs[:, :, None, :], self._w_t, out=self.proj[:, :, None, :])
        else:
            flat = xs.reshape(-1, xs.shape[-1])
            np.matmul(flat, self._w_t_dense, out=self.proj.reshape(flat.shape[0], -1))
        return {g: self.proj[..., sl] for g, sl in self._slices.items()}

    def execute(
        self,
        hs: np.ndarray,
        reset_cols: list[np.ndarray | None] | None = None,
        cs: np.ndarray | None = None,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
        state_out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.h[:] = 0.0 if h0 is None else h0
        self.c[:] = 0.0 if c0 is None else c0
        use_resets = reset_cols is not None
        if use_resets:
            self._resets[:] = 0
            for t, col in enumerate(reset_cols):
                if col is not None:
                    self._resets[t] = col[:, 0]
        self._fn(
            self.proj, self._u, self._b, self.h, self.c, hs,
            cs if cs is not None else self._no_cs,
            self._masks_u8, self._resets, self._h_bar, self._c_bar,
            float(self.drs_alpha), cs is not None, use_resets,
        )
        if self.masks_all is not None:
            np.not_equal(self._masks_u8, 0, out=self.masks_all)
        if state_out is not None:
            out_h, out_c = state_out
            out_h[:] = self.h
            out_c[:] = self.c
