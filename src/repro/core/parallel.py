"""In-process multicore dispatch over independent execution work units.

The spawn fleet (:mod:`repro.runtime.pool`) scales across *processes*;
this module scales *inside* one. A run is partitioned into independent
work units — contiguous batch-row shards, combined-mode schedule-key
groups, per-tissue programs — whose outputs land in disjoint array
slices, and the units execute on a persistent pool of plain threads.
Real core scaling comes from the hot kernels releasing the GIL: BLAS
matmuls always do, the numpy ufunc chains do above the small-buffer
threshold, and the ctypes cgen kernels release it for the whole native
walk. Unlike the fleet, threads share the weight arena and the caches
in-place — zero serialization, zero segment copies.

Why plain threads and a queue instead of ``concurrent.futures``: the
dispatcher must attribute *queue wait* (submit → start) and *busy time*
(start → finish) per unit for the recorder's dispatch accounting, keep
the workers persistent across runs (pool spin-up inside a hot loop would
dominate small batches), and stay import-light on the executor hot path.

The executor only engages a dispatcher when
:attr:`repro.core.executor.ExecutionConfig.threads` is greater than one;
``threads=1`` never touches this module, so the serial path is
bit-identical by construction — and the sharded paths are bit-identical
by the batch-composition invariance of the executor's per-row GEMV /
per-row projection lifts (each row's bits never depend on which rows
surround it).
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "DispatchStats",
    "ThreadedDispatcher",
    "get_dispatcher",
    "shard_slices",
]


def shard_slices(n: int, parts: int) -> list[slice]:
    """Balanced contiguous partition of ``range(n)`` into ``<= parts`` slices.

    Sizes differ by at most one and larger shards come first, so the
    slowest unit starts earliest. Contiguity matters: contiguous row
    shards of a C-order batch are views whose writes touch disjoint
    memory, and reassembling them in shard order is exactly the unsharded
    array. Never returns an empty slice — ``parts`` is clamped to ``n``.
    """
    if n < 0:
        raise ConfigurationError(f"cannot shard a negative length ({n})")
    if n == 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    slices: list[slice] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


@dataclass
class DispatchStats:
    """Timing attribution of one :meth:`ThreadedDispatcher.map` call.

    ``queue_wait_s`` sums each unit's submit → start latency (how long
    units sat behind busy workers); ``busy_s`` sums start → finish (the
    aggregate thread-seconds of useful work). Both are *sums over units*,
    so on an idle pool ``dispatch_wall_s ~= busy_s / threads``.
    """

    threads: int
    units: int
    dispatch_wall_s: float = 0.0
    queue_wait_s: float = 0.0
    busy_s: float = 0.0
    unit_busy_s: list[float] = field(default_factory=list)

    def timing_keys(self) -> dict[str, float]:
        """The keys merged into ``ExecutionResult.timings``."""
        return {
            "dispatch_wall_s": self.dispatch_wall_s,
            "queue_wait_s": self.queue_wait_s,
            "thread_busy_s": self.busy_s,
        }


class ThreadedDispatcher:
    """Persistent thread pool executing work units in submission order.

    Workers are daemon threads created once and reused for every
    :meth:`map` call; they block on an unbounded queue, so an idle
    dispatcher costs nothing but the parked threads. The pool is safe to
    share: concurrent :meth:`map` calls interleave their units on the
    same workers (each call carries its own result buffer and completion
    semaphore).
    """

    def __init__(self, threads: int) -> None:
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-dispatch-{index}", daemon=True
            )
            for index in range(threads)
        ]
        for worker in self._workers:
            worker.start()

    def _worker(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            fn, index, submitted, results, done = item
            started = time.perf_counter()
            try:
                value = fn()
                results[index] = (value, None, started - submitted, time.perf_counter() - started)
            except BaseException as exc:  # re-raised in the caller
                results[index] = (None, exc, started - submitted, time.perf_counter() - started)
            done.release()

    def map(
        self, thunks: Sequence[Callable[[], object]]
    ) -> tuple[list[object], DispatchStats]:
        """Run every thunk on the pool; return ordered results + stats.

        Blocks until all units finish. The first unit exception (in
        submission order) is re-raised in the caller after the whole map
        drains — partial results never escape.
        """
        stats = DispatchStats(threads=self.threads, units=len(thunks))
        if not thunks:
            return [], stats
        wall_start = time.perf_counter()
        results: list[tuple | None] = [None] * len(thunks)
        done = threading.Semaphore(0)
        for index, fn in enumerate(thunks):
            self._tasks.put((fn, index, time.perf_counter(), results, done))
        for _ in thunks:
            done.acquire()
        stats.dispatch_wall_s = time.perf_counter() - wall_start
        values: list[object] = []
        error: BaseException | None = None
        for value, exc, waited, busy in results:  # type: ignore[misc]
            stats.queue_wait_s += waited
            stats.busy_s += busy
            stats.unit_busy_s.append(busy)
            if exc is not None and error is None:
                error = exc
            values.append(value)
        if error is not None:
            raise error
        return values, stats

    def close(self) -> None:
        """Stop the workers (used by tests; shared pools usually live on)."""
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=5.0)


_dispatchers: dict[int, ThreadedDispatcher] = {}
_dispatchers_lock = threading.Lock()


def get_dispatcher(threads: int) -> ThreadedDispatcher:
    """Process-wide persistent dispatcher for ``threads`` workers.

    Executors share one pool per thread count, so a zoo of tenants at
    ``threads=4`` parks four worker threads total, not four per tenant.
    """
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    dispatcher = _dispatchers.get(threads)
    if dispatcher is not None:
        return dispatcher
    with _dispatchers_lock:
        dispatcher = _dispatchers.get(threads)
        if dispatcher is None:
            dispatcher = ThreadedDispatcher(threads)
            _dispatchers[threads] = dispatcher
    return dispatcher
