"""Turn execution plans into GPU kernel traces.

This module encodes Algorithms 1 and 3 (and their inter-cell variants) as
kernel sequences. The mapping, per layer:

* **Baseline (Algorithm 1).** One tiled ``Sgemm(W_{f,i,c,o}, x)``, then per
  cell one ``Sgemv(U_{f,i,c,o}, h_{t-1})`` and one ``lstm_ew``.
* **Inter-cell (Fig. 10).** The ``Sgemm(W, x)``, one relevance/breakpoint
  kernel, then per *tissue* one ``Sgemm(U_{f,i,c,o}, H_t)`` (GEMV-style
  shared-memory traffic — the batch dimension is too small for the tiled
  kernel) and one batched ``lstm_ew``.
* **Intra-cell (Algorithm 3).** Per cell: ``Sgemv(U_o, h)``, ``lstm_ew(o)``,
  ``DRS``, ``Sgemv(U_{f,i,c}, h, R)`` with only the kept rows streamed, and
  the closing ``lstm_ew``. Hardware DRS routes the reduced kernel through
  the CRM; software DRS pays divergence and de-coalescing penalties.
* **Combined.** The inter structure with the intra kernel split applied per
  tissue; the skipped rows are the tissue's intersection mask.
* **Zero-pruning (Fig. 16).** Baseline structure with the united ``U``
  stored as CSR: fewer bytes, but gather inefficiency and warp imbalance.
"""

from __future__ import annotations

from repro.core.plan import LayerPlanRecord, SequencePlan
from repro.errors import PlanError
from repro.gpu.cta import (
    hardware_drs_penalties,
    pruned_spmv_penalties,
    software_drs_penalties,
)
from repro.gpu.kernels import (
    FP32,
    KernelLaunch,
    drs_kernel,
    elementwise_kernel,
    relevance_kernel,
    sgemm_kernel,
    sgemv_kernel,
)
from repro.gpu.specs import GPUSpec
from repro.nn.quantize import Precision

#: On-chip traffic factor for the large-batch tiled GEMM (two-level tiling
#: re-uses each staged element across a 32x32 tile, unlike the GEMV-style
#: per-cell/per-tissue kernels that re-read activations per row).
TILED_ONCHIP_FACTOR: float = 0.1

#: Host bytes per float64 weight element (the executor's master arrays).
_FP64 = 8.0


def _annotate_weight_bytes(
    kernel: KernelLaunch,
    precision: Precision,
    dense_elems: float,
    moved_elems: float,
    rows_total: float,
    rows_moved: float,
    payload_overhead: float = 0.0,
    device_weight_bytes: float | None = None,
) -> KernelLaunch:
    """Attach the bytes-moved accounting to one weight-streaming kernel.

    The three counters measure the *host* weight storage the executor
    actually reads (float64 masters, or int8 codes + float64 scales /
    fp16 payloads under a quantized policy):

    * ``weight_bytes_fp64`` — what moving this kernel's surviving weight
      elements costs at float64 storage (the fp64-policy reference).
    * ``weight_bytes_moved`` — the bytes the active precision streams for
      the surviving rows, scale vectors included.
    * ``weight_bytes_skipped`` — the dense-at-precision footprint minus
      the moved bytes: what DRS row skipping avoided loading.

    Skip and precision therefore compound: a skipped int8 row subtracts
    8x fewer bytes from ``moved`` than a skipped fp64 row, exactly the
    multiplicative composition the paper's bandwidth model predicts.

    For quantized policies the *simulated* ``weight_bytes`` (the fp32
    device model) shrinks by the same storage ratio, with per-row scale
    vectors streamed at fp32 — flops, threads, and write traffic were
    derived before this adjustment, so compute work is unchanged and
    only the memory roof moves.
    """
    storage = float(precision.storage_bytes)
    scale_row = float(precision.scale_bytes_per_row)
    moved = moved_elems * storage + rows_moved * scale_row + payload_overhead
    dense = dense_elems * storage + rows_total * scale_row + payload_overhead
    kernel.extra["weight_bytes_fp64"] = moved_elems * _FP64 + payload_overhead
    kernel.extra["weight_bytes_moved"] = moved
    kernel.extra["weight_bytes_skipped"] = dense - moved
    if precision.is_quantized:
        if device_weight_bytes is not None:
            kernel.weight_bytes = device_weight_bytes
        else:
            device_scales = rows_moved * (float(FP32) if scale_row else 0.0)
            kernel.weight_bytes = (
                kernel.weight_bytes * (storage / FP32) + device_scales
            )
    return kernel


def _u_sgemm(
    spec: GPUSpec,
    hidden: int,
    rows: int,
    batch: int,
    weight_id: str,
    tag: str,
    weight_bytes: float | None = None,
    warp_efficiency: float = 1.0,
    gather_efficiency: float = 1.0,
    uses_crm: bool = False,
) -> KernelLaunch:
    """A recurrent-matrix kernel: Sgemv for one cell, GEMV-style Sgemm for a
    tissue."""
    onchip = spec.onchip_traffic_per_flop(hidden)
    if batch == 1:
        return sgemv_kernel(
            rows,
            hidden,
            onchip,
            weight_id=weight_id,
            weight_bytes=weight_bytes,
            warp_efficiency=warp_efficiency,
            gather_efficiency=gather_efficiency,
            uses_crm=uses_crm,
            tag=tag,
        )
    return sgemm_kernel(
        rows,
        hidden,
        batch,
        onchip,
        weight_id=weight_id,
        weight_bytes=weight_bytes,
        warp_efficiency=warp_efficiency,
        gather_efficiency=gather_efficiency,
        uses_crm=uses_crm,
        tag=tag,
    )


def _input_sgemm(
    spec: GPUSpec, record: LayerPlanRecord, tag: str, precision: Precision
) -> KernelLaunch:
    """The per-layer tiled ``Sgemm(W_{f,i,c,o}, x)``."""
    kernel = sgemm_kernel(
        4 * record.hidden_size,
        record.input_size,
        record.seq_length,
        spec.onchip_traffic_per_flop(record.hidden_size) * TILED_ONCHIP_FACTOR,
        weight_id=f"W{record.layer_index}",
        tag=tag,
    )
    elems = 4.0 * record.hidden_size * record.input_size
    return _annotate_weight_bytes(
        kernel,
        precision,
        dense_elems=elems,
        moved_elems=elems,
        rows_total=4.0 * record.hidden_size,
        rows_moved=4.0 * record.hidden_size,
    )


def _layer_kernels(
    spec: GPUSpec,
    record: LayerPlanRecord,
    inter: bool,
    intra: bool,
    drs_style: str,
    zero_prune_kept: float | None,
    precision: Precision,
) -> list[KernelLaunch]:
    hidden = record.hidden_size
    tag = f"layer{record.layer_index}"
    kernels: list[KernelLaunch] = [_input_sgemm(spec, record, tag, precision)]

    if inter:
        kernels.append(relevance_kernel(hidden, record.seq_length, tag=tag))

    for tissue in record.tissues:
        batch = tissue.size
        if zero_prune_kept is not None:
            warp_eff, gather_eff = pruned_spmv_penalties(zero_prune_kept)
            # Bitmap-compressed storage: kept values + 1 bit per element.
            dense = 4 * hidden * hidden
            bitmap = dense * 0.125
            kept_elems = dense * zero_prune_kept
            csr_bytes = kept_elems * FP32 + bitmap
            kernel = _u_sgemm(
                spec,
                hidden,
                4 * hidden,
                batch,
                weight_id=f"Ucsr{record.layer_index}",
                tag=tag,
                weight_bytes=csr_bytes,
                warp_efficiency=warp_eff,
                gather_efficiency=gather_eff,
            )
            kernels.append(
                _annotate_weight_bytes(
                    kernel,
                    precision,
                    dense_elems=kept_elems,
                    moved_elems=kept_elems,
                    rows_total=4.0 * hidden,
                    rows_moved=4.0 * hidden,
                    payload_overhead=bitmap,
                    device_weight_bytes=(
                        kept_elems * precision.storage_bytes
                        + bitmap
                        + 4.0 * hidden * (FP32 if precision.scale_bytes_per_row else 0.0)
                    ),
                )
            )
            kernels.append(elementwise_kernel(hidden, batch=batch, tag=tag))
        elif intra:
            kernels.extend(
                _intra_tissue_kernels(
                    spec, record, tissue, batch, drs_style, tag, precision
                )
            )
        else:
            kernel = _u_sgemm(
                spec, hidden, 4 * hidden, batch, weight_id=f"U{record.layer_index}", tag=tag
            )
            elems = 4.0 * hidden * hidden
            kernels.append(
                _annotate_weight_bytes(
                    kernel,
                    precision,
                    dense_elems=elems,
                    moved_elems=elems,
                    rows_total=4.0 * hidden,
                    rows_moved=4.0 * hidden,
                )
            )
            kernels.append(elementwise_kernel(hidden, batch=batch, tag=tag))
    return kernels


def _intra_tissue_kernels(
    spec: GPUSpec,
    record: LayerPlanRecord,
    tissue,
    batch: int,
    drs_style: str,
    tag: str,
    precision: Precision,
) -> list[KernelLaunch]:
    """Algorithm 3's five-kernel flow for one tissue (or one cell)."""
    hidden = record.hidden_size
    skip = tissue.skip_fraction
    if drs_style == "hardware":
        warp_eff, gather_eff, effective_skip = hardware_drs_penalties(skip)
        uses_crm = skip > 0.0
    elif drs_style == "software":
        warp_eff, gather_eff, effective_skip = software_drs_penalties(
            skip, tissue.warp_skip_fraction
        )
        uses_crm = False
    else:
        raise PlanError(f"unknown drs_style {drs_style!r}")

    fic_dense = 3.0 * hidden * hidden
    fic_elems = fic_dense * (1.0 - effective_skip)
    fic_bytes = fic_elems * FP32
    o_elems = 1.0 * hidden * hidden
    return [
        # Sgemv(U_o, h_{t-1}) — the selector gate, never skipped.
        _annotate_weight_bytes(
            _u_sgemm(
                spec, hidden, hidden, batch, weight_id=f"Uo{record.layer_index}", tag=tag
            ),
            precision,
            dense_elems=o_elems,
            moved_elems=o_elems,
            rows_total=float(hidden),
            rows_moved=float(hidden),
        ),
        # lstm_ew(o_t)
        elementwise_kernel(hidden, batch=batch, gates=1, tag=tag),
        # DRS(o_t, alpha_intra, R)
        drs_kernel(hidden, batch=batch, tag=tag),
        # Sgemv(U_{f,i,c}, h_{t-1}, R) — only the kept rows are streamed,
        # and under a quantized policy only they are dequantized: the
        # moved bytes shrink with the skip *and* the storage width.
        _annotate_weight_bytes(
            _u_sgemm(
                spec,
                hidden,
                3 * hidden,
                batch,
                weight_id=f"Ufic{record.layer_index}",
                tag=tag,
                weight_bytes=fic_bytes,
                warp_efficiency=warp_eff,
                gather_efficiency=gather_eff,
                uses_crm=uses_crm,
            ),
            precision,
            dense_elems=fic_dense,
            moved_elems=fic_elems,
            rows_total=3.0 * hidden,
            rows_moved=3.0 * hidden * (1.0 - effective_skip),
        ),
        # lstm_ew(f, i, c_{t-1}, c_t, h_t)
        elementwise_kernel(hidden, batch=batch, gates=3, tag=tag),
    ]


def build_kernel_trace(
    plan: SequencePlan,
    spec: GPUSpec,
    inter: bool,
    intra: bool,
    drs_style: str = "hardware",
    zero_prune_kept: float | None = None,
    precision: Precision | None = None,
) -> list[KernelLaunch]:
    """Build the full kernel trace of one sequence's execution.

    Args:
        plan: Per-layer structural records produced by the executor.
        spec: Target GPU.
        inter: Whether the inter-cell optimization was active (adds the
            relevance kernel; tissues may hold several cells).
        intra: Whether DRS was active (kernel split per Algorithm 3).
        drs_style: ``"hardware"`` (CRM) or ``"software"``.
        zero_prune_kept: When set, model the zero-pruning baseline instead
            of DRS; value is the kept-element fraction of the united ``U``.
        precision: Weight-storage policy. Every weight-streaming kernel is
            annotated with ``weight_bytes_fp64`` / ``weight_bytes_moved``
            / ``weight_bytes_skipped`` counters (see
            :func:`_annotate_weight_bytes`); quantized policies also
            shrink the simulated weight traffic. ``None`` means fp64.
    """
    if precision is None:
        precision = Precision()
    kernels: list[KernelLaunch] = []
    for record in plan.layers:
        kernels.extend(
            _layer_kernels(
                spec, record, inter, intra, drs_style, zero_prune_kept, precision
            )
        )
    return kernels


def forced_tissue_layer_trace(
    spec: GPUSpec, hidden_size: int, seq_length: int, tissue_size: int
) -> list[KernelLaunch]:
    """Trace of one layer force-divided into equal tissues (Fig. 9 sweeps
    and the MTS calibration of Fig. 10, step 1)."""
    if tissue_size < 1:
        raise PlanError(f"tissue_size must be >= 1, got {tissue_size}")
    kernels: list[KernelLaunch] = [
        sgemm_kernel(
            4 * hidden_size,
            hidden_size,
            seq_length,
            spec.onchip_traffic_per_flop(hidden_size) * TILED_ONCHIP_FACTOR,
            weight_id="W",
            tag="forced",
        )
    ]
    remaining = seq_length
    while remaining > 0:
        batch = min(tissue_size, remaining)
        remaining -= batch
        kernels.append(
            _u_sgemm(spec, hidden_size, 4 * hidden_size, batch, weight_id="U", tag="forced")
        )
        kernels.append(elementwise_kernel(hidden_size, batch=batch, tag="forced"))
    return kernels
