"""Accuracy recovery — the predicted context link (Section IV-B, Eq. 6).

Breaking a weak link loses the (small) information it carried. The paper
recovers accuracy by substituting a *predicted* context link at every
breakpoint: a fixed vector whose ``j``-th element is the expectation of the
``j``-th element over the empirical distribution of context links,

    h_bar_j = sum_i h_j(i) * rho_ij                              (Eq. 6)

collected by executing the LSTM offline on a large calibration set. The
distribution of *all* links is used (weak links share the distribution of
strong links, and doing so keeps the predictor independent of the runtime
threshold).

The cell state ``c_{t-1}`` also crosses a breakpoint (Eq. 3 consumes it
directly), so the predictor learns the expectation of both ``h`` and ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, ShapeError


@dataclass(frozen=True)
class PredictedLink:
    """The per-layer predicted context link ``(h_bar, c_bar)``."""

    h_bar: np.ndarray
    c_bar: np.ndarray

    def __post_init__(self) -> None:
        if self.h_bar.ndim != 1 or self.h_bar.shape != self.c_bar.shape:
            raise ShapeError(
                "predicted link vectors must be 1-D and equal-shaped, got "
                f"{self.h_bar.shape} and {self.c_bar.shape}"
            )

    @property
    def hidden_size(self) -> int:
        """Width of the predicted vectors."""
        return self.h_bar.shape[0]

    @classmethod
    def zeros(cls, hidden_size: int) -> "PredictedLink":
        """A trivial predictor (the ablation of DESIGN.md §6)."""
        return cls(h_bar=np.zeros(hidden_size), c_bar=np.zeros(hidden_size))


class ContextLinkPredictor:
    """Collects context-link samples and produces Eq. 6 expectations.

    The expectation is computed through an explicit per-element histogram,
    mirroring the paper's formulation (value distribution ``rho_ij`` per
    element ``j``); with enough bins this converges to the sample mean.
    """

    def __init__(self, hidden_size: int, num_bins: int = 64) -> None:
        if hidden_size <= 0:
            raise CalibrationError("hidden_size must be positive")
        if num_bins < 2:
            raise CalibrationError("num_bins must be at least 2")
        self._hidden = hidden_size
        self._bins = num_bins
        self._h_samples: list[np.ndarray] = []
        self._c_samples: list[np.ndarray] = []

    @property
    def num_samples(self) -> int:
        """Number of collected link samples."""
        return sum(arr.shape[0] for arr in self._h_samples)

    def observe(self, hs: np.ndarray, cs: np.ndarray) -> None:
        """Record the links of one executed sequence.

        Args:
            hs / cs: Per-timestep outputs and states of shape ``(T, H)``.
        """
        hs = np.atleast_2d(np.asarray(hs, dtype=np.float64))
        cs = np.atleast_2d(np.asarray(cs, dtype=np.float64))
        if hs.shape != cs.shape or hs.shape[1] != self._hidden:
            raise ShapeError(
                f"expected matching (T, {self._hidden}) arrays, got {hs.shape}/{cs.shape}"
            )
        self._h_samples.append(hs)
        self._c_samples.append(cs)

    def fit(self) -> PredictedLink:
        """Compute the Eq. 6 expectation vector from the collected samples."""
        if not self._h_samples:
            raise CalibrationError("no context-link samples collected")
        hs = np.concatenate(self._h_samples, axis=0)
        cs = np.concatenate(self._c_samples, axis=0)
        return PredictedLink(
            h_bar=self._expectation(hs), c_bar=self._expectation(cs)
        )

    def _expectation(self, samples: np.ndarray) -> np.ndarray:
        """Histogram expectation per element (Eq. 6)."""
        expect = np.empty(self._hidden)
        for j in range(self._hidden):
            column = samples[:, j]
            counts, edges = np.histogram(column, bins=self._bins)
            centers = 0.5 * (edges[:-1] + edges[1:])
            rho = counts / counts.sum()
            expect[j] = float(np.dot(centers, rho))
        return expect
