"""Algorithm 2 — relevance value acquisition (Section IV-B).

The relevance value ``S`` quantifies how much the previous cell's output
``h_{t-1}`` can influence the current cell. Because ``h_{t-1}`` is bounded
to ``[-1, 1]`` (Eq. 5), the recurrent contribution ``U_g h_{t-1}`` to each
gate pre-activation lies within ``[-D_g, D_g]`` where ``D_g`` is the
row-wise L1 norm of ``U_g``. Combining this range with the known input
projection ``X'_g = W_g x_t`` and bias gives the reachable pre-activation
range; the portion of that range overlapping the activation's *sensitive
area* ``[-2, 2]`` is what the previous cell can actually modulate.

``S = 0`` means the two cells are completely irrelevant — breaking the link
is exact. Small ``S`` means a weak link.

Two implementations are provided:

* :func:`relevance_values` — the paper's Algorithm 2, line for line
  (including its asymmetric treatment of the forget gate). The only
  deviation is a final clip of each per-gate term to ``[0, 4]``: the
  published pseudo-code can go negative when a range sits entirely outside
  the sensitive area with small ``D``, which would *reduce* the summed
  relevance; a negative overlap has no geometric meaning.
* :func:`exact_relevance_values` — an ablation variant that replaces the
  per-gate expressions with the exact interval-overlap computation of
  :func:`repro.nn.activations.sensitive_overlap`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import SENSITIVE_WIDTH, sensitive_overlap
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights


def recurrent_row_ranges(weights: LSTMCellWeights) -> dict[str, np.ndarray]:
    """Line 2 of Algorithm 2: ``D_g = sum(abs(U_g), axis=1)`` per gate.

    ``[-D_g, D_g]`` bounds the recurrent contribution per element given
    ``h_{t-1}`` in ``[-1, 1]``. Computed once per layer (the matrices do not
    change at inference time).
    """
    return {g: np.abs(weights.gate_u(g)).sum(axis=1) for g in GATE_ORDER}


def _check_projections(
    weights: LSTMCellWeights, x_proj: dict[str, np.ndarray]
) -> tuple[int, ...]:
    """Validate the per-gate projections; returns the leading shape.

    Projections are ``(..., T, H)``: the canonical per-layer ``(T, H)``
    form, or any number of leading batch dimensions (the batched executor
    passes ``(B, T, H)`` when it vectorizes the relevance pass).
    """
    hidden = weights.hidden_size
    lead: tuple[int, ...] | None = None
    for gate in GATE_ORDER:
        if gate not in x_proj:
            raise ShapeError(f"x_proj missing gate {gate!r}")
        arr = x_proj[gate]
        if arr.ndim < 2 or arr.shape[-1] != hidden:
            raise ShapeError(
                f"x_proj[{gate!r}] must be (..., T, {hidden}), got {arr.shape}"
            )
        if lead is None:
            lead = arr.shape[:-1]
        elif arr.shape[:-1] != lead:
            raise ShapeError("x_proj gates disagree on sequence length")
    assert lead is not None
    return lead


def relevance_values(
    weights: LSTMCellWeights,
    x_proj: dict[str, np.ndarray],
    row_ranges: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Per-timestep relevance ``S`` (Algorithm 2), vectorized over the layer.

    Args:
        weights: Layer weights (provides ``U`` and ``b``).
        x_proj: Per-gate input projections ``X' = W_g x_t`` of shape
            ``(T, H)`` — the output of the per-layer ``Sgemm(W, x)`` — or
            ``(..., T, H)`` with leading batch dimensions.
        row_ranges: Optional precomputed :func:`recurrent_row_ranges`.

    Returns:
        Array of shape ``(T,)`` (or ``(..., T)`` for batched projections):
        ``S[t]`` measures the link *into* cell ``t`` from cell ``t - 1``.
        ``S[0]`` is computed like every other entry but has no link to
        break (there is no cell ``-1``).
    """
    lead = _check_projections(weights, x_proj)
    ranges = row_ranges if row_ranges is not None else recurrent_row_ranges(weights)

    per_gate: dict[str, np.ndarray] = {}
    # Line 4: the forget gate's one-sided overlap with the sensitive area.
    center_f = x_proj["f"] + weights.b_f
    s_f = np.minimum(SENSITIVE_WIDTH, np.maximum(center_f + ranges["f"] + 2.0, 0.0))
    per_gate["f"] = s_f
    # Line 5: the symmetric expression for the input/candidate/output gates.
    for gate in ("i", "c", "o"):
        center = np.abs(x_proj[gate] + weights.gate_b(gate))
        term_a = 2.0 + np.minimum(2.0, center)
        term_b = np.minimum(2.0, 2.0 + ranges[gate] - np.maximum(2.0, center))
        per_gate[gate] = np.clip(np.minimum(term_a, term_b), 0.0, SENSITIVE_WIDTH)

    # Line 6: combine gate overlaps; line 7: reduce over the hidden dim.
    s_elem = per_gate["o"] * (per_gate["f"] + per_gate["i"] * per_gate["c"])
    s = s_elem.sum(axis=-1)
    if s.shape != lead:
        raise ShapeError("internal: relevance reduction produced a bad shape")
    return s


def exact_relevance_values(
    weights: LSTMCellWeights,
    x_proj: dict[str, np.ndarray],
    row_ranges: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Ablation variant of Algorithm 2 using exact interval overlaps.

    Each gate's contribution is the exact length of the overlap between the
    reachable pre-activation interval ``[X' + b - D, X' + b + D]`` and the
    sensitive area, combined with the same line-6 formula.
    """
    _check_projections(weights, x_proj)
    ranges = row_ranges if row_ranges is not None else recurrent_row_ranges(weights)

    per_gate: dict[str, np.ndarray] = {}
    for gate in GATE_ORDER:
        center = x_proj[gate] + weights.gate_b(gate)
        per_gate[gate] = sensitive_overlap(center - ranges[gate], center + ranges[gate])

    s_elem = per_gate["o"] * (per_gate["f"] + per_gate["i"] * per_gate["c"])
    return s_elem.sum(axis=-1)


def max_relevance(hidden_size: int) -> float:
    """Upper bound on ``S`` for a layer of ``hidden_size`` units.

    Per element: ``S_o <= 4`` and ``S_f + S_i * S_c <= 4 + 16``, so the sum
    is bounded by ``80 * H``. Useful for normalizing thresholds across
    applications.
    """
    return 80.0 * hidden_size
