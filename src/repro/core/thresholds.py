"""Threshold sets and the AO / BPA / UO selection schemes (Sections VI-C/E).

Both optimizations are gated by a threshold — ``alpha_inter`` on the
relevance value and ``alpha_intra`` on the output gate. The paper explores
11 *threshold sets*, each pairing one value per knob, from set 0 (both
zero: the baseline, no accuracy loss) to set 10 (both at their upper
limits: maximum performance). On top of the schedule sit three selection
schemes:

* **AO** (accuracy oriented): the most aggressive set whose accuracy loss
  stays within the user-imperceptible budget (2 %).
* **BPA** (best performance-accuracy): the set maximizing
  ``speedup x accuracy``.
* **UO** (user oriented): per-user dynamic tuning; implemented in
  :mod:`repro.workloads.userstudy` where user preferences exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Number of threshold sets explored by the paper (0 .. 10).
NUM_THRESHOLD_SETS: int = 11


@dataclass(frozen=True)
class ThresholdSet:
    """One (alpha_inter, alpha_intra) pair of the Fig. 19 sweep."""

    index: int
    alpha_inter: float
    alpha_intra: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("threshold set index must be non-negative")
        if self.alpha_inter < 0 or self.alpha_intra < 0:
            raise ConfigurationError("thresholds must be non-negative")


class ThresholdSchedule:
    """The 11-point threshold schedule between baseline and the upper limits.

    Set ``i`` linearly interpolates both knobs between 0 and their maxima
    (the maxima come from the offline calibration of Fig. 10: the
    ``alpha_inter`` value that already reaches the minimum tissue count, and
    the largest meaningful near-zero threshold for ``alpha_intra``).
    """

    def __init__(
        self,
        alpha_inter_max: float,
        alpha_intra_max: float = 0.5,
        count: int = NUM_THRESHOLD_SETS,
    ) -> None:
        if alpha_inter_max < 0 or alpha_intra_max < 0:
            raise ConfigurationError("threshold maxima must be non-negative")
        if count < 2:
            raise ConfigurationError("a schedule needs at least 2 sets")
        self.alpha_inter_max = float(alpha_inter_max)
        self.alpha_intra_max = float(alpha_intra_max)
        self._sets = tuple(
            ThresholdSet(
                index=i,
                alpha_inter=alpha_inter_max * i / (count - 1),
                alpha_intra=alpha_intra_max * i / (count - 1),
            )
            for i in range(count)
        )

    @classmethod
    def from_values(
        cls, alpha_inter_values, alpha_intra_values
    ) -> "ThresholdSchedule":
        """Build a schedule from explicit per-set threshold values.

        Used by the offline calibration, which spaces the ``alpha_inter``
        steps in *relevance-quantile* space: the relevance sum concentrates
        tightly around its mean (a central-limit effect of the per-element
        reduction in Algorithm 2), so linearly spaced raw thresholds would
        leave most sets identical to the baseline. Quantile spacing makes
        set ``i`` break an approximately proportional share of the links —
        the same monotone knob, usefully graduated.
        """
        inter = [float(v) for v in alpha_inter_values]
        intra = [float(v) for v in alpha_intra_values]
        if len(inter) != len(intra) or len(inter) < 2:
            raise ConfigurationError("need matching value lists of length >= 2")
        if sorted(inter) != inter or sorted(intra) != intra:
            raise ConfigurationError("threshold values must be non-decreasing")
        instance = cls.__new__(cls)
        instance.alpha_inter_max = inter[-1]
        instance.alpha_intra_max = intra[-1]
        instance._sets = tuple(
            ThresholdSet(index=i, alpha_inter=a, alpha_intra=b)
            for i, (a, b) in enumerate(zip(inter, intra))
        )
        return instance

    @property
    def sets(self) -> tuple[ThresholdSet, ...]:
        """All threshold sets, baseline first."""
        return self._sets

    def __len__(self) -> int:
        return len(self._sets)

    def __getitem__(self, index: int) -> ThresholdSet:
        return self._sets[index]

    def __iter__(self):
        return iter(self._sets)


def select_ao(
    accuracies: np.ndarray, target_accuracy: float = 0.98
) -> int:
    """AO scheme: the most aggressive set meeting the accuracy target.

    Args:
        accuracies: Accuracy per threshold set (index-aligned, set 0 first).
        target_accuracy: The user-imperceptible floor (paper: 98 %).

    Returns:
        Index of the chosen set (set 0 always qualifies — it is exact).
    """
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if accuracies.ndim != 1 or accuracies.size == 0:
        raise ConfigurationError("accuracies must be a non-empty 1-D array")
    qualifying = np.flatnonzero(accuracies >= target_accuracy)
    return int(qualifying[-1]) if qualifying.size else 0


def select_bpa(accuracies: np.ndarray, speedups: np.ndarray) -> int:
    """BPA scheme: the set maximizing ``speedup x accuracy``."""
    accuracies = np.asarray(accuracies, dtype=np.float64)
    speedups = np.asarray(speedups, dtype=np.float64)
    if accuracies.shape != speedups.shape or accuracies.ndim != 1:
        raise ConfigurationError("accuracies and speedups must be matching 1-D arrays")
    return int(np.argmax(accuracies * speedups))
