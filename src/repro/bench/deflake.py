"""Shared de-flake discipline for the ``benchmarks/bench_*.py`` gates.

Every timing gate in ``benchmarks/`` fights the same three noise sources,
and until this module existed each bench re-implemented the same three
counter-measures inline:

* **Cold caches / allocator warm-up** — the first run of any executor
  pays plan + program compilation and heap growth.  ``WARMUP`` untimed
  iterations populate every cache before sampling starts.
* **Descheduling spikes** — scheduler noise only ever *adds* time, so
  the minimum over ``REPEATS`` samples is the best estimate of true
  cost.  Report min-of-N, never mean-of-N.
* **Cyclic-GC pauses** — a gen-2 collection firing mid-sample charges a
  full-heap scan to whichever run crossed the threshold.  Wrap timed
  regions in :func:`gc_paused`.

CI runs every gate in short mode (``REPRO_BENCH_SHORT=1``), which trades
sampling depth for wall-clock; the full profile is the local default.
Use :func:`pick` for any bench-specific constant that needs a short-mode
variant beyond the shared ``WARMUP`` / ``REPEATS`` pair.
"""

from __future__ import annotations

import contextlib
import gc
import os
from collections.abc import Iterator

__all__ = [
    "REPEATS",
    "SHORT",
    "WARMUP",
    "gc_paused",
    "pick",
    "short_mode",
]


def short_mode() -> bool:
    """True when ``REPRO_BENCH_SHORT=1`` (the CI gate-job profile)."""
    return os.environ.get("REPRO_BENCH_SHORT", "") == "1"


#: Read once at import, matching the historical per-bench behaviour (the
#: CI jobs export the variable before the interpreter starts).
SHORT = short_mode()

#: Untimed iterations before sampling starts (cache + allocator warm-up).
WARMUP = 1 if SHORT else 2

#: Timed samples per measurement; gates report the minimum across them.
REPEATS = 3 if SHORT else 7


def pick(full, short):
    """The short-mode variant of a bench constant (``short`` iff SHORT)."""
    return short if SHORT else full


@contextlib.contextmanager
def gc_paused() -> Iterator[None]:
    """Collect once, then keep the cyclic GC off for the timed region.

    The executors allocate thousands of small plan-record objects per
    run; letting a gen-2 collection fire mid-sample is pure measurement
    noise for a relative gate.  Re-enables GC on exit only if it was
    enabled on entry, so nested uses compose.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
