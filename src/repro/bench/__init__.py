"""Benchmark harness: one experiment function per paper table/figure.

The functions here are consumed by the ``benchmarks/`` pytest-benchmark
suite and by the examples; they cache workloads and threshold sweeps so a
full benchmark session builds each application once.
"""

from repro.bench.harness import (
    ExperimentContext,
    ablation_exact_relevance,
    ablation_large_gpu,
    ablation_predicted_link,
    ablation_tissue_alignment,
    fig04_stall_breakdown,
    fig06_bandwidth_utilization,
    fig09_tissue_size_sweep,
    fig14_overall,
    fig15_per_layer,
    fig16_compression_schemes,
    fig17_model_capacity,
    fig18_user_study,
    fig19_threshold_sweep,
    overheads_section6f,
    table1_platform,
    table2_applications,
)
from repro.bench.deflake import (
    REPEATS,
    SHORT,
    WARMUP,
    gc_paused,
    pick,
    short_mode,
)
from repro.bench.export import dump_json, sweep_to_csv, to_jsonable
from repro.bench.gates import GateCheck, GateSet
from repro.bench.reporting import format_series, format_table

__all__ = [
    "ExperimentContext",
    "GateCheck",
    "GateSet",
    "REPEATS",
    "SHORT",
    "WARMUP",
    "ablation_exact_relevance",
    "ablation_large_gpu",
    "ablation_predicted_link",
    "ablation_tissue_alignment",
    "fig04_stall_breakdown",
    "fig06_bandwidth_utilization",
    "fig09_tissue_size_sweep",
    "fig14_overall",
    "fig15_per_layer",
    "fig16_compression_schemes",
    "fig17_model_capacity",
    "fig18_user_study",
    "fig19_threshold_sweep",
    "dump_json",
    "format_series",
    "format_table",
    "gc_paused",
    "pick",
    "short_mode",
    "sweep_to_csv",
    "to_jsonable",
    "overheads_section6f",
    "table1_platform",
    "table2_applications",
]
