"""Export harness results to JSON/CSV for external plotting.

The text reports in ``benchmarks/results/`` are the canonical comparison
artifacts; these helpers serialize the underlying data so the figures can
be re-plotted (matplotlib, gnuplot, a spreadsheet) without re-running the
experiments.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import io
import json
import pathlib
from typing import Any

import numpy as np

from repro.errors import ConfigurationError


def to_jsonable(value: Any) -> Any:
    """Recursively convert harness outputs to JSON-serializable values.

    Handles numpy scalars/arrays, dataclasses (e.g.
    :class:`~repro.workloads.apps.WorkloadEvaluation`), enums, and nested
    containers.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    raise ConfigurationError(f"cannot serialize {type(value).__name__} to JSON")


def dump_json(data: Any, path: str | pathlib.Path) -> pathlib.Path:
    """Write harness data as pretty-printed JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(data), indent=2, sort_keys=True) + "\n")
    return path


def sweep_to_csv(sweep, path: str | pathlib.Path | None = None) -> str:
    """Serialize a threshold sweep (Fig. 19 row) as CSV.

    Args:
        sweep: List of :class:`~repro.workloads.apps.WorkloadEvaluation`.
        path: Optional file to write; the CSV text is returned either way.
    """
    if not sweep:
        raise ConfigurationError("cannot export an empty sweep")
    fields = [
        "threshold_index",
        "alpha_inter",
        "alpha_intra",
        "speedup",
        "energy_saving",
        "accuracy",
        "mean_tissue_size",
        "mean_skip_fraction",
        "mean_breakpoints",
    ]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(fields)
    for ev in sweep:
        writer.writerow([getattr(ev, f) for f in fields])
    text = buffer.getvalue()
    if path is not None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return text
