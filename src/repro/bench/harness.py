"""Experiment functions regenerating every table and figure of the paper.

Each ``figXX_*`` function returns plain data (dicts/lists) and a rendered
text report; the ``benchmarks/`` suite calls them under pytest-benchmark and
prints the reports, and ``EXPERIMENTS.md`` records the paper-vs-measured
comparison. An :class:`ExperimentContext` caches workloads and threshold
sweeps so one benchmark session builds each application exactly once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.config import APP_NAMES, TABLE2_APPS, USER_IMPERCEPTIBLE_ACCURACY
from repro.core.executor import ExecutionMode
from repro.core.plan import PlanCache
from repro.core.trace_builder import forced_tissue_layer_trace
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.workloads.apps import Workload, WorkloadEvaluation, build_workload
from repro.workloads.userstudy import ReplayProgram, UserStudy, sample_participants
from repro.bench.reporting import format_cache_stats, format_series, format_table

if TYPE_CHECKING:
    from repro.obs.recorder import Recorder

#: Sequences used when a figure needs kernel traces (stall/bandwidth/layer
#: breakdowns) — traces are deterministic per sequence, so few are needed.
TRACE_SEQUENCES: int = 3


def default_apps() -> tuple[str, ...]:
    """Applications exercised by the harness.

    ``REPRO_BENCH_APPS`` (comma separated) restricts the set — useful for
    quick runs; the default is all six Table II applications.
    """
    env = os.environ.get("REPRO_BENCH_APPS")
    if env:
        return tuple(name.strip().upper() for name in env.split(",") if name.strip())
    return APP_NAMES


@dataclass
class ExperimentContext:
    """Shared, cached state for one benchmark session.

    ``seed`` is the *single* reproducibility root: workload construction,
    threshold sweeps, and the user-study panel/replay randomness are all
    derived from it, so two contexts with the same seed regenerate every
    figure identically. ``recorder`` optionally captures the traced
    experiment runs as :class:`~repro.obs.record.RunRecord` objects.
    """

    seed: int = 0
    spec: GPUSpec = TEGRA_X1
    target_accuracy: float = USER_IMPERCEPTIBLE_ACCURACY
    plan_cache: PlanCache = field(default_factory=PlanCache)
    recorder: "Recorder | None" = None
    _workloads: dict[str, Workload] = field(default_factory=dict)
    _sweeps: dict[tuple, list[WorkloadEvaluation]] = field(default_factory=dict)
    _tuned_combined: dict[str, WorkloadEvaluation] = field(default_factory=dict)

    def derived_seed(self, *scope: object) -> int:
        """A child seed deterministically derived from ``seed`` and a scope.

        Every experiment needing its own random stream (e.g. the Fig. 18
        user study) draws from here instead of hard-coding a free-floating
        seed, keeping the whole session reproducible from ``self.seed``.
        """
        entropy = [int(self.seed)] + [
            s if isinstance(s, int) else int.from_bytes(str(s).encode(), "little")
            for s in scope
        ]
        return int(np.random.SeedSequence(entropy).generate_state(1)[0])

    def workload(self, name: str) -> Workload:
        """Build (once) and return one application workload."""
        key = name.upper()
        if key not in self._workloads:
            self._workloads[key] = build_workload(
                key, seed=self.seed, spec=self.spec, plan_cache=self.plan_cache
            )
        return self._workloads[key]

    def cache_report(self) -> str:
        """Rendered hit/miss statistics of the session's shared plan cache."""
        return format_cache_stats(self.plan_cache.stats)

    def sweep(
        self, name: str, mode: ExecutionMode, drs_style: str = "hardware"
    ) -> list[WorkloadEvaluation]:
        """Threshold sweep (cached) for one app and mode."""
        key = (name.upper(), mode, drs_style)
        if key not in self._sweeps:
            self._sweeps[key] = self.workload(name).threshold_sweep(
                mode, drs_style=drs_style
            )
        return self._sweeps[key]

    def ao_evaluation(
        self, name: str, mode: ExecutionMode
    ) -> WorkloadEvaluation:
        """The AO (accuracy-oriented) operating point of one mode."""
        sweep = self.sweep(name, mode)
        return sweep[Workload.ao_index(sweep, self.target_accuracy)]

    def combined_tuned(self, name: str) -> WorkloadEvaluation:
        """The combined system at per-knob AO thresholds (Fig. 14).

        The two thresholds are tuned independently (the Fig. 10 offline flow
        adjusts each knob against the accuracy budget), then verified
        together; on a miss, the knob whose back-off costs the least
        speedup is relaxed until the measured accuracy meets the target.
        """
        key = name.upper()
        if key in self._tuned_combined:
            return self._tuned_combined[key]
        workload = self.workload(name)
        schedule = workload.app.calibration.schedule()
        inter_sweep = self.sweep(name, ExecutionMode.INTER)
        intra_sweep = self.sweep(name, ExecutionMode.INTRA)
        j = Workload.ao_index(inter_sweep, self.target_accuracy)
        k = Workload.ao_index(intra_sweep, self.target_accuracy)
        best = None
        while True:
            candidate = workload.evaluate(
                ExecutionMode.COMBINED,
                alpha_inter=schedule[j].alpha_inter,
                alpha_intra=schedule[k].alpha_intra,
            )
            if candidate.accuracy >= self.target_accuracy:
                best = candidate
                break
            if j == 0 and k == 0:
                best = workload.evaluate(ExecutionMode.BASELINE)
                break
            # Back off the knob with the cheaper speedup sacrifice.
            inter_cost = (
                inter_sweep[j].speedup - inter_sweep[j - 1].speedup if j > 0 else np.inf
            )
            intra_cost = (
                intra_sweep[k].speedup - intra_sweep[k - 1].speedup if k > 0 else np.inf
            )
            if inter_cost <= intra_cost:
                j -= 1
            else:
                k -= 1
        self._tuned_combined[key] = best
        return best

    def traced_outcomes(self, name: str, mode: ExecutionMode, **kwargs):
        """(baseline, optimized) outcomes with kernel traces retained.

        When the context carries a :attr:`recorder`, both runs emit
        :class:`~repro.obs.record.RunRecord` objects (labelled with the
        application name), so a figure regeneration doubles as a trace
        capture session.
        """
        workload = self.workload(name)
        tokens = workload.dataset.tokens[:TRACE_SEQUENCES]
        base = workload.app.run(
            tokens,
            mode=ExecutionMode.BASELINE,
            keep_traces=True,
            recorder=self.recorder,
            label=name,
        )
        if mode is ExecutionMode.BASELINE:
            return base, base
        out = workload.app.run(
            tokens,
            mode=mode,
            keep_traces=True,
            recorder=self.recorder,
            label=name,
            **kwargs,
        )
        return base, out


_DEFAULT_CONTEXT: ExperimentContext | None = None


def get_context() -> ExperimentContext:
    """The session-wide shared context (created on first use)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT


# --------------------------------------------------------------------- T1/T2


def table1_platform(ctx: ExperimentContext | None = None) -> str:
    """Table I: the simulated platform specification."""
    ctx = ctx or get_context()
    spec = ctx.spec
    rows = [
        ("System", spec.name),
        ("GPU", f"{spec.num_sms * spec.cores_per_sm} cores @ {spec.clock_hz / 1e6:.0f} MHz"),
        ("Peak FP32", f"{spec.peak_flops / 1e9:.0f} GFLOP/s"),
        ("Memory BW", f"{spec.dram_bandwidth / 1e9:.1f} GB/s"),
        ("L2 cache", f"{spec.l2_bytes // 1024} KB"),
        ("Shared mem/SM", f"{spec.shared_mem_per_sm // 1024} KB"),
    ]
    return format_table(["Item", "Value"], rows, title="Table I — platform")


def table2_applications(ctx: ExperimentContext | None = None) -> str:
    """Table II: the evaluated NLP applications."""
    rows = [
        (a.name, a.family.value, a.model.hidden_size, a.model.num_layers, a.model.seq_length)
        for a in TABLE2_APPS.values()
    ]
    return format_table(
        ["Name", "Task", "Hidden_Size", "Layers", "Length"],
        rows,
        title="Table II — applications",
    )


# ----------------------------------------------------------------- Fig 4 / 6


def fig04_stall_breakdown(ctx: ExperimentContext | None = None, apps=None):
    """Fig. 4: contribution of each factor to Sgemv pipeline stalls."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    data = {}
    for name in apps:
        base, _ = ctx.traced_outcomes(name, ExecutionMode.BASELINE)
        stalls = base.traces[0].stall_breakdown("sgemv")
        stalls["sgemv_time_share"] = base.traces[0].time_fraction("sgemv")
        data[name] = stalls
    headers = ["App", "off-chip mem", "on-chip mem", "sync", "other", "Sgemv time share"]
    rows = [
        (
            name,
            f"{d['off_chip_memory']:.1%}",
            f"{d['on_chip_memory']:.1%}",
            f"{d['synchronization']:.1%}",
            f"{d['other']:.1%}",
            f"{d['sgemv_time_share']:.1%}",
        )
        for name, d in data.items()
    ]
    return data, format_table(headers, rows, title="Fig. 4 — Sgemv stall-cycle breakdown")


def fig06_bandwidth_utilization(ctx: ExperimentContext | None = None, apps=None):
    """Fig. 6: off-chip vs on-chip bandwidth utilization during Sgemv."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    data = {}
    for name in apps:
        base, _ = ctx.traced_outcomes(name, ExecutionMode.BASELINE)
        trace = base.traces[0]
        data[name] = {
            "off_chip": trace.mean_utilization("dram", "sgemv"),
            "on_chip": trace.mean_utilization("onchip", "sgemv"),
        }
    rows = [
        (name, f"{d['off_chip']:.1%}", f"{d['on_chip']:.1%}") for name, d in data.items()
    ]
    return data, format_table(
        ["App", "off-chip util", "on-chip util"],
        rows,
        title="Fig. 6 — bandwidth utilization during Sgemv",
    )


# --------------------------------------------------------------------- Fig 9


def fig09_tissue_size_sweep(
    ctx: ExperimentContext | None = None, apps=None, max_tissue_size: int = 10
):
    """Fig. 9: normalized layer performance vs tissue size; MTS knee."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    simulator = TimingSimulator(ctx.spec)
    data = {}
    blocks = []
    for name in apps:
        model = TABLE2_APPS[name].model
        times, utils = [], []
        for size in range(1, max_tissue_size + 1):
            trace = simulator.run_trace(
                forced_tissue_layer_trace(ctx.spec, model.hidden_size, model.seq_length, size)
            )
            times.append(trace.total_time)
            utils.append(trace.mean_utilization("onchip", "sgemm"))
        perf = [times[0] / t for t in times]
        mts = int(np.argmax(perf)) + 1
        data[name] = {"performance": perf, "onchip_utilization": utils, "mts": mts}
        blocks.append(
            format_series(
                f"{name} (MTS={mts})",
                list(range(1, max_tissue_size + 1)),
                [round(p, 2) for p in perf],
                x_label="tissue",
                y_label="perf",
            )
        )
    return data, "Fig. 9 — layer performance vs tissue size\n" + "\n".join(blocks)


# -------------------------------------------------------------------- Fig 14


def fig14_overall(ctx: ExperimentContext | None = None, apps=None):
    """Fig. 14: speedup and energy saving of inter / intra / combined."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    data = {}
    for name in apps:
        inter = ctx.ao_evaluation(name, ExecutionMode.INTER)
        intra = ctx.ao_evaluation(name, ExecutionMode.INTRA)
        combined = ctx.combined_tuned(name)
        data[name] = {"inter": inter, "intra": intra, "combined": combined}
    rows = []
    for name, d in data.items():
        rows.append(
            (
                name,
                f"{d['inter'].speedup:.2f}x/{d['inter'].energy_saving:.1%}",
                f"{d['intra'].speedup:.2f}x/{d['intra'].energy_saving:.1%}",
                f"{d['combined'].speedup:.2f}x/{d['combined'].energy_saving:.1%}",
                f"{d['combined'].accuracy:.1%}",
            )
        )
    means = {
        mode: (
            float(np.mean([d[mode].speedup for d in data.values()])),
            float(np.mean([d[mode].energy_saving for d in data.values()])),
        )
        for mode in ("inter", "intra", "combined")
    }
    rows.append(
        (
            "MEAN",
            f"{means['inter'][0]:.2f}x/{means['inter'][1]:.1%}",
            f"{means['intra'][0]:.2f}x/{means['intra'][1]:.1%}",
            f"{means['combined'][0]:.2f}x/{means['combined'][1]:.1%}",
            "",
        )
    )
    report = format_table(
        ["App", "inter (speed/energy)", "intra", "combined", "combined acc."],
        rows,
        title="Fig. 14 — overall speedup and energy saving (98% accuracy target)",
    )
    return data, means, report


# -------------------------------------------------------------------- Fig 15


def fig15_per_layer(ctx: ExperimentContext | None = None, apps=None):
    """Fig. 15: per-layer inter-cell speedup and energy saving."""
    ctx = ctx or get_context()
    apps = apps or [n for n in default_apps() if TABLE2_APPS[n].model.num_layers > 1]
    data = {}
    rows = []
    for name in apps:
        inter = ctx.ao_evaluation(name, ExecutionMode.INTER)
        base, out = ctx.traced_outcomes(
            name, ExecutionMode.INTER, alpha_inter=inter.alpha_inter
        )
        layers = TABLE2_APPS[name].model.num_layers
        per_layer = []
        for layer in range(layers):
            tag = f"layer{layer}"
            bt = sum(k.time for tr in base.traces for k in tr.kernels if k.tag == tag)
            be = sum(k.energy for tr in base.traces for k in tr.kernels if k.tag == tag)
            ot = sum(k.time for tr in out.traces for k in tr.kernels if k.tag == tag)
            oe = sum(k.energy for tr in out.traces for k in tr.kernels if k.tag == tag)
            per_layer.append({"speedup": bt / ot, "energy_saving": 1.0 - oe / be})
        data[name] = per_layer
        for layer, stats in enumerate(per_layer):
            rows.append(
                (name, layer + 1, f"{stats['speedup']:.2f}x", f"{stats['energy_saving']:.1%}")
            )
    return data, format_table(
        ["App", "Layer", "Speedup", "Energy saving"],
        rows,
        title="Fig. 15 — per-layer inter-cell gains (earlier layers divide more)",
    )


# -------------------------------------------------------------------- Fig 16


def fig16_compression_schemes(ctx: ExperimentContext | None = None, apps=None):
    """Fig. 16: zero-pruning vs software DRS vs hardware DRS."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    data = {}
    for name in apps:
        workload = ctx.workload(name)
        intra_sweep = ctx.sweep(name, ExecutionMode.INTRA)
        ao = Workload.ao_index(intra_sweep, ctx.target_accuracy)
        hardware = intra_sweep[ao]
        software = workload.evaluate(
            ExecutionMode.INTRA,
            alpha_intra=hardware.alpha_intra,
            alpha_inter=0.0,
            drs_style="software",
        )
        pruned = workload.evaluate(ExecutionMode.ZERO_PRUNE)
        from repro.nn.pruning import prune_cell_weights

        _, prune_stats = prune_cell_weights(
            workload.app.network.layers[0].weights, prune_fraction=0.37
        )
        data[name] = {
            "zero_pruning": {
                "compression": prune_stats.compression_ratio,
                "speedup": pruned.speedup,
                "energy_saving": pruned.energy_saving,
            },
            "software_drs": {
                "compression": 0.75 * software.mean_skip_fraction,
                "speedup": software.speedup,
                "energy_saving": software.energy_saving,
            },
            "hardware_drs": {
                "compression": 0.75 * hardware.mean_skip_fraction,
                "speedup": hardware.speedup,
                "energy_saving": hardware.energy_saving,
            },
        }
    rows = []
    for name, d in data.items():
        for scheme in ("zero_pruning", "software_drs", "hardware_drs"):
            s = d[scheme]
            rows.append(
                (
                    name,
                    scheme,
                    f"{s['compression']:.1%}",
                    f"{s['speedup']:.2f}x",
                    f"{s['energy_saving']:.1%}",
                )
            )
    means = {
        scheme: {
            metric: float(np.mean([d[scheme][metric] for d in data.values()]))
            for metric in ("compression", "speedup", "energy_saving")
        }
        for scheme in ("zero_pruning", "software_drs", "hardware_drs")
    }
    for scheme, m in means.items():
        rows.append(
            (
                "MEAN",
                scheme,
                f"{m['compression']:.1%}",
                f"{m['speedup']:.2f}x",
                f"{m['energy_saving']:.1%}",
            )
        )
    report = format_table(
        ["App", "Scheme", "Compression", "Speedup", "Energy saving"],
        rows,
        title="Fig. 16 — weight-compression schemes",
    )
    return data, means, report


# -------------------------------------------------------------------- Fig 17


def fig17_model_capacity(
    ctx: ExperimentContext | None = None,
    hidden_sizes=(128, 256, 512),
    lengths=(43, 86, 172),
    indices=(0, 2, 4, 6, 8, 10),
):
    """Fig. 17: BABI performance-accuracy trade-offs vs model capacity."""
    from repro.workloads.apps import build_scaled_workload

    ctx = ctx or get_context()
    data = {"hidden": {}, "length": {}}
    blocks = []
    base_app = TABLE2_APPS["BABI"]
    for hidden in hidden_sizes:
        workload = build_scaled_workload(
            "BABI", hidden_size=hidden, seed=ctx.seed, spec=ctx.spec, num_sequences=24
        )
        sweep = workload.threshold_sweep(ExecutionMode.COMBINED, indices=list(indices))
        series = [(e.speedup, e.accuracy) for e in sweep]
        data["hidden"][hidden] = series
        blocks.append(
            format_series(
                f"hidden={hidden} length={base_app.model.seq_length}",
                [f"{s:.2f}x" for s, _ in series],
                [f"{a:.2f}" for _, a in series],
                x_label="speedup",
                y_label="accuracy",
            )
        )
    for length in lengths:
        workload = build_scaled_workload(
            "BABI", seq_length=length, seed=ctx.seed, spec=ctx.spec, num_sequences=24
        )
        sweep = workload.threshold_sweep(ExecutionMode.COMBINED, indices=list(indices))
        series = [(e.speedup, e.accuracy) for e in sweep]
        data["length"][length] = series
        blocks.append(
            format_series(
                f"hidden={base_app.model.hidden_size} length={length}",
                [f"{s:.2f}x" for s, _ in series],
                [f"{a:.2f}" for _, a in series],
                x_label="speedup",
                y_label="accuracy",
            )
        )
    return data, "Fig. 17 — BABI capacity trade-offs\n" + "\n".join(blocks)


# -------------------------------------------------------------------- Fig 18


def fig18_user_study(
    ctx: ExperimentContext | None = None, apps=None, seed: int | None = None
):
    """Fig. 18: simulated user-satisfaction scores per scheme.

    The participant panel and the replay-rating stream are seeded from
    ``ctx.seed`` (via :meth:`ExperimentContext.derived_seed`), so the
    experiment is reproducible from the single context seed like every
    other figure; pass ``seed`` only to override the derivation.
    """
    ctx = ctx or get_context()
    apps = apps or default_apps()
    if seed is not None:
        participant_seed = replay_seed = seed
    else:
        participant_seed = ctx.derived_seed("fig18", "participants")
        replay_seed = ctx.derived_seed("fig18", "replays")
    participants = sample_participants(seed=participant_seed)
    data = {}
    for name in apps:
        sweep = ctx.sweep(name, ExecutionMode.COMBINED)
        replay = ReplayProgram(sweep)
        study = UserStudy(replay, participants=participants, seed=replay_seed)
        result = study.run(
            ao_index=Workload.ao_index(sweep, ctx.target_accuracy),
            bpa_index=Workload.bpa_index(sweep),
        )
        data[name] = result.scores
    schemes = ("baseline", "AO", "BPA", "UO")
    rows = [
        (name, *(f"{scores[s]:.2f}" for s in schemes)) for name, scores in data.items()
    ]
    rows.append(
        ("MEAN", *(f"{np.mean([d[s] for d in data.values()]):.2f}" for s in schemes))
    )
    return data, format_table(
        ["App", *schemes], rows, title="Fig. 18 — user satisfaction (1-5)"
    )


# -------------------------------------------------------------------- Fig 19


def fig19_threshold_sweep(ctx: ExperimentContext | None = None, apps=None):
    """Fig. 19: speedup and accuracy across threshold sets 0..10."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    data = {}
    blocks = []
    for name in apps:
        sweep = ctx.sweep(name, ExecutionMode.COMBINED)
        ao = Workload.ao_index(sweep, ctx.target_accuracy)
        bpa = Workload.bpa_index(sweep)
        data[name] = {"sweep": sweep, "ao": ao, "bpa": bpa}
        blocks.append(
            format_series(
                f"{name} (AO=set{ao}, BPA=set{bpa})",
                [f"{e.speedup:.2f}x" for e in sweep],
                [f"{e.accuracy:.2f}" for e in sweep],
                x_label="speedup",
                y_label="accuracy",
            )
        )
    return data, "Fig. 19 — threshold sets 0..10 (combined system)\n" + "\n".join(blocks)


# -------------------------------------------------------------- Section VI-F


def overheads_section6f(ctx: ExperimentContext | None = None, apps=None):
    """Section VI-F: optimization overheads (time and energy)."""
    ctx = ctx or get_context()
    apps = apps or default_apps()
    data = {}
    for name in apps:
        base, inter0 = ctx.traced_outcomes(
            name, ExecutionMode.INTER, alpha_inter=1e-300
        )
        _, intra0 = ctx.traced_outcomes(name, ExecutionMode.INTRA, alpha_intra=0.0)
        inter_time = inter0.mean_time / base.mean_time - 1.0
        inter_energy = inter0.mean_energy / base.mean_energy - 1.0
        intra_time = intra0.mean_time / base.mean_time - 1.0
        intra_energy = intra0.mean_energy / base.mean_energy - 1.0
        # CRM overhead of the actual AO intra run, measured from traces.
        intra_ao = ctx.ao_evaluation(name, ExecutionMode.INTRA)
        _, intra_run = ctx.traced_outcomes(
            name, ExecutionMode.INTRA, alpha_intra=intra_ao.alpha_intra
        )
        crm_time = 0.0
        crm_energy = 0.0
        total = sum(tr.total_time for tr in intra_run.traces)
        total_e = sum(tr.total_energy for tr in intra_run.traces)
        frac = ctx.spec.crm_time_overhead
        for tr in intra_run.traces:
            for k in tr.kernels:
                crm_time += k.exec_time * frac / (1.0 + frac) if k.energy_parts.get("crm") else 0.0
                crm_energy += k.energy_parts.get("crm", 0.0)
        data[name] = {
            "inter_time": inter_time,
            "inter_energy": inter_energy,
            "intra_time": intra_time,
            "intra_energy": intra_energy,
            "crm_time": crm_time / total,
            "crm_energy": crm_energy / total_e,
        }
    rows = [
        (
            name,
            f"{d['inter_time']:.2%}",
            f"{d['inter_energy']:.2%}",
            f"{d['intra_time']:.2%}",
            f"{d['intra_energy']:.2%}",
            f"{d['crm_time']:.2%}",
            f"{d['crm_energy']:.2%}",
        )
        for name, d in data.items()
    ]
    mean_keys = (
        "inter_time", "inter_energy", "intra_time", "intra_energy", "crm_time", "crm_energy"
    )
    means = [f"{np.mean([d[k] for d in data.values()]):.2%}" for k in mean_keys]
    rows.append(("MEAN", *means))
    return data, format_table(
        ["App", "inter t", "inter E", "intra t", "intra E", "CRM t", "CRM E"],
        rows,
        title="Section VI-F — optimization overheads",
    )


# ----------------------------------------------------------------- ablations


def ablation_tissue_alignment(ctx: ExperimentContext | None = None, app: str = "PTB"):
    """DESIGN.md §6: tissue alignment on/off.

    Naive formation (Fig. 8 b1) produces fat tissues that oversubscribe the
    shared-memory bandwidth and thin tissues that barely reuse the weights;
    alignment balances them under the MTS. Compares the simulated time of
    the same division executed both ways.
    """
    from repro.core.breakpoints import divide_layer
    from repro.core.plan import LayerPlanRecord, SequencePlan, TissueRecord
    from repro.core.tissue import form_tissues, align_tissues
    from repro.core.trace_builder import build_kernel_trace

    ctx = ctx or get_context()
    model = TABLE2_APPS[app].model
    seq = model.seq_length
    # An uneven division: many short sub-layers plus one long tail.
    breaks = list(range(2, seq // 2, 2))
    sublayers = divide_layer(seq, breaks)
    mts = ctx.workload(app).app.calibration.mts

    def plan_for(tissues):
        records = [
            LayerPlanRecord(
                layer_index=0,
                hidden_size=model.hidden_size,
                input_size=model.effective_input_size,
                seq_length=seq,
                breakpoints=breaks,
                sublayer_lengths=[s.length for s in sublayers],
                tissues=[TissueRecord(cells=list(t.cells)) for t in tissues],
            )
        ]
        return SequencePlan(layers=records)

    simulator = TimingSimulator(ctx.spec)
    naive = simulator.run_trace(
        build_kernel_trace(plan_for(form_tissues(sublayers)), ctx.spec, inter=True, intra=False)
    )
    aligned = simulator.run_trace(
        build_kernel_trace(
            plan_for(align_tissues(sublayers, mts)), ctx.spec, inter=True, intra=False
        )
    )
    gain = naive.total_time / aligned.total_time
    report = format_table(
        ["Scheme", "Time (ms)", "Tissues"],
        [
            ("naive formation", naive.total_time * 1e3, len(form_tissues(sublayers))),
            ("aligned (MTS)", aligned.total_time * 1e3, len(align_tissues(sublayers, mts))),
            ("alignment gain", f"{gain:.2f}x", ""),
        ],
        title=f"Ablation — tissue alignment ({app}, MTS={mts})",
    )
    return {"naive": naive.total_time, "aligned": aligned.total_time, "gain": gain}, report


def ablation_predicted_link(ctx: ExperimentContext | None = None, app: str = "MT"):
    """DESIGN.md §6: Eq. 6 predicted link vs a zero vector at breakpoints."""
    from repro.core.context_prediction import PredictedLink
    from repro.core.executor import ExecutionConfig, LSTMExecutor

    ctx = ctx or get_context()
    workload = ctx.workload(app)
    calibration = workload.app.calibration
    schedule = calibration.schedule()
    alpha = schedule[6].alpha_inter
    config = ExecutionConfig(
        mode=ExecutionMode.INTER,
        alpha_inter=alpha,
        mts=calibration.mts,
        spec=ctx.spec,
    )
    hidden = workload.app.network.config.hidden_size
    tokens = workload.dataset.tokens

    with_pred = LSTMExecutor(
        workload.app.network, config, predicted_links=calibration.predicted_links
    ).run_batch(tokens)
    with_zero = LSTMExecutor(
        workload.app.network,
        config,
        predicted_links=[PredictedLink.zeros(hidden)] * workload.app.network.num_layers,
    ).run_batch(tokens)

    acc_pred = workload.dataset.accuracy(with_pred.predictions())
    acc_zero = workload.dataset.accuracy(with_zero.predictions())
    report = format_table(
        ["Link at breakpoints", "Accuracy"],
        [
            ("Eq. 6 predicted vector", f"{acc_pred:.1%}"),
            ("zero vector", f"{acc_zero:.1%}"),
        ],
        title=f"Ablation — accuracy recovery ({app}, threshold set 6)",
    )
    return {"predicted": acc_pred, "zero": acc_zero}, report


def ablation_large_gpu(ctx: ExperimentContext | None = None, app: str = "MR"):
    """Section II-C: on a large GPU the weights fit on-chip, so the
    per-cell re-load problem (and hence the inter-cell gain) shrinks."""
    from repro.gpu.specs import TESLA_M40

    ctx = ctx or get_context()
    mobile = ctx.workload(app)
    tokens = mobile.dataset.tokens[:TRACE_SEQUENCES]

    def reload_ratio(spec) -> float:
        app_obj = mobile.app
        old_spec = app_obj.spec
        app_obj.spec = spec
        try:
            base = app_obj.run(tokens, mode=ExecutionMode.BASELINE, keep_traces=True)
        finally:
            app_obj.spec = old_spec
        trace = base.traces[0]
        weight_bytes = TABLE2_APPS[app].model.recurrent_weight_bytes
        sgemv_bytes = sum(k.dram_bytes for k in trace.kernels if k.name == "sgemv")
        return sgemv_bytes / weight_bytes

    mobile_ratio = reload_ratio(ctx.spec)
    server_ratio = reload_ratio(TESLA_M40)
    report = format_table(
        ["Platform", "U re-load amplification"],
        [
            (ctx.spec.name, f"{mobile_ratio:.1f}x"),
            (TESLA_M40.name, f"{server_ratio:.1f}x"),
        ],
        title=f"Ablation — mobile vs large GPU ({app}): per-cell weight re-loads",
    )
    return {"mobile": mobile_ratio, "server": server_ratio}, report


def ablation_exact_relevance(ctx: ExperimentContext | None = None, app: str = "MR"):
    """DESIGN.md §6: the paper's Algorithm 2 vs exact interval overlaps."""
    from repro.core.executor import ExecutionConfig, LSTMExecutor

    ctx = ctx or get_context()
    workload = ctx.workload(app)
    calibration = workload.app.calibration
    tokens = workload.dataset.tokens[:4]

    def breakpoints_with(exact: bool) -> float:
        config = ExecutionConfig(
            mode=ExecutionMode.INTER,
            alpha_inter=calibration.alpha_inter_max,
            mts=calibration.mts,
            use_exact_relevance=exact,
            spec=ctx.spec,
        )
        executor = LSTMExecutor(
            workload.app.network, config, predicted_links=calibration.predicted_links
        )
        result = executor.run_batch(tokens)
        return float(np.mean([p.total_breakpoints for p in result.plans]))

    paper = breakpoints_with(False)
    exact = breakpoints_with(True)
    report = format_table(
        ["Relevance formula", "Breakpoints/sequence"],
        [("Algorithm 2 (paper)", f"{paper:.1f}"), ("exact overlap", f"{exact:.1f}")],
        title=f"Ablation — relevance formula ({app}, alpha at upper limit)",
    )
    return {"paper": paper, "exact": exact}, report


def serve_bench(
    mode: ExecutionMode = ExecutionMode.COMBINED,
    sequences: int = 16,
    workers: int = 2,
    max_batch: int = 8,
    queue_depth: int = 16,
    dwell_s: float = 0.0,
    hidden_size: int = 64,
    num_layers: int = 2,
    seq_length: int = 64,
    seed: int = 11,
    record_path: str | None = None,
    precision: str = "fp64",
    backend: str = "numpy",
    threads: int = 1,
):
    """Drive the serving runtime once and report fleet-level figures.

    Builds the executor-benchmark workload geometry, serves ``sequences``
    random sequences through an :class:`~repro.runtime.pool.
    InferenceRuntime` with the given worker/queue settings, verifies the
    outputs bit-for-bit against an in-process
    :class:`~repro.core.executor.LSTMExecutor` run per dispatch group
    (the runtime's numerics contract), and optionally writes the merged
    fleet :class:`~repro.obs.record.RunRecord` as JSONL.

    Returns ``(stats, report)``: a flat dict and an ASCII table. Backs the
    ``repro serve-bench`` CLI and the CI runtime smoke job.
    """
    from repro.config import LSTMConfig
    from repro.core.executor import ExecutionConfig, LSTMExecutor
    from repro.nn.network import LSTMNetwork
    from repro.obs import Recorder, write_jsonl
    from repro.runtime import InferenceRuntime, leaked_segments

    config = LSTMConfig(
        hidden_size=hidden_size,
        num_layers=num_layers,
        seq_length=seq_length,
        input_size=hidden_size,
    )
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=seed)
    rng = np.random.default_rng(seed + 12)
    tokens = rng.integers(0, 200, size=(sequences, seq_length))
    if mode is ExecutionMode.COMBINED:
        exec_config = ExecutionConfig(
            mode=mode, alpha_inter=1e12, alpha_intra=0.05, mts=5,
            precision=precision, backend=backend, threads=threads,
        )
    elif mode is ExecutionMode.INTER:
        exec_config = ExecutionConfig(
            mode=mode, alpha_inter=1e12, mts=5, precision=precision,
            backend=backend, threads=threads,
        )
    elif mode is ExecutionMode.INTRA:
        exec_config = ExecutionConfig(
            mode=mode, alpha_intra=0.05, precision=precision, backend=backend,
            threads=threads,
        )
    else:
        exec_config = ExecutionConfig(
            mode=mode, precision=precision, backend=backend, threads=threads
        )

    recorder = Recorder()
    runtime = InferenceRuntime(
        network,
        exec_config,
        workers=workers,
        max_batch=max_batch,
        queue_depth=queue_depth,
        dwell_s=dwell_s,
        recorder=recorder,
    )
    with runtime:
        fleet = runtime.run_batch(tokens)

    executor = LSTMExecutor(network, exec_config)
    # The numerics contract is backend-graded: the numpy oracle must match
    # the fleet bit-for-bit; fused backends project with one big GEMM whose
    # BLAS blocking may differ between shard and plan-group batch shapes,
    # so they get the documented tolerance instead.
    tolerance = 0.0 if executor.backend == "numpy" else 1e-9
    bit_identical = True
    for group in runtime.scheduler.plan_dispatch(tokens):
        expected = executor.run_batch(group.tokens)
        for row, index in enumerate(group.indices):
            if tolerance == 0.0:
                if not np.array_equal(expected.logits[row], fleet.logits[index]):
                    bit_identical = False
            elif np.abs(expected.logits[row] - fleet.logits[index]).max() > tolerance:
                bit_identical = False

    leaks = leaked_segments()
    weight_bytes = (
        fleet.record.weight_bytes_totals()
        if fleet.record is not None
        else {"fp64": 0.0, "moved": 0.0, "skipped": 0.0}
    )
    stats = {
        "mode": mode.value,
        "backend": executor.backend,
        "precision": exec_config.precision.tag,
        "weight_bytes_fp64": weight_bytes["fp64"],
        "weight_bytes_moved": weight_bytes["moved"],
        "sequences": sequences,
        "workers": workers,
        "threads": exec_config.threads,
        "max_batch": max_batch,
        "queue_depth": queue_depth,
        "dwell_s": dwell_s,
        "shards": fleet.num_shards,
        "plan_groups": len(fleet.groups),
        "wall_s": fleet.wall_s,
        "throughput_seq_s": fleet.throughput_seq_s,
        "bit_identical": bit_identical,
        "leaked_segments": len(leaks),
    }
    if record_path is not None and fleet.record is not None:
        write_jsonl([fleet.record], record_path)
    report = format_table(
        ["Metric", "Value"],
        [
            ("mode", mode.value),
            ("backend", executor.backend),
            ("precision", exec_config.precision.tag),
            ("sequences", sequences),
            ("workers", workers),
            ("threads/worker", exec_config.threads),
            ("dispatched shards", fleet.num_shards),
            ("plan groups", len(fleet.groups)),
            ("wall clock", f"{fleet.wall_s * 1e3:.1f} ms"),
            ("throughput", f"{fleet.throughput_seq_s:.1f} seq/s"),
            ("bit-identical vs executor", str(bit_identical)),
            ("leaked shm segments", len(leaks)),
        ],
        title=f"Serving runtime — {mode.value}, {workers} worker(s)",
    )
    return stats, report
