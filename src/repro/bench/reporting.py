"""Plain-text tables and series for the benchmark harness output.

The paper's figures are bar charts and line plots; the harness regenerates
their underlying numbers as aligned text tables so the comparison with the
paper is a column-by-column read.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.plan import PlanCacheStats


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one figure series as two aligned rows."""
    if len(xs) != len(ys):
        raise ConfigurationError("series lengths differ")
    cells_x = [_fmt(x) for x in xs]
    cells_y = [_fmt(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(cells_x, cells_y)]
    label_w = max(len(x_label), len(y_label))
    line_x = f"{x_label.ljust(label_w)}: " + "  ".join(c.rjust(w) for c, w in zip(cells_x, widths))
    line_y = f"{y_label.ljust(label_w)}: " + "  ".join(c.rjust(w) for c, w in zip(cells_y, widths))
    return f"{name}\n{line_x}\n{line_y}"


def format_cache_stats(stats: "PlanCacheStats") -> str:
    """Render one plan cache's hit/miss counters as a small table."""
    rows = [
        (
            "relevance",
            stats.relevance_hits,
            stats.relevance_misses,
            f"{stats.relevance_hit_rate:.1%}",
        ),
        ("plan", stats.plan_hits, stats.plan_misses, f"{stats.plan_hit_rate:.1%}"),
    ]
    table = format_table(
        ["Store", "Hits", "Misses", "Hit rate"], rows, title="Plan cache"
    )
    return f"{table}\nevictions: {stats.evictions}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
