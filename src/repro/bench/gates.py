"""Uniform CI gates for the ``benchmarks/bench_*.py`` scripts.

Every gated benchmark historically grew its own failure bookkeeping —
free-text ``failures`` lists, ``REGRESSION:`` prints, per-script exit
conventions — which made CI logs grep-dependent and inconsistent. A
:class:`GateSet` replaces that: each bound is declared once, every
violation renders as exactly one line

    ``GATE FAIL <bench>/<name>: measured <X> vs bound <Y>``

on stderr, the JSON report embeds the same structured checks, and
:meth:`GateSet.exit_code` is the script's return value — nonzero on any
failure, so CI never has to parse a table to know a gate tripped.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field


def _fmt(value: object) -> str:
    """Compact human/machine-stable rendering of a gate operand."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


@dataclass
class GateCheck:
    """One declared bound and its measurement."""

    name: str
    measured: object
    bound: object
    comparison: str  # ">=", "<=", "=="
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-report form."""
        return {
            "name": self.name,
            "measured": self.measured,
            "bound": self.bound,
            "comparison": self.comparison,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class GateSet:
    """Collects a benchmark's gate checks and renders failures uniformly.

    Args:
        bench: Short benchmark name prefixed into every failure line
            (e.g. ``"executor"`` renders ``GATE FAIL executor/<name>: ...``).
    """

    bench: str
    checks: list[GateCheck] = field(default_factory=list)

    def require_at_least(
        self, name: str, measured: float, bound: float, detail: str = ""
    ) -> bool:
        """Gate on ``measured >= bound`` (floors: speedups, goodput)."""
        return self._add(name, float(measured), float(bound), ">=",
                         float(measured) >= float(bound), detail)

    def require_at_most(
        self, name: str, measured: float, bound: float, detail: str = ""
    ) -> bool:
        """Gate on ``measured <= bound`` (ceilings: latency, overhead)."""
        return self._add(name, float(measured), float(bound), "<=",
                         float(measured) <= float(bound), detail)

    def require_true(self, name: str, measured: bool, detail: str = "") -> bool:
        """Gate on a boolean invariant (bit-identity, no leaks)."""
        return self._add(name, bool(measured), True, "==", bool(measured), detail)

    def _add(
        self,
        name: str,
        measured: object,
        bound: object,
        comparison: str,
        passed: bool,
        detail: str,
    ) -> bool:
        self.checks.append(
            GateCheck(
                name=name,
                measured=measured,
                bound=bound,
                comparison=comparison,
                passed=passed,
                detail=detail,
            )
        )
        return passed

    # -------------------------------------------------------------- results

    @property
    def passed(self) -> bool:
        """Whether every declared gate held."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[str]:
        """One canonical ``GATE FAIL`` line per violated gate."""
        lines = []
        for check in self.checks:
            if check.passed:
                continue
            line = (
                f"GATE FAIL {self.bench}/{check.name}: measured "
                f"{_fmt(check.measured)} vs bound {_fmt(check.bound)}"
            )
            if check.detail:
                line += f" ({check.detail})"
            lines.append(line)
        return lines

    def as_dict(self) -> dict:
        """Structured block for the benchmark's JSON report."""
        return {
            "bench": self.bench,
            "checks": [check.as_dict() for check in self.checks],
            "failures": self.failures,
            "passed": self.passed,
        }

    def exit_code(self, stream=None) -> int:
        """Print every failure line (stderr by default); 0 iff all passed."""
        stream = sys.stderr if stream is None else stream
        for line in self.failures:
            print(line, file=stream)
        if self.passed:
            print(f"{self.bench} gates passed", file=stream)
        return 0 if self.passed else 1
