"""repro — a full reproduction of *Towards Memory Friendly Long-Short Term
Memory Networks (LSTMs) on Mobile GPUs* (MICRO 2018).

The package provides:

* a from-scratch numpy LSTM/GRU stack (:mod:`repro.nn`),
* an analytical mobile-GPU timing and energy simulator (:mod:`repro.gpu`),
* the paper's inter-cell (layer division / tissues) and intra-cell (dynamic
  row skip) optimizations (:mod:`repro.core`),
* the six Table II NLP applications with synthetic datasets and the user
  study (:mod:`repro.workloads`),
* the benchmark harness regenerating every evaluation table and figure
  (:mod:`repro.bench`).

Quickstart::

    from repro import OptimizedLSTM, ExecutionMode

    app = OptimizedLSTM.from_app("BABI")
    app.calibrate()
    tokens = app.sample_tokens(8, seed=1)
    base = app.run(tokens, mode=ExecutionMode.BASELINE)
    fast = app.run(tokens, mode=ExecutionMode.COMBINED, threshold_index=4)
    print(f"{fast.speedup_vs(base):.2f}x at "
          f"{fast.agreement_with(base):.1%} agreement")
"""

from repro.config import (
    APP_NAMES,
    AppConfig,
    LSTMConfig,
    TABLE2_APPS,
    TaskFamily,
    USER_IMPERCEPTIBLE_ACCURACY,
    get_app,
)
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.pipeline import InferenceOutcome, OptimizedLSTM
from repro.core.plan import PlanCache, PlanCacheStats
from repro.core.thresholds import ThresholdSchedule, ThresholdSet
from repro.core.tuner import OfflineCalibration, calibrate_offline
from repro.gpu.simulator import TimingSimulator
from repro.gpu.specs import GPUSpec, TEGRA_X1, TESLA_M40
from repro.nn.model_zoo import build_calibrated_network
from repro.nn.network import LSTMNetwork
from repro.obs import Recorder, RunRecord

__version__ = "1.0.0"

__all__ = [
    "APP_NAMES",
    "AppConfig",
    "ExecutionConfig",
    "ExecutionMode",
    "GPUSpec",
    "InferenceOutcome",
    "LSTMConfig",
    "LSTMExecutor",
    "LSTMNetwork",
    "OfflineCalibration",
    "OptimizedLSTM",
    "PlanCache",
    "PlanCacheStats",
    "Recorder",
    "RunRecord",
    "TABLE2_APPS",
    "TEGRA_X1",
    "TESLA_M40",
    "TaskFamily",
    "ThresholdSchedule",
    "ThresholdSet",
    "TimingSimulator",
    "USER_IMPERCEPTIBLE_ACCURACY",
    "__version__",
    "build_calibrated_network",
    "calibrate_offline",
    "get_app",
]
