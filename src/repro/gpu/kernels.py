"""Kernel workload descriptors.

A :class:`KernelLaunch` captures everything the analytical simulator needs
to time one GPU kernel: the useful work (flops), the off-chip traffic it
*must* generate assuming perfect intra-kernel reuse (compulsory reads and
writes — inter-kernel reuse is the L2 model's job), the shared-memory
traffic, the thread geometry, and two efficiency factors that model branch
divergence and irregular (gather) memory access.

Builders are provided for the four kernel families of Algorithms 1 and 3:
``Sgemm`` / ``Sgemv``, the elementwise ``lstm_ew`` kernel, the ``DRS``
thresholding kernel, and the relevance/breakpoint-search kernel the
inter-cell runtime adds (Fig. 10, step 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Bytes per fp32 element — the precision of all evaluated kernels.
FP32 = 4


@dataclass
class KernelLaunch:
    """One GPU kernel launch, described by the work it performs.

    Attributes:
        name: Kernel family name (``sgemv``, ``sgemm``, ``lstm_ew``, ...).
        flops: Useful floating-point operations.
        weight_bytes: Compulsory reads of *weight* data — eligible for
            inter-kernel L2 residency (tracked per ``weight_id``).
        stream_read_bytes: Compulsory reads of streaming data (activations,
            vectors) — assumed never L2-resident across kernels.
        write_bytes: Bytes written back to DRAM.
        onchip_bytes: Shared-memory traffic.
        threads: Launched thread count (before any CRM compaction).
        warp_efficiency: Fraction of lanes doing useful work (1.0 = no
            divergence). Compute time scales with its inverse.
        gather_efficiency: Fraction of peak DRAM bandwidth achievable given
            the kernel's access pattern (1.0 = fully coalesced streaming).
        weight_id: Identity of the weight tensor read by this kernel, used
            by the L2 model to detect back-to-back reuse. ``None`` when the
            kernel reads no persistent weights.
        uses_crm: Whether the launch goes through the CTA-reorganization
            module (hardware DRS).
        tag: Free-form label (layer index, phase) used for aggregation.
    """

    name: str
    flops: float
    weight_bytes: float = 0.0
    stream_read_bytes: float = 0.0
    write_bytes: float = 0.0
    onchip_bytes: float = 0.0
    threads: int = 1
    warp_efficiency: float = 1.0
    gather_efficiency: float = 1.0
    weight_id: str | None = None
    uses_crm: bool = False
    tag: str = ""
    sync_intensity: float = 0.02
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.weight_bytes < 0 or self.stream_read_bytes < 0:
            raise ConfigurationError("kernel work quantities must be non-negative")
        if not 0 < self.warp_efficiency <= 1:
            raise ConfigurationError(
                f"warp_efficiency must be in (0, 1], got {self.warp_efficiency}"
            )
        if not 0 < self.gather_efficiency <= 1:
            raise ConfigurationError(
                f"gather_efficiency must be in (0, 1], got {self.gather_efficiency}"
            )
        if self.threads < 1:
            raise ConfigurationError("threads must be at least 1")

    @property
    def dram_read_bytes(self) -> float:
        """All compulsory DRAM reads (weights + streams)."""
        return self.weight_bytes + self.stream_read_bytes


def sgemv_kernel(
    rows: int,
    cols: int,
    onchip_per_flop: float,
    weight_id: str | None = None,
    warp_efficiency: float = 1.0,
    gather_efficiency: float = 1.0,
    weight_bytes: float | None = None,
    uses_crm: bool = False,
    tag: str = "",
) -> KernelLaunch:
    """Matrix-vector multiplication ``y = M @ x`` with ``M`` of ``rows x cols``.

    ``weight_bytes`` may be overridden to model row skipping (only the kept
    rows are streamed); flops are derived from the same effective row count.
    """
    full_weight = rows * cols * FP32
    if weight_bytes is None:
        weight_bytes = full_weight
    effective_rows = weight_bytes / (cols * FP32)
    return KernelLaunch(
        name="sgemv",
        flops=2.0 * effective_rows * cols,
        weight_bytes=weight_bytes,
        stream_read_bytes=cols * FP32,
        write_bytes=effective_rows * FP32,
        # The input vector is staged in shared memory and re-read per row.
        onchip_bytes=2.0 * effective_rows * cols * onchip_per_flop * 0.5,
        threads=max(1, rows),
        warp_efficiency=warp_efficiency,
        gather_efficiency=gather_efficiency,
        weight_id=weight_id,
        uses_crm=uses_crm,
        tag=tag,
    )


def sgemm_kernel(
    rows: int,
    cols: int,
    batch: int,
    onchip_per_flop: float,
    weight_id: str | None = None,
    warp_efficiency: float = 1.0,
    gather_efficiency: float = 1.0,
    weight_bytes: float | None = None,
    uses_crm: bool = False,
    tag: str = "",
) -> KernelLaunch:
    """Matrix-matrix multiplication ``Y = M @ X`` with ``X`` of ``cols x batch``.

    This is both the per-layer ``Sgemm(W, x)`` (batch = sequence length) and
    the per-tissue ``Sgemm(U, H_t)`` (batch = tissue size).
    """
    if batch < 1:
        raise ConfigurationError(f"sgemm batch must be >= 1, got {batch}")
    full_weight = rows * cols * FP32
    if weight_bytes is None:
        weight_bytes = full_weight
    effective_rows = weight_bytes / (cols * FP32)
    flops = 2.0 * effective_rows * cols * batch
    return KernelLaunch(
        name="sgemm",
        flops=flops,
        weight_bytes=weight_bytes,
        stream_read_bytes=cols * batch * FP32,
        write_bytes=effective_rows * batch * FP32,
        onchip_bytes=flops * onchip_per_flop,
        threads=max(1, rows * batch),
        warp_efficiency=warp_efficiency,
        gather_efficiency=gather_efficiency,
        weight_id=weight_id,
        uses_crm=uses_crm,
        tag=tag,
    )


def elementwise_kernel(hidden: int, batch: int = 1, gates: int = 4, tag: str = "") -> KernelLaunch:
    """The ``lstm_ew`` kernel: per-element gate activations and state update.

    Reads the pre-activations and previous state, writes ``c_t`` and ``h_t``.
    Roughly 5 ops per gate per element (bias add plus a fast-path
    transcendental) and 6 ops of state update.
    """
    elems = hidden * batch
    return KernelLaunch(
        name="lstm_ew",
        flops=elems * (5.0 * max(1, gates) + 6.0),
        stream_read_bytes=(gates + 2) * elems * FP32,
        write_bytes=2.0 * elems * FP32,
        onchip_bytes=0.0,
        threads=max(1, elems),
        tag=tag,
    )


def drs_kernel(hidden: int, batch: int = 1, tag: str = "") -> KernelLaunch:
    """The ``DRS(o_t, alpha_intra, R)`` thresholding kernel of Algorithm 3.

    Compares every ``o_t`` element against the near-zero threshold and emits
    the trivial-row ID list ``R`` (compaction via a prefix sum).
    """
    elems = hidden * batch
    return KernelLaunch(
        name="drs",
        flops=6.0 * elems,
        stream_read_bytes=elems * FP32,
        write_bytes=elems * FP32 / 2.0,
        threads=max(1, elems),
        tag=tag,
    )


def relevance_kernel(hidden: int, seq_length: int, tag: str = "") -> KernelLaunch:
    """The runtime breakpoint-search kernel of the inter-cell optimization.

    Implements Algorithm 2 over all links of one layer: per element it
    computes the clipped range overlaps and reduces them to the per-link
    relevance value ``S``. The row norms ``D`` are computed offline once per
    application, so the runtime kernel only streams ``X' = W x_t`` and the
    biases.
    """
    elems = hidden * max(1, seq_length)
    return KernelLaunch(
        name="relevance",
        flops=24.0 * elems * 4,
        stream_read_bytes=4 * elems * FP32 + 8 * hidden * FP32,
        write_bytes=max(1, seq_length) * FP32,
        threads=max(1, elems),
        tag=tag,
    )
