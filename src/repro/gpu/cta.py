"""CTA/warp-level efficiency models (divergence and irregular access).

Three execution styles of the intra-cell comparison (Fig. 16) differ only
in how the skipped work maps onto warps:

* **Hardware DRS (CRM).** The CTA-reorganization module compacts the thread
  grid before issue, so the surviving threads are dense: no divergence, and
  the skipped rows are simply absent from the stream (coalescing is
  preserved because whole rows are cache-line aligned).
* **Software DRS.** Every thread branches on "is my row trivial?". A warp
  only disappears when *all* of its rows are trivial; otherwise it runs the
  full latency path, and its memory requests become gappy.
* **Zero-pruned SpMV.** Element-granular sparsity forces a CSR gather:
  variable row lengths unbalance warps and column indices break coalescing.

The functions here turn a skip/prune fraction into the
``(warp_efficiency, gather_efficiency)`` pair consumed by the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def warp_level_skip_fraction(
    skip_mask: np.ndarray, warp_size: int = 32
) -> float:
    """Fraction of *rows* whose warp is entirely trivial (fully skippable
    in software: the whole warp exits at the branch).

    Each warp is weighted by its real lane count: a trailing partial warp
    of a non-multiple-of-32 hidden size contributes only its actual rows.
    This keeps the result <= the plain row-level skip fraction, which the
    :func:`software_drs_penalties` divergence model requires (its mixed
    term would otherwise go negative and report efficiencies above 1).

    Args:
        skip_mask: Boolean per-row mask, ``True`` = trivial row.
        warp_size: Rows per warp (row-per-thread mapping).
    """
    mask = np.asarray(skip_mask, dtype=bool).ravel()
    if mask.size == 0:
        return 0.0
    n_warps = int(np.ceil(mask.size / warp_size))
    padded = np.zeros(n_warps * warp_size, dtype=bool)
    padded[: mask.size] = mask
    # Padding lanes beyond the row count are inactive, treat them as trivial.
    padded[mask.size:] = True
    whole = padded.reshape(n_warps, warp_size).all(axis=1)
    lanes = np.full(n_warps, warp_size, dtype=float)
    lanes[-1] = mask.size - (n_warps - 1) * warp_size
    return float((whole * lanes).sum() / mask.size)


def software_drs_penalties(
    skip_fraction: float, warp_skip_fraction: float
) -> tuple[float, float, float]:
    """Efficiency triple for software-only DRS.

    Returns:
        ``(warp_efficiency, gather_efficiency, effective_skip)`` where
        ``effective_skip`` is the fraction of weight *bytes* whose load is
        actually avoided. Per-thread early exits do avoid the row loads, but
        the resulting holes de-coalesce the stream, so the avoided bytes
        only count partially and the surviving warps run at reduced
        efficiency.
    """
    if not 0 <= skip_fraction <= 1:
        raise ConfigurationError(f"skip_fraction must be in [0, 1], got {skip_fraction}")
    if not 0 <= warp_skip_fraction <= 1:
        raise ConfigurationError(
            f"warp_skip_fraction must be in [0, 1], got {warp_skip_fraction}"
        )
    # Divergence cost peaks when skipping is mixed within warps.
    mixed = skip_fraction - warp_skip_fraction
    warp_efficiency = max(0.4, 1.0 - 0.5 * mixed)
    gather_efficiency = max(0.5, 1.0 - 0.45 * mixed)
    # Whole-warp skips save their bytes cleanly; per-thread skips save the
    # row bytes but de-coalesce the stream around the holes, modeled as a
    # 70 % effectiveness.
    effective_skip = warp_skip_fraction + 0.7 * mixed
    return warp_efficiency, gather_efficiency, effective_skip


def hardware_drs_penalties(skip_fraction: float) -> tuple[float, float, float]:
    """Efficiency triple for CRM-backed hardware DRS.

    The compacted grid has no divergence and whole skipped rows leave a
    perfectly coalescible stream, so the full byte saving is realized.
    """
    if not 0 <= skip_fraction <= 1:
        raise ConfigurationError(f"skip_fraction must be in [0, 1], got {skip_fraction}")
    return 1.0, 1.0, skip_fraction


def pruned_spmv_penalties(kept_fraction: float) -> tuple[float, float]:
    """Efficiency pair ``(warp_efficiency, gather_efficiency)`` for the
    zero-pruned CSR SpMV baseline.

    Variable row populations unbalance warps (efficiency ~= mean/max row
    length under a binomial row model, flattened to a calibrated constant)
    and index-driven gathers defeat coalescing.
    """
    if not 0 < kept_fraction <= 1:
        raise ConfigurationError(f"kept_fraction must be in (0, 1], got {kept_fraction}")
    sparsity = 1.0 - kept_fraction
    warp_efficiency = max(0.5, 1.0 - 0.6 * sparsity)
    gather_efficiency = max(0.35, 1.0 - 1.5 * sparsity)
    return warp_efficiency, gather_efficiency
