"""Whole-system energy model.

The paper measures board-level energy on the Jetson TX1 ("the obtained
energy result describes the energy consumption of the overall system
including CPU, GPU, etc."). The model therefore combines:

* **static energy** — board static power integrated over execution time
  (this is why speedups alone save substantial energy);
* **work energy** — effective per-flop, per-DRAM-byte and per-on-chip-byte
  energies (this is why moving fewer bytes saves energy at equal time);
* **launch energy** — host CPU + driver energy per kernel launch (this is
  why the intra-cell flow, which multiplies the launch count, saves less
  energy than its speedup suggests — the Fig. 14 asymmetry);
* **CRM energy** — the <1 % overhead of the reorganization hardware when
  hardware DRS is active.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec
from repro.gpu.trace import KernelStats


@dataclass
class EnergyBreakdown:
    """Energy components of one kernel (J)."""

    static: float
    compute: float
    dram: float
    onchip: float
    launch: float
    crm: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.static + self.compute + self.dram + self.onchip + self.launch + self.crm

    def as_dict(self) -> dict[str, float]:
        """Dictionary form for aggregation."""
        return {
            "static": self.static,
            "compute": self.compute,
            "dram": self.dram,
            "onchip": self.onchip,
            "launch": self.launch,
            "crm": self.crm,
        }


class EnergyModel:
    """Computes :class:`EnergyBreakdown` for simulated kernels."""

    def __init__(self, spec: GPUSpec) -> None:
        self._spec = spec

    def kernel_energy(self, stats: KernelStats, uses_crm: bool = False) -> EnergyBreakdown:
        """Energy of one kernel given its simulated timing and traffic."""
        spec = self._spec
        static = spec.static_power * stats.time
        compute = spec.energy_per_flop * stats.flops
        dram = spec.energy_per_dram_byte * stats.dram_bytes
        onchip = spec.energy_per_onchip_byte * stats.onchip_bytes
        launch = spec.launch_energy
        crm = (static + compute + dram + onchip) * spec.crm_power_overhead if uses_crm else 0.0
        return EnergyBreakdown(
            static=static, compute=compute, dram=dram, onchip=onchip, launch=launch, crm=crm
        )

    def annotate(self, stats: KernelStats, uses_crm: bool = False) -> None:
        """Fill ``stats.energy`` / ``stats.energy_parts`` in place."""
        breakdown = self.kernel_energy(stats, uses_crm=uses_crm)
        stats.energy = breakdown.total
        stats.energy_parts = breakdown.as_dict()
