"""Mobile-GPU timing and energy simulator.

This subpackage stands in for the paper's Jetson TX1 measurements. It is an
analytical, mechanistic model: every kernel is described by the work it does
(flops, DRAM bytes, on-chip bytes, thread count, divergence/gather factors)
and the simulator derives execution time from the three rooflines of the
platform (compute, off-chip bandwidth, shared-memory bandwidth) plus launch
overhead and L2 reuse across kernels. Energy combines static power over
time with per-unit-of-work dynamic energies. See ``DESIGN.md`` §2 for why
this substitution preserves the paper's phenomena.
"""

from repro.gpu.specs import GPUSpec, TEGRA_X1, TESLA_M40
from repro.gpu.kernels import (
    KernelLaunch,
    drs_kernel,
    elementwise_kernel,
    relevance_kernel,
    sgemm_kernel,
    sgemv_kernel,
)
from repro.gpu.memory import L2Model
from repro.gpu.cta import pruned_spmv_penalties, software_drs_penalties
from repro.gpu.crm import CRMReorganization, reorganize_ctas
from repro.gpu.energy import EnergyBreakdown, EnergyModel
from repro.gpu.simulator import TimingSimulator
from repro.gpu.trace import KernelStats, TraceSummary

__all__ = [
    "CRMReorganization",
    "EnergyBreakdown",
    "EnergyModel",
    "GPUSpec",
    "KernelLaunch",
    "KernelStats",
    "L2Model",
    "TEGRA_X1",
    "TESLA_M40",
    "TimingSimulator",
    "TraceSummary",
    "drs_kernel",
    "elementwise_kernel",
    "pruned_spmv_penalties",
    "relevance_kernel",
    "reorganize_ctas",
    "software_drs_penalties",
    "sgemm_kernel",
    "sgemv_kernel",
]
