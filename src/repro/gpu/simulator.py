"""Analytical timing simulator for mobile-GPU kernel sequences.

Each kernel's execution time is the maximum of three roofline times —
compute, off-chip DRAM, and on-chip shared memory — plus launch overhead:

* ``t_compute = flops / (peak_flops * warp_efficiency * occupancy)``
* ``t_dram    = effective_dram_bytes / (bandwidth * gather_efficiency)``
* ``t_onchip  = onchip_bytes / shared_bandwidth`` (with a re-configuration
  penalty when the shared-memory roof binds, reproducing the Fig. 9 droop
  past the maximum tissue size)

Effective DRAM bytes are computed by the :class:`~repro.gpu.memory.L2Model`
so that weight tensors re-used across back-to-back kernels stop paying for
re-loads once they fit in the L2 — the mechanism whose *absence* for
mobile-sized LSTMs causes the paper's inter-cell bottleneck.

The simulator also attributes pipeline stall cycles to the Fig. 4
categories and annotates energy via :class:`~repro.gpu.energy.EnergyModel`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import SimulationError
from repro.gpu.energy import EnergyModel
from repro.gpu.kernels import KernelLaunch
from repro.gpu.memory import L2Model
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.gpu.trace import KernelStats, TraceSummary

#: Thread oversubscription needed to hide pipeline latency at full throughput.
LATENCY_HIDING_FACTOR: float = 4.0

#: Floor on the occupancy-derived throughput fraction (tiny kernels still
#: make some progress every cycle).
MIN_OCCUPANCY: float = 0.05

#: Share of execution attributed to instruction-fetch/dependency stalls.
OTHER_STALL_FRACTION: float = 0.05

#: Share of execution attributed to on-chip (shared/L2) stalls when the
#: kernel is not on-chip bound.
BACKGROUND_ONCHIP_STALL: float = 0.02


class TimingSimulator:
    """Times kernel sequences on a :class:`~repro.gpu.specs.GPUSpec`."""

    def __init__(self, spec: GPUSpec = TEGRA_X1) -> None:
        self.spec = spec
        self._l2 = L2Model(spec)
        self._energy = EnergyModel(spec)

    def reset(self) -> None:
        """Cold-start the memory hierarchy (call between executions)."""
        self._l2.reset()

    def run_kernel(self, kernel: KernelLaunch) -> KernelStats:
        """Simulate one launch and return its stats (energy annotated)."""
        spec = self.spec

        weight_traffic = self._l2.weight_traffic(kernel.weight_id, kernel.weight_bytes)
        streaming = kernel.stream_read_bytes + kernel.write_bytes
        self._l2.account_streaming(streaming)
        dram_bytes = weight_traffic + streaming
        compulsory = kernel.dram_read_bytes + kernel.write_bytes

        occupancy = self._occupancy(kernel.threads)
        throughput = spec.peak_flops * kernel.warp_efficiency * occupancy
        t_compute = kernel.flops / throughput if kernel.flops else 0.0

        bandwidth = spec.effective_dram_bandwidth * kernel.gather_efficiency
        t_dram = dram_bytes / bandwidth if dram_bytes else 0.0

        t_onchip = kernel.onchip_bytes / spec.shared_bandwidth if kernel.onchip_bytes else 0.0

        exec_time = max(t_compute, t_dram, t_onchip)
        if t_onchip >= exec_time and t_onchip > 0.0:
            # Shared-memory bound: the compiler re-configures the kernel to
            # keep per-thread on-chip demand below the roof, trading threads
            # for time (Fig. 9's post-MTS droop).
            slack = t_onchip - max(t_compute, t_dram)
            exec_time = t_onchip + spec.reconfig_penalty * slack

        if kernel.uses_crm:
            exec_time *= 1.0 + spec.crm_time_overhead

        time = exec_time + spec.kernel_launch_overhead_s
        stats = KernelStats(
            name=kernel.name,
            tag=kernel.tag,
            time=time,
            exec_time=exec_time,
            t_compute=t_compute,
            t_dram=t_dram,
            t_onchip=t_onchip,
            dram_bytes=dram_bytes,
            compulsory_bytes=compulsory,
            onchip_bytes=kernel.onchip_bytes,
            flops=kernel.flops,
            stall_cycles=self._stall_attribution(
                kernel, exec_time, t_compute, t_dram, t_onchip
            ),
            weight_bytes_fp64=kernel.extra.get("weight_bytes_fp64", 0.0),
            weight_bytes_moved=kernel.extra.get("weight_bytes_moved", 0.0),
            weight_bytes_skipped=kernel.extra.get("weight_bytes_skipped", 0.0),
        )
        self._energy.annotate(stats, uses_crm=kernel.uses_crm)
        return stats

    def run_trace(
        self,
        kernels: Iterable[KernelLaunch],
        cold_start: bool = True,
        observer: Callable[[KernelStats], None] | None = None,
    ) -> TraceSummary:
        """Simulate a kernel sequence in order.

        Args:
            kernels: The launches, in execution order (mobile GPUs serialize
                kernels, Section II-C).
            cold_start: Reset the L2 residency state first.
            observer: Optional per-kernel callback invoked with each
                :class:`~repro.gpu.trace.KernelStats` as it is produced —
                the streaming hook of the :mod:`repro.obs` trace layer.
                ``None`` (the default) costs nothing.
        """
        if cold_start:
            self.reset()
        stats = []
        for kernel in kernels:
            stat = self.run_kernel(kernel)
            if observer is not None:
                observer(stat)
            stats.append(stat)
        if not stats:
            raise SimulationError("cannot simulate an empty kernel trace")
        return TraceSummary(kernels=stats)

    def _occupancy(self, threads: int) -> float:
        full = self.spec.num_sms * self.spec.cores_per_sm * LATENCY_HIDING_FACTOR
        return max(MIN_OCCUPANCY, min(1.0, threads / full))

    def _stall_attribution(
        self,
        kernel: KernelLaunch,
        exec_time: float,
        t_compute: float,
        t_dram: float,
        t_onchip: float,
    ) -> dict[str, float]:
        """Attribute pipeline stall cycles (Fig. 4 categories).

        While the kernel waits at a bandwidth roof, the compute pipeline is
        stalled; the dominant roof claims the gap above the compute time.
        Barrier synchronization scales with the compute phase (one barrier
        per tile pass), and a small background share covers fetch/dependency
        stalls.
        """
        clock = self.spec.clock_hz
        off_chip = max(0.0, min(t_dram, exec_time) - t_compute)
        on_chip = max(0.0, t_onchip - max(t_dram, t_compute))
        if on_chip == 0.0:
            on_chip = BACKGROUND_ONCHIP_STALL * exec_time
        sync = kernel.sync_intensity * t_compute + 0.01 * exec_time
        other = OTHER_STALL_FRACTION * exec_time
        return {
            "off_chip_memory": off_chip * clock,
            "on_chip_memory": on_chip * clock,
            "synchronization": sync * clock,
            "other": other * clock,
        }
