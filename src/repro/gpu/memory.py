"""L2 inter-kernel reuse model (the Fig. 5 data-movement mechanics).

The redundant-data-movement bottleneck exists because the united recurrent
matrix is larger than the mobile GPU's last-level cache: every per-cell
``Sgemv`` must re-stream it from DRAM. Conversely, when a weight tensor
*does* fit in the cache together with the data streamed between its uses, a
repeated launch hits on-chip and the redundant loads vanish.

The model is a deterministic stack-distance approximation: a weight tensor
re-read after ``interleaved_bytes`` of other traffic retains

    resident = clip((l2_effective - interleaved_bytes) / tensor_bytes, 0, 1)

of its bytes in the L2, so only ``(1 - resident)`` must come from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec


@dataclass
class _WeightRecord:
    tensor_bytes: float
    traffic_since_use: float


class L2Model:
    """Tracks weight-tensor residency across a kernel sequence."""

    def __init__(self, spec: GPUSpec) -> None:
        self._spec = spec
        self._records: dict[str, _WeightRecord] = {}

    @property
    def effective_capacity(self) -> float:
        """L2 bytes usable for cross-kernel weight residency."""
        return self._spec.l2_bytes * self._spec.l2_residency_efficiency

    def reset(self) -> None:
        """Forget all residency state (a new, cold execution)."""
        self._records.clear()

    def weight_traffic(self, weight_id: str | None, tensor_bytes: float) -> float:
        """Effective DRAM bytes needed to read a weight tensor now.

        Call once per kernel, *before* :meth:`account_streaming`. The first
        use of a tensor is always a full load; later uses pay only for the
        evicted fraction.
        """
        if tensor_bytes <= 0:
            return 0.0
        if weight_id is None:
            return tensor_bytes
        record = self._records.get(weight_id)
        if record is None or record.tensor_bytes != tensor_bytes:
            self._records[weight_id] = _WeightRecord(tensor_bytes, 0.0)
            self._evict_others(weight_id, tensor_bytes)
            return tensor_bytes
        resident = self._resident_fraction(record)
        record.traffic_since_use = 0.0
        missing = tensor_bytes * (1.0 - resident)
        self._evict_others(weight_id, missing)
        return missing

    def account_streaming(self, bytes_moved: float) -> None:
        """Register non-weight traffic, which ages every tracked tensor."""
        if bytes_moved <= 0:
            return
        for record in self._records.values():
            record.traffic_since_use += bytes_moved

    def _resident_fraction(self, record: _WeightRecord) -> float:
        leftover = self.effective_capacity - record.traffic_since_use
        if leftover <= 0:
            return 0.0
        if record.tensor_bytes > leftover:
            # Cyclic streaming reuse under LRU: the head of the next pass
            # evicts the cached tail before it is reached, so a tensor
            # larger than the available capacity gets *zero* hits — the
            # classic thrashing pattern behind the paper's Fig. 5
            # observation that the weight matrix is fully re-loaded per
            # cell.
            return 0.0
        return 1.0

    def _evict_others(self, active_id: str, bytes_moved: float) -> None:
        for key, record in self._records.items():
            if key != active_id:
                record.traffic_since_use += bytes_moved

    def reload_amplification(self, weight_id: str) -> float | None:
        """Diagnostic hook — kept for API symmetry with the paper's Fig. 5
        observation that loaded data can be ~100x the tensor size. The
        amplification is computed by the simulator, which knows the trace.
        """
        record = self._records.get(weight_id)
        if record is None:
            return None
        return 1.0 - self._resident_fraction(record)
