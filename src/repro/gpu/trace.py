"""Result containers for the timing simulator.

:class:`KernelStats` carries the timing, stall, bandwidth and energy
breakdown of one launch; :class:`TraceSummary` aggregates a whole execution
(and is what the benchmark harness reports from).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Stall categories attributed by the simulator (Fig. 4's x-axis).
STALL_CATEGORIES: tuple[str, ...] = (
    "off_chip_memory",
    "on_chip_memory",
    "synchronization",
    "other",
)


@dataclass
class KernelStats:
    """Simulated outcome of one kernel launch.

    Attributes:
        name / tag: Copied from the :class:`~repro.gpu.kernels.KernelLaunch`.
        time: Total wall time including launch overhead (s).
        exec_time: On-GPU execution time (s).
        t_compute / t_dram / t_onchip: The three roofline times (s).
        dram_bytes: Effective off-chip traffic after L2 reuse (bytes).
        compulsory_bytes: Off-chip traffic assuming an infinite L2 (bytes).
        onchip_bytes: Shared-memory traffic (bytes).
        flops: Useful flops.
        stall_cycles: Per-category pipeline stall cycles (Fig. 4).
        energy: Total energy (J), filled by the energy model.
        energy_parts: Energy per component (static/dram/compute/...).
        weight_bytes_fp64: Host bytes this kernel's surviving weight
            elements would stream at float64 storage (zero for kernels
            that read no weights).
        weight_bytes_moved: Host weight bytes actually streamed at the
            active precision (payload + scale vectors, after row skip).
        weight_bytes_skipped: Dense-at-precision weight bytes the DRS
            row skip avoided loading.
    """

    name: str
    tag: str
    time: float
    exec_time: float
    t_compute: float
    t_dram: float
    t_onchip: float
    dram_bytes: float
    compulsory_bytes: float
    onchip_bytes: float
    flops: float
    stall_cycles: dict[str, float] = field(default_factory=dict)
    energy: float = 0.0
    energy_parts: dict[str, float] = field(default_factory=dict)
    weight_bytes_fp64: float = 0.0
    weight_bytes_moved: float = 0.0
    weight_bytes_skipped: float = 0.0

    @property
    def dram_utilization(self) -> float:
        """Fraction of the kernel's execution spent at the DRAM roof."""
        return 0.0 if self.exec_time == 0 else min(1.0, self.t_dram / self.exec_time)

    def as_dict(self) -> dict:
        """Flat JSON-serializable form (consumed by :mod:`repro.obs`)."""
        return {
            "name": self.name,
            "tag": self.tag,
            "time_s": self.time,
            "exec_s": self.exec_time,
            "t_compute_s": self.t_compute,
            "t_dram_s": self.t_dram,
            "t_onchip_s": self.t_onchip,
            "dram_bytes": self.dram_bytes,
            "compulsory_bytes": self.compulsory_bytes,
            "onchip_bytes": self.onchip_bytes,
            "flops": self.flops,
            "energy_j": self.energy,
            "stall_cycles": dict(self.stall_cycles),
            "energy_parts": dict(self.energy_parts),
            "weight_bytes_fp64": self.weight_bytes_fp64,
            "weight_bytes_moved": self.weight_bytes_moved,
            "weight_bytes_skipped": self.weight_bytes_skipped,
        }

    @property
    def onchip_utilization(self) -> float:
        """Fraction of the kernel's execution spent at the shared-memory roof."""
        return 0.0 if self.exec_time == 0 else min(1.0, self.t_onchip / self.exec_time)


@dataclass
class TraceSummary:
    """Aggregate of a simulated kernel sequence."""

    kernels: list[KernelStats]

    @property
    def total_time(self) -> float:
        """End-to-end time (s) — kernels are serialized on mobile GPUs."""
        return sum(k.time for k in self.kernels)

    @property
    def total_energy(self) -> float:
        """Whole-system energy (J)."""
        return sum(k.energy for k in self.kernels)

    @property
    def total_dram_bytes(self) -> float:
        """Effective off-chip traffic (bytes)."""
        return sum(k.dram_bytes for k in self.kernels)

    @property
    def total_flops(self) -> float:
        """Useful flops executed."""
        return sum(k.flops for k in self.kernels)

    @property
    def total_weight_bytes_fp64(self) -> float:
        """Host weight bytes the run would stream at float64 storage."""
        return sum(k.weight_bytes_fp64 for k in self.kernels)

    @property
    def total_weight_bytes_moved(self) -> float:
        """Host weight bytes actually streamed at the active precision."""
        return sum(k.weight_bytes_moved for k in self.kernels)

    @property
    def total_weight_bytes_skipped(self) -> float:
        """Host weight bytes DRS row skipping avoided loading."""
        return sum(k.weight_bytes_skipped for k in self.kernels)

    @property
    def num_launches(self) -> int:
        """Number of kernel launches."""
        return len(self.kernels)

    def time_by_kernel(self) -> dict[str, float]:
        """Total time per kernel family."""
        acc: dict[str, float] = defaultdict(float)
        for k in self.kernels:
            acc[k.name] += k.time
        return dict(acc)

    def time_fraction(self, name: str) -> float:
        """Fraction of total time spent in one kernel family."""
        total = self.total_time
        if total == 0:
            raise SimulationError("empty trace has no time distribution")
        return self.time_by_kernel().get(name, 0.0) / total

    def stall_breakdown(self, name: str | None = None) -> dict[str, float]:
        """Normalized stall-cycle contributions (Fig. 4).

        Args:
            name: Restrict to one kernel family (e.g. ``"sgemv"``);
                ``None`` aggregates over all kernels.
        """
        acc: dict[str, float] = defaultdict(float)
        for k in self.kernels:
            if name is not None and k.name != name:
                continue
            for cat, cycles in k.stall_cycles.items():
                acc[cat] += cycles
        total = sum(acc.values())
        if total == 0:
            return {cat: 0.0 for cat in acc} or {}
        return {cat: cycles / total for cat, cycles in acc.items()}

    def mean_utilization(self, which: str, name: str | None = None) -> float:
        """Time-weighted mean DRAM (``"dram"``) or shared-memory
        (``"onchip"``) bandwidth utilization."""
        selected = [k for k in self.kernels if name is None or k.name == name]
        total = sum(k.exec_time for k in selected)
        if total == 0:
            return 0.0
        if which == "dram":
            return sum(k.dram_utilization * k.exec_time for k in selected) / total
        if which == "onchip":
            return sum(k.onchip_utilization * k.exec_time for k in selected) / total
        raise SimulationError(f"unknown utilization kind {which!r}")

    def energy_breakdown(self) -> dict[str, float]:
        """Total energy per component."""
        acc: dict[str, float] = defaultdict(float)
        for k in self.kernels:
            for part, joules in k.energy_parts.items():
                acc[part] += joules
        return dict(acc)

    def speedup_vs(self, baseline: "TraceSummary") -> float:
        """Baseline time divided by this trace's time."""
        if self.total_time == 0:
            raise SimulationError("cannot compute speedup for a zero-time trace")
        return baseline.total_time / self.total_time

    def energy_saving_vs(self, baseline: "TraceSummary") -> float:
        """Fractional whole-system energy saving relative to ``baseline``."""
        if baseline.total_energy == 0:
            raise SimulationError("baseline trace has zero energy")
        return 1.0 - self.total_energy / baseline.total_energy
