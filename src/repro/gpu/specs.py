"""GPU platform specifications (paper Table I and Section II-C).

``TEGRA_X1`` reproduces Table I: a Maxwell mobile GPU with 256 cores at
998 MHz and 25.6 GB/s of LPDDR4 bandwidth. ``TESLA_M40`` is the large-GPU
reference of Section II-C used by the ablation that shows layer-level
parallelism makes the inter-cell problem moot when on-chip storage is large.

Energy constants are *effective system-level* energies per unit of work —
they fold instruction, register-file, and wire energy into the per-flop
number, and DRAM interface plus controller energy into the per-byte number,
which is the level the paper measures at (whole-board energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU platform for the analytical simulator.

    Attributes:
        name: Human-readable platform name.
        num_sms: Number of streaming multiprocessors.
        cores_per_sm: FP32 lanes per SM.
        clock_hz: Core clock.
        dram_bandwidth: Peak off-chip bandwidth in bytes/s.
        dram_efficiency: Achievable fraction of peak for well-coalesced
            streaming access.
        l2_bytes: Last-level on-chip cache capacity.
        l2_residency_efficiency: Fraction of the L2 usable for inter-kernel
            weight residency (the rest is churned by streaming data).
        shared_bw_bytes_per_cycle_per_sm: Shared-memory bandwidth per SM.
        shared_mem_per_sm: Shared-memory capacity per SM (bytes).
        warp_size: Threads per warp.
        kernel_launch_overhead_s: Host+driver latency per kernel launch.
        onchip_bytes_per_flop: Shared-memory traffic generated per flop by
            the tiled GEMM/GEMV kernels (the knob behind the Fig. 9 MTS
            knee); mildly inflated for large tiles via
            ``onchip_tile_pressure``.
        onchip_tile_pressure: Extra shared traffic per flop per 4096 hidden
            units (bank-conflict / tile-padding pressure).
        reconfig_penalty: Slowdown per unit of shared-memory oversubscription
            when a kernel must be re-configured at compile time (Fig. 9's
            post-MTS droop).
        energy_per_flop: Effective SM energy per flop (J).
        energy_per_dram_byte: Effective DRAM system energy per byte (J).
        energy_per_onchip_byte: Shared-memory/L2 energy per byte (J).
        static_power: GPU + board static power while the GPU is busy (W).
        launch_energy: Host-side (CPU + driver) energy per kernel launch (J).
        crm_time_overhead: Fractional kernel-time overhead of the CTA
            reorganization module when hardware DRS is active (the paper's
            gate-level result: 1.47 %).
        crm_power_overhead: Fractional energy overhead of the CRM (<1 %).
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    dram_bandwidth: float
    dram_efficiency: float
    l2_bytes: int
    l2_residency_efficiency: float
    shared_bw_bytes_per_cycle_per_sm: float
    shared_mem_per_sm: int
    warp_size: int
    kernel_launch_overhead_s: float
    onchip_bytes_per_flop: float
    onchip_tile_pressure: float
    reconfig_penalty: float
    energy_per_flop: float
    energy_per_dram_byte: float
    energy_per_onchip_byte: float
    static_power: float
    launch_energy: float
    crm_time_overhead: float
    crm_power_overhead: float

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ConfigurationError("SM geometry must be positive")
        if self.clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ConfigurationError("clock and bandwidth must be positive")
        if not 0 < self.dram_efficiency <= 1:
            raise ConfigurationError("dram_efficiency must be in (0, 1]")
        if not 0 <= self.l2_residency_efficiency <= 1:
            raise ConfigurationError("l2_residency_efficiency must be in [0, 1]")

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput (FMA counted as 2 flops), flop/s."""
        return 2.0 * self.num_sms * self.cores_per_sm * self.clock_hz

    @property
    def effective_dram_bandwidth(self) -> float:
        """Achievable streaming bandwidth, bytes/s."""
        return self.dram_bandwidth * self.dram_efficiency

    @property
    def shared_bandwidth(self) -> float:
        """Aggregate shared-memory bandwidth, bytes/s."""
        return self.num_sms * self.shared_bw_bytes_per_cycle_per_sm * self.clock_hz

    def onchip_traffic_per_flop(self, hidden_size: int) -> float:
        """Shared-memory bytes generated per flop for a given tile width."""
        return self.onchip_bytes_per_flop * (1.0 + self.onchip_tile_pressure * hidden_size / 4096.0)


#: Table I — the Jetson TX1 platform (Maxwell, 256 cores, 998 MHz, LPDDR4).
TEGRA_X1 = GPUSpec(
    name="Tegra X1 (Jetson TX1)",
    num_sms=2,
    cores_per_sm=128,
    clock_hz=998e6,
    dram_bandwidth=25.6e9,
    dram_efficiency=0.80,
    l2_bytes=256 * 1024,
    l2_residency_efficiency=0.75,
    shared_bw_bytes_per_cycle_per_sm=128.0,
    shared_mem_per_sm=64 * 1024,
    warp_size=32,
    kernel_launch_overhead_s=1.5e-6,
    onchip_bytes_per_flop=4.0,
    onchip_tile_pressure=0.9,
    reconfig_penalty=1.5,
    energy_per_flop=1.2e-10,
    energy_per_dram_byte=2.5e-10,
    energy_per_onchip_byte=1.0e-11,
    static_power=3.5,
    launch_energy=3.0e-5,
    crm_time_overhead=0.0147,
    crm_power_overhead=0.009,
)

#: Section II-C — the large datacenter GPU where layer-level parallelism is
#: feasible (3072 cores, GDDR5, 6 MB L2).
TESLA_M40 = GPUSpec(
    name="Tesla M40",
    num_sms=24,
    cores_per_sm=128,
    clock_hz=1.114e9,
    dram_bandwidth=288e9,
    dram_efficiency=0.80,
    l2_bytes=6 * 1024 * 1024,
    l2_residency_efficiency=0.75,
    shared_bw_bytes_per_cycle_per_sm=128.0,
    shared_mem_per_sm=96 * 1024,
    warp_size=32,
    kernel_launch_overhead_s=1.2e-6,
    onchip_bytes_per_flop=4.0,
    onchip_tile_pressure=0.9,
    reconfig_penalty=1.5,
    energy_per_flop=9.0e-11,
    energy_per_dram_byte=1.6e-10,
    energy_per_onchip_byte=8.0e-12,
    static_power=55.0,
    launch_energy=2.0e-5,
    crm_time_overhead=0.0147,
    crm_power_overhead=0.009,
)
