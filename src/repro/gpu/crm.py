"""Functional and cycle model of the CTA-reorganization module (Fig. 12).

The CRM sits in the grid management unit. For a kernel carrying a
trivial-row list ``R`` it:

1. loads ``R`` into the trivial-rows buffer (TRB),
2. decodes the disabled thread IDs (DTIDs) from ``R`` and the grid config,
3. filters every software thread ID (STID) against the DTIDs and computes,
   via a prefix sum over 32-thread groups, the offset between each
   surviving STID and its hardware thread ID (HTID),
4. shifts the surviving STIDs into a dense HTID range and emits the
   re-organized CTAs to the hardware work queue.

The functional model below performs exactly that compaction (and is what
the correctness tests exercise); the cycle model counts the two-stage
pipeline's occupancy at one warp-sized group per cycle per stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Pipeline depth of the CRM (the two dashed stages of Fig. 12).
PIPELINE_STAGES: int = 2

#: Fixed cycles to initialize kernel information and arm the TRB loader.
SETUP_CYCLES: int = 8

#: Trivial-row IDs the LD module can move into the TRB per cycle.
TRB_IDS_PER_CYCLE: int = 8


@dataclass
class CRMReorganization:
    """Result of reorganizing one kernel's CTAs.

    Attributes:
        stid_to_htid: For each surviving software thread ID, the hardware
            thread ID it is shifted to (dense, order preserving).
        disabled_stids: The thread IDs removed from the grid.
        active_threads: Surviving thread count.
        active_warps: Warps after compaction.
        cycles: CRM processing cycles for this kernel.
    """

    stid_to_htid: dict[int, int]
    disabled_stids: np.ndarray
    active_threads: int
    active_warps: int
    cycles: int

    def htid(self, stid: int) -> int:
        """Hardware slot of a surviving software thread."""
        return self.stid_to_htid[stid]


def decode_disabled_threads(
    trivial_rows: np.ndarray, total_threads: int, threads_per_row: int = 1
) -> np.ndarray:
    """DTID decode: expand trivial row IDs to the thread IDs that serve them.

    With a row-per-thread ``Sgemv`` mapping (``threads_per_row == 1``) the
    DTIDs equal the row IDs; wider mappings disable a contiguous group per
    row.
    """
    trivial_rows = np.asarray(trivial_rows, dtype=np.int64).ravel()
    if threads_per_row < 1:
        raise ConfigurationError("threads_per_row must be >= 1")
    if trivial_rows.size and (trivial_rows.min() < 0):
        raise ConfigurationError("trivial row IDs must be non-negative")
    base = trivial_rows * threads_per_row
    offsets = np.arange(threads_per_row)
    dtids = (base[:, None] + offsets[None, :]).ravel()
    return dtids[dtids < total_threads]


def reorganize_ctas(
    trivial_rows: np.ndarray,
    total_threads: int,
    warp_size: int = 32,
    threads_per_row: int = 1,
) -> CRMReorganization:
    """Run the CRM pipeline for one kernel launch.

    Args:
        trivial_rows: Row IDs in the kernel's ``R`` argument.
        total_threads: Grid size before compaction.
        warp_size: Hardware warp width (the prefix-sum group size).
        threads_per_row: Threads assigned per matrix row.

    Returns:
        The compaction mapping plus the cycle count.
    """
    if total_threads < 1:
        raise ConfigurationError("total_threads must be >= 1")
    dtids = decode_disabled_threads(trivial_rows, total_threads, threads_per_row)
    disabled = np.zeros(total_threads, dtype=bool)
    disabled[dtids] = True

    # Prefix sum of disabled flags = offset between STID and HTID.
    offsets = np.cumsum(disabled)
    surviving = np.flatnonzero(~disabled)
    mapping = {int(stid): int(stid - offsets[stid]) for stid in surviving}

    active = int(surviving.size)
    active_warps = int(np.ceil(active / warp_size)) if active else 0

    groups = int(np.ceil(total_threads / warp_size))
    trb_cycles = int(np.ceil(dtids.size / TRB_IDS_PER_CYCLE))
    cycles = SETUP_CYCLES + trb_cycles + groups + PIPELINE_STAGES

    return CRMReorganization(
        stid_to_htid=mapping,
        disabled_stids=dtids,
        active_threads=active,
        active_warps=active_warps,
        cycles=cycles,
    )


def crm_time_overhead_s(reorg: CRMReorganization, clock_hz: float) -> float:
    """Wall-clock cost of one CRM pass (usually well under a microsecond).

    The paper's gate-level simulation reports a 1.47 % end-to-end overhead,
    which includes issue-queue occupancy effects this cycle model does not
    capture; the simulator therefore applies the calibrated
    ``GPUSpec.crm_time_overhead`` fraction to CRM-routed kernels and keeps
    this function as the first-principles lower bound.
    """
    if clock_hz <= 0:
        raise ConfigurationError("clock_hz must be positive")
    return reorg.cycles / clock_hz
