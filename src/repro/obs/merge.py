"""Merging per-worker run records into one fleet record.

The serving runtime records each dispatched shard in the worker that
executed it; the parent stitches those shard records into a single
:class:`~repro.obs.record.RunRecord` that is schema-identical to a
single-process run over the whole batch — same ``repro.obs/run/v1``
stamp, one sequence observation per original batch position, additive
timing/simulated/cache totals. Downstream consumers (``trace
summarize``/``diff``, the schema validator) need not know a fleet ran.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.obs.record import RunRecord


def merge_run_records(
    records: list[RunRecord],
    label: str = "fleet",
    reindex: bool = False,
    allow_varying_seq_length: bool = False,
    allow_varying_config: bool = False,
    group_cache_by_label: bool = False,
) -> RunRecord:
    """Merge shard records into one run record.

    Args:
        records: One record per shard. ``mode``/``spec``/``config`` must
            agree across shards (they describe the same deployment); the
            merged record inherits them. ``seq_length`` must also agree
            unless ``allow_varying_seq_length`` is set.
        label: Label of the merged record.
        reindex: Renumber sequence observations (and their kernel events)
            consecutively in the given record order. Leave ``False`` when
            the producers already stamped original batch positions, as
            the runtime workers do.
        allow_varying_seq_length: Permit shards with differing
            ``seq_length`` — the streaming runtime's per-tick records
            carry each tick's chunk length there, and one serving window
            merges ticks of many chunk lengths. The merged record takes
            the maximum. Timing keys still sum key-wise, which is what
            gives the merged record its total ``queue_wait_s``
            attribution.
        allow_varying_config: Permit shards with differing ``config`` —
            multi-tenant windows merge ticks of many tenants (different
            alphas, precisions, models), and an SLO controller changes a
            tenant's configuration mid-window. The merged config keeps
            only the keys every record agrees on and lists the disputed
            key names under ``"varied"``. ``mode`` is allowed to differ
            too (the merged record takes the first); a zoo legitimately
            mixes BASELINE and INTRA tenants.
        group_cache_by_label: Namespace each record's cache counters by
            its label before summing — key ``plan_hits`` of a record
            labelled ``tenantA`` lands as ``tenantA/plan_hits``. This is
            what gives a merged multi-tenant record its per-tenant cache
            hit/miss attribution while staying inside the open
            ``str -> number`` cache mapping of ``repro.obs/run/v1``.

    Returns:
        The merged record, with sequences sorted by ``seq_index``.
    """
    if not records:
        raise ConfigurationError("cannot merge an empty list of run records")
    first = records[0]
    shared_attrs = ["spec"]
    if not allow_varying_config:
        shared_attrs.append("mode")
    if not allow_varying_seq_length:
        shared_attrs.append("seq_length")
    for other in records[1:]:
        for attr in shared_attrs:
            if getattr(other, attr) != getattr(first, attr):
                raise ConfigurationError(
                    f"cannot merge run records with differing {attr}: "
                    f"{getattr(first, attr)!r} vs {getattr(other, attr)!r}"
                )
        if not allow_varying_config and other.config != first.config:
            raise ConfigurationError("cannot merge run records with differing config")
    if allow_varying_config:
        merged_config: dict = {}
        varied: list[str] = []
        keys: list[str] = []
        for record in records:
            for key in record.config:
                if key not in keys:
                    keys.append(key)
        for key in keys:
            values = [record.config.get(key) for record in records]
            if all(value == values[0] for value in values[1:]):
                merged_config[key] = values[0]
            else:
                varied.append(key)
        if varied:
            merged_config["varied"] = varied
    else:
        merged_config = dict(first.config)

    sequences = []
    kernels = []
    timing: dict[str, float] = {}
    simulated: dict[str, float] = {}
    cache: dict[str, int] | None = None
    memory: dict[str, float] | None = None
    offset = 0
    for record in records:
        mapping: dict[int, int] = {}
        for seq in record.sequences:
            if reindex:
                mapping[seq.seq_index] = offset
                seq.seq_index = offset
                offset += 1
            sequences.append(seq)
        for event in record.kernels:
            if reindex and event.seq_index in mapping:
                event.seq_index = mapping[event.seq_index]
            kernels.append(event)
        for key, value in record.timing.items():
            timing[key] = timing.get(key, 0.0) + value
        for key, value in record.simulated.items():
            simulated[key] = simulated.get(key, 0.0) + value
        if record.cache is not None:
            if cache is None:
                cache = {}
            for key, value in record.cache.items():
                if group_cache_by_label:
                    key = f"{record.label or '(unlabelled)'}/{key}"
                cache[key] = cache.get(key, 0) + value
        if record.memory is not None:
            if memory is None:
                memory = {}
            for key, value in record.memory.items():
                # Byte *totals* add across shards, but a high-water mark
                # is a max: two workers each peaking at 1 MB concurrently
                # on separate heaps still report a 1 MB worst case.
                if "peak" in key:
                    memory[key] = max(memory.get(key, 0.0), value)
                else:
                    memory[key] = memory.get(key, 0.0) + value
    sequences.sort(key=lambda seq: seq.seq_index)
    kernels.sort(key=lambda event: (event.seq_index, event.index))
    return RunRecord(
        label=label,
        mode=first.mode,
        spec=first.spec,
        batch=sum(record.batch for record in records),
        seq_length=(
            max(record.seq_length for record in records)
            if allow_varying_seq_length
            else first.seq_length
        ),
        config=merged_config,
        timing=timing,
        simulated=simulated,
        cache=cache,
        memory=memory,
        sequences=sequences,
        kernels=kernels,
    )
