"""The :class:`RunRecord` schema — one auditable record per execution.

A record is a plain-data tree (dataclasses of floats/ints/strings) so it
serializes losslessly to JSON and back. Field semantics:

* :class:`KernelEvent` — one simulated kernel launch with its roofline
  times and Fig. 4 stall attribution, flattened across sequences.
* :class:`LayerObservation` — the structural counters of one layer of one
  sequence (breakpoints, tissues, skip fractions).
* :class:`SequenceObservation` — per-sequence simulated totals plus its
  layer observations.
* :class:`RunRecord` — the whole execution: configuration, wall-clock vs
  simulated time, plan-cache delta, sequences, kernels.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError

#: Schema identifier stamped on every serialized record.
SCHEMA_ID: str = "repro.obs/run/v1"


@dataclass
class KernelEvent:
    """One simulated kernel launch inside a run.

    Attributes:
        seq_index: Which sequence of the batch launched it.
        index: Launch position within the sequence's serialized trace.
        name / tag: Kernel family and free-form label (layer index).
        time_s: Wall time including launch overhead (s).
        exec_s: On-GPU execution time (s).
        t_compute_s / t_dram_s / t_onchip_s: The three roofline times (s).
        flops: Useful floating-point operations.
        dram_bytes: Effective off-chip traffic after L2 reuse.
        onchip_bytes: Shared-memory traffic.
        energy_j: Whole-system energy (J).
        stall_cycles: Fig. 4 stall attribution (category -> cycles).
        weight_bytes_fp64: Host bytes the surviving weight elements would
            stream at float64 storage (0 for weight-free kernels).
        weight_bytes_moved: Host weight bytes streamed at the active
            precision (payload + scales, after row skip).
        weight_bytes_skipped: Dense-at-precision weight bytes DRS row
            skipping avoided loading.
    """

    seq_index: int
    index: int
    name: str
    tag: str
    time_s: float
    exec_s: float
    t_compute_s: float
    t_dram_s: float
    t_onchip_s: float
    flops: float
    dram_bytes: float
    onchip_bytes: float
    energy_j: float
    stall_cycles: dict[str, float] = field(default_factory=dict)
    weight_bytes_fp64: float = 0.0
    weight_bytes_moved: float = 0.0
    weight_bytes_skipped: float = 0.0


@dataclass
class LayerObservation:
    """Structural counters of one layer of one executed sequence."""

    layer_index: int
    hidden_size: int
    seq_length: int
    num_breakpoints: int
    num_sublayers: int
    num_tissues: int
    mean_tissue_size: float
    mean_skip_fraction: float
    mean_warp_skip_fraction: float


@dataclass
class SequenceObservation:
    """Per-sequence simulated totals plus layer-level structure."""

    seq_index: int
    simulated_time_s: float = 0.0
    simulated_energy_j: float = 0.0
    num_launches: int = 0
    layers: list[LayerObservation] = field(default_factory=list)


@dataclass
class RunRecord:
    """One execution, recorded end to end.

    ``timing`` holds host-side wall-clock figures (``wall_s`` overall,
    ``exec_wall_s`` numerics, ``plan_wall_s`` structural planning,
    ``compile_wall_s`` program lowering on cache misses, ``sim_wall_s``
    simulator); ``simulated`` holds the platform-plane totals the
    simulator produced. ``cache`` is an open counter mapping of per-run
    cache *deltas* — plan-cache counters (``relevance_*``/``plan_*``/
    ``evictions``) and program-cache counters (``program_*``) share it —
    or ``None`` when no cache was wired. ``memory`` is the analogous open
    byte mapping for training runs — saved-tensor accounting
    (``saved_bytes``, per-layer ``layer{i}_saved_bytes``, the
    counterfactual ``saved_bytes_stash``/``saved_bytes_recompute``) and
    measured high-water marks (keys containing ``peak``, which merge by
    max while everything else sums) — or ``None`` for inference runs.
    """

    label: str = ""
    mode: str = ""
    spec: str = ""
    batch: int = 0
    seq_length: int = 0
    config: dict[str, object] = field(default_factory=dict)
    timing: dict[str, float] = field(default_factory=dict)
    simulated: dict[str, float] = field(default_factory=dict)
    cache: dict[str, int] | None = None
    memory: dict[str, float] | None = None
    sequences: list[SequenceObservation] = field(default_factory=list)
    kernels: list[KernelEvent] = field(default_factory=list)

    # ------------------------------------------------------------- queries

    @property
    def simulated_time_s(self) -> float:
        """Total simulated time across the batch (s)."""
        return float(self.simulated.get("time_s", 0.0))

    @property
    def simulated_energy_j(self) -> float:
        """Total simulated energy across the batch (J)."""
        return float(self.simulated.get("energy_j", 0.0))

    @property
    def num_launches(self) -> int:
        """Total kernel launches across the batch."""
        return len(self.kernels)

    def time_by_kernel(self) -> dict[str, float]:
        """Simulated time per kernel family, over every sequence."""
        acc: dict[str, float] = {}
        for event in self.kernels:
            acc[event.name] = acc.get(event.name, 0.0) + event.time_s
        return acc

    def launches_by_kernel(self) -> dict[str, int]:
        """Launch count per kernel family."""
        acc: dict[str, int] = {}
        for event in self.kernels:
            acc[event.name] = acc.get(event.name, 0) + 1
        return acc

    def stall_totals(self) -> dict[str, float]:
        """Total stall cycles per Fig. 4 category, over every kernel."""
        acc: dict[str, float] = {}
        for event in self.kernels:
            for cat, cycles in event.stall_cycles.items():
                acc[cat] = acc.get(cat, 0.0) + cycles
        return acc

    def weight_bytes_totals(self) -> dict[str, float]:
        """Total weight-byte counters over every kernel event.

        Keys: ``fp64`` (surviving elements at float64 storage), ``moved``
        (streamed at the active precision) and ``skipped`` (avoided by
        DRS row skipping). ``fp64 / moved`` is the traffic-reduction
        factor of the active precision policy.
        """
        fp64 = moved = skipped = 0.0
        for event in self.kernels:
            fp64 += event.weight_bytes_fp64
            moved += event.weight_bytes_moved
            skipped += event.weight_bytes_skipped
        return {"fp64": fp64, "moved": moved, "skipped": skipped}

    def mean_counters(self) -> dict[str, float]:
        """Batch-averaged structural counters (breakpoints, tissues, skips)."""
        if not self.sequences:
            return {
                "breakpoints": 0.0,
                "tissues": 0.0,
                "tissue_size": 0.0,
                "skip_fraction": 0.0,
            }
        per_seq = []
        for seq in self.sequences:
            layers = seq.layers
            if not layers:
                per_seq.append((0.0, 0.0, 0.0, 0.0))
                continue
            n = len(layers)
            per_seq.append(
                (
                    float(sum(rec.num_breakpoints for rec in layers)),
                    float(sum(rec.num_tissues for rec in layers)),
                    sum(rec.mean_tissue_size for rec in layers) / n,
                    sum(rec.mean_skip_fraction for rec in layers) / n,
                )
            )
        count = len(per_seq)
        sums = [sum(col) for col in zip(*per_seq)]
        keys = ("breakpoints", "tissues", "tissue_size", "skip_fraction")
        return {k: s / count for k, s in zip(keys, sums)}

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Plain-dict form (schema-stamped, JSON-serializable)."""
        data = asdict(self)
        data["schema"] = SCHEMA_ID
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        schema = data.get("schema")
        if schema != SCHEMA_ID:
            raise ConfigurationError(
                f"unsupported run-record schema {schema!r} (expected {SCHEMA_ID!r})"
            )
        sequences = [
            SequenceObservation(
                seq_index=seq["seq_index"],
                simulated_time_s=seq["simulated_time_s"],
                simulated_energy_j=seq["simulated_energy_j"],
                num_launches=seq["num_launches"],
                layers=[LayerObservation(**layer) for layer in seq["layers"]],
            )
            for seq in data.get("sequences", [])
        ]
        kernels = [KernelEvent(**event) for event in data.get("kernels", [])]
        return cls(
            label=data.get("label", ""),
            mode=data.get("mode", ""),
            spec=data.get("spec", ""),
            batch=data.get("batch", 0),
            seq_length=data.get("seq_length", 0),
            config=dict(data.get("config", {})),
            timing=dict(data.get("timing", {})),
            simulated=dict(data.get("simulated", {})),
            cache=dict(data["cache"]) if data.get("cache") is not None else None,
            memory=dict(data["memory"]) if data.get("memory") is not None else None,
            sequences=sequences,
            kernels=kernels,
        )
