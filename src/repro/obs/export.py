"""Run-record export: JSONL and Chrome ``trace_event`` JSON.

JSONL carries one :class:`~repro.obs.record.RunRecord` per line (the
schema is stamped on every line, validated by :mod:`repro.obs.schema`).
The Chrome format is the ``trace_event`` JSON object understood by
``chrome://tracing`` and Perfetto: each kernel launch becomes a complete
(``"ph": "X"``) event on one thread track per sequence, with start times
reconstructed from the serialized launch order (mobile GPUs serialize
kernels), and the stall/byte/flop attribution attached as ``args``.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ConfigurationError
from repro.obs.record import RunRecord

#: Microseconds per second — trace_event timestamps are in microseconds.
_US = 1e6


def write_jsonl(
    records: list[RunRecord], path: str | pathlib.Path
) -> pathlib.Path:
    """Write records as JSONL (one run per line); returns the path."""
    if not records:
        raise ConfigurationError("cannot export an empty record list")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(record.to_dict(), sort_keys=True) for record in records]
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[RunRecord]:
    """Load every record of one JSONL export."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    records = []
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}:{n}: invalid JSON ({exc})") from exc
        records.append(RunRecord.from_dict(data))
    if not records:
        raise ConfigurationError(f"{path}: no run records found")
    return records


def chrome_trace(records: list[RunRecord]) -> dict:
    """Convert records to a Chrome ``trace_event`` JSON object.

    One process per run (``pid``), one thread per sequence (``tid``);
    process/thread name metadata events make the Perfetto track labels
    readable.
    """
    if not records:
        raise ConfigurationError("cannot export an empty record list")
    events: list[dict] = []
    for pid, record in enumerate(records):
        label = record.label or record.mode or f"run{pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label} [{record.mode}] on {record.spec}"},
            }
        )
        seen_tids = set()
        cursor: dict[int, float] = {}
        for event in record.kernels:
            tid = event.seq_index
            if tid not in seen_tids:
                seen_tids.add(tid)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": f"sequence {tid}"},
                    }
                )
            start = cursor.get(tid, 0.0)
            cursor[tid] = start + event.time_s
            events.append(
                {
                    "name": event.name,
                    "cat": event.tag or "kernel",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": start * _US,
                    "dur": event.time_s * _US,
                    "args": {
                        "tag": event.tag,
                        "flops": event.flops,
                        "dram_bytes": event.dram_bytes,
                        "onchip_bytes": event.onchip_bytes,
                        "energy_j": event.energy_j,
                        "t_compute_s": event.t_compute_s,
                        "t_dram_s": event.t_dram_s,
                        "t_onchip_s": event.t_onchip_s,
                        "stall_cycles": event.stall_cycles,
                    },
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "runs": len(records)},
    }


def write_chrome_trace(
    records: list[RunRecord], path: str | pathlib.Path
) -> pathlib.Path:
    """Write the Chrome ``trace_event`` JSON for ``records``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(records), indent=1) + "\n")
    return path
