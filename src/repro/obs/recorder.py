"""The recorder API — zero overhead when disabled.

A :class:`Recorder` is handed to :meth:`repro.core.pipeline.OptimizedLSTM.
run` (or attached to a standalone :class:`~repro.core.executor.
LSTMExecutor`). Instrumented code asks it for a :class:`RunBuilder` via
:meth:`Recorder.start_run`; a disabled recorder returns ``None`` from that
single call, so the instrumented hot paths reduce to one ``is not None``
check and **no observation objects are ever allocated**. All conversion
from live simulator/executor state into plain-data records happens inside
the builder, only when recording is on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs import record as _record

if TYPE_CHECKING:
    from repro.core.plan import SequencePlan
    from repro.gpu.trace import TraceSummary


class Recorder:
    """Collects :class:`~repro.obs.record.RunRecord` objects.

    Args:
        enabled: When ``False`` the recorder is inert: :meth:`start_run`
            returns ``None`` and nothing is allocated or stored.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[_record.RunRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def start_run(
        self,
        label: str = "",
        mode: str = "",
        spec: str = "",
        batch: int = 0,
        seq_length: int = 0,
        config: dict | None = None,
    ) -> "RunBuilder | None":
        """Begin recording one execution; ``None`` when disabled."""
        if not self.enabled:
            return None
        return RunBuilder(
            self,
            label=label,
            mode=mode,
            spec=spec,
            batch=batch,
            seq_length=seq_length,
            config=config,
        )

    def last(self) -> _record.RunRecord:
        """The most recently finished record."""
        if not self.records:
            raise ConfigurationError("recorder holds no records yet")
        return self.records[-1]

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()


class RunBuilder:
    """Accumulates one :class:`~repro.obs.record.RunRecord`.

    Obtained from :meth:`Recorder.start_run`; call the ``observe_*``
    methods as the run progresses and :meth:`finish` once, which appends
    the completed record to the owning recorder.
    """

    def __init__(
        self,
        recorder: Recorder,
        label: str = "",
        mode: str = "",
        spec: str = "",
        batch: int = 0,
        seq_length: int = 0,
        config: dict | None = None,
    ) -> None:
        self._recorder = recorder
        self._run = _record.RunRecord(
            label=label,
            mode=mode,
            spec=spec,
            batch=batch,
            seq_length=seq_length,
            config=dict(config) if config else {},
        )
        self._sequences: dict[int, _record.SequenceObservation] = {}
        self._finished = False

    def _sequence(self, seq_index: int) -> _record.SequenceObservation:
        seq = self._sequences.get(seq_index)
        if seq is None:
            seq = _record.SequenceObservation(seq_index=seq_index)
            self._sequences[seq_index] = seq
        return seq

    def observe_plan(self, seq_index: int, plan: "SequencePlan") -> None:
        """Record one sequence's structural plan (per-layer counters)."""
        seq = self._sequence(seq_index)
        for rec in plan.layers:
            # Aggregate properties only — element access would force a
            # lazy stepwise tissue list to materialize B*T records.
            seq.layers.append(
                _record.LayerObservation(
                    layer_index=rec.layer_index,
                    hidden_size=rec.hidden_size,
                    seq_length=rec.seq_length,
                    num_breakpoints=len(rec.breakpoints),
                    num_sublayers=rec.num_sublayers,
                    num_tissues=rec.num_tissues,
                    mean_tissue_size=rec.mean_tissue_size,
                    mean_skip_fraction=rec.mean_skip_fraction,
                    mean_warp_skip_fraction=rec.mean_warp_skip_fraction,
                )
            )

    def observe_trace(self, seq_index: int, summary: "TraceSummary") -> None:
        """Record one sequence's simulated kernel trace."""
        seq = self._sequence(seq_index)
        base = seq.num_launches
        for k, stats in enumerate(summary.kernels):
            self._run.kernels.append(
                _record.KernelEvent(
                    seq_index=seq_index,
                    index=base + k,
                    name=stats.name,
                    tag=stats.tag,
                    time_s=stats.time,
                    exec_s=stats.exec_time,
                    t_compute_s=stats.t_compute,
                    t_dram_s=stats.t_dram,
                    t_onchip_s=stats.t_onchip,
                    flops=stats.flops,
                    dram_bytes=stats.dram_bytes,
                    onchip_bytes=stats.onchip_bytes,
                    energy_j=stats.energy,
                    stall_cycles=dict(stats.stall_cycles),
                    weight_bytes_fp64=stats.weight_bytes_fp64,
                    weight_bytes_moved=stats.weight_bytes_moved,
                    weight_bytes_skipped=stats.weight_bytes_skipped,
                )
            )
        seq.num_launches += len(summary.kernels)
        seq.simulated_time_s += summary.total_time
        seq.simulated_energy_j += summary.total_energy

    def _merge_cache_delta(self, counters: tuple[str, ...], before: dict, after: dict) -> None:
        """Merge per-run counter deltas into the record's ``cache`` dict.

        Merging (instead of replacing) lets the plan-cache and
        program-cache deltas share one flat dict — the schema keeps
        ``cache`` as an open counter mapping, so new families of counters
        need no version bump and :func:`repro.obs.merge.merge_run_records`
        sums them key-wise like any other.
        """
        if self._run.cache is None:
            self._run.cache = {}
        for key in counters:
            self._run.cache[key] = int(after.get(key, 0)) - int(before.get(key, 0))

    def observe_cache_delta(self, before: dict, after: dict) -> None:
        """Record the plan-cache counter delta attributable to this run.

        Args:
            before / after: Snapshots of :meth:`repro.core.plan.
                PlanCacheStats.as_dict` taken around the run.
        """
        self._merge_cache_delta(
            (
                "relevance_hits",
                "relevance_misses",
                "plan_hits",
                "plan_misses",
                "evictions",
            ),
            before,
            after,
        )

    def observe_program_cache_delta(self, before: dict, after: dict) -> None:
        """Record the program-cache counter delta attributable to this run.

        Args:
            before / after: Snapshots of :meth:`repro.core.program.
                ProgramCacheStats.as_dict` taken around the run.
        """
        self._merge_cache_delta(
            ("program_hits", "program_misses", "program_evictions"),
            before,
            after,
        )

    def set_timing(self, **timings: float) -> None:
        """Merge wall-clock figures (``wall_s``, ``exec_wall_s``, ...)."""
        for key, value in timings.items():
            self._run.timing[key] = float(value)

    def finish(self) -> _record.RunRecord:
        """Seal the record and append it to the recorder."""
        if self._finished:
            raise ConfigurationError("run builder already finished")
        self._finished = True
        run = self._run
        run.sequences = [self._sequences[i] for i in sorted(self._sequences)]
        run.simulated = {
            "time_s": sum(s.simulated_time_s for s in run.sequences),
            "energy_j": sum(s.simulated_energy_j for s in run.sequences),
            "num_launches": sum(s.num_launches for s in run.sequences),
        }
        self._recorder.records.append(run)
        return run
