"""Structured observability for executions (``repro.obs``).

Every :meth:`repro.core.pipeline.OptimizedLSTM.run` (and, standalone,
every :meth:`repro.core.executor.LSTMExecutor.run_batch` with a recorder
attached) can emit a :class:`RunRecord`: per-kernel launches with stall
attribution, per-layer tissue/breakpoint/skip counters, plan-cache
hit/miss deltas, and wall-clock vs simulated time. Records are collected
through a :class:`Recorder` whose disabled form is free — no observation
objects are allocated — and export as JSONL (one run per line) or Chrome
``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto.

The layer exists because the paper's claims are *attribution* claims
(off-chip stalls dominate ``Sgemv``, the MTS knee is the shared-memory
roof, DRS wins come from skipped row loads): a run must remain auditable
down to the kernel class that moved, not flattened into scalar summaries.
"""

from repro.obs.diff import RunDiff, diff_runs, format_diff, format_run_summary
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.merge import merge_run_records
from repro.obs.record import (
    KernelEvent,
    LayerObservation,
    RunRecord,
    SequenceObservation,
)
from repro.obs.recorder import Recorder, RunBuilder
from repro.obs.schema import (
    RUN_RECORD_SCHEMA_ID,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_jsonl_file,
    validate_run_dict,
)

__all__ = [
    "KernelEvent",
    "LayerObservation",
    "Recorder",
    "RunBuilder",
    "RunDiff",
    "RunRecord",
    "RUN_RECORD_SCHEMA_ID",
    "SequenceObservation",
    "chrome_trace",
    "diff_runs",
    "format_diff",
    "format_run_summary",
    "merge_run_records",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_jsonl_file",
    "validate_run_dict",
    "write_chrome_trace",
    "write_jsonl",
]
