"""Summarize one run record and diff two of them.

The diff answers the question every perf PR must answer: *which kernel
class moved?* Given a baseline and an optimized :class:`~repro.obs.
record.RunRecord` it attributes the simulated-time delta per kernel
family, compares the Fig. 4 stall mix, and reports the structural-counter
shifts (breakpoints found, tissues formed, rows skipped) that explain the
move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.record import RunRecord


@dataclass
class KernelClassDelta:
    """Per-kernel-family time and launch-count movement."""

    name: str
    base_time_s: float
    other_time_s: float
    base_launches: int
    other_launches: int

    @property
    def delta_s(self) -> float:
        """Signed time change (negative = the optimized run is faster)."""
        return self.other_time_s - self.base_time_s


@dataclass
class RunDiff:
    """Structured comparison of two run records."""

    base: RunRecord
    other: RunRecord
    kernel_deltas: list[KernelClassDelta] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Baseline simulated time over optimized simulated time."""
        if self.other.simulated_time_s == 0:
            raise ConfigurationError("cannot diff against a zero-time run")
        return self.base.simulated_time_s / self.other.simulated_time_s

    @property
    def energy_saving(self) -> float:
        """Fractional simulated energy saving of ``other`` vs ``base``."""
        if self.base.simulated_energy_j == 0:
            return 0.0
        return 1.0 - self.other.simulated_energy_j / self.base.simulated_energy_j


def diff_runs(base: RunRecord, other: RunRecord) -> RunDiff:
    """Diff two records down to the kernel class that moved.

    Deltas are sorted by absolute time movement, largest first.
    """
    base_times = base.time_by_kernel()
    other_times = other.time_by_kernel()
    base_counts = base.launches_by_kernel()
    other_counts = other.launches_by_kernel()
    names = sorted(set(base_times) | set(other_times))
    deltas = [
        KernelClassDelta(
            name=name,
            base_time_s=base_times.get(name, 0.0),
            other_time_s=other_times.get(name, 0.0),
            base_launches=base_counts.get(name, 0),
            other_launches=other_counts.get(name, 0),
        )
        for name in names
    ]
    deltas.sort(key=lambda d: abs(d.delta_s), reverse=True)
    return RunDiff(base=base, other=other, kernel_deltas=deltas)


def _split_cache_groups(
    cache: dict[str, int],
) -> tuple[dict[str, int], dict[str, dict[str, int]]]:
    """Separate flat cache counters from ``group/metric`` namespaced ones.

    Multi-tenant merged records (:func:`repro.obs.merge.merge_run_records`
    with ``group_cache_by_label``) carry per-tenant attribution as keys
    like ``tenantA/program_hits``; single-run records carry flat keys.
    """
    flat: dict[str, int] = {}
    groups: dict[str, dict[str, int]] = {}
    for key, value in cache.items():
        if "/" in key:
            group, metric = key.rsplit("/", 1)
            groups.setdefault(group, {})[metric] = value
        else:
            flat[key] = value
    return flat, groups


def _cache_group_table(groups: dict[str, dict[str, int]], title: str) -> str:
    """Aligned per-group (tenant/model) cache-counter table."""
    from repro.bench.reporting import format_table

    metrics: list[str] = []
    for counters in groups.values():
        for metric in counters:
            if metric not in metrics:
                metrics.append(metric)
    metrics.sort()
    rows = [
        (group, *(str(groups[group].get(metric, 0)) for metric in metrics))
        for group in sorted(groups)
    ]
    return format_table(["Group", *metrics], rows, title=title)


def format_run_summary(record: RunRecord) -> str:
    """Human-readable summary of one run record."""
    from repro.bench.reporting import format_table

    header = (
        f"run {record.label or '(unlabelled)'} — mode={record.mode} "
        f"spec={record.spec} batch={record.batch} seq_length={record.seq_length}"
    )
    timing_bits = [f"{k}={v * 1e3:.2f}ms" for k, v in sorted(record.timing.items())]
    lines = [
        header,
        f"simulated: {record.simulated_time_s * 1e3:.3f} ms, "
        f"{record.simulated_energy_j * 1e3:.2f} mJ, "
        f"{record.num_launches} launches",
    ]
    if timing_bits:
        lines.append("wall-clock: " + "  ".join(timing_bits))
    counters = record.mean_counters()
    lines.append(
        "counters/seq: "
        f"breakpoints={counters['breakpoints']:.1f} "
        f"tissues={counters['tissues']:.1f} "
        f"mean_tissue_size={counters['tissue_size']:.2f} "
        f"skip_fraction={counters['skip_fraction']:.1%}"
    )
    if record.cache is not None:
        flat, groups = _split_cache_groups(record.cache)
        if flat:
            cache_bits = [f"{k}={v}" for k, v in sorted(flat.items())]
            lines.append("plan cache delta: " + "  ".join(cache_bits))
        if groups:
            lines.append(
                _cache_group_table(groups, title="Per-tenant cache hit/miss delta")
            )
    weight_bytes = record.weight_bytes_totals()
    if weight_bytes["fp64"] > 0:
        precision = record.config.get("precision", "fp64")
        reduction = (
            weight_bytes["fp64"] / weight_bytes["moved"]
            if weight_bytes["moved"] > 0
            else float("inf")
        )
        lines.append(
            f"weight bytes [{precision}]: "
            f"moved={weight_bytes['moved'] / 1e6:.3f}MB "
            f"skipped={weight_bytes['skipped'] / 1e6:.3f}MB "
            f"fp64-equivalent={weight_bytes['fp64'] / 1e6:.3f}MB "
            f"(reduction {reduction:.2f}x)"
        )
    if record.memory:
        # The training-side twin of the weight-bytes line: what the saved
        # tapes held (and would have held under the other policy).
        rows = [
            (key, f"{value / 1e6:.3f}")
            for key, value in sorted(record.memory.items())
        ]
        lines.append(
            format_table(
                ["Memory counter", "MB"],
                rows,
                title="Training memory (saved tensors / peaks)",
            )
        )

    times = record.time_by_kernel()
    counts = record.launches_by_kernel()
    total = record.simulated_time_s or 1.0
    rows = [
        (name, counts[name], f"{times[name] * 1e3:.3f}", f"{times[name] / total:.1%}")
        for name in sorted(times, key=times.get, reverse=True)
    ]
    lines.append(
        format_table(
            ["Kernel", "Launches", "Time (ms)", "Share"],
            rows,
            title="Per-kernel-class time",
        )
    )
    stalls = record.stall_totals()
    stall_total = sum(stalls.values())
    if stall_total > 0:
        rows = [
            (cat, f"{cycles:.3g}", f"{cycles / stall_total:.1%}")
            for cat, cycles in sorted(stalls.items(), key=lambda kv: -kv[1])
        ]
        lines.append(
            format_table(
                ["Stall category", "Cycles", "Share"],
                rows,
                title="Stall attribution (Fig. 4 categories)",
            )
        )
    return "\n".join(lines)


def format_diff(diff: RunDiff) -> str:
    """Render a :class:`RunDiff` as an aligned report."""
    from repro.bench.reporting import format_table

    base, other = diff.base, diff.other
    lines = [
        f"baseline:  {base.label or '(unlabelled)'} [{base.mode}] "
        f"{base.simulated_time_s * 1e3:.3f} ms",
        f"optimized: {other.label or '(unlabelled)'} [{other.mode}] "
        f"{other.simulated_time_s * 1e3:.3f} ms",
        f"speedup: {diff.speedup:.2f}x   energy saving: {diff.energy_saving:.1%}",
    ]
    base_wb = base.weight_bytes_totals()
    other_wb = other.weight_bytes_totals()
    if base_wb["moved"] > 0 and other_wb["moved"] > 0:
        lines.append(
            f"weight bytes moved: {base_wb['moved'] / 1e6:.3f}MB -> "
            f"{other_wb['moved'] / 1e6:.3f}MB "
            f"({base_wb['moved'] / other_wb['moved']:.2f}x reduction)"
        )
    if base.memory or other.memory:
        base_mem = base.memory or {}
        other_mem = other.memory or {}
        mem_rows = [
            (
                key,
                f"{base_mem.get(key, 0.0) / 1e6:.3f}",
                f"{other_mem.get(key, 0.0) / 1e6:.3f}",
            )
            for key in sorted(set(base_mem) | set(other_mem))
        ]
        lines.append(
            format_table(
                ["Memory counter", "Base (MB)", "Opt (MB)"],
                mem_rows,
                title="Training memory movement (base -> opt)",
            )
        )
    base_groups = _split_cache_groups(base.cache or {})[1]
    other_groups = _split_cache_groups(other.cache or {})[1]
    if base_groups or other_groups:
        from repro.bench.reporting import format_table

        metrics: list[str] = []
        for groups in (base_groups, other_groups):
            for counters in groups.values():
                for metric in counters:
                    if metric not in metrics:
                        metrics.append(metric)
        metrics.sort()
        cache_rows = [
            (
                group,
                *(
                    f"{base_groups.get(group, {}).get(metric, 0)} -> "
                    f"{other_groups.get(group, {}).get(metric, 0)}"
                    for metric in metrics
                ),
            )
            for group in sorted(set(base_groups) | set(other_groups))
        ]
        lines.append(
            format_table(
                ["Group", *metrics],
                cache_rows,
                title="Per-tenant cache movement (base -> opt)",
            )
        )
    rows = [
        (
            d.name,
            f"{d.base_time_s * 1e3:.3f}",
            f"{d.other_time_s * 1e3:.3f}",
            f"{d.delta_s * 1e3:+.3f}",
            f"{d.base_launches} -> {d.other_launches}",
        )
        for d in diff.kernel_deltas
    ]
    lines.append(
        format_table(
            ["Kernel", "Base (ms)", "Opt (ms)", "Delta (ms)", "Launches"],
            rows,
            title="Per-kernel-class movement (largest first)",
        )
    )
    base_counters = base.mean_counters()
    other_counters = other.mean_counters()
    rows = [
        (key, f"{base_counters[key]:.2f}", f"{other_counters[key]:.2f}")
        for key in ("breakpoints", "tissues", "tissue_size", "skip_fraction")
    ]
    lines.append(
        format_table(
            ["Counter (per seq)", "Base", "Opt"], rows, title="Structural counters"
        )
    )
    return "\n".join(lines)
