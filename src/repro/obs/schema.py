"""Validators for the exported run-record formats.

Used by the golden schema tests and by the CI trace-export smoke step:
``validate_jsonl_file`` checks every line of a JSONL export against the
:data:`RUN_RECORD_SCHEMA_ID` structure, ``validate_chrome_trace`` checks
the ``trace_event`` shape Perfetto expects. Both raise
:class:`~repro.errors.ConfigurationError` with the offending location.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ConfigurationError
from repro.obs.record import SCHEMA_ID as RUN_RECORD_SCHEMA_ID
from repro.obs.record import RunRecord

#: Required top-level keys of one serialized run record and their types.
_RUN_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "label": str,
    "mode": str,
    "spec": str,
    "batch": int,
    "seq_length": int,
    "config": dict,
    "timing": dict,
    "simulated": dict,
    "sequences": list,
    "kernels": list,
}

#: Required keys of one kernel event and their types.
_KERNEL_FIELDS: dict[str, type | tuple[type, ...]] = {
    "seq_index": int,
    "index": int,
    "name": str,
    "tag": str,
    "time_s": (int, float),
    "exec_s": (int, float),
    "t_compute_s": (int, float),
    "t_dram_s": (int, float),
    "t_onchip_s": (int, float),
    "flops": (int, float),
    "dram_bytes": (int, float),
    "onchip_bytes": (int, float),
    "energy_j": (int, float),
    "stall_cycles": dict,
    # Bytes-moved accounting (quantized weight memory): fp64-equivalent,
    # streamed-at-precision, and DRS-skipped weight bytes per launch.
    "weight_bytes_fp64": (int, float),
    "weight_bytes_moved": (int, float),
    "weight_bytes_skipped": (int, float),
}

#: Required keys of one layer observation and their types.
_LAYER_FIELDS: dict[str, type | tuple[type, ...]] = {
    "layer_index": int,
    "hidden_size": int,
    "seq_length": int,
    "num_breakpoints": int,
    "num_sublayers": int,
    "num_tissues": int,
    "mean_tissue_size": (int, float),
    "mean_skip_fraction": (int, float),
    "mean_warp_skip_fraction": (int, float),
}


def _check_fields(data: dict, fields: dict, where: str) -> None:
    for key, expected in fields.items():
        if key not in data:
            raise ConfigurationError(f"{where}: missing key {key!r}")
        if not isinstance(data[key], expected):
            raise ConfigurationError(
                f"{where}: key {key!r} has type {type(data[key]).__name__}, "
                f"expected {expected}"
            )


def validate_run_dict(data: dict, where: str = "run record") -> None:
    """Validate one deserialized run-record dict against the v1 schema."""
    if not isinstance(data, dict):
        raise ConfigurationError(f"{where}: expected an object")
    _check_fields(data, _RUN_FIELDS, where)
    if data["schema"] != RUN_RECORD_SCHEMA_ID:
        raise ConfigurationError(
            f"{where}: schema {data['schema']!r} != {RUN_RECORD_SCHEMA_ID!r}"
        )
    if data.get("cache") is not None:
        if not isinstance(data["cache"], dict):
            raise ConfigurationError(f"{where}: 'cache' must be an object or null")
        # An open counter mapping: plan-cache and program-cache families
        # share it, and new counters need no schema bump — but every value
        # must be a plain number so merge can sum them key-wise.
        for key, value in data["cache"].items():
            if not isinstance(key, str) or isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ConfigurationError(
                    f"{where}: 'cache' entry {key!r} must map a string "
                    "to a number"
                )
    if data.get("memory") is not None:
        if not isinstance(data["memory"], dict):
            raise ConfigurationError(f"{where}: 'memory' must be an object or null")
        # Same openness contract as 'cache': saved-tensor byte counters and
        # measured peaks share one str -> number mapping, so new memory
        # accounting needs no schema bump but stays key-wise mergeable.
        for key, value in data["memory"].items():
            if not isinstance(key, str) or isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ConfigurationError(
                    f"{where}: 'memory' entry {key!r} must map a string "
                    "to a number"
                )
    for k, event in enumerate(data["kernels"]):
        _check_fields(event, _KERNEL_FIELDS, f"{where}: kernel[{k}]")
    for s, seq in enumerate(data["sequences"]):
        for key in ("seq_index", "num_launches"):
            if not isinstance(seq.get(key), int):
                raise ConfigurationError(
                    f"{where}: sequence[{s}] missing integer {key!r}"
                )
        for li, layer in enumerate(seq.get("layers", [])):
            _check_fields(layer, _LAYER_FIELDS, f"{where}: sequence[{s}].layers[{li}]")
    # The dict must round-trip through the dataclass form.
    RunRecord.from_dict(data)


def validate_jsonl_file(path: str | pathlib.Path) -> int:
    """Validate every line of a JSONL export; returns the record count."""
    path = pathlib.Path(path)
    count = 0
    for n, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}:{n}: invalid JSON ({exc})") from exc
        validate_run_dict(data, where=f"{path}:{n}")
        count += 1
    if count == 0:
        raise ConfigurationError(f"{path}: no run records found")
    return count


def validate_chrome_trace(data: dict, where: str = "chrome trace") -> int:
    """Validate a ``trace_event`` JSON object; returns the event count."""
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ConfigurationError(f"{where}: missing 'traceEvents'")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ConfigurationError(f"{where}: 'traceEvents' must be a non-empty list")
    complete = 0
    for k, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ConfigurationError(f"{where}: event[{k}] missing {key!r}")
        if event["ph"] == "X":
            complete += 1
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ConfigurationError(
                        f"{where}: event[{k}] missing numeric {key!r}"
                    )
            if event["dur"] < 0 or event["ts"] < 0:
                raise ConfigurationError(f"{where}: event[{k}] has negative time")
        elif event["ph"] != "M":
            raise ConfigurationError(
                f"{where}: event[{k}] has unsupported phase {event['ph']!r}"
            )
    if complete == 0:
        raise ConfigurationError(f"{where}: no complete ('X') events")
    return complete


def validate_chrome_trace_file(path: str | pathlib.Path) -> int:
    """Validate one exported Chrome trace file; returns the event count."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON ({exc})") from exc
    return validate_chrome_trace(data, where=str(path))
