"""Result containers of the serving runtime.

Plain dataclasses so shard results pickle cleanly across the worker
result queue and fleet results are directly inspectable in tests and the
scaling benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import SequencePlan
from repro.obs.record import RunRecord


@dataclass
class ShardResult:
    """One dispatched group, executed by one worker.

    Attributes:
        shard_id: Monotonic dispatch ticket of the parent.
        worker_id: Executing worker (``-1`` for the synchronous fallback).
        indices: Original batch positions of the shard's sequences.
        logits: ``(k, ...)`` logits in shard order.
        plans: Per-sequence structural plans in shard order.
        record: The worker's :class:`~repro.obs.record.RunRecord` for this
            shard (``seq_index`` already remapped to original batch
            positions), or ``None`` when recording is off.
        wall_s: Worker-side wall clock of the shard (executor + dwell).
    """

    shard_id: int
    worker_id: int
    indices: tuple[int, ...]
    logits: np.ndarray
    plans: list[SequencePlan]
    record: RunRecord | None
    wall_s: float


@dataclass
class FleetResult:
    """A whole fleet execution, reassembled in request order.

    ``logits``/``plans`` are ordered by the caller's original batch
    positions regardless of how shards were grouped or which worker
    finished first. ``record`` is the merged fleet-wide run record (see
    :func:`repro.obs.merge.merge_run_records`), present only when the
    runtime carries a recorder.
    """

    logits: np.ndarray
    plans: list[SequencePlan]
    record: RunRecord | None
    wall_s: float
    num_sequences: int
    num_shards: int
    workers: int
    groups: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_seq_s(self) -> float:
        """Sequences per second of wall clock."""
        return self.num_sequences / self.wall_s if self.wall_s > 0 else 0.0

    def predictions(self) -> np.ndarray:
        """Argmax predictions: ``(B,)`` or ``(B, T)``."""
        return np.argmax(self.logits, axis=-1)
