"""Worker process of the serving runtime.

Each worker attaches the shared-memory weight arena (no weight copies
cross the queue), rebuilds the network on the shared pages, and runs a
private :class:`~repro.core.executor.LSTMExecutor` with its own
:class:`~repro.core.plan.PlanCache`, :class:`~repro.core.program.
ProgramCache` and :class:`~repro.obs.Recorder`. The executor lives for
the whole worker lifetime, so compiled programs persist across shards:
the scheduler groups sequences by plan ``schedule_key``, which is exactly
the combined-mode program-cache key, so every shard of a scheduler group
after the first replays an already-compiled program. Tasks arrive as
:class:`~repro.runtime.scheduler.DispatchGroup`-shaped tuples; every
shard answers with a :class:`~repro.runtime.results.ShardResult` whose
run record has ``seq_index`` remapped to the original batch positions, so
the parent can merge fleet records without bookkeeping.

The optional *dwell* models the mobile-GPU device occupancy per sequence
(the simulator plane's time, during which the host-side control loop is
idle): it is what a multi-device fleet overlaps, and what the scaling
benchmark measures. ``dwell_s == 0`` leaves pure host compute.
"""

from __future__ import annotations

import time
import traceback

from repro.core.executor import ExecutionConfig, LSTMExecutor
from repro.core.plan import PlanCache
from repro.core.program import ProgramCache
from repro.errors import ConfigurationError
from repro.obs import Recorder
from repro.runtime.arena import ArenaManifest, WeightArena
from repro.runtime.results import ShardResult

#: Result-queue message tags.
READY = "ready"
RESULT = "result"
ERROR = "error"


def worker_main(
    worker_id: int,
    manifest: ArenaManifest,
    config: ExecutionConfig,
    task_queue,
    result_queue,
    dwell_s: float = 0.0,
    record: bool = True,
) -> None:
    """Worker loop: attach arena, execute shards until the ``None`` sentinel."""
    try:
        with WeightArena.attach(manifest) as arena:
            network = arena.network()
            # A quantized arena carries the published codes and scales;
            # handing them to the executor (instead of re-quantizing the
            # rebuilt weights) makes the fleet byte-identical to the
            # parent by construction. An fp64 arena under a quantized
            # config (the zero-prune case: pruning must happen before
            # quantization) lets the executor quantize for itself —
            # deterministic from the shared fp64 bits.
            quantized_cells = None
            if manifest.precision != "fp64":
                if manifest.precision != config.precision.tag:
                    raise ConfigurationError(
                        f"arena published at precision {manifest.precision!r} "
                        f"but worker config wants {config.precision.tag!r}"
                    )
                quantized_cells = arena.quantized_cells()
            recorder = Recorder() if record else None
            executor = LSTMExecutor(
                network,
                config,
                plan_cache=PlanCache(),
                recorder=recorder,
                program_cache=ProgramCache(),
                quantized_cells=quantized_cells,
            )
            result_queue.put((READY, worker_id, None))
            while True:
                task = task_queue.get()
                if task is None:
                    break
                shard_id, indices, tokens = task
                start = time.perf_counter()
                result = executor.run_batch(tokens)
                if dwell_s > 0.0:
                    time.sleep(dwell_s * tokens.shape[0])
                shard_record = None
                if recorder is not None and recorder.records:
                    shard_record = recorder.records[-1]
                    recorder.clear()
                    for seq, orig in zip(shard_record.sequences, indices):
                        seq.seq_index = int(orig)
                    for event in shard_record.kernels:
                        event.seq_index = int(indices[event.seq_index])
                result_queue.put(
                    (
                        RESULT,
                        worker_id,
                        ShardResult(
                            shard_id=shard_id,
                            worker_id=worker_id,
                            indices=tuple(int(i) for i in indices),
                            logits=result.logits,
                            plans=result.plans,
                            record=shard_record,
                            wall_s=time.perf_counter() - start,
                        ),
                    )
                )
    except Exception:  # pragma: no cover - surfaced to the parent
        result_queue.put((ERROR, worker_id, traceback.format_exc()))
