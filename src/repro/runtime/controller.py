"""Online (α, precision) SLO control for multi-tenant serving.

The offline tuner (:mod:`repro.core.tuner`) answers "which operating
points are worth running" — :func:`~repro.core.tuner.export_frontier`
orders the Pareto-optimal (``alpha_inter``, ``alpha_intra``,
``precision``) configurations most-accurate first. This module closes
the paper's user-oriented knob into a runtime loop: a per-tenant
:class:`SLOController` watches the tenant's tail latency (from completed
requests) and its sampled shadow-execution agreement (from
:class:`~repro.runtime.shadow.ShadowSampler`), and walks the frontier —
one step toward the fast end when the p99 SLO is violated, one step back
toward the accurate end when agreement sinks below the floor.

Two damping mechanisms keep the loop from oscillating on noise:

* **hysteresis** — a move needs ``hysteresis`` *consecutive* violating
  decisions, so a single bad window never reconfigures a tenant;
* **cooldown** — after a move, decisions pause for ``cooldown_ticks``
  and both observation windows are cleared, because samples gathered
  under the old operating point say nothing about the new one.

Accuracy violations outrank latency violations: a tenant that is both
slow and wrong first steps back toward the accurate end — the SLO
contract treats agreement as a floor, latency as a target.

The controller is deterministic: decisions depend only on the observed
sample streams, so virtual-time benches replay identical trajectories.
A tenant constructed without a controller never touches this module —
the fp64 no-op discipline is preserved by absence, not by a flag.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperatingPoint:
    """One runnable configuration along the accuracy/latency frontier."""

    alpha_inter: float = 0.0
    alpha_intra: float = 0.0
    precision: str = "fp64"

    def as_dict(self) -> dict:
        """Flat form for run-record configs and bench reports."""
        return {
            "alpha_inter": self.alpha_inter,
            "alpha_intra": self.alpha_intra,
            "precision": self.precision,
        }

    @classmethod
    def from_frontier(cls, frontier: Sequence) -> list["OperatingPoint"]:
        """Operating points of an :func:`~repro.core.tuner.export_frontier` list."""
        return [
            cls(
                alpha_inter=point.alpha_inter,
                alpha_intra=point.alpha_intra,
                precision=point.precision,
            )
            for point in frontier
        ]


@dataclass(frozen=True)
class TenantSLO:
    """The per-tenant service contract the controller holds.

    Attributes:
        p99_latency_s: Tail-latency target over the controller's rolling
            window of completed-request latencies.
        min_agreement: Floor on sampled shadow-execution agreement (the
            paper's Δ-accuracy vs the exact fp64 oracle).
    """

    p99_latency_s: float
    min_agreement: float = 0.98

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0:
            raise ConfigurationError(
                f"p99_latency_s must be positive, got {self.p99_latency_s}"
            )
        if not 0.0 <= self.min_agreement <= 1.0:
            raise ConfigurationError(
                f"min_agreement must be in [0, 1], got {self.min_agreement}"
            )


@dataclass(frozen=True)
class ControllerMove:
    """One recorded frontier step."""

    tick: int
    from_index: int
    to_index: int
    reason: str  # "latency" or "agreement"


class SLOController:
    """Hysteresis step controller over an accurate→fast frontier.

    Args:
        points: Operating points ordered most-accurate first (index 0)
            to fastest last — the order :func:`~repro.core.tuner.
            export_frontier` produces.
        slo: The contract to hold.
        start_index: Initial frontier position.
        latency_window: Completed-request latencies kept for the p99
            estimate; decisions need at least ``min_latency_samples``.
        agreement_window: Shadow agreement samples kept; one suffices
            for a decision (shadow sampling is already sparse).
        hysteresis: Consecutive violating decisions required to move.
        cooldown_ticks: Decision ticks skipped after a move.
        min_latency_samples: Latency samples required before the p99
            estimate is trusted.
    """

    def __init__(
        self,
        points: Sequence[OperatingPoint],
        slo: TenantSLO,
        start_index: int = 0,
        latency_window: int = 64,
        agreement_window: int = 4,
        hysteresis: int = 2,
        cooldown_ticks: int = 4,
        min_latency_samples: int = 8,
    ) -> None:
        if not points:
            raise ConfigurationError("controller needs at least one operating point")
        if not 0 <= start_index < len(points):
            raise ConfigurationError(
                f"start_index {start_index} out of range for {len(points)} points"
            )
        if hysteresis < 1 or cooldown_ticks < 0 or min_latency_samples < 1:
            raise ConfigurationError(
                "need hysteresis >= 1, cooldown_ticks >= 0, min_latency_samples >= 1"
            )
        self.points = list(points)
        self.slo = slo
        self.index = start_index
        self.hysteresis = hysteresis
        self.cooldown_ticks = cooldown_ticks
        self.min_latency_samples = min_latency_samples
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._agreements: deque[float] = deque(maxlen=agreement_window)
        self._violations = 0  # consecutive violating decisions
        self._violation_reason = ""
        self._cooldown = 0
        self._ticks = 0
        self.moves: list[ControllerMove] = []

    # ------------------------------------------------------------ observing

    @property
    def point(self) -> OperatingPoint:
        """The operating point the tenant should currently run."""
        return self.points[self.index]

    def observe_latency(self, seconds: float) -> None:
        """Feed one completed request's admission-to-completion latency."""
        self._latencies.append(float(seconds))

    def observe_agreement(self, fraction: float) -> None:
        """Feed one sampled shadow-execution agreement measurement."""
        self._agreements.append(float(fraction))

    def p99(self) -> float | None:
        """Current windowed p99 latency, or ``None`` below the sample floor."""
        if len(self._latencies) < self.min_latency_samples:
            return None
        return float(np.percentile(np.asarray(self._latencies), 99.0))

    def agreement(self) -> float | None:
        """Mean of the agreement window, or ``None`` without samples."""
        if not self._agreements:
            return None
        return float(np.mean(self._agreements))

    # ------------------------------------------------------------- deciding

    def _wanted_step(self) -> tuple[int, str]:
        """Direction the current windows ask for: (-1/0/+1, reason)."""
        agreement = self.agreement()
        if agreement is not None and agreement < self.slo.min_agreement:
            # Accuracy outranks latency: never trade further accuracy away
            # while the agreement floor is already broken.
            return (-1, "agreement") if self.index > 0 else (0, "")
        p99 = self.p99()
        if p99 is not None and p99 > self.slo.p99_latency_s:
            return (1, "latency") if self.index < len(self.points) - 1 else (0, "")
        return (0, "")

    def decide(self) -> OperatingPoint | None:
        """One decision tick; returns the new point when a move fires.

        Call once per scheduler tick that served this tenant. Honors the
        cooldown, requires ``hysteresis`` consecutive ticks agreeing on
        the same direction, and clears both observation windows on a
        move (stale samples describe the old configuration).
        """
        self._ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        step, reason = self._wanted_step()
        if step == 0:
            self._violations = 0
            self._violation_reason = ""
            return None
        if reason != self._violation_reason:
            self._violations = 0
            self._violation_reason = reason
        self._violations += 1
        if self._violations < self.hysteresis:
            return None
        new_index = self.index + step
        self.moves.append(
            ControllerMove(
                tick=self._ticks,
                from_index=self.index,
                to_index=new_index,
                reason=reason,
            )
        )
        self.index = new_index
        self._violations = 0
        self._violation_reason = ""
        self._cooldown = self.cooldown_ticks
        self._latencies.clear()
        self._agreements.clear()
        return self.point

    def as_dict(self) -> dict:
        """Status summary for bench reports and the serve-zoo CLI."""
        return {
            "index": self.index,
            "point": self.point.as_dict(),
            "p99_s": self.p99(),
            "agreement": self.agreement(),
            "moves": [
                {
                    "tick": m.tick,
                    "from_index": m.from_index,
                    "to_index": m.to_index,
                    "reason": m.reason,
                }
                for m in self.moves
            ],
        }
