"""Streaming serving: continuous batching over resident per-session state.

The sharded runtime (:mod:`repro.runtime.pool`) serves *whole sequences*:
a request carries all of its tokens, and batching happens once, at
dispatch. Interactive workloads do not look like that — a session's
tokens arrive one step or a few steps at a time, and the latency budget
covers each arrival, not the sequence. This module adds the online shape:

* a :class:`SessionTable` keeps each live session's per-layer ``(h, c)``
  recurrent state resident between arrivals (plus the trailing top-layer
  window a pooled head reads), with LRU capacity eviction and TTL
  idle-sweep;
* a bounded admission queue sheds overload deterministically with
  :class:`~repro.errors.BackpressureError` — the same contract as the
  sharded runtime's dispatch queue;
* a tick-driven **continuous batcher**: each :meth:`StreamingServer.tick`
  scans the admission queue FIFO, gathers up to ``max_batch`` compatible
  chunks — same server means same weights fingerprint / precision /
  schedule key already, so within a tick compatibility reduces to equal
  chunk length, at most one chunk per session — stacks the owning
  sessions' states into one ``(layers, B, H)`` block, runs one
  :meth:`~repro.core.executor.LSTMExecutor.run_stream` step through the
  compiled :class:`~repro.core.program.ProgramCache` path, and scatters
  the updated states back.

**Bit-identity contract.** At fp64, a session served in any chunking
under any batch composition produces logits bit-identical to running its
full sequence through the frozen
:class:`~repro.core.reference.ReferenceExecutor`. Three properties carry
it: recurrent products are per-row GEMVs (batch-composition-invariant),
input projections and per-timestep heads are per-row lifts
(sequence-length/chunking-invariant; see
:func:`repro.core.executor._row_proj`), and the pooled head reads a
contiguous trailing window whose per-column mean reduction is
shape-independent. Structural modes (INTER / COMBINED) plan from
full-sequence relevance, which chunked arrivals never have, so the server
rejects them at construction.

Observability: every tick emits one ``repro.obs/run/v1``
:class:`~repro.obs.record.RunRecord` (batch = sessions in the tick,
seq_length = the tick's chunk length) with a ``queue_wait_s`` timing key
attributing how long the tick's chunks sat queued;
:meth:`StreamingServer.merged_record` folds a serving window's ticks into
one schema-identical record via :func:`repro.obs.merge.merge_run_records`
(``allow_varying_seq_length`` — ticks legitimately differ in chunk
length).

The synchronous engine is deterministic under an injected clock — the
tests and the open-loop bench drive it on virtual time.
:class:`StreamingFrontDoor` is the asyncio face: ``await
door.request(session_id, tokens)`` admits a chunk and resolves when the
tick loop completes it.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.executor import ExecutionConfig, LSTMExecutor
from repro.core.program import ProgramCache
from repro.errors import BackpressureError, ConfigurationError, ShapeError
from repro.nn.network import LSTMNetwork
from repro.obs.merge import merge_run_records
from repro.obs.record import RunRecord
from repro.obs.recorder import Recorder


@dataclass
class StreamResult:
    """Resolved outcome of one :meth:`StreamingServer.submit`.

    Attributes:
        session_id: The owning session.
        logits: Per-timestep heads: ``(n_tokens, C)`` — one row per
            submitted token. Pooled heads: ``(C,)`` — the readout after
            the submission's last token (pooled over the trailing
            ``head_pool`` top-layer states the session has seen so far).
        n_tokens: Tokens covered by the submission.
        submitted_at: Clock time of admission.
        completed_at: Clock time of the tick that finished the last chunk.
    """

    session_id: str
    logits: np.ndarray
    n_tokens: int
    submitted_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        """Admission-to-completion latency."""
        return self.completed_at - self.submitted_at


class StreamTicket:
    """Pending handle for one submission (possibly several chunks)."""

    __slots__ = (
        "session_id",
        "submitted_at",
        "result",
        "_parts",
        "_remaining",
        "_n_tokens",
        "_callback",
    )

    def __init__(
        self, session_id: str, submitted_at: float, n_chunks: int, n_tokens: int
    ) -> None:
        self.session_id = session_id
        self.submitted_at = submitted_at
        self.result: StreamResult | None = None
        self._parts: list[tuple[int, np.ndarray]] = []
        self._remaining = n_chunks
        self._n_tokens = n_tokens
        self._callback: Callable[[StreamResult], None] | None = None

    @property
    def done(self) -> bool:
        """Whether every chunk of the submission has been served."""
        return self.result is not None

    def _complete_chunk(
        self, logits: np.ndarray, per_timestep: bool, now: float, chunk_index: int
    ) -> StreamResult | None:
        self._parts.append((chunk_index, logits))
        self._remaining -= 1
        if self._remaining > 0:
            return None
        # Merge in submission order by explicit chunk index: the pooled
        # head must read the *last* chunk's logits and per-timestep heads
        # must concatenate chronologically, even if a scheduler ever
        # completes chunks out of order.
        parts = [part for _, part in sorted(self._parts, key=lambda item: item[0])]
        merged = np.concatenate(parts, axis=0) if per_timestep else parts[-1]
        self.result = StreamResult(
            session_id=self.session_id,
            logits=merged,
            n_tokens=self._n_tokens,
            submitted_at=self.submitted_at,
            completed_at=now,
        )
        if self._callback is not None:
            self._callback(self.result)
        return self.result


@dataclass
class _Chunk:
    """One queued unit of work: a contiguous token slice of one session."""

    session_id: str
    tokens: np.ndarray  # 1-D, 1 <= len <= chunk_len
    enqueued_at: float
    ticket: StreamTicket
    chunk_index: int  # position within the owning submission


class _Session:
    """Resident state of one live session."""

    __slots__ = ("h", "c", "ring", "ring_count", "steps", "last_active", "pending")

    def __init__(self, num_layers: int, hidden: int, head_pool: int) -> None:
        self.h = np.zeros((num_layers, hidden))
        self.c = np.zeros((num_layers, hidden))
        #: Chronological trailing window of top-layer hidden states, for
        #: pooled readout; only the last ``ring_count`` rows are live.
        self.ring = np.zeros((head_pool, hidden))
        self.ring_count = 0
        self.steps = 0
        self.last_active = 0.0
        self.pending = 0  # queued chunks not yet served


@dataclass
class TickReport:
    """Outcome of one batcher tick."""

    batch: int
    chunk_len: int
    exec_wall_s: float = 0.0
    queue_wait_s: float = 0.0
    completed: list[StreamResult] = field(default_factory=list)
    ttl_evictions: int = 0


@dataclass
class StreamingStats:
    """Aggregate serving-window counters."""

    ticks: int = 0
    chunks_served: int = 0
    tokens_served: int = 0
    occupancy_sum: int = 0
    max_occupancy: int = 0
    shed_chunks: int = 0
    lru_evictions: int = 0
    ttl_evictions: int = 0

    def occupancy_mean(self, max_batch: int) -> float:
        """Mean tick batch occupancy as a fraction of ``max_batch``."""
        if self.ticks == 0:
            return 0.0
        return self.occupancy_sum / (self.ticks * max_batch)

    def as_dict(self, max_batch: int) -> dict[str, float]:
        """Flat dict form for bench reports."""
        return {
            "ticks": self.ticks,
            "chunks_served": self.chunks_served,
            "tokens_served": self.tokens_served,
            "occupancy_mean": self.occupancy_mean(max_batch),
            "max_occupancy": self.max_occupancy,
            "shed_chunks": self.shed_chunks,
            "lru_evictions": self.lru_evictions,
            "ttl_evictions": self.ttl_evictions,
        }


class SessionTable:
    """LRU/TTL table of resident sessions.

    Capacity eviction only considers *idle* sessions (no queued chunks) —
    a session with in-flight work is pinned, and a full table of pinned
    sessions sheds the new admission with
    :class:`~repro.errors.BackpressureError` instead of corrupting live
    state. An evicted session that returns is re-admitted fresh (state
    zeroed), exactly like a new session.
    """

    def __init__(
        self,
        num_layers: int,
        hidden: int,
        head_pool: int,
        max_sessions: int,
        ttl_s: float,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError(f"max_sessions must be >= 1, got {max_sessions}")
        if ttl_s <= 0:
            raise ConfigurationError(f"ttl_s must be positive, got {ttl_s}")
        self._num_layers = num_layers
        self._hidden = hidden
        self._head_pool = head_pool
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        self.lru_evictions = 0
        self.ttl_evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def get_or_admit(self, session_id: str, now: float) -> _Session:
        """Return the live session, admitting (and LRU-evicting) as needed."""
        session = self._sessions.get(session_id)
        if session is not None:
            self._sessions.move_to_end(session_id)
            session.last_active = now
            return session
        if len(self._sessions) >= self.max_sessions:
            self._evict_lru()
        session = _Session(self._num_layers, self._hidden, self._head_pool)
        session.last_active = now
        self._sessions[session_id] = session
        return session

    def _evict_lru(self) -> None:
        for sid, session in self._sessions.items():  # oldest first
            if session.pending == 0:
                del self._sessions[sid]
                self.lru_evictions += 1
                return
        raise BackpressureError(
            f"session table full ({self.max_sessions} sessions, all with "
            "in-flight work); retry after the queue drains"
        )

    def sweep_ttl(self, now: float) -> int:
        """Evict idle sessions not touched within ``ttl_s``; returns count."""
        expired = [
            sid
            for sid, session in self._sessions.items()
            if session.pending == 0 and now - session.last_active > self.ttl_s
        ]
        for sid in expired:
            del self._sessions[sid]
        self.ttl_evictions += len(expired)
        return len(expired)

    def touch(self, session_id: str, now: float) -> None:
        """Mark a session recently used (after a tick served it)."""
        session = self._sessions.get(session_id)
        if session is not None:
            self._sessions.move_to_end(session_id)
            session.last_active = now


class StreamingServer:
    """Tick-driven continuous batcher over one network + one scheme.

    Synchronous, deterministic engine: :meth:`submit` admits work,
    :meth:`tick` serves one batched step. All time enters through the
    ``now`` arguments (or the injected ``clock``), so tests and the
    open-loop bench replay identical histories. The asyncio face is
    :class:`StreamingFrontDoor`.

    Args:
        network: Model to serve.
        config: Execution scheme. Must not activate the inter level —
            INTER / COMBINED plan from full-sequence relevance, which a
            streamed session never has (raises
            :class:`~repro.errors.ConfigurationError`).
        max_batch: Tick batch capacity (sessions per step).
        chunk_len: Maximum tokens served per session per tick; longer
            submissions split into consecutive chunks.
        queue_limit: Bound on queued chunks; admission beyond it sheds
            with :class:`~repro.errors.BackpressureError`.
        max_sessions: Session-table capacity (LRU eviction of idle
            sessions beyond it).
        session_ttl_s: Idle age beyond which the per-tick sweep evicts a
            session.
        clock: Time source used when a ``now`` argument is omitted.
        recorder: Optional :class:`~repro.obs.recorder.Recorder`; when
            enabled, every tick appends one run record.
        program_cache: Optional shared compiled-program cache.
    """

    def __init__(
        self,
        network: LSTMNetwork,
        config: ExecutionConfig,
        max_batch: int = 8,
        chunk_len: int = 4,
        queue_limit: int = 64,
        max_sessions: int = 256,
        session_ttl_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        recorder: Recorder | None = None,
        program_cache: ProgramCache | None = None,
    ) -> None:
        if config.inter_active:
            raise ConfigurationError(
                f"streaming does not support mode {config.mode.value!r}: the "
                "inter level plans from full-sequence relevance, which "
                "chunked arrivals never have"
            )
        if config.compact_drs_gemm:
            raise ConfigurationError(
                "streaming requires the compiled stepwise path; "
                "compact_drs_gemm forces the interpreted loop"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if chunk_len < 1:
            raise ConfigurationError(f"chunk_len must be >= 1, got {chunk_len}")
        if queue_limit < 1:
            raise ConfigurationError(f"queue_limit must be >= 1, got {queue_limit}")
        self.network = network
        self.config = config
        self.max_batch = max_batch
        self.chunk_len = chunk_len
        self.queue_limit = queue_limit
        self.clock = clock
        self.recorder = recorder
        self.executor = LSTMExecutor(
            network,
            config,
            compile=True,
            program_cache=program_cache,
        )
        self.sessions = SessionTable(
            num_layers=network.num_layers,
            hidden=network.config.hidden_size,
            head_pool=network.head_pool,
            max_sessions=max_sessions,
            ttl_s=session_ttl_s,
        )
        self._queue: "deque[_Chunk]" = deque()
        self.stats = StreamingStats()
        self._tick_records: list[RunRecord] = []
        self._record_config = {
            "backend": self.executor.backend,
            "alpha_inter": config.alpha_inter,
            "alpha_intra": config.alpha_intra,
            "mts": config.mts,
            "drs_style": config.drs_style,
            "precision": config.precision.tag,
            "threads": config.threads,
            "stream_chunk_len": chunk_len,
            "stream_max_batch": max_batch,
        }
        self._stream_key: tuple | None = None

    # --------------------------------------------------------------- compat

    @property
    def stream_key(self) -> tuple:
        """Compatibility key of this server's batches.

        Sessions are batchable when their (weights fingerprint, precision,
        schedule key) agree — one server serves one network under one
        scheme, so all of its sessions share this key, and within a tick
        compatibility reduces to equal chunk length. Non-inter schemes'
        scheduler signature is purely length-based
        (:meth:`repro.runtime.scheduler.FleetScheduler.signature`), which
        is exactly the per-tick chunk-length grouping below.
        """
        if self._stream_key is None:
            weights_fp = tuple(
                self.executor._weights_fingerprint(i)
                for i in range(self.network.num_layers)
            )
            self._stream_key = (
                weights_fp,
                self.config.precision.tag,
                self.config.mode.value,
                self.config.alpha_intra,
            )
        return self._stream_key

    # ------------------------------------------------------------ admission

    def submit(
        self, session_id: str, tokens: np.ndarray, now: float | None = None
    ) -> StreamTicket:
        """Admit one submission (a single step or a short run of tokens).

        Splits the tokens into chunks of at most ``chunk_len`` and queues
        them FIFO; the ticket resolves when the last chunk is served.

        Raises:
            BackpressureError: The admission queue cannot hold the
                submission's chunks, or the session table is full of
                busy sessions. Nothing is partially enqueued — shedding
                is all-or-nothing per submission, so replaying the same
                submit/tick history sheds the same requests.
        """
        if now is None:
            now = self.clock()
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or tokens.shape[0] == 0:
            raise ShapeError(
                f"tokens must be a non-empty 1-D array, got shape {tokens.shape}"
            )
        n_chunks = -(-tokens.shape[0] // self.chunk_len)
        if len(self._queue) + n_chunks > self.queue_limit:
            self.stats.shed_chunks += n_chunks
            raise BackpressureError(
                f"admission queue full ({len(self._queue)}/{self.queue_limit} "
                f"chunks queued, submission needs {n_chunks}); retry later"
            )
        try:
            session = self.sessions.get_or_admit(session_id, now)
        except BackpressureError:
            # A session-table shed drops the same n_chunks as a queue-full
            # shed; count it identically so stats.shed_chunks covers every
            # shed path.
            self.stats.shed_chunks += n_chunks
            raise
        ticket = StreamTicket(session_id, now, n_chunks, int(tokens.shape[0]))
        for index, start in enumerate(range(0, tokens.shape[0], self.chunk_len)):
            chunk = _Chunk(
                session_id=session_id,
                tokens=tokens[start : start + self.chunk_len],
                enqueued_at=now,
                ticket=ticket,
                chunk_index=index,
            )
            self._queue.append(chunk)
        session.pending += n_chunks
        return ticket

    @property
    def queue_depth(self) -> int:
        """Chunks currently queued."""
        return len(self._queue)

    # ----------------------------------------------------------------- tick

    def tick(self, now: float | None = None) -> TickReport:
        """Serve one continuous-batching step.

        FIFO-scans the queue for up to ``max_batch`` chunks of equal
        length (the head chunk sets the length; at most one chunk per
        session, and a session whose head chunk does not fit blocks its
        later chunks to preserve order), stacks the owning sessions'
        resident states, runs one compiled streamed step, scatters state
        back, and resolves finished tickets. Also TTL-sweeps the session
        table. An empty queue still sweeps and returns a zero-batch
        report.
        """
        if now is None:
            now = self.clock()
        ttl_evicted = self.sessions.sweep_ttl(now)
        self.stats.ttl_evictions = self.sessions.ttl_evictions
        if not self._queue:
            return TickReport(batch=0, chunk_len=0, ttl_evictions=ttl_evicted)

        picked: list[_Chunk] = []
        seen: set[str] = set()
        length = int(self._queue[0].tokens.shape[0])
        for chunk in self._queue:
            if chunk.session_id in seen:
                continue
            seen.add(chunk.session_id)
            if int(chunk.tokens.shape[0]) == length:
                picked.append(chunk)
                if len(picked) == self.max_batch:
                    break
        picked_ids = set(map(id, picked))
        self._queue = deque(c for c in self._queue if id(c) not in picked_ids)

        batch = len(picked)
        tokens = np.stack([c.tokens for c in picked])
        h = np.empty((self.network.num_layers, batch, self.network.config.hidden_size))
        c_state = np.empty_like(h)
        members = []
        for j, chunk in enumerate(picked):
            session = self.sessions._sessions[chunk.session_id]
            members.append(session)
            h[:, j] = session.h
            c_state[:, j] = session.c

        record = self.recorder is not None and self.recorder.enabled
        program_before = (
            self.executor.program_cache.stats.as_dict() if record else None
        )
        exec_start = time.perf_counter()
        top = self.executor.run_stream(tokens, h, c_state)  # (B, L, H)
        exec_wall = time.perf_counter() - exec_start

        per_ts = self.network.per_timestep_head
        if per_ts:
            # Same per-row head lift as the batched executor: streamed
            # logits bits must not depend on L or B.
            logits_all = self.network.head_logits(top[..., None, :])[..., 0, :]
        report = TickReport(
            batch=batch, chunk_len=length, exec_wall_s=exec_wall,
            ttl_evictions=ttl_evicted,
        )
        for j, chunk in enumerate(picked):
            session = members[j]
            session.h[:] = h[:, j]
            session.c[:] = c_state[:, j]
            self._update_ring(session, top[j])
            session.steps += length
            session.pending -= 1
            self.sessions.touch(chunk.session_id, now)
            report.queue_wait_s += now - chunk.enqueued_at
            if per_ts:
                logits = logits_all[j]
            else:
                logits = self._pooled_logits(session)
            result = chunk.ticket._complete_chunk(logits, per_ts, now, chunk.chunk_index)
            if result is not None:
                report.completed.append(result)

        self.stats.ticks += 1
        self.stats.chunks_served += batch
        self.stats.tokens_served += batch * length
        self.stats.occupancy_sum += batch
        self.stats.max_occupancy = max(self.stats.max_occupancy, batch)
        if record:
            self._record_tick(report, program_before)
        return report

    def drain(self, now: float | None = None) -> list[TickReport]:
        """Tick until the queue is empty; returns the tick reports."""
        reports = []
        while self._queue:
            reports.append(self.tick(now=now))
        return reports

    def _update_ring(self, session: _Session, top_chunk: np.ndarray) -> None:
        """Append a chunk's top-layer states to the pooled-readout window."""
        pool = session.ring.shape[0]
        length = top_chunk.shape[0]
        if length >= pool:
            session.ring[:] = top_chunk[-pool:]
        else:
            session.ring[:-length] = session.ring[length:]
            session.ring[-length:] = top_chunk
        session.ring_count = min(session.ring_count + length, pool)

    def _pooled_logits(self, session: _Session) -> np.ndarray:
        """Sequence-final readout from the resident trailing window.

        The window slice is contiguous and chronological, so
        ``pool_top``'s per-column mean reduces the same values in the
        same order as over a full ``(B, T, H)`` run — identical bits —
        and the head takes the usual per-row GEMV lift.
        """
        window = session.ring[session.ring.shape[0] - session.ring_count :]
        pooled = self.network.pool_top(window[None])  # (1, H)
        return self.network.head_logits(pooled[:, None, :])[0, 0]

    # -------------------------------------------------------------- records

    def _record_tick(self, report: TickReport, program_before: dict | None) -> None:
        builder = self.recorder.start_run(
            label="stream-tick",
            mode=self.config.mode.value,
            spec=self.config.spec.name,
            batch=report.batch,
            seq_length=report.chunk_len,
            config=self._record_config,
        )
        if builder is None:
            return
        if program_before is not None:
            builder.observe_program_cache_delta(
                program_before, self.executor.program_cache.stats.as_dict()
            )
        builder.set_timing(
            wall_s=report.exec_wall_s,
            exec_wall_s=report.exec_wall_s,
            queue_wait_s=report.queue_wait_s,
            ticks=1.0,
        )
        self._tick_records.append(builder.finish())

    def merged_record(self, label: str = "stream") -> RunRecord | None:
        """One serving-window record folding every tick recorded so far.

        Schema-identical to a single run record (``repro.obs/run/v1``):
        ``batch`` totals the session-chunks served, ``seq_length`` is the
        largest chunk length, timing keys — including ``queue_wait_s``
        and the per-tick ``ticks`` counter — sum across ticks. Returns
        ``None`` when no tick was recorded.
        """
        if not self._tick_records:
            return None
        return merge_run_records(
            self._tick_records,
            label=label,
            allow_varying_seq_length=True,
        )


class StreamingFrontDoor:
    """Asyncio front door over a :class:`StreamingServer`.

    Runs the tick loop as a background task on the event loop and exposes
    ``await request(...)``: admission errors surface immediately
    (:class:`~repro.errors.BackpressureError` propagates to the caller),
    completions resolve when the tick that serves the last chunk runs.

    Usage::

        async with StreamingFrontDoor(server, tick_interval_s=0.002) as door:
            result = await door.request("session-a", tokens)
    """

    def __init__(self, server: StreamingServer, tick_interval_s: float = 0.002) -> None:
        if tick_interval_s <= 0:
            raise ConfigurationError(
                f"tick_interval_s must be positive, got {tick_interval_s}"
            )
        self.server = server
        self.tick_interval_s = tick_interval_s
        self._task: asyncio.Task | None = None
        self._stopping = False

    async def __aenter__(self) -> "StreamingFrontDoor":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def start(self) -> None:
        """Start the background tick loop (idempotent)."""
        if self._task is None or self._task.done():
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(self._tick_loop())

    async def stop(self) -> None:
        """Drain the queue, then stop the tick loop."""
        self._stopping = True
        if self._task is not None:
            await self._task
            self._task = None

    async def _tick_loop(self) -> None:
        server = self.server
        while True:
            server.tick()
            if self._stopping and server.queue_depth == 0:
                return
            await asyncio.sleep(self.tick_interval_s)

    async def request(self, session_id: str, tokens: np.ndarray) -> StreamResult:
        """Admit a chunk for ``session_id`` and await its result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future[StreamResult] = loop.create_future()
        ticket = self.server.submit(session_id, tokens)

        def resolve(result: StreamResult) -> None:
            if not future.done():
                future.set_result(result)

        if ticket.done:  # zero-latency path cannot happen today, but be safe
            return ticket.result
        ticket._callback = resolve
        return await future
