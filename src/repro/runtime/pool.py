"""The serving runtime: a sharded multi-worker inference pool.

:class:`InferenceRuntime` is the front door of :mod:`repro.runtime`. It
publishes the network's weights once into a shared-memory arena
(:mod:`repro.runtime.arena`), spawns ``workers`` processes that attach
it, and drives them through a bounded task queue. Incoming batches are
grouped by the fleet scheduler (:mod:`repro.runtime.scheduler`) so that
same-plan sequences execute together, then dispatched shard by shard
with backpressure: at most ``queue_depth`` shards are in flight, a
blocking submit waits, a non-blocking one raises
:class:`~repro.errors.BackpressureError`.

Numerics contract (property-tested in ``tests/test_runtime.py``): each
dispatched group is executed bit-identically to calling
:meth:`~repro.core.executor.LSTMExecutor.run_batch` on that group in the
parent — the shared-memory views, the process boundary, and the worker
count change no bits. ``workers=0`` degenerates to exactly that
synchronous call (one executor in-process per group), so the fallback is
bit-identical by construction, not by luck. Grouping itself is a pure
function of ``(network, config, tokens)`` — never of worker count — so a
fleet's outputs are reproducible at any parallelism. Every mode is also
bit-stable under *any* grouping: the stepwise recurrences run as stacked
per-row GEMVs (:func:`repro.core.executor._row_gemv`), so each
sequence's bits never depend on its shard-mates, and combined mode's
tissue walk dispatches per-sequence slices. (The seed's batched GEMMs
did not have this property for the stepwise modes.)
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time

import numpy as np

from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.plan import PlanCache
from repro.core.program import ProgramCache
from repro.errors import BackpressureError, RuntimeStateError, ShapeError
from repro.nn.network import LSTMNetwork
from repro.nn.quantize import Precision
from repro.obs import Recorder, merge_run_records
from repro.obs.record import RunRecord
from repro.runtime import worker as worker_mod
from repro.runtime.arena import WeightArena
from repro.runtime.results import FleetResult, ShardResult
from repro.runtime.scheduler import DispatchGroup, FleetScheduler


class InferenceRuntime:
    """Parallel sharded inference over one network and one scheme.

    Args:
        network: The network to serve.
        config: Execution scheme (one per runtime, like one executor).
        workers: Worker process count; ``0`` serves synchronously in the
            parent (no arena, no processes) with identical results.
        max_batch: Largest dispatched shard (scheduler chunk size).
        queue_depth: Bound on in-flight shards (backpressure window).
        dwell_s: Modeled per-sequence device dwell in the workers (see
            :mod:`repro.runtime.worker`); ``0`` for pure host compute.
        recorder: Optional recorder; when enabled, every ``run_batch``
            appends one *merged* fleet record (schema ``repro.obs/run/v1``).
        mp_context: ``multiprocessing`` start method (``spawn`` default:
            no inherited BLAS/GC state, same behavior on every platform).

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        network: LSTMNetwork,
        config: ExecutionConfig,
        workers: int = 0,
        max_batch: int = 8,
        queue_depth: int = 16,
        dwell_s: float = 0.0,
        recorder: Recorder | None = None,
        mp_context: str = "spawn",
    ) -> None:
        if workers < 0:
            raise ShapeError(f"workers must be >= 0, got {workers}")
        if queue_depth < 1:
            raise ShapeError(f"queue_depth must be >= 1, got {queue_depth}")
        self.network = network
        self.config = config
        self.workers = workers
        self.max_batch = max_batch
        self.queue_depth = queue_depth
        self.dwell_s = dwell_s
        self.recorder = recorder
        self.plan_cache = PlanCache()
        # Shared by every workers=0 executor so scheduler groups with one
        # schedule_key recompile nothing across run_batch calls (the
        # spawned workers hold their own long-lived caches instead).
        self.program_cache = ProgramCache()
        self.scheduler = FleetScheduler(
            network, config, max_batch=max_batch, plan_cache=self.plan_cache
        )
        self._mp_context = mp_context
        #: Liveness bounds (seconds); a stuck pool raises instead of hanging.
        self.startup_timeout_s = 120.0
        self.result_timeout_s = 300.0
        self._arena: WeightArena | None = None
        self._processes: list[multiprocessing.Process] = []
        self._task_queue = None
        self._result_queue = None
        self._started = False
        self._closed = False
        self._next_shard_id = 0
        self._in_flight = 0
        self._pending: list[ShardResult] = []

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "InferenceRuntime":
        """Publish the arena and spawn the workers (no-op at ``workers=0``)."""
        if self._started:
            return self
        if self._closed:
            raise RuntimeStateError("runtime is closed")
        self._started = True
        if self.workers == 0:
            return self
        ctx = multiprocessing.get_context(self._mp_context)
        # Publish at the serving precision so the segment itself shrinks
        # with the policy (int8 pages are ~8x smaller) and workers rebuild
        # the published codes byte-for-byte. Zero pruning is the one
        # exception: pruning must happen *before* quantization, and it
        # needs the fp64 masters — workers prune and quantize themselves,
        # deterministically, from the shared fp64 bits.
        publish_precision = self.config.precision
        if self.config.mode is ExecutionMode.ZERO_PRUNE:
            publish_precision = Precision()
        self._arena = WeightArena.publish(self.network, precision=publish_precision)
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        record = self.recorder is not None and self.recorder.enabled
        for worker_id in range(self.workers):
            process = ctx.Process(
                target=worker_mod.worker_main,
                args=(
                    worker_id,
                    self._arena.manifest,
                    self.config,
                    self._task_queue,
                    self._result_queue,
                    self.dwell_s,
                    record,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        ready = 0
        while ready < self.workers:
            try:
                tag, _, payload = self._result_queue.get(timeout=self.startup_timeout_s)
            except queue_mod.Empty:
                self.close()
                raise RuntimeStateError(
                    f"worker pool failed to come up within {self.startup_timeout_s}s"
                ) from None
            if tag == worker_mod.ERROR:
                self.close()
                raise RuntimeStateError(f"worker failed to start:\n{payload}")
            ready += 1
        return self

    def close(self) -> None:
        """Stop the workers and tear the arena down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._task_queue is not None:
            for _ in self._processes:
                self._task_queue.put(None)
        for process in self._processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        self._processes.clear()
        for queue in (self._task_queue, self._result_queue):
            if queue is not None:
                queue.close()
                queue.join_thread()
        self._task_queue = self._result_queue = None
        if self._arena is not None:
            self._arena.close()
            self._arena.unlink()
            self._arena = None

    def __enter__(self) -> "InferenceRuntime":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- serving

    def submit(self, group: DispatchGroup, block: bool = True) -> int:
        """Dispatch one group; returns its shard ticket.

        Backpressure: with ``queue_depth`` shards in flight, ``block=True``
        waits for a result slot, ``block=False`` raises
        :class:`~repro.errors.BackpressureError`. (In-flight means
        dispatched and not yet collected — the parent-side definition, so
        the bound holds regardless of worker speed.)
        """
        self._require_serving()
        while self._in_flight >= self.queue_depth:
            if not block:
                raise BackpressureError(
                    f"request queue is full ({self._in_flight} shard(s) in "
                    f"flight, depth {self.queue_depth})"
                )
            self._pending.append(self._next_result())
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        if self.workers == 0:
            # Synchronous fallback: the "dispatch" completes inline, so the
            # queue can never fill and backpressure never engages.
            self._pending.append(self._run_sync(shard_id, group))
        else:
            self._in_flight += 1
            self._task_queue.put((shard_id, group.indices, group.tokens))
        return shard_id

    def collect(self, count: int) -> list[ShardResult]:
        """Wait for ``count`` shard results (buffered ones first)."""
        self._require_serving()
        results: list[ShardResult] = []
        while len(results) < count:
            if self._pending:
                results.append(self._pending.pop(0))
            else:
                results.append(self._next_result())
        return results

    def run_batch(self, tokens: np.ndarray) -> FleetResult:
        """Serve a whole ``(B, T)`` batch: group, dispatch, reassemble."""
        self._require_serving()
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"tokens must be (B, T), got shape {tokens.shape}")
        start = time.perf_counter()
        groups = self.scheduler.plan_dispatch(tokens)
        for group in groups:
            self.submit(group, block=True)
        shards = self.collect(len(groups))
        wall_s = time.perf_counter() - start
        return self._assemble(tokens, groups, shards, wall_s)

    # ------------------------------------------------------------ internals

    def _require_serving(self) -> None:
        if not self._started:
            raise RuntimeStateError("runtime not started (use start() or a with-block)")
        if self._closed:
            raise RuntimeStateError("runtime is closed")

    def _run_sync(self, shard_id: int, group: DispatchGroup) -> ShardResult:
        """The ``workers=0`` fallback: one in-process executor call."""
        recorder = None
        if self.recorder is not None and self.recorder.enabled:
            recorder = Recorder()
        executor = LSTMExecutor(
            self.network,
            self.config,
            plan_cache=self.plan_cache,
            recorder=recorder,
            program_cache=self.program_cache,
        )
        start = time.perf_counter()
        result = executor.run_batch(group.tokens)
        record = None
        if recorder is not None and recorder.records:
            record = recorder.records[-1]
            for seq, orig in zip(record.sequences, group.indices):
                seq.seq_index = int(orig)
            for event in record.kernels:
                event.seq_index = int(group.indices[event.seq_index])
        return ShardResult(
            shard_id=shard_id,
            worker_id=-1,
            indices=group.indices,
            logits=result.logits,
            plans=result.plans,
            record=record,
            wall_s=time.perf_counter() - start,
        )

    def _next_result(self) -> ShardResult:
        if self.workers == 0:
            raise RuntimeStateError("no shard in flight to collect")
        try:
            tag, worker_id, payload = self._result_queue.get(timeout=self.result_timeout_s)
        except queue_mod.Empty:
            self.close()
            raise RuntimeStateError(
                f"no shard result within {self.result_timeout_s}s "
                f"({self._in_flight} in flight)"
            ) from None
        if tag == worker_mod.ERROR:
            self.close()
            raise RuntimeStateError(f"worker {worker_id} died:\n{payload}")
        self._in_flight -= 1
        return payload

    def _assemble(
        self,
        tokens: np.ndarray,
        groups: list[DispatchGroup],
        shards: list[ShardResult],
        wall_s: float,
    ) -> FleetResult:
        batch = tokens.shape[0]
        shards = sorted(shards, key=lambda s: s.shard_id)
        first = shards[0].logits
        logits = np.empty((batch,) + first.shape[1:], dtype=first.dtype)
        plans = [None] * batch
        for shard in shards:
            for row, index in enumerate(shard.indices):
                logits[index] = shard.logits[row]
                plans[index] = shard.plans[row]
        record: RunRecord | None = None
        if self.recorder is not None and self.recorder.enabled:
            shard_records = [s.record for s in shards if s.record is not None]
            if shard_records:
                record = merge_run_records(shard_records, label="fleet")
                record.timing["fleet_wall_s"] = wall_s
                self.recorder.records.append(record)
        group_sizes: dict[str, int] = {}
        for group in groups:
            key = repr(group.signature)
            group_sizes[key] = group_sizes.get(key, 0) + len(group.indices)
        return FleetResult(
            logits=logits,
            plans=plans,
            record=record,
            wall_s=wall_s,
            num_sequences=batch,
            num_shards=len(shards),
            workers=self.workers,
            groups=group_sizes,
        )
