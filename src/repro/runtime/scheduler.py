"""Fleet-wide batch scheduler: group queued sequences by plan signature.

The batched executor already groups *within* one caller's batch: combined
mode executes same-plan sequences together so each tissue step is one
stacked matmul. The fleet scheduler applies the same idea *across*
requests: before dispatch, queued sequences are grouped by the structural
signature of their first layer — :func:`repro.core.tissue.schedule_key`
of the relevance → breakpoints → aligned-tissue pipeline — so that
same-plan sequences land in the same worker batch and the executor's
plan grouping fires at full strength fleet-wide.

The same ``schedule_key`` is the plan-signature component of the
combined-mode program-cache key (:meth:`repro.core.executor.LSTMExecutor.
_compiled_combined`): a worker's long-lived executor compiles one
:class:`~repro.core.program.CombinedGroupProgram` per scheduler group
shape and replays it for every subsequent shard of that group — grouping
here is what makes program reuse land fleet-wide.

The signature deliberately uses only **layer 0**: its relevance depends
on nothing but the embedded tokens and the layer weights, so it is
computable in the scheduling parent without running any recurrence. The
per-gate projections are taken exactly as the executor takes them
(per-row GEMV dispatch via :func:`repro.core.executor._row_proj`, so the
bits match the executor's at any length or batching), and the cache keys match
:meth:`repro.core.executor.LSTMExecutor._plan_inter`'s, so a shared
:class:`~repro.core.plan.PlanCache` means the relevance pass is paid
once between scheduling and (synchronous) execution.

Modes that never divide a layer (baseline / intra / zero-prune) carry no
structural plan to group by; their signature collapses to the sequence
length, which keeps dispatch batching purely size-based.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.breakpoints import divide_layer, find_breakpoints
from repro.core.executor import ExecutionConfig, _row_proj
from repro.core.plan import PlanCache, fingerprint_array, fingerprint_weights
from repro.core.relevance import (
    exact_relevance_values,
    recurrent_row_ranges,
    relevance_values,
)
from repro.core.tissue import align_tissues, schedule_key
from repro.errors import ShapeError
from repro.nn.lstm_cell import GATE_ORDER
from repro.nn.network import LSTMNetwork


@dataclass(frozen=True)
class DispatchGroup:
    """One dispatchable batch of same-signature sequences.

    Attributes:
        indices: Original positions of the member sequences (ascending).
        tokens: ``(k, T)`` token rows, ordered like ``indices``.
        signature: The grouping key (hashable; shared by all members).
    """

    indices: tuple[int, ...]
    tokens: np.ndarray
    signature: tuple


class FleetScheduler:
    """Groups token sequences into plan-aligned dispatch batches.

    Grouping is a pure function of ``(network, config, tokens)`` — it
    never depends on worker count or queue state — so a fleet run
    dispatches identical groups at any parallelism, which is what makes
    the runtime's bit-identity contract testable.
    """

    def __init__(
        self,
        network: LSTMNetwork,
        config: ExecutionConfig,
        max_batch: int = 8,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if max_batch < 1:
            raise ShapeError(f"max_batch must be >= 1, got {max_batch}")
        self.network = network
        self.config = config
        self.max_batch = max_batch
        self.plan_cache = plan_cache
        weights = network.layers[0].weights
        self._weights = weights
        self._row_ranges = recurrent_row_ranges(weights)
        self._weights_fp = fingerprint_weights(weights) if plan_cache is not None else None

    # ----------------------------------------------------------- signature

    def signature(self, tokens_row: np.ndarray) -> tuple:
        """Plan signature of one sequence (hashable)."""
        tokens_row = np.asarray(tokens_row)
        if tokens_row.ndim != 1:
            raise ShapeError(f"tokens_row must be 1-D, got shape {tokens_row.shape}")
        if not self.config.inter_active:
            return ("len", int(tokens_row.shape[0]))
        relevance = self._relevance(tokens_row)
        breaks = find_breakpoints(relevance, self.config.alpha_inter)
        sublayers = divide_layer(int(tokens_row.shape[0]), breaks)
        tissues = align_tissues(sublayers, self.config.mts)
        return ("plan", schedule_key(tissues))

    def _relevance(self, tokens_row: np.ndarray) -> np.ndarray:
        cfg = self.config
        xs = self.network.embed(tokens_row)  # (T, E)

        def compute() -> np.ndarray:
            proj = {g: _row_proj(xs, self._weights.gate_w(g).T) for g in GATE_ORDER}
            fn = exact_relevance_values if cfg.use_exact_relevance else relevance_values
            return fn(self._weights, proj, row_ranges=self._row_ranges)

        if self.plan_cache is None:
            return compute()
        key = ("rel", self._weights_fp, fingerprint_array(xs), cfg.use_exact_relevance)
        return self.plan_cache.relevance(key, compute)

    # ------------------------------------------------------------ grouping

    def plan_dispatch(self, tokens: np.ndarray) -> list[DispatchGroup]:
        """Group a ``(B, T)`` batch into dispatch batches of ``<= max_batch``.

        Sequences are bucketed by signature (first-seen signature order,
        member indices ascending), then each bucket is chunked. The
        output covers every input index exactly once.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"tokens must be (B, T), got shape {tokens.shape}")
        buckets: dict[tuple, list[int]] = {}
        for index in range(tokens.shape[0]):
            buckets.setdefault(self.signature(tokens[index]), []).append(index)
        groups: list[DispatchGroup] = []
        for signature, indices in buckets.items():
            for start in range(0, len(indices), self.max_batch):
                chunk = indices[start : start + self.max_batch]
                groups.append(
                    DispatchGroup(
                        indices=tuple(chunk),
                        tokens=tokens[chunk],
                        signature=signature,
                    )
                )
        return groups
