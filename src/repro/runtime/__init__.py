"""Parallel sharded serving runtime (``repro.runtime``).

The paper's memory-friendliness principle — load the recurrent weights
once, amortize them across every cell that needs them — applied at
process scale: an :class:`InferenceRuntime` publishes the network's
parameters once into a shared-memory :class:`WeightArena`, shards
incoming sequences across a worker pool that attaches those same pages,
and groups queued sequences fleet-wide by structural plan signature
(:class:`FleetScheduler`) before dispatch, so the batched executor's
combined-mode plan grouping fires across all in-flight requests instead
of within one caller's batch. A bounded request queue provides
backpressure; per-worker run records merge into a single fleet record
(:func:`repro.obs.merge.merge_run_records`); ``workers=0`` degenerates
to a bit-identical synchronous :class:`~repro.core.executor.LSTMExecutor`
call.

For interactive workloads, :mod:`repro.runtime.streaming` adds the
online shape: per-session resident ``(h, c)`` state, a tick-driven
continuous batcher over the compiled program path, LRU/TTL session
eviction, and an asyncio front door; :mod:`repro.runtime.loadgen`
generates the deterministic open-loop workloads (Poisson arrivals,
diurnal ramp, heavy-tailed session lengths) that measure it.

For consolidated fleets, :mod:`repro.runtime.tenancy` serves N tenants
over one deduplicated :class:`ArenaRegistry`, one cross-tenant
program/plan cache, and a QoS-weighted deficit round-robin scheduler;
:mod:`repro.runtime.controller` closes the per-tenant SLO loop over the
offline sweep frontier, with :mod:`repro.runtime.shadow` providing the
sampled exact-replay agreement signal.
"""

from repro.runtime.arena import (
    ArenaManifest,
    ArenaRegistry,
    ArenaRegistryStats,
    WeightArena,
    leaked_segments,
)
from repro.runtime.controller import (
    ControllerMove,
    OperatingPoint,
    SLOController,
    TenantSLO,
)
from repro.runtime.loadgen import (
    Arrival,
    LoadReport,
    LoadSpec,
    TenantArrival,
    generate_arrivals,
    generate_tenant_arrivals,
    run_open_loop,
)
from repro.runtime.pool import InferenceRuntime
from repro.runtime.results import FleetResult, ShardResult
from repro.runtime.scheduler import DispatchGroup, FleetScheduler
from repro.runtime.shadow import ShadowSampler
from repro.runtime.streaming import (
    SessionTable,
    StreamingFrontDoor,
    StreamingServer,
    StreamingStats,
    StreamResult,
    StreamTicket,
    TickReport,
)
from repro.runtime.tenancy import (
    TenantSpec,
    TenantStats,
    ZooLoadReport,
    ZooResult,
    ZooServer,
    ZooTicket,
    ZooTickReport,
    run_zoo_open_loop,
)

__all__ = [
    "ArenaManifest",
    "ArenaRegistry",
    "ArenaRegistryStats",
    "Arrival",
    "ControllerMove",
    "DispatchGroup",
    "FleetResult",
    "FleetScheduler",
    "InferenceRuntime",
    "LoadReport",
    "LoadSpec",
    "OperatingPoint",
    "SLOController",
    "SessionTable",
    "ShadowSampler",
    "ShardResult",
    "StreamResult",
    "StreamTicket",
    "StreamingFrontDoor",
    "StreamingServer",
    "StreamingStats",
    "TenantArrival",
    "TenantSLO",
    "TenantSpec",
    "TenantStats",
    "TickReport",
    "WeightArena",
    "ZooLoadReport",
    "ZooResult",
    "ZooServer",
    "ZooTicket",
    "ZooTickReport",
    "generate_arrivals",
    "generate_tenant_arrivals",
    "leaked_segments",
    "run_open_loop",
    "run_zoo_open_loop",
]
