"""Parallel sharded serving runtime (``repro.runtime``).

The paper's memory-friendliness principle — load the recurrent weights
once, amortize them across every cell that needs them — applied at
process scale: an :class:`InferenceRuntime` publishes the network's
parameters once into a shared-memory :class:`WeightArena`, shards
incoming sequences across a worker pool that attaches those same pages,
and groups queued sequences fleet-wide by structural plan signature
(:class:`FleetScheduler`) before dispatch, so the batched executor's
combined-mode plan grouping fires across all in-flight requests instead
of within one caller's batch. A bounded request queue provides
backpressure; per-worker run records merge into a single fleet record
(:func:`repro.obs.merge.merge_run_records`); ``workers=0`` degenerates
to a bit-identical synchronous :class:`~repro.core.executor.LSTMExecutor`
call.

For interactive workloads, :mod:`repro.runtime.streaming` adds the
online shape: per-session resident ``(h, c)`` state, a tick-driven
continuous batcher over the compiled program path, LRU/TTL session
eviction, and an asyncio front door; :mod:`repro.runtime.loadgen`
generates the deterministic open-loop workloads (Poisson arrivals,
diurnal ramp, heavy-tailed session lengths) that measure it.
"""

from repro.runtime.arena import ArenaManifest, WeightArena, leaked_segments
from repro.runtime.loadgen import Arrival, LoadReport, LoadSpec, generate_arrivals, run_open_loop
from repro.runtime.pool import InferenceRuntime
from repro.runtime.results import FleetResult, ShardResult
from repro.runtime.scheduler import DispatchGroup, FleetScheduler
from repro.runtime.streaming import (
    SessionTable,
    StreamingFrontDoor,
    StreamingServer,
    StreamingStats,
    StreamResult,
    StreamTicket,
    TickReport,
)

__all__ = [
    "ArenaManifest",
    "Arrival",
    "DispatchGroup",
    "FleetResult",
    "FleetScheduler",
    "InferenceRuntime",
    "LoadReport",
    "LoadSpec",
    "SessionTable",
    "ShardResult",
    "StreamResult",
    "StreamTicket",
    "StreamingFrontDoor",
    "StreamingServer",
    "StreamingStats",
    "TickReport",
    "WeightArena",
    "generate_arrivals",
    "run_open_loop",
    "leaked_segments",
]
