"""Open-loop load generation for the streaming runtime.

Serving latency is a property of the *arrival process*, not just of the
kernel: an open-loop generator keeps submitting on its own schedule
whether or not the server keeps up, which is what exposes queueing delay
and overload shedding (a closed loop self-throttles and hides both).
This module builds deterministic open-loop workloads with the three
shapes real session traffic has:

* **Poisson arrivals** — session starts are a Poisson process, sampled by
  thinning so the rate may vary over the window;
* **diurnal ramp** — a sinusoidal rate modulation (peak-to-trough set by
  ``diurnal_amplitude``) standing in for time-of-day swings;
* **heavy-tailed session lengths** — bounded Pareto: most sessions are a
  few steps, a few are very long, matching interactive traces.

Everything derives from ``seed`` — the same spec replays the same
arrival times, session ids, lengths, and tokens.

The driver (:func:`run_open_loop`) advances a *virtual* clock: arrivals
land at their scheduled virtual times, while each tick's service time is
the measured wall clock of the batched step (or an injected model, for
deterministic tests). Queueing physics are preserved — when offered load
exceeds capacity the virtual clock falls behind the arrival schedule,
queues grow, latency climbs, and the admission bound sheds — without the
bench ever sleeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import BackpressureError, ConfigurationError
from repro.runtime.streaming import StreamingServer


@dataclass(frozen=True)
class LoadSpec:
    """One deterministic open-loop workload.

    Attributes:
        duration_s: Arrival window (virtual seconds).
        session_rate: Mean session starts per second (the Poisson base
            rate before the diurnal modulation).
        seed: Seeds arrivals, session lengths, and token contents.
        chunk_len: Tokens per submission (each session submits its
            sequence in consecutive chunks of this size).
        think_time_s: Virtual gap between one session's consecutive
            submissions.
        diurnal_amplitude: Relative rate swing in ``[0, 1)``:
            ``rate(t) = session_rate * (1 + A * sin(2*pi*t/period))``.
        diurnal_period_s: Period of the modulation.
        session_len_min / session_len_max: Bounds of the session-length
            distribution (total tokens per session).
        session_len_alpha: Pareto tail index; smaller means heavier tail.
    """

    duration_s: float = 10.0
    session_rate: float = 20.0
    seed: int = 0
    chunk_len: int = 4
    think_time_s: float = 0.05
    diurnal_amplitude: float = 0.5
    diurnal_period_s: float = 8.0
    session_len_min: int = 4
    session_len_max: int = 64
    session_len_alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.session_rate <= 0:
            raise ConfigurationError("duration_s and session_rate must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        if self.session_len_min < 1 or self.session_len_max < self.session_len_min:
            raise ConfigurationError("need 1 <= session_len_min <= session_len_max")
        if self.chunk_len < 1 or self.think_time_s < 0:
            raise ConfigurationError("chunk_len >= 1 and think_time_s >= 0 required")
        if self.session_len_alpha <= 0:
            raise ConfigurationError("session_len_alpha must be positive")


@dataclass(frozen=True)
class Arrival:
    """One scheduled submission: a token chunk for one session."""

    time_s: float
    session_id: str
    tokens: np.ndarray


def _bounded_pareto(rng: np.random.Generator, spec: LoadSpec) -> int:
    """Heavy-tailed session length in ``[len_min, len_max]`` (inclusive)."""
    lo, hi, alpha = spec.session_len_min, spec.session_len_max, spec.session_len_alpha
    u = rng.random()
    # Inverse CDF of the Pareto truncated to [lo, hi].
    ratio = (lo / hi) ** alpha
    length = lo / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)
    return int(min(hi, max(lo, math.floor(length))))


def generate_arrivals(spec: LoadSpec, vocab_size: int) -> list[Arrival]:
    """Materialize the workload's full submission timeline.

    Session starts are Poisson-by-thinning against the diurnal rate
    envelope; each session's length is bounded-Pareto and its tokens are
    uniform over the vocabulary, split into ``chunk_len`` submissions
    spaced ``think_time_s`` apart. Follow-up submissions whose think-time
    offset lands at or past ``duration_s`` are dropped — every arrival in
    the returned timeline falls inside the measurement window, so long
    sessions starting near the end cannot stretch the run past its
    nominal duration. Returns arrivals sorted by time.
    """
    if vocab_size <= 1:
        raise ConfigurationError(f"vocab_size must exceed 1, got {vocab_size}")
    rng = np.random.default_rng(spec.seed)
    peak_rate = spec.session_rate * (1.0 + spec.diurnal_amplitude)
    arrivals: list[Arrival] = []
    t = 0.0
    session_index = 0
    while True:
        t += rng.exponential(1.0 / peak_rate)
        if t >= spec.duration_s:
            break
        rate_t = spec.session_rate * (
            1.0
            + spec.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / spec.diurnal_period_s)
        )
        if rng.random() * peak_rate > rate_t:
            continue  # thinned out
        length = _bounded_pareto(rng, spec)
        tokens = rng.integers(0, vocab_size, size=length)
        sid = f"s{session_index:05d}"
        session_index += 1
        for k, start in enumerate(range(0, length, spec.chunk_len)):
            t_k = t + k * spec.think_time_s
            if k > 0 and t_k >= spec.duration_s:
                break  # would land past the measurement window
            arrivals.append(
                Arrival(
                    time_s=t_k,
                    session_id=sid,
                    tokens=tokens[start : start + spec.chunk_len],
                )
            )
    arrivals.sort(key=lambda a: (a.time_s, a.session_id))
    return arrivals


@dataclass(frozen=True)
class TenantArrival:
    """One scheduled whole-sequence request for one tenant.

    The multi-tenant runtime serves whole sequences (structural planning
    needs full-sequence relevance), so unlike :class:`Arrival` a session
    maps to exactly one submission carrying all of its tokens.
    """

    time_s: float
    tenant: str
    session_id: str
    tokens: np.ndarray


def generate_tenant_arrivals(
    spec: LoadSpec,
    tenant_weights: dict[str, float],
    vocab_sizes: dict[str, int],
) -> list[TenantArrival]:
    """Materialize a deterministic multi-tenant arrival mix.

    Session starts follow the same Poisson-by-thinning process against
    the diurnal envelope as :func:`generate_arrivals`; each accepted
    session is then assigned a tenant by normalized ``tenant_weights``
    (drawn from the same seeded stream, so the mix is part of the
    replayable workload), its length is bounded-Pareto, and its tokens
    are uniform over that tenant's vocabulary. Every session is one
    whole-sequence submission. Both ``bench_tenancy`` and the
    ``serve-zoo`` CLI consume this generator, so their workloads agree
    by construction.

    Args:
        spec: The envelope (duration, rate, seed, diurnal, lengths);
            ``chunk_len``/``think_time_s`` are unused here.
        tenant_weights: Relative arrival share per tenant name; must be
            non-empty with positive total weight.
        vocab_sizes: Vocabulary bound per tenant (every tenant needs an
            entry).
    """
    if not tenant_weights:
        raise ConfigurationError("tenant_weights must name at least one tenant")
    names = sorted(tenant_weights)
    weights = np.asarray([float(tenant_weights[name]) for name in names])
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ConfigurationError(
            "tenant weights must be non-negative with a positive total"
        )
    missing = [name for name in names if name not in vocab_sizes]
    if missing:
        raise ConfigurationError(
            f"vocab_sizes missing tenant(s): {', '.join(missing)}"
        )
    for name in names:
        if vocab_sizes[name] <= 1:
            raise ConfigurationError(
                f"vocab_size for tenant {name!r} must exceed 1, "
                f"got {vocab_sizes[name]}"
            )
    probabilities = weights / weights.sum()
    rng = np.random.default_rng(spec.seed)
    peak_rate = spec.session_rate * (1.0 + spec.diurnal_amplitude)
    arrivals: list[TenantArrival] = []
    t = 0.0
    session_index = 0
    while True:
        t += rng.exponential(1.0 / peak_rate)
        if t >= spec.duration_s:
            break
        rate_t = spec.session_rate * (
            1.0
            + spec.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / spec.diurnal_period_s)
        )
        if rng.random() * peak_rate > rate_t:
            continue  # thinned out
        tenant = names[int(rng.choice(len(names), p=probabilities))]
        length = _bounded_pareto(rng, spec)
        tokens = rng.integers(0, vocab_sizes[tenant], size=length)
        arrivals.append(
            TenantArrival(
                time_s=t,
                tenant=tenant,
                session_id=f"{tenant}-s{session_index:05d}",
                tokens=tokens,
            )
        )
        session_index += 1
    arrivals.sort(key=lambda a: (a.time_s, a.session_id))
    return arrivals


@dataclass
class LoadReport:
    """Outcome of one open-loop run."""

    offered_submissions: int = 0
    completed_submissions: int = 0
    shed_submissions: int = 0
    offered_tokens: int = 0
    completed_tokens: int = 0
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def goodput_tokens_per_s(self) -> float:
        """Tokens of *completed* submissions per virtual second."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed_tokens / self.duration_s

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered submissions shed at admission."""
        if self.offered_submissions == 0:
            return 0.0
        return self.shed_submissions / self.offered_submissions

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (``q`` in [0, 100])."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def as_dict(self) -> dict[str, float]:
        """Flat summary for bench reports."""
        return {
            "offered_submissions": self.offered_submissions,
            "completed_submissions": self.completed_submissions,
            "shed_submissions": self.shed_submissions,
            "shed_fraction": self.shed_fraction,
            "offered_tokens": self.offered_tokens,
            "completed_tokens": self.completed_tokens,
            "duration_s": self.duration_s,
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "latency_p50_s": self.percentile(50.0),
            "latency_p99_s": self.percentile(99.0),
            "latency_p999_s": self.percentile(99.9),
            "latency_mean_s": (
                float(np.mean(self.latencies_s)) if self.latencies_s else 0.0
            ),
            "latency_max_s": (
                float(np.max(self.latencies_s)) if self.latencies_s else 0.0
            ),
        }


def run_open_loop(
    server: StreamingServer,
    arrivals: list[Arrival],
    tick_interval_s: float = 0.002,
    service_time: Callable[[float], float] | None = None,
) -> LoadReport:
    """Drive a server through an arrival timeline on virtual time.

    Ticks fire every ``tick_interval_s`` of virtual time, arrivals are
    submitted at their scheduled times, and each tick advances the clock
    by its *measured* execution wall (or ``service_time(measured)`` when
    a model is injected — tests pass a constant to make overload
    deterministic). A submission's latency is admission to the end of the
    tick that served its last chunk.

    Returns the :class:`LoadReport`; occupancy/shed counters accumulate
    on ``server.stats``.
    """
    if tick_interval_s <= 0:
        raise ConfigurationError(
            f"tick_interval_s must be positive, got {tick_interval_s}"
        )
    report = LoadReport()
    now = 0.0
    next_tick = tick_interval_s
    idx = 0
    n = len(arrivals)

    def fire_tick(at: float) -> float:
        tick_report = server.tick(now=at)
        cost = tick_report.exec_wall_s
        if service_time is not None:
            cost = service_time(cost)
        end = at + cost
        for result in tick_report.completed:
            report.completed_submissions += 1
            report.completed_tokens += result.n_tokens
            report.latencies_s.append(end - result.submitted_at)
        return end

    while idx < n or server.queue_depth > 0:
        if idx < n and arrivals[idx].time_s <= next_tick:
            arrival = arrivals[idx]
            idx += 1
            now = max(now, arrival.time_s)
            report.offered_submissions += 1
            report.offered_tokens += int(arrival.tokens.shape[0])
            try:
                server.submit(arrival.session_id, arrival.tokens, now=now)
            except BackpressureError:
                report.shed_submissions += 1
            continue
        now = max(now, next_tick)
        now = fire_tick(now)
        next_tick = max(next_tick + tick_interval_s, now)

    report.duration_s = now
    return report
